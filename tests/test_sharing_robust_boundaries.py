"""Robust reconstruction at the boundaries of the unique-decoding radius.

Complements tests/test_sharing_robust.py with the degenerate and
bound-exact geometries the active adversary probes: k = m (no redundancy,
radius zero), odd vs even slack m - k (the integer floor in
e = (m - k) // 2), exactly-e corruptions at the bound, and e + 1 just
past it.  Plus the end-to-end attribution path: a channel-confined attack
shows up in the receiver's ``corrupt_by_channel`` ledger on exactly the
attacked channel.
"""

import numpy as np
import pytest

from repro.adversary.active import canonical_attack, run_under_attack
from repro.sharing.base import ReconstructionError, Share
from repro.sharing.robust import (
    max_correctable_errors,
    max_recoverable_erasures,
    reconstruct_with_erasures,
    robust_reconstruct,
)
from repro.sharing.shamir import ShamirScheme

scheme = ShamirScheme()
SECRET = b"unique decoding radius, exactly"


def make_shares(k, m, seed=0):
    return scheme.split(SECRET, k, m, np.random.default_rng(seed))


def rewrite(share, seed=1):
    rng = np.random.default_rng(seed)
    data = bytes(rng.integers(0, 256, size=len(share.data), dtype=np.uint8))
    if data == share.data:  # vanishing chance, but make corruption certain
        data = bytes([data[0] ^ 0xFF]) + data[1:]
    return Share(index=share.index, data=data, k=share.k, m=share.m)


class TestRadiusGeometry:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_k_equals_m_has_zero_radius(self, k):
        assert max_correctable_errors(k, k) == 0

    def test_odd_slack_floors_down(self):
        # m - k = 3 corrects exactly 1: the odd share of slack buys nothing.
        assert max_correctable_errors(5, 2) == 1
        assert max_correctable_errors(4, 2) == 1  # even slack 2, same radius

    def test_even_slack_counts_fully(self):
        assert max_correctable_errors(6, 2) == 2
        assert max_correctable_errors(7, 3) == 2


class TestKEqualsM:
    def test_clean_group_reconstructs(self):
        shares = make_shares(3, 3)
        result = robust_reconstruct(shares)
        assert result.secret == SECRET
        assert result.corrupted == frozenset()
        assert result.agreement == 3

    def test_zero_redundancy_means_zero_detection(self):
        # With n = k any k points define *some* polynomial: a corrupted
        # group decodes cleanly to the wrong secret, and no decoder can
        # know.  This is exactly why the protocol's byzantine_tolerance
        # validation forces floor(mu) >= floor(kappa) + 2e before it calls
        # shares robust -- the guarantee needs redundancy to exist.
        shares = make_shares(3, 3)
        shares[1] = rewrite(shares[1])
        result = robust_reconstruct(shares)
        assert result.secret != SECRET
        assert result.corrupted == frozenset()


class TestKEqualsMUnderAuth:
    """With authenticated shares the k = m boundary flips from silent
    corruption to detected-and-dropped: a bad-tag share becomes an
    erasure, and with zero erasure budget (m - k = 0) the decoder refuses
    rather than inventing a wrong secret.  The unauthenticated pin above
    (``test_zero_redundancy_means_zero_detection``) stays as-is -- the
    contrast IS the guarantee."""

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_erasure_radius_is_zero(self, k):
        assert max_recoverable_erasures(k, k) == 0

    def test_clean_group_still_reconstructs(self):
        result = reconstruct_with_erasures(make_shares(3, 3))
        assert result.secret == SECRET
        assert result.corrupted == frozenset()
        assert result.agreement == 3

    def test_known_bad_position_is_refused_not_silent(self):
        # The MAC check turned share 2's corruption into an erasure; the
        # k = m decoder now has only k - 1 survivors and must refuse.
        shares = make_shares(3, 3)
        shares[1] = rewrite(shares[1])
        with pytest.raises(ReconstructionError):
            reconstruct_with_erasures(shares, erasures={2})

    def test_end_to_end_corruption_at_k_equals_m_never_accepts(self):
        # κ = µ = 3: zero redundancy end to end.  Unauth this geometry is
        # the silent-corruption worst case; with auth every corrupted
        # share fails verification, its symbol times out incomplete, and
        # nothing wrong is ever delivered.
        plan = canonical_attack(
            "corruption_storm", 4.0, 24.0, channel=1, rate=1.0, mode="rewrite"
        )
        row = run_under_attack(
            plan, kappa=3.0, mu=3.0, tolerance=1, duration=20.0, seed=7,
            auth=True,
        )
        assert row["auth_armed"] is True
        assert row["wrong_payloads"] == 0
        assert row["receiver"]["auth_failed_shares"] > 0
        assert set(row["auth_fail_by_channel"]) == {"1"}
        # Detected means *dropped*, not repaired: with zero redundancy the
        # hit symbols are lost, and that shortfall is visible, not silent.
        assert row["delivered"] < row["transmitted"]


class TestAtTheBound:
    @pytest.mark.parametrize("k,m", [(2, 4), (2, 5), (3, 5), (2, 6)])
    def test_exactly_e_corruptions_recover(self, k, m):
        shares = make_shares(k, m)
        e = max_correctable_errors(m, k)
        for i in range(e):
            shares[i] = rewrite(shares[i], seed=10 + i)
        result = robust_reconstruct(shares)
        assert result.secret == SECRET
        assert result.corrupted == frozenset(range(1, e + 1))

    @pytest.mark.parametrize("k,m", [(2, 4), (3, 5)])
    def test_e_plus_one_corruptions_detected_never_silent(self, k, m):
        shares = make_shares(k, m)
        e = max_correctable_errors(m, k)
        for i in range(e + 1):
            shares[i] = rewrite(shares[i], seed=20 + i)
        with pytest.raises(ReconstructionError):
            robust_reconstruct(shares)

    def test_odd_slack_spare_share_raises_agreement_not_radius(self):
        # m - k = 3: radius is 1, but the spare honest share must still
        # agree with the accepted decoding.
        shares = make_shares(2, 5)
        shares[0] = rewrite(shares[0])
        result = robust_reconstruct(shares)
        assert result.secret == SECRET
        assert result.agreement == 4


class TestChannelAttribution:
    def test_storm_on_one_channel_lands_in_its_ledger(self):
        plan = canonical_attack(
            "corruption_storm", 4.0, 24.0, channel=1, rate=1.0, mode="rewrite"
        )
        row = run_under_attack(plan, kappa=2.0, mu=5.0, tolerance=1,
                               duration=20.0, seed=7)
        assert row["corrupt_by_channel"]
        assert set(row["corrupt_by_channel"]) == {"1"}
        assert row["wrong_payloads"] == 0
