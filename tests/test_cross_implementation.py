"""Cross-implementation consistency checks.

The repository often contains two independent routes to the same quantity
(a fast production path and a reference path built on different machinery).
These tests pin them against each other.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.gf256 import GF256_FIELD
from repro.gf.poly import evaluate, lagrange_interpolate_at
from repro.sharing.shamir import ShamirScheme


class TestShamirAgainstGenericPolynomials:
    """The vectorised GF(256) Shamir vs the generic gf.poly machinery."""

    @given(
        secret_byte=st.integers(0, 255),
        k=st.integers(1, 5),
        extra=st.integers(0, 3),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_share_bytes_are_polynomial_evaluations(self, secret_byte, k, extra, seed):
        m = k + extra
        scheme = ShamirScheme()
        shares = scheme.split(bytes([secret_byte]), k, m, np.random.default_rng(seed))
        # Interpolate the byte through generic Lagrange: the constant term
        # must be the secret, and every share byte must lie on one curve.
        points = [(share.index, share.data[0]) for share in shares[:k]]
        assert lagrange_interpolate_at(GF256_FIELD, points, 0) == secret_byte
        for share in shares:
            assert (
                lagrange_interpolate_at(GF256_FIELD, points, share.index)
                == share.data[0]
            )

    @given(
        coeffs=st.lists(st.integers(0, 255), min_size=1, max_size=5),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_reconstruct_equals_generic_interpolation(self, coeffs, seed):
        # Build shares directly from a known polynomial via generic
        # evaluation, then check the production reconstructor agrees.
        from repro.sharing.base import Share

        k = len(coeffs)
        m = k + 2
        shares = [
            Share(
                index=x,
                data=bytes([evaluate(GF256_FIELD, coeffs, x)]),
                k=k,
                m=m,
            )
            for x in range(1, m + 1)
        ]
        scheme = ShamirScheme()
        assert scheme.reconstruct(shares[:k]) == bytes([coeffs[0]])
        del seed


class TestDelayFormulaAgainstClosedForm:
    """subset_delay's subset sum vs the paper's D_C ordering formula."""

    @given(
        losses=st.lists(st.floats(0.0, 0.9), min_size=2, max_size=5),
        delays=st.lists(st.floats(0.0, 10.0), min_size=2, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_k1_delay_equals_first_arrival_formula(self, losses, delays):
        from repro.core.channel import ChannelSet
        from repro.core.optimal import min_delay
        from repro.core.properties import subset_delay

        n = min(len(losses), len(delays))
        channels = ChannelSet.from_vectors(
            risks=[0.0] * n, losses=losses[:n], delays=delays[:n], rates=[1.0] * n
        )
        assert min_delay(channels)[0] == pytest.approx(
            subset_delay(channels, 1, range(n)), abs=1e-9
        )


class TestUsageIdentities:
    """Schedule-level identities that tie independent code paths together."""

    @given(
        rates=st.lists(st.floats(0.5, 50.0), min_size=2, max_size=5),
        mu_frac=st.floats(0.0, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_lp_schedule_usage_sums_to_mu(self, rates, mu_frac):
        from repro.core.channel import ChannelSet
        from repro.core.program import Objective, optimal_schedule

        n = len(rates)
        channels = ChannelSet.from_vectors(
            risks=[0.1] * n, losses=[0.01] * n, delays=[0.1] * n, rates=rates
        )
        mu = 1.0 + mu_frac * (n - 1)
        schedule = optimal_schedule(
            channels, Objective.PRIVACY, 1.0, mu, at_max_rate=True
        )
        # Identity: sum of per-channel usages is exactly mu (Theorem 3).
        assert schedule.channel_usage().sum() == pytest.approx(mu, abs=1e-6)

    @given(rates=st.lists(st.floats(0.5, 50.0), min_size=2, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_mptcp_schedule_rate_identity(self, rates):
        from repro.core.channel import ChannelSet
        from repro.core.rate import max_rate, rate_maximizing_schedule

        n = len(rates)
        channels = ChannelSet.from_vectors(
            risks=[0.0] * n, losses=[0.0] * n, delays=[0.0] * n, rates=rates
        )
        schedule = rate_maximizing_schedule(channels)
        assert schedule.max_symbol_rate() == pytest.approx(max_rate(channels), rel=1e-9)
