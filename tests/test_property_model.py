"""Cross-cutting property tests: LP optimality dominance, model coherence,
and randomized end-to-end protocol integrity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.channel import ChannelSet
from repro.core.program import (
    Objective,
    optimal_property_value,
    theorem5_schedule,
)
from repro.core.rate import optimal_rate

channel_sets = st.integers(min_value=2, max_value=5).flatmap(
    lambda n: st.tuples(
        st.lists(st.floats(0.0, 1.0), min_size=n, max_size=n),
        st.lists(st.floats(0.0, 0.5), min_size=n, max_size=n),
        st.lists(st.floats(0.0, 5.0), min_size=n, max_size=n),
        st.lists(st.floats(0.5, 50.0), min_size=n, max_size=n),
    )
)


def build_channels(spec) -> ChannelSet:
    risks, losses, delays, rates = spec
    return ChannelSet.from_vectors(risks, losses, delays, rates)


@given(
    spec=channel_sets,
    kappa_frac=st.floats(0.0, 1.0),
    mu_frac=st.floats(0.0, 1.0),
)
@settings(max_examples=30, deadline=None)
def test_lp_optimum_dominates_any_feasible_schedule(spec, kappa_frac, mu_frac):
    """The LP value is a true lower bound: no feasible schedule beats it."""
    channels = build_channels(spec)
    n = channels.n
    mu = 1.0 + mu_frac * (n - 1)
    kappa = 1.0 + kappa_frac * (mu - 1.0)
    # A feasible (non-optimal) schedule with the same averages.
    feasible = theorem5_schedule(channels, kappa, mu)
    for objective, value in (
        (Objective.PRIVACY, feasible.privacy_risk()),
        (Objective.LOSS, feasible.loss()),
        (Objective.DELAY, feasible.delay()),
    ):
        optimum = optimal_property_value(channels, objective, kappa, mu)
        assert optimum <= value + 1e-7


@given(spec=channel_sets, mu_frac=st.floats(0.0, 1.0))
@settings(max_examples=30, deadline=None)
def test_max_rate_schedule_exists_and_sustains_rc(spec, mu_frac):
    """The IV-D program is always feasible and its schedule sustains R_C."""
    from repro.core.program import optimal_schedule

    channels = build_channels(spec)
    n = channels.n
    mu = 1.0 + mu_frac * (n - 1)
    kappa = 1.0 + 0.5 * (mu - 1.0)
    schedule = optimal_schedule(
        channels, Objective.LOSS, kappa, mu, at_max_rate=True
    )
    assert schedule.kappa == pytest.approx(kappa, abs=1e-5)
    assert schedule.mu == pytest.approx(mu, abs=1e-5)
    assert schedule.max_symbol_rate() == pytest.approx(
        optimal_rate(channels, mu), rel=1e-5
    )


@given(spec=channel_sets)
@settings(max_examples=30, deadline=None)
def test_extreme_schedules_consistent_with_lp(spec):
    """Closed-form extremes equal the LP at the corner parameters."""
    from repro.core.optimal import max_privacy_risk, min_loss

    channels = build_channels(spec)
    n = float(channels.n)
    z_formula, _ = max_privacy_risk(channels)
    z_lp = optimal_property_value(channels, Objective.PRIVACY, n, n)
    assert z_lp == pytest.approx(z_formula, abs=1e-9)
    l_formula, _ = min_loss(channels)
    l_lp = optimal_property_value(channels, Objective.LOSS, 1.0, n)
    assert l_lp == pytest.approx(l_formula, abs=1e-9)


@given(
    n=st.integers(min_value=2, max_value=4),
    kappa_step=st.integers(min_value=0, max_value=2),
    loss=st.floats(0.0, 0.2),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=15, deadline=None)
def test_protocol_integrity_fuzz(n, kappa_step, loss, seed):
    """Random small networks: every delivered payload is byte-exact."""
    from repro.netsim.rng import RngRegistry
    from repro.protocol.config import ProtocolConfig
    from repro.protocol.remicss import PointToPointNetwork

    channels = ChannelSet.from_vectors(
        risks=[0.0] * n,
        losses=[loss] * n,
        delays=[0.01] * n,
        rates=[100.0] * n,
    )
    kappa = float(min(1 + kappa_step, n))
    config = ProtocolConfig(
        kappa=kappa, mu=float(n), symbol_size=64, reassembly_timeout=10.0
    )
    registry = RngRegistry(seed)
    network = PointToPointNetwork(channels, 64, registry)
    node_a, node_b = network.node_pair(config, registry)
    delivered = {}
    node_b.on_deliver(lambda s, payload, d: delivered.__setitem__(s, payload))
    payload_rng = registry.stream("fuzz")
    sent = []

    def offer():
        payload = payload_rng.bytes(64)
        if node_a.send(payload):
            sent.append(payload)

    for i in range(60):
        network.engine.schedule_at(i * 0.05, offer)
    network.engine.run_until(15.0)
    assert all(delivered[s] == sent[s] for s in delivered)
    # Lossless runs must deliver everything.
    if loss == 0.0:
        assert len(delivered) == len(sent)
