"""Unit tests for the structured tracer: events, spans, ring buffer."""

import pytest

from repro.netsim.engine import Engine
from repro.obs.tracing import NullTracer, Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestEvents:
    def test_point_event_stamped_with_sim_time(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        clock.now = 2.5
        tracer.event("share_tx", channel=3)
        (event,) = tracer.events
        assert event.time == 2.5
        assert event.kind == "event"
        assert event.name == "share_tx"
        assert event.fields == {"channel": 3}
        assert event.duration is None

    def test_as_dict_omits_empty_fields(self):
        tracer = Tracer(FakeClock())
        tracer.event("tick")
        (event,) = tracer.events
        assert event.as_dict() == {"time": 0.0, "kind": "event", "name": "tick"}


class TestSpans:
    def test_span_duration_in_sim_time(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        clock.now = 1.0
        with tracer.span("reconstruct", seq=7) as span:
            clock.now = 3.5
            span.annotate(shares=2)
        (event,) = tracer.events
        assert event.kind == "span"
        assert event.time == 1.0
        assert event.duration == 2.5
        assert event.fields == {"seq": 7, "shares": 2}

    def test_close_is_idempotent(self):
        tracer = Tracer(FakeClock())
        span = tracer.span("x")
        span.close()
        span.close()
        assert len(tracer) == 1

    def test_span_against_real_engine_clock(self):
        engine = Engine()
        tracer = Tracer(lambda: engine.now)
        span = tracer.span("window")
        engine.schedule_at(4.0, lambda: span.close())
        engine.run()
        (event,) = tracer.events
        assert event.duration == 4.0


class TestRingBuffer:
    def test_oldest_evicted_and_counted(self):
        tracer = Tracer(FakeClock(), capacity=3)
        for i in range(5):
            tracer.event("e", i=i)
        assert len(tracer) == 3
        assert [e.fields["i"] for e in tracer] == [2, 3, 4]
        assert tracer.dropped == 2

    def test_clear_resets(self):
        tracer = Tracer(FakeClock(), capacity=1)
        tracer.event("a")
        tracer.event("b")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(FakeClock(), capacity=0)


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.event("x", a=1)
        with tracer.span("y") as span:
            span.annotate(b=2)
        assert tracer.events == []
        assert len(tracer) == 0
