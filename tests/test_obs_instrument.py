"""End-to-end observability: instrumented iperf runs, seeded determinism,
fault-matrix counter reconciliation, and zero perturbation of results."""

import pytest

from repro.netsim.engine import Engine
from repro.obs import Observability, metrics_to_jsonl, trace_to_jsonl
from repro.obs.metrics import merge_counters
from repro.protocol.config import ProtocolConfig
from repro.workloads.iperf import practical_max_rate, run_iperf
from repro.workloads.setups import FAULT_SCENARIOS, diverse_setup, lossy_setup
from repro.workloads.setups import testbed_fault_plan as fault_plan_for

SEED = 5
WARMUP = 2.0
DURATION = 8.0


def run(obs=None, scenario=None, seed=SEED, setup=diverse_setup, channel=4):
    channels = setup()
    config = ProtocolConfig(kappa=2.0, mu=3.0, share_synthetic=True)
    offered = 0.9 * practical_max_rate(channels, config.mu, config.symbol_size)
    plan = fault_plan_for(scenario, 30.0, 70.0, channel=channel) if scenario else None
    return run_iperf(
        channels,
        config,
        offered_rate=offered,
        duration=DURATION,
        warmup=WARMUP,
        seed=seed,
        fault_plan=plan,
        obs=obs,
    )


def by_name(samples, name):
    return [s for s in samples if s["name"] == name]


class TestEngineDispatchHook:
    def test_hook_sees_every_event(self):
        engine = Engine()
        seen = []
        engine.set_dispatch_hook(lambda event, depth: seen.append((event.time, depth)))
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        engine.run()
        assert [t for t, _ in seen] == [1.0, 2.0]

    def test_cancelled_events_not_counted(self):
        engine = Engine()
        seen = []
        engine.set_dispatch_hook(lambda event, depth: seen.append(event.time))
        event = engine.schedule_at(1.0, lambda: None)
        event.cancel()
        engine.run()
        assert seen == []

    def test_hook_removable(self):
        engine = Engine()
        engine.set_dispatch_hook(lambda event, depth: 1 / 0)
        engine.set_dispatch_hook(None)
        engine.schedule_at(1.0, lambda: None)
        engine.run()  # would raise if the hook still fired


class TestInstrumentedRun:
    def test_counters_match_component_stats(self):
        obs = Observability.create(tracing=True)
        result = run(obs)
        samples = obs.snapshot()
        node_a = [
            s for s in by_name(samples, "sim_sender_symbols_sent_total")
            if s["labels"]["node"] == "nodeA"
        ]
        assert len(node_a) == 1
        # The iperf result reports whole-run sender stats for node A.
        assert node_a[0]["value"] == float(result.sender_stats["symbols_sent"])
        delivered = [
            s for s in by_name(samples, "sim_receiver_symbols_delivered_total")
            if s["labels"]["node"] == "nodeB"
        ]
        assert delivered[0]["value"] == float(result.receiver_stats["symbols_delivered"])
        # Link delivery counters agree with the engine-level accounting.
        fwd_delivered = sum(
            s["value"] for s in by_name(samples, "sim_link_delivered_total")
            if s["labels"]["direction"] == "fwd"
        )
        shares_received = result.receiver_stats["shares_received"]
        assert fwd_delivered == float(shares_received)

    def test_latency_histogram_counts_deliveries(self):
        obs = Observability.create(tracing=False)
        result = run(obs)
        samples = obs.snapshot()
        hist = [
            s for s in by_name(samples, "sim_receiver_reconstruct_latency")
            if s["labels"]["node"] == "nodeB"
        ]
        assert len(hist) == 1
        assert hist[0]["count"] == result.receiver_stats["symbols_delivered"]
        assert hist[0]["sum"] > 0.0

    def test_schedule_picks_and_stalls_exported(self):
        obs = Observability.create(tracing=False)
        run(obs)
        samples = obs.snapshot()
        picks = [
            s for s in by_name(samples, "sim_sender_schedule_picks_total")
            if s["labels"]["node"] == "nodeA"
        ]
        assert picks, "dynamic sampler picks should be exported"
        assert sum(s["value"] for s in picks) > 0
        # (kappa, mu) = (2, 3) is deterministic: exactly the (2, 3) atom.
        assert picks[0]["labels"]["k"] == "2"
        assert picks[0]["labels"]["m"] == "3"
        assert by_name(samples, "sim_sender_readiness_stalls_total")

    def test_engine_and_trace_series_present(self):
        obs = Observability.create(tracing=True)
        run(obs)
        samples = obs.snapshot()
        names = {s["name"] for s in samples}
        assert "sim_engine_events_processed_total" in names
        assert "sim_engine_events_total" in names
        assert "sim_engine_queue_depth_max" in names
        assert "sim_receiver_occupancy" in names
        assert any(e.name == "share_tx" for e in obs.tracer.events)

    def test_observability_does_not_perturb_results(self):
        plain = run(None)
        observed = run(Observability.create(tracing=True))
        assert observed.achieved_rate == plain.achieved_rate
        assert observed.symbols_delivered == plain.symbols_delivered
        assert observed.loss_fraction == plain.loss_fraction
        assert observed.sender_stats == plain.sender_stats
        assert observed.receiver_stats == plain.receiver_stats

    def test_disabled_observability_is_silent(self):
        obs = Observability.disabled()
        run(obs)
        assert obs.snapshot() == []
        assert obs.tracer.events == []


class TestSeededDeterminism:
    def test_same_seed_identical_metrics_and_trace_dump(self):
        dumps = []
        for _ in range(2):
            obs = Observability.create(tracing=True)
            run(obs, scenario="flap")
            dumps.append(
                (metrics_to_jsonl(obs.snapshot()), trace_to_jsonl(obs.tracer.events))
            )
        assert dumps[0][0] == dumps[1][0]
        assert dumps[0][1] == dumps[1][1]

    def test_different_seed_differs(self):
        # diverse_setup is loss-free and the (2, 3) sampler is degenerate,
        # so nothing there consumes randomness; the Lossy setup does.
        texts = []
        for seed in (1, 2):
            obs = Observability.create(tracing=False)
            run(obs, seed=seed, setup=lossy_setup)
            texts.append(metrics_to_jsonl(obs.snapshot()))
        assert texts[0] != texts[1]


class TestFaultMatrix:
    """Every canonical scenario, reconciled against the injector's summary."""

    @pytest.mark.parametrize("scenario", FAULT_SCENARIOS)
    def test_fault_counters_match_injector_summary(self, scenario):
        obs = Observability.create(tracing=True)
        result = run(obs, scenario=scenario)
        samples = obs.snapshot()
        summary = result.fault_summary
        assert summary is not None and summary["applied"] > 0
        applied_metric = sum(
            s["value"] for s in by_name(samples, "sim_fault_events_total")
        )
        assert applied_metric == float(summary["applied"])
        by_action_metric = {
            s["labels"]["action"]: s["value"]
            for s in by_name(samples, "sim_fault_events_total")
        }
        assert by_action_metric == {
            action: float(count) for action, count in summary["by_action"].items()
        }
        # The tracer saw each applied event too.
        fault_traces = [e for e in obs.tracer.events if e.name == "fault_applied"]
        assert len(fault_traces) == summary["applied"]

    @pytest.mark.parametrize("scenario", ["flap", "partition_heal"])
    def test_outage_scenarios_report_down_drops(self, scenario):
        obs = Observability.create(tracing=False)
        # Fault the slow 5 Mbps channel: its long serialisation times make
        # mid-wire aborts (counted as down_drops) certain in a short run.
        run(obs, scenario=scenario, channel=0)
        samples = obs.snapshot()
        down_drops = merge_counters(samples, "sim_link_down_drops_total")
        assert down_drops > 0
        downs = merge_counters(samples, "sim_link_downs_total")
        ups = merge_counters(samples, "sim_link_ups_total")
        assert downs > 0 and ups > 0
