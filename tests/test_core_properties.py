"""The subset privacy/loss/delay formulas of Sec. IV-A."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.channel import ChannelSet
from repro.core.properties import (
    kth_smallest_delay,
    subset_delay,
    subset_loss,
    subset_risk,
)


def enumeration_risk(channels, k, members):
    """The paper's literal z(k, M): sum over observer subsets K with |K| >= k."""
    members = sorted(members)
    total = 0.0
    for size in range(k, len(members) + 1):
        for observed in combinations(members, size):
            p = 1.0
            for i in members:
                z = channels[i].risk
                p *= z if i in observed else 1.0 - z
            total += p
    return total


def enumeration_loss(channels, k, members):
    """The paper's literal l(k, M): sum over received subsets K with |K| < k."""
    members = sorted(members)
    total = 0.0
    for size in range(0, k):
        for received in combinations(members, size):
            p = 1.0
            for i in members:
                l = channels[i].loss
                p *= (1.0 - l) if i in received else l
            total += p
    return total


class TestSubsetRisk:
    def test_matches_literal_enumeration(self, five_channels):
        for k, members in [(1, [0]), (2, [0, 1, 2]), (3, [1, 2, 3, 4]), (5, [0, 1, 2, 3, 4])]:
            assert subset_risk(five_channels, k, members) == pytest.approx(
                enumeration_risk(five_channels, k, members)
            )

    def test_k_one_single_channel(self, five_channels):
        assert subset_risk(five_channels, 1, [0]) == pytest.approx(0.3)

    def test_k_equals_m_is_product(self, five_channels):
        expected = np.prod([five_channels[i].risk for i in range(5)])
        assert subset_risk(five_channels, 5, range(5)) == pytest.approx(float(expected))

    def test_risk_decreases_with_k(self, five_channels):
        members = [0, 1, 2, 3]
        risks = [subset_risk(five_channels, k, members) for k in range(1, 5)]
        assert all(a >= b - 1e-12 for a, b in zip(risks, risks[1:]))

    def test_adding_channel_with_k_fixed_increases_risk(self, five_channels):
        # More shares observed with the same threshold: strictly easier for
        # the adversary.
        r_small = subset_risk(five_channels, 2, [0, 1])
        r_large = subset_risk(five_channels, 2, [0, 1, 2])
        assert r_large >= r_small

    def test_invalid_k_rejected(self, five_channels):
        with pytest.raises(ValueError):
            subset_risk(five_channels, 3, [0, 1])
        with pytest.raises(ValueError):
            subset_risk(five_channels, 0, [0])


class TestSubsetLoss:
    def test_matches_literal_enumeration(self, five_channels):
        for k, members in [(1, [0]), (2, [0, 1, 2]), (4, [1, 2, 3, 4])]:
            assert subset_loss(five_channels, k, members) == pytest.approx(
                enumeration_loss(five_channels, k, members)
            )

    def test_k_one_full_set_is_product(self, five_channels):
        expected = float(np.prod(five_channels.losses))
        assert subset_loss(five_channels, 1, range(5)) == pytest.approx(expected)

    def test_zero_loss_channels(self, lossless_channels):
        assert subset_loss(lossless_channels, 2, [0, 1, 2]) == 0.0

    def test_loss_increases_with_k(self, five_channels):
        members = [0, 1, 2, 3]
        losses = [subset_loss(five_channels, k, members) for k in range(1, 5)]
        assert all(a <= b + 1e-12 for a, b in zip(losses, losses[1:]))

    def test_redundancy_reduces_loss(self, five_channels):
        # k fixed, more channels: harder to lose the symbol.
        l_small = subset_loss(five_channels, 1, [0])
        l_large = subset_loss(five_channels, 1, [0, 1])
        assert l_large <= l_small


class TestSubsetDelay:
    def test_lossless_collapses_to_order_statistic(self, lossless_channels):
        # Paper: "when all l_i = 0, this equation collapses to delta_M(k)".
        for k in (1, 2, 3):
            assert subset_delay(lossless_channels, k, [0, 1, 2]) == pytest.approx(
                kth_smallest_delay(lossless_channels, [0, 1, 2], k)
            )

    def test_kth_smallest_delay(self, three_channels):
        assert kth_smallest_delay(three_channels, [0, 1, 2], 1) == 2.0
        assert kth_smallest_delay(three_channels, [0, 1, 2], 2) == 9.0
        assert kth_smallest_delay(three_channels, [0, 1, 2], 3) == 10.0
        with pytest.raises(ValueError):
            kth_smallest_delay(three_channels, [0, 1], 3)

    def test_single_channel(self, three_channels):
        assert subset_delay(three_channels, 1, [1]) == pytest.approx(9.0)

    def test_two_channel_hand_computation(self):
        channels = ChannelSet.from_vectors(
            risks=[0.0, 0.0],
            losses=[0.5, 0.5],
            delays=[1.0, 3.0],
            rates=[1.0, 1.0],
        )
        # k=1: received sets {0}: .25 -> delay 1; {1}: .25 -> 3; both: .25 -> 1.
        # Conditional on delivery (prob .75): (0.25*1 + 0.25*3 + 0.25*1)/0.75.
        expected = (0.25 * 1 + 0.25 * 3 + 0.25 * 1) / 0.75
        assert subset_delay(channels, 1, [0, 1]) == pytest.approx(expected)

    def test_delay_increases_with_k(self, five_channels):
        members = [0, 1, 2, 3, 4]
        delays = [subset_delay(five_channels, k, members) for k in range(1, 6)]
        assert all(a <= b + 1e-12 for a, b in zip(delays, delays[1:]))

    def test_matches_monte_carlo(self, five_channels, rng):
        from repro.adversary.montecarlo import estimate_subset_properties

        estimate = estimate_subset_properties(five_channels, 2, [0, 2, 4], rng, samples=200_000)
        assert subset_risk(five_channels, 2, [0, 2, 4]) == pytest.approx(
            estimate.risk, abs=0.01
        )
        assert subset_loss(five_channels, 2, [0, 2, 4]) == pytest.approx(
            estimate.loss, abs=0.01
        )
        assert subset_delay(five_channels, 2, [0, 2, 4]) == pytest.approx(
            estimate.delay, rel=0.05
        )


@given(
    risks=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=5),
    k=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=40, deadline=None)
def test_risk_formula_property(risks, k):
    n = len(risks)
    k = min(k, n)
    channels = ChannelSet.from_vectors(
        risks=risks, losses=[0.0] * n, delays=[0.0] * n, rates=[1.0] * n
    )
    value = subset_risk(channels, k, range(n))
    assert value == pytest.approx(enumeration_risk(channels, k, range(n)), abs=1e-9)
    assert 0.0 <= value <= 1.0 + 1e-12
