"""The adaptive controller: monitoring -> plan -> sampler swap."""

import pytest

from repro.adversary.riskassess import HmmRiskEstimator, HmmRiskModel
from repro.core.channel import ChannelSet
from repro.core.planner import Requirements
from repro.netsim.rng import RngRegistry
from repro.protocol.adaptive import AdaptiveController
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork
from repro.protocol.scheduler import DynamicParameterSampler, ExplicitScheduler


def build(alert_feed, requirements, losses=(0.0, 0.0, 0.0), period=1.0, seed=4):
    channels = ChannelSet.from_vectors(
        risks=[0.1, 0.1, 0.1],
        losses=list(losses),
        delays=[0.01] * 3,
        rates=[100.0] * 3,
    )
    registry = RngRegistry(seed)
    network = PointToPointNetwork(channels, 100, registry)
    config = ProtocolConfig(kappa=1.0, mu=1.0, symbol_size=100, share_synthetic=True)
    node_a, node_b = network.node_pair(config, registry)
    model = HmmRiskModel(p_compromise=0.05, p_recover=0.05,
                         p_false_alert=0.05, p_true_alert=0.8)
    controller = AdaptiveController(
        engine=network.engine,
        node=node_a,
        base_channels=channels,
        links=[duplex.forward for duplex in network.duplex],
        alert_feed=alert_feed,
        risk_estimators=[HmmRiskEstimator(model) for _ in range(3)],
        requirements=requirements,
        period=period,
        rng=registry.stream("controller"),
    )
    return network, node_a, node_b, controller


class TestValidation:
    def test_bad_period(self):
        with pytest.raises(ValueError):
            build(lambda i: False, Requirements(), period=0.0)

    def test_mismatched_estimators(self):
        channels = ChannelSet.from_vectors([0.1], [0.0], [0.0], [1.0])
        registry = RngRegistry(1)
        network = PointToPointNetwork(channels, 100, registry)
        config = ProtocolConfig(symbol_size=100, share_synthetic=True)
        node_a, _ = network.node_pair(config, registry)
        with pytest.raises(ValueError):
            AdaptiveController(
                engine=network.engine,
                node=node_a,
                base_channels=channels,
                links=[network.duplex[0].forward],
                alert_feed=lambda i: False,
                risk_estimators=[],
                requirements=Requirements(),
                period=1.0,
            )


class TestAdaptation:
    def test_reviews_happen_on_schedule(self):
        network, _, _, controller = build(lambda i: False, Requirements())
        network.engine.run_until(5.5)
        assert len(controller.history) == 5
        assert [round(r.time, 6) for r in controller.history] == [1, 2, 3, 4, 5]

    def test_sampler_swapped_to_explicit(self):
        network, node_a, _, controller = build(lambda i: False, Requirements())
        assert isinstance(node_a.sampler, DynamicParameterSampler)
        network.engine.run_until(1.5)
        assert isinstance(node_a.sampler, ExplicitScheduler)
        assert node_a.sender.sampler is node_a.sampler

    def test_quiet_alerts_pick_fast_plan(self):
        network, _, _, controller = build(lambda i: False, Requirements(max_risk=0.4))
        network.engine.run_until(10.5)
        plan = controller.current_plan
        assert plan is not None
        assert plan.mu == pytest.approx(1.0)  # nothing to fear: go fast

    def test_alert_storm_raises_kappa(self):
        # Channel 0 screams; the requirement forces the plan to protect.
        network, _, _, controller = build(
            lambda i: i == 0, Requirements(max_risk=0.05)
        )
        network.engine.run_until(12.5)
        plan = controller.current_plan
        assert plan is not None
        assert plan.kappa > 1.0
        assert plan.risk <= 0.05 + 1e-9
        # The controller's risk estimate for channel 0 climbed.
        last = controller.history[-1]
        assert last.risks[0] > 0.5
        assert last.risks[1] < 0.3

    def test_infeasible_requirements_recorded(self):
        network, node_a, _, controller = build(
            lambda i: True, Requirements(max_risk=0.0)
        )
        network.engine.run_until(3.5)
        assert all(not record.feasible for record in controller.history)
        assert controller.current_plan is None
        # Sampler untouched when no feasible plan exists.
        assert isinstance(node_a.sampler, DynamicParameterSampler)

    def test_loss_feedback_updates_estimates(self):
        network, node_a, node_b, controller = build(
            lambda i: False, Requirements(max_loss=0.05), losses=(0.3, 0.0, 0.0),
            seed=9,
        )
        engine = network.engine

        def offer():
            node_a.send(None)
            if engine.now < 20.0:
                engine.schedule(0.02, offer)

        engine.schedule_at(0.0, offer)
        engine.run_until(25.0)
        last = controller.history[-1]
        # The controller discovered channel 0's loss from link feedback.
        assert last.losses[0] > 0.1
        assert last.losses[1] < 0.05
        plan = controller.current_plan
        assert plan is not None
        assert plan.loss <= 0.05 + 1e-9

    def test_stop_cancels_reviews(self):
        network, _, _, controller = build(lambda i: False, Requirements())
        network.engine.run_until(2.5)
        controller.stop()
        count = len(controller.history)
        network.engine.run_until(10.0)
        assert len(controller.history) == count

    def test_partition_turns_reviews_infeasible_until_heal(self):
        """Regression: downed links neither serialize nor loss-drop, so
        the loss estimator used to keep its pre-outage estimates and the
        controller kept planning over dead channels.  An outage must be
        observed as total loss, make reviews infeasible, and decay back
        after the heal."""
        from repro.netsim.faults import FaultEvent, FaultPlan

        network, node_a, _, controller = build(
            lambda i: False, Requirements(max_loss=0.05), seed=6
        )
        engine = network.engine
        network.apply_faults(FaultPlan([
            FaultEvent(3.0, "partition", None),
            FaultEvent(8.0, "heal", None),
        ]))

        def offer():
            node_a.send(None)
            if engine.now < 24.0:
                engine.schedule(0.02, offer)

        engine.schedule_at(0.0, offer)
        engine.run_until(25.0)
        records = {round(r.time): r for r in controller.history}
        assert records[2].feasible
        # The outage is visible in the loss estimates and the plan search.
        assert not records[6].feasible
        assert all(loss > 0.5 for loss in records[6].losses)
        # The last feasible plan is held rather than replaced.
        assert controller.current_plan is not None
        # After the heal the EWMA decays and planning recovers.
        assert records[24].feasible
        assert all(loss < 0.05 for loss in records[24].losses)
