"""Links: serialisation rate, loss, delay, queueing and watchers."""

import numpy as np
import pytest

from repro.netsim.engine import Engine
from repro.netsim.link import DuplexChannel, Link
from repro.netsim.packet import Datagram


def make_link(engine, byte_rate=100.0, loss=0.0, delay=0.0, queue_limit=4, seed=0):
    return Link(
        engine,
        byte_rate=byte_rate,
        loss=loss,
        delay=delay,
        rng=np.random.default_rng(seed),
        queue_limit=queue_limit,
    )


class TestValidation:
    def test_bad_parameters(self):
        engine = Engine()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            Link(engine, byte_rate=0.0, loss=0.0, delay=0.0, rng=rng)
        with pytest.raises(ValueError):
            Link(engine, byte_rate=1.0, loss=1.0, delay=0.0, rng=rng)
        with pytest.raises(ValueError):
            Link(engine, byte_rate=1.0, loss=0.0, delay=-1.0, rng=rng)
        with pytest.raises(ValueError):
            Link(engine, byte_rate=1.0, loss=0.0, delay=0.0, rng=rng, queue_limit=0)

    def test_datagram_validation(self):
        with pytest.raises(ValueError):
            Datagram(size=0)
        with pytest.raises(ValueError):
            Datagram(size=2, payload=b"toolong")


class TestSerialisation:
    def test_delivery_time_is_size_over_rate_plus_delay(self):
        engine = Engine()
        link = make_link(engine, byte_rate=100.0, delay=2.0)
        arrivals = []
        link.set_receiver(lambda dg: arrivals.append(engine.now))
        link.send(Datagram(size=50))
        engine.run()
        assert arrivals == [pytest.approx(0.5 + 2.0)]

    def test_back_to_back_packets_serialise_sequentially(self):
        engine = Engine()
        link = make_link(engine, byte_rate=100.0)
        arrivals = []
        link.set_receiver(lambda dg: arrivals.append(engine.now))
        for _ in range(3):
            link.send(Datagram(size=100))
        engine.run()
        assert arrivals == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_throughput_matches_byte_rate(self):
        engine = Engine()
        link = make_link(engine, byte_rate=1000.0, queue_limit=10_000)
        delivered_bytes = []
        link.set_receiver(lambda dg: delivered_bytes.append(dg.size))
        for _ in range(100):
            link.send(Datagram(size=100))
        engine.run()
        assert sum(delivered_bytes) == 10_000
        assert engine.now == pytest.approx(10.0)  # 10k bytes at 1k B/unit

    def test_delivery_preserves_order(self):
        engine = Engine()
        link = make_link(engine, byte_rate=50.0, delay=1.0, queue_limit=100)
        seen = []
        link.set_receiver(lambda dg: seen.append(dg.meta["n"]))
        for n in range(10):
            link.send(Datagram(size=10, meta={"n": n}))
        engine.run()
        assert seen == list(range(10))


class TestQueueing:
    def test_tail_drop_when_full(self):
        engine = Engine()
        link = make_link(engine, queue_limit=2)
        results = [link.send(Datagram(size=10)) for _ in range(5)]
        # First is dequeued immediately for serialisation; two more queue;
        # the rest are dropped.
        assert results[:3] == [True, True, True]
        assert results[3:] == [False, False]
        assert link.stats.queue_drops == 2

    def test_writable_reflects_queue_headroom(self):
        engine = Engine()
        link = make_link(engine, queue_limit=1)
        assert link.writable()
        link.send(Datagram(size=10))  # starts serialising, queue empty
        assert link.writable()
        link.send(Datagram(size=10))  # now queued
        assert not link.writable()

    def test_writable_watcher_fires_on_transition(self):
        engine = Engine()
        link = make_link(engine, byte_rate=10.0, queue_limit=1)
        events = []
        link.watch_writable(lambda: events.append(engine.now))
        link.send(Datagram(size=10))
        link.send(Datagram(size=10))  # fills the queue
        engine.run()
        # Fires when the queued packet starts serialising (t = 1.0).
        assert events == [pytest.approx(1.0)]

    def test_no_watcher_fire_without_full_queue(self):
        engine = Engine()
        link = make_link(engine, queue_limit=4)
        events = []
        link.watch_writable(lambda: events.append(1))
        link.send(Datagram(size=10))
        engine.run()
        assert events == []


class TestLossAndTaps:
    def test_loss_rate_statistical(self):
        engine = Engine()
        link = make_link(engine, byte_rate=1e6, loss=0.3, queue_limit=100_000, seed=42)
        delivered = []
        link.set_receiver(lambda dg: delivered.append(1))
        n = 10_000
        for _ in range(n):
            link.send(Datagram(size=1))
        engine.run()
        assert len(delivered) / n == pytest.approx(0.7, abs=0.02)
        assert link.stats.loss_drops + link.stats.delivered == n

    def test_zero_loss_delivers_everything(self):
        engine = Engine()
        link = make_link(engine, queue_limit=1000)
        count = []
        link.set_receiver(lambda dg: count.append(1))
        for _ in range(50):
            link.send(Datagram(size=1))
        engine.run()
        assert len(count) == 50

    def test_transmit_tap_sees_lost_packets(self):
        """Observation happens at send time: taps fire before the loss draw."""
        engine = Engine()
        link = make_link(engine, byte_rate=1e6, loss=0.5, queue_limit=10_000, seed=1)
        tapped = []
        link.watch_transmit(lambda dg: tapped.append(1))
        delivered = []
        link.set_receiver(lambda dg: delivered.append(1))
        for _ in range(1000):
            link.send(Datagram(size=1))
        engine.run()
        assert len(tapped) == 1000
        assert len(delivered) < 700

    def test_stats_counters_consistent(self):
        engine = Engine()
        link = make_link(engine, byte_rate=100.0, loss=0.2, queue_limit=3, seed=5)
        link.set_receiver(lambda dg: None)
        for _ in range(20):
            link.send(Datagram(size=10))
        engine.run()
        s = link.stats
        assert s.offered == 20
        assert s.serialized == s.offered - s.queue_drops
        assert s.delivered == s.serialized - s.loss_drops


class TestUpDownStateMachine:
    def test_down_link_is_not_writable_and_rejects_sends(self):
        engine = Engine()
        link = make_link(engine)
        link.link_down()
        assert not link.up
        assert not link.writable()
        assert link.send(Datagram(size=10)) is False
        assert link.stats.offered == 1
        assert link.stats.down_drops == 1
        assert link.stats.queue_drops == 0

    def test_down_flushes_queue_and_cuts_inflight(self):
        engine = Engine()
        link = make_link(engine, byte_rate=10.0, delay=5.0, queue_limit=10)
        delivered = []
        link.set_receiver(lambda dg: delivered.append(dg))
        for _ in range(4):
            link.send(Datagram(size=10))
        # t=1: first packet serialised and on the wire (arrives t=6).
        engine.run_until(1.5)
        link.link_down()
        engine.run()
        assert delivered == []
        s = link.stats
        # One aborted mid-serialisation + two flushed from the queue…
        assert s.down_drops == 3
        # …and the one already on the wire never arrives.
        assert s.down_losses == 1
        assert s.serialized == 1
        assert s.delivered == 0

    def test_up_restores_delivery(self):
        engine = Engine()
        link = make_link(engine, byte_rate=100.0)
        delivered = []
        link.set_receiver(lambda dg: delivered.append(dg))
        link.link_down()
        engine.schedule_at(5.0, link.link_up)
        engine.schedule_at(6.0, lambda: link.send(Datagram(size=10)))
        engine.run()
        assert len(delivered) == 1
        assert link.stats.downs == 1 and link.stats.ups == 1

    def test_transitions_are_idempotent(self):
        engine = Engine()
        link = make_link(engine)
        notifications = []
        link.watch_writable(lambda: notifications.append(engine.now))
        link.link_down()
        link.link_down()
        assert link.stats.downs == 1
        link.link_up()
        link.link_up()
        assert link.stats.ups == 1
        assert notifications == [0.0]  # exactly one per down -> up transition

    def test_up_notification_fires_once_per_transition(self):
        engine = Engine()
        link = make_link(engine)
        notifications = []
        link.watch_writable(lambda: notifications.append(engine.now))
        for t in (1.0, 3.0, 5.0):
            engine.schedule_at(t, link.link_down)
            engine.schedule_at(t + 1.0, link.link_up)
        engine.run()
        assert notifications == [2.0, 4.0, 6.0]

    def test_packet_launched_before_flap_dies_even_if_link_is_up_again(self):
        engine = Engine()
        link = make_link(engine, byte_rate=100.0, delay=10.0)
        delivered = []
        link.set_receiver(lambda dg: delivered.append(dg))
        link.send(Datagram(size=10))  # on the wire at t=0.1, arrives t=10.1
        engine.schedule_at(2.0, link.link_down)
        engine.schedule_at(3.0, link.link_up)
        engine.run()
        assert delivered == []
        assert link.stats.down_losses == 1


class TestRuntimeSetters:
    def test_set_rate_applies_to_next_packet(self):
        engine = Engine()
        link = make_link(engine, byte_rate=10.0, queue_limit=10)
        arrivals = []
        link.set_receiver(lambda dg: arrivals.append(engine.now))
        link.send(Datagram(size=10))  # 1 unit at 10 B/unit
        link.send(Datagram(size=10))
        engine.schedule_at(0.5, link.set_rate, 100.0)  # mid-first-packet
        engine.run()
        # First packet keeps its old serialisation time; second uses the new rate.
        assert arrivals == [pytest.approx(1.0), pytest.approx(1.1)]

    def test_set_delay_applies_to_packets_not_yet_on_the_wire(self):
        engine = Engine()
        link = make_link(engine, byte_rate=10.0, delay=5.0, queue_limit=10)
        arrivals = []
        link.set_receiver(lambda dg: arrivals.append(engine.now))
        link.send(Datagram(size=10))
        link.send(Datagram(size=10))
        engine.schedule_at(1.5, link.set_delay, 0.0)  # after the first launched
        engine.run()
        assert arrivals == [pytest.approx(2.0), pytest.approx(6.0)]  # reordered!

    def test_set_loss_changes_the_drop_probability(self):
        engine = Engine()
        link = make_link(engine, byte_rate=1e6, queue_limit=100_000, seed=3)
        link.set_receiver(lambda dg: None)
        for _ in range(1000):
            link.send(Datagram(size=1))
        engine.run()
        assert link.stats.loss_drops == 0
        link.set_loss(0.5)
        for _ in range(1000):
            link.send(Datagram(size=1))
        engine.run()
        assert link.stats.loss_drops / 1000 == pytest.approx(0.5, abs=0.06)

    def test_setters_validate(self):
        engine = Engine()
        link = make_link(engine)
        with pytest.raises(ValueError):
            link.set_rate(0.0)
        with pytest.raises(ValueError):
            link.set_loss(1.0)
        with pytest.raises(ValueError):
            link.set_delay(-0.1)
        with pytest.raises(ValueError):
            link.set_jitter(-0.1)
        with pytest.raises(ValueError):
            link.set_corruption(1.5)


class TestConservationInvariants:
    @staticmethod
    def _assert_conserved(link, queued=0, inflight=0):
        s = link.stats
        assert s.offered == s.queue_drops + s.down_drops + s.serialized + queued, s.as_dict()
        assert s.serialized == s.loss_drops + s.down_losses + s.delivered + inflight, s.as_dict()

    def test_saturating_sender_tail_drop_accounting(self):
        engine = Engine()
        link = make_link(engine, byte_rate=10.0, queue_limit=3)
        link.set_receiver(lambda dg: None)
        # Offer 10 packets/unit against a 1 packet/unit wire for 20 units.
        for i in range(200):
            engine.schedule_at(i * 0.1, link.send, Datagram(size=10))
        engine.run()
        self._assert_conserved(link)
        # The wire drains 1 packet per unit time; everything else tail-drops.
        assert link.stats.queue_drops > 150
        assert link.stats.delivered == link.stats.serialized

    def test_conservation_through_loss_and_flaps(self):
        engine = Engine()
        link = make_link(engine, byte_rate=20.0, loss=0.3, delay=0.7, queue_limit=3, seed=9)
        link.set_receiver(lambda dg: None)
        for i in range(300):
            engine.schedule_at(i * 0.05, link.send, Datagram(size=10))
        for t in (2.0, 6.0, 11.0):
            engine.schedule_at(t, link.link_down)
            engine.schedule_at(t + 1.5, link.link_up)
        engine.run()
        self._assert_conserved(link)
        s = link.stats
        assert s.downs == 3 and s.ups == 3
        assert s.down_drops > 0
        assert s.loss_drops > 0
        assert s.delivered > 0

    def test_full_to_writable_edge_fires_exactly_once_per_transition(self):
        engine = Engine()
        link = make_link(engine, byte_rate=10.0, queue_limit=2)
        link.set_receiver(lambda dg: None)
        notified = []
        link.watch_writable(lambda: notified.append(engine.now))
        # A bursty saturating sender: five offers every 2 units, then idle.
        # Each burst fills the queue; the watcher must fire exactly when
        # the queue re-opens (full -> writable), once per transition.
        for burst in range(4):
            for _ in range(5):
                engine.schedule_at(burst * 2.0, link.send, Datagram(size=10))
        engine.run()
        assert notified == [pytest.approx(t) for t in (1.0, 2.0, 4.0, 6.0)]
        self._assert_conserved(link)


class TestDuplex:
    def test_directions_are_independent(self):
        engine = Engine()
        duplex = DuplexChannel(
            engine,
            byte_rate=100.0,
            loss=0.0,
            delay=0.5,
            forward_rng=np.random.default_rng(0),
            reverse_rng=np.random.default_rng(1),
            name="chan",
        )
        fwd, rev = [], []
        duplex.forward.set_receiver(lambda dg: fwd.append(engine.now))
        duplex.reverse.set_receiver(lambda dg: rev.append(engine.now))
        duplex.forward.send(Datagram(size=100))
        duplex.reverse.send(Datagram(size=50))
        engine.run()
        assert fwd == [pytest.approx(1.5)]
        assert rev == [pytest.approx(1.0)]

    def test_names(self):
        engine = Engine()
        duplex = DuplexChannel(
            engine, 1.0, 0.0, 0.0,
            np.random.default_rng(0), np.random.default_rng(1), name="x",
        )
        assert duplex.forward.name == "x:fwd"
        assert duplex.reverse.name == "x:rev"
