"""Tradeoff sweeps over the (κ, µ) plane."""


import numpy as np
import pytest

from repro.core.program import Objective
from repro.core.rate import optimal_rate
from repro.core.tradeoff import frontier_matrix, mu_grid, sweep_tradeoffs


class TestMuGrid:
    def test_paper_grid(self):
        grid = mu_grid(2.0, 5, step=0.1)
        assert grid[0] == 2.0
        assert grid[-1] == 5.0
        assert len(grid) == 31

    def test_kappa_equals_n(self):
        assert mu_grid(5.0, 5) == [5.0]

    def test_non_divisible_step_still_reaches_n(self):
        grid = mu_grid(1.0, 5, step=0.3)
        assert grid[-1] == 5.0


class TestSweep:
    def test_sweep_shape_and_monotonicity(self, five_channels):
        points = list(
            sweep_tradeoffs(
                five_channels,
                kappas=[2.0],
                step=1.0,
                at_max_rate=True,
                objectives=[Objective.LOSS],
            )
        )
        mus = [p.mu for p in points]
        assert mus == [2.0, 3.0, 4.0, 5.0]
        # Rate is decreasing in mu.
        rates = [p.rate for p in points]
        assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:]))
        # Loss column is filled, others None (not requested).
        assert all(p.loss is not None for p in points)
        assert all(p.privacy_risk is None for p in points)

    def test_rates_match_theorem4(self, five_channels):
        points = list(
            sweep_tradeoffs(
                five_channels, kappas=[1.0], step=0.5, objectives=[]
            )
        )
        for p in points:
            assert p.rate == pytest.approx(optimal_rate(five_channels, p.mu))

    def test_frontier_matrix(self, five_channels):
        points = list(
            sweep_tradeoffs(
                five_channels, kappas=[1.0], step=1.0, objectives=[Objective.PRIVACY]
            )
        )
        matrix = frontier_matrix(points, "privacy_risk")
        assert matrix.shape == (len(points), 3)
        assert not np.isnan(matrix[:, 2]).any()
        missing = frontier_matrix(points, "loss")
        assert np.isnan(missing[:, 2]).all()

    def test_privacy_improves_with_kappa(self, five_channels):
        """Higher κ at the same µ gives the adversary a harder job."""
        values = {}
        for kappa in (1.0, 2.0, 3.0):
            points = list(
                sweep_tradeoffs(
                    five_channels,
                    kappas=[kappa],
                    step=5.0,  # only mu = kappa and mu = 5 sampled
                    at_max_rate=False,
                    objectives=[Objective.PRIVACY],
                )
            )
            by_mu = {round(p.mu, 3): p.privacy_risk for p in points}
            if 5.0 in by_mu:
                values[kappa] = by_mu[5.0]
        ordered = [values[k] for k in sorted(values)]
        assert all(a >= b - 1e-9 for a, b in zip(ordered, ordered[1:]))
