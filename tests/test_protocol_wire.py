"""The share wire format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.wire import (
    HEADER_SIZE,
    WireFormatError,
    decode_share,
    encode_share,
)
from repro.sharing.base import Share


def make_share(index=2, data=b"payload", k=2, m=3):
    return Share(index=index, data=data, k=k, m=m)


class TestRoundtrip:
    def test_basic(self):
        share = make_share()
        packet = encode_share(77, share, "shamir-gf256")
        header, decoded = decode_share(packet)
        assert header.seq == 77
        assert header.index == 2
        assert header.k == 2
        assert header.m == 3
        assert header.scheme_name == "shamir-gf256"
        assert decoded.data == b"payload"

    def test_packet_size(self):
        share = make_share(data=b"x" * 100)
        assert len(encode_share(0, share, "shamir-gf256")) == HEADER_SIZE + 100

    def test_empty_payload(self):
        share = make_share(data=b"")
        header, decoded = decode_share(encode_share(1, share, "xor-perfect"))
        assert decoded.data == b""
        assert header.scheme_name == "xor-perfect"

    def test_large_seq(self):
        share = make_share()
        header, _ = decode_share(encode_share(2**63, share, "shamir-gf256"))
        assert header.seq == 2**63

    @given(
        seq=st.integers(min_value=0, max_value=2**64 - 1),
        index=st.integers(min_value=1, max_value=255),
        k=st.integers(min_value=1, max_value=255),
        extra=st.integers(min_value=0, max_value=5),
        data=st.binary(max_size=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, seq, index, k, extra, data):
        m = min(k + extra, 255)
        index = min(index, m)
        share = Share(index=index, data=data, k=k, m=m)
        header, decoded = decode_share(encode_share(seq, share, "shamir-gf256"))
        assert (header.seq, header.index, header.k, header.m) == (seq, index, k, m)
        assert decoded.data == data


class TestErrors:
    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            encode_share(0, make_share(), "rot13")

    def test_seq_out_of_range(self):
        with pytest.raises(ValueError):
            encode_share(2**64, make_share(), "shamir-gf256")
        with pytest.raises(ValueError):
            encode_share(-1, make_share(), "shamir-gf256")

    def test_truncated_packet(self):
        with pytest.raises(WireFormatError):
            decode_share(b"\x00" * (HEADER_SIZE - 1))

    def test_bad_magic(self):
        packet = bytearray(encode_share(0, make_share(), "shamir-gf256"))
        packet[0] ^= 0xFF
        with pytest.raises(WireFormatError):
            decode_share(bytes(packet))

    def test_bad_version(self):
        packet = bytearray(encode_share(0, make_share(), "shamir-gf256"))
        packet[2] = 99
        with pytest.raises(WireFormatError):
            decode_share(bytes(packet))

    def test_invalid_share_fields(self):
        # Zero k in the header is rejected at Share construction.
        packet = bytearray(encode_share(0, make_share(), "shamir-gf256"))
        packet[13] = 0  # k field
        with pytest.raises(WireFormatError):
            decode_share(bytes(packet))

    @given(noise=st.binary(min_size=0, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_fuzz_never_crashes(self, noise):
        try:
            decode_share(noise)
        except WireFormatError:
            pass  # the only acceptable failure mode

    def test_unknown_scheme_id_decodes_with_label(self):
        packet = bytearray(encode_share(0, make_share(), "shamir-gf256"))
        packet[3] = 200  # scheme id
        header, _ = decode_share(bytes(packet))
        assert "unknown" in header.scheme_name
