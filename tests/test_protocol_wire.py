"""The share wire format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.wire import (
    FLAG_FLOW,
    FLOW_HEADER_SIZE,
    HEADER_SIZE,
    MAX_FLOW,
    WireFormatError,
    decode_control,
    decode_share,
    encode_nack,
    encode_share,
    share_packet_size,
)
from repro.sharing.base import Share


def make_share(index=2, data=b"payload", k=2, m=3):
    return Share(index=index, data=data, k=k, m=m)


class TestRoundtrip:
    def test_basic(self):
        share = make_share()
        packet = encode_share(77, share, "shamir-gf256")
        header, decoded = decode_share(packet)
        assert header.seq == 77
        assert header.index == 2
        assert header.k == 2
        assert header.m == 3
        assert header.scheme_name == "shamir-gf256"
        assert decoded.data == b"payload"

    def test_packet_size(self):
        share = make_share(data=b"x" * 100)
        assert len(encode_share(0, share, "shamir-gf256")) == HEADER_SIZE + 100

    def test_empty_payload(self):
        share = make_share(data=b"")
        header, decoded = decode_share(encode_share(1, share, "xor-perfect"))
        assert decoded.data == b""
        assert header.scheme_name == "xor-perfect"

    def test_large_seq(self):
        share = make_share()
        header, _ = decode_share(encode_share(2**63, share, "shamir-gf256"))
        assert header.seq == 2**63

    @given(
        seq=st.integers(min_value=0, max_value=2**64 - 1),
        index=st.integers(min_value=1, max_value=255),
        k=st.integers(min_value=1, max_value=255),
        extra=st.integers(min_value=0, max_value=5),
        data=st.binary(max_size=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, seq, index, k, extra, data):
        m = min(k + extra, 255)
        index = min(index, m)
        share = Share(index=index, data=data, k=k, m=m)
        header, decoded = decode_share(encode_share(seq, share, "shamir-gf256"))
        assert (header.seq, header.index, header.k, header.m) == (seq, index, k, m)
        assert decoded.data == data


class TestErrors:
    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            encode_share(0, make_share(), "rot13")

    def test_seq_out_of_range(self):
        with pytest.raises(ValueError):
            encode_share(2**64, make_share(), "shamir-gf256")
        with pytest.raises(ValueError):
            encode_share(-1, make_share(), "shamir-gf256")

    def test_truncated_packet(self):
        with pytest.raises(WireFormatError):
            decode_share(b"\x00" * (HEADER_SIZE - 1))

    def test_bad_magic(self):
        packet = bytearray(encode_share(0, make_share(), "shamir-gf256"))
        packet[0] ^= 0xFF
        with pytest.raises(WireFormatError):
            decode_share(bytes(packet))

    def test_bad_version(self):
        packet = bytearray(encode_share(0, make_share(), "shamir-gf256"))
        packet[2] = 99
        with pytest.raises(WireFormatError):
            decode_share(bytes(packet))

    def test_invalid_share_fields(self):
        # Zero k in the header is rejected at Share construction.
        packet = bytearray(encode_share(0, make_share(), "shamir-gf256"))
        packet[13] = 0  # k field
        with pytest.raises(WireFormatError):
            decode_share(bytes(packet))

    @given(noise=st.binary(min_size=0, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_fuzz_never_crashes(self, noise):
        try:
            decode_share(noise)
        except WireFormatError:
            pass  # the only acceptable failure mode

    def test_unknown_scheme_id_decodes_with_label(self):
        packet = bytearray(encode_share(0, make_share(), "shamir-gf256"))
        packet[3] = 200  # scheme id
        header, _ = decode_share(bytes(packet))
        assert "unknown" in header.scheme_name


class TestFlows:
    """The version 2 flow extension (fleet multiplexing)."""

    def test_flow_zero_is_byte_identical_to_legacy_encoding(self):
        """Single-flow senders must keep emitting the exact version 1
        bytes -- captures, goldens and overhead accounting depend on it."""
        share = make_share()
        legacy = encode_share(9, share, "shamir-gf256")
        explicit = encode_share(9, share, "shamir-gf256", flow=0)
        assert explicit == legacy
        assert legacy[2] == 1  # version byte
        assert len(legacy) == HEADER_SIZE + len(share.data)

    def test_nonzero_flow_roundtrip(self):
        share = make_share(data=b"x" * 33)
        packet = encode_share(7, share, "shamir-gf256", flow=0xDEADBEEF)
        assert packet[2] == 2  # version byte
        assert packet[15] & FLAG_FLOW
        assert len(packet) == FLOW_HEADER_SIZE + 33
        assert len(packet) == share_packet_size(33, flow=0xDEADBEEF)
        header, decoded = decode_share(packet)
        assert header.flow == 0xDEADBEEF
        assert (header.seq, header.index, header.k, header.m) == (7, 2, 2, 3)
        assert decoded.data == share.data

    def test_v1_packets_decode_as_flow_zero(self):
        header, _ = decode_share(encode_share(1, make_share(), "shamir-gf256"))
        assert header.flow == 0

    def test_v2_without_flow_flag_means_flow_zero(self):
        packet = bytearray(encode_share(1, make_share(), "shamir-gf256"))
        packet[2] = 2  # bump version, flags stay 0
        header, decoded = decode_share(bytes(packet))
        assert header.flow == 0
        assert decoded.data == b"payload"

    def test_unknown_v2_flag_bits_are_ignored(self):
        packet = bytearray(encode_share(5, make_share(), "shamir-gf256", flow=42))
        packet[15] |= 0x80  # a future extension bit
        header, decoded = decode_share(bytes(packet))
        assert header.flow == 42
        assert decoded.data == b"payload"

    def test_flow_out_of_range(self):
        with pytest.raises(ValueError):
            encode_share(0, make_share(), "shamir-gf256", flow=MAX_FLOW + 1)
        with pytest.raises(ValueError):
            encode_share(0, make_share(), "shamir-gf256", flow=-1)

    def test_max_flow_roundtrip(self):
        header, _ = decode_share(
            encode_share(0, make_share(), "shamir-gf256", flow=MAX_FLOW)
        )
        assert header.flow == MAX_FLOW

    def test_truncated_flow_extension(self):
        packet = encode_share(0, make_share(data=b""), "shamir-gf256", flow=3)
        with pytest.raises(WireFormatError):
            decode_share(packet[:HEADER_SIZE + 2])

    def test_nack_with_flow_roundtrip(self):
        packet = encode_nack(31, 3, 5, have=[1, 4], flow=77)
        message = decode_control(packet)
        assert message.flow == 77
        assert (message.seq, message.k, message.m) == (31, 3, 5)
        assert message.have == (1, 4)

    def test_flow_zero_nack_is_byte_identical_to_legacy(self):
        legacy = encode_nack(31, 3, 5, have=[1, 4])
        explicit = encode_nack(31, 3, 5, have=[1, 4], flow=0)
        assert explicit == legacy
        assert legacy[2] == 1  # version byte
        assert decode_control(legacy).flow == 0

    def test_nack_flow_out_of_range(self):
        with pytest.raises(ValueError):
            encode_nack(0, 2, 3, have=[1], flow=MAX_FLOW + 1)
