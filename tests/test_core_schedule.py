"""Share schedules: validation, averages, properties, sampling."""

import numpy as np
import pytest

from repro.core.properties import subset_delay, subset_loss, subset_risk
from repro.core.schedule import ShareSchedule


class TestConstruction:
    def test_singleton(self, three_channels):
        s = ShareSchedule.singleton(three_channels, 2, [0, 1])
        assert s.probability(2, [0, 1]) == 1.0
        assert s.kappa == 2.0
        assert s.mu == 2.0

    def test_probabilities_must_sum_to_one(self, three_channels):
        with pytest.raises(ValueError):
            ShareSchedule(three_channels, {(1, frozenset({0})): 0.7})

    def test_negative_probability_rejected(self, three_channels):
        with pytest.raises(ValueError):
            ShareSchedule(
                three_channels,
                {(1, frozenset({0})): 1.5, (1, frozenset({1})): -0.5},
            )

    def test_tiny_negative_noise_tolerated(self, three_channels):
        s = ShareSchedule(
            three_channels,
            {(1, frozenset({0})): 1.0 + 1e-12, (1, frozenset({1})): -1e-12},
        )
        assert len(s) == 1

    def test_invalid_k_rejected(self, three_channels):
        with pytest.raises(ValueError):
            ShareSchedule(three_channels, {(3, frozenset({0, 1})): 1.0})

    def test_empty_subset_rejected(self, three_channels):
        with pytest.raises(ValueError):
            ShareSchedule(three_channels, {(1, frozenset()): 1.0})

    def test_zero_probability_pairs_dropped(self, three_channels):
        s = ShareSchedule(
            three_channels,
            {(1, frozenset({0})): 1.0, (2, frozenset({0, 1})): 0.0},
        )
        assert len(s) == 1

    def test_renormalisation_is_exact(self, three_channels):
        s = ShareSchedule(
            three_channels,
            {(1, frozenset({0})): 0.5 + 1e-9, (1, frozenset({1})): 0.5},
        )
        total = sum(p for _, p in s.support())
        assert total == pytest.approx(1.0, abs=1e-15)

    def test_from_arrays(self, three_channels):
        pairs = [(1, frozenset({0})), (2, frozenset({1, 2}))]
        s = ShareSchedule.from_arrays(three_channels, pairs, [0.25, 0.75])
        assert s.probability(2, {1, 2}) == pytest.approx(0.75)

    def test_equality(self, three_channels):
        a = ShareSchedule.singleton(three_channels, 1, [0])
        b = ShareSchedule(three_channels, {(1, frozenset({0})): 1.0})
        c = ShareSchedule.singleton(three_channels, 1, [1])
        assert a == b
        assert a != c


class TestAverages:
    def test_kappa_mu_mixture(self, three_channels):
        s = ShareSchedule(
            three_channels,
            {(1, frozenset({0})): 0.5, (3, frozenset({0, 1, 2})): 0.5},
        )
        assert s.kappa == pytest.approx(2.0)
        assert s.mu == pytest.approx(2.0)

    def test_properties_are_weighted_averages(self, five_channels):
        pairs = {
            (1, frozenset({0, 1})): 0.3,
            (2, frozenset({1, 2, 3})): 0.7,
        }
        s = ShareSchedule(five_channels, pairs)
        expected_z = 0.3 * subset_risk(five_channels, 1, {0, 1}) + 0.7 * subset_risk(
            five_channels, 2, {1, 2, 3}
        )
        expected_l = 0.3 * subset_loss(five_channels, 1, {0, 1}) + 0.7 * subset_loss(
            five_channels, 2, {1, 2, 3}
        )
        expected_d = 0.3 * subset_delay(five_channels, 1, {0, 1}) + 0.7 * subset_delay(
            five_channels, 2, {1, 2, 3}
        )
        assert s.privacy_risk() == pytest.approx(expected_z)
        assert s.loss() == pytest.approx(expected_l)
        assert s.delay() == pytest.approx(expected_d)


class TestRateQuantities:
    def test_channel_usage(self, three_channels):
        s = ShareSchedule(
            three_channels,
            {(1, frozenset({0})): 0.5, (2, frozenset({0, 2})): 0.5},
        )
        np.testing.assert_allclose(s.channel_usage(), [1.0, 0.0, 0.5])

    def test_max_symbol_rate_binding_channel(self, three_channels):
        # rates are (3, 4, 8); usage (1, 0, .5) -> bounds 3/1, 8/.5 -> 3.
        s = ShareSchedule(
            three_channels,
            {(1, frozenset({0})): 0.5, (2, frozenset({0, 2})): 0.5},
        )
        assert s.max_symbol_rate() == pytest.approx(3.0)

    def test_max_symbol_rate_full_set(self, three_channels):
        s = ShareSchedule.singleton(three_channels, 1, [0, 1, 2])
        # Every symbol uses all channels; slowest channel binds.
        assert s.max_symbol_rate() == pytest.approx(3.0)


class TestSampling:
    def test_sample_respects_distribution(self, three_channels, rng):
        s = ShareSchedule(
            three_channels,
            {(1, frozenset({0})): 0.25, (2, frozenset({1, 2})): 0.75},
        )
        draws = s.sample_many(rng, 8000)
        fraction = sum(1 for k, _ in draws if k == 2) / len(draws)
        assert fraction == pytest.approx(0.75, abs=0.02)

    def test_sample_single_atom(self, three_channels, rng):
        s = ShareSchedule.singleton(three_channels, 2, [0, 1])
        assert s.sample(rng) == (2, frozenset({0, 1}))

    def test_sampled_averages_converge(self, five_channels, rng):
        s = ShareSchedule(
            five_channels,
            {
                (1, frozenset({0})): 0.2,
                (2, frozenset({0, 1, 2})): 0.5,
                (4, frozenset({0, 1, 2, 3, 4})): 0.3,
            },
        )
        draws = s.sample_many(rng, 20000)
        mean_k = np.mean([k for k, _ in draws])
        mean_m = np.mean([len(m) for _, m in draws])
        assert mean_k == pytest.approx(s.kappa, abs=0.05)
        assert mean_m == pytest.approx(s.mu, abs=0.05)
