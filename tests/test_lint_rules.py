"""Per-rule positive and negative fixtures for the determinism linter.

Each rule gets code that must fire (positive) and near-miss code that
must not (negative), exercised through the real engine so dispatch,
alias resolution and scoping are covered on every case.
"""

import textwrap

from repro.lint import LintEngine

#: A path inside every rule's default scope (netsim is policed by all six).
SCOPED = "src/repro/netsim/fixture.py"


def findings_for(code, relpath=SCOPED):
    live, _suppressed = LintEngine().lint_source(relpath, textwrap.dedent(code))
    return live


def rules_hit(code, relpath=SCOPED):
    return sorted({finding.rule for finding in findings_for(code, relpath)})


class TestWallClock:
    def test_direct_module_call(self):
        assert rules_hit("import time\nt = time.time()\n") == ["wall-clock"]

    def test_from_import_and_alias(self):
        code = """
        from time import perf_counter as tick
        elapsed = tick()
        """
        assert rules_hit(code) == ["wall-clock"]

    def test_datetime_now(self):
        code = """
        from datetime import datetime
        stamp = datetime.now()
        """
        assert rules_hit(code) == ["wall-clock"]

    def test_simulated_clock_is_fine(self):
        code = """
        def advance(engine):
            return engine.now + 1.0
        """
        assert rules_hit(code) == []

    def test_time_sleep_is_not_a_clock_read(self):
        assert rules_hit("import time\ntime.sleep(0.1)\n") == []

    def test_benchmarks_are_out_of_scope(self):
        code = "import time\nt = time.time()\n"
        assert rules_hit(code, relpath="benchmarks/bench_x.py") == []

    def test_tests_are_in_scope(self):
        code = "import time\nt = time.time()\n"
        assert rules_hit(code, relpath="tests/test_x.py") == ["wall-clock"]

    def test_allowlisted_sweep_runner(self):
        code = "import time\nt = time.perf_counter()\n"
        assert rules_hit(code, relpath="src/repro/sweep/runner.py") == []


class TestUnseededRng:
    def test_global_random_module(self):
        assert rules_hit("import random\nx = random.random()\n") == ["unseeded-rng"]

    def test_numpy_legacy_seed_via_alias(self):
        code = """
        import numpy as np
        np.random.seed(42)
        """
        assert rules_hit(code) == ["unseeded-rng"]

    def test_numpy_legacy_rand(self):
        code = """
        import numpy
        values = numpy.random.rand(3)
        """
        assert rules_hit(code) == ["unseeded-rng"]

    def test_default_rng_is_fine(self):
        code = """
        import numpy as np
        rng = np.random.default_rng(7)
        values = rng.integers(0, 10, 3)
        """
        assert rules_hit(code) == []

    def test_explicit_random_instance_is_fine(self):
        code = """
        import random
        rng = random.Random(7)
        x = rng.random()
        """
        assert rules_hit(code) == []

    def test_seed_sequence_is_fine(self):
        code = """
        import numpy as np
        seq = np.random.SeedSequence(1)
        """
        assert rules_hit(code) == []

    def test_method_named_random_on_other_object_is_fine(self):
        assert rules_hit("x = rng.random()\n") == []


class TestUnorderedIteration:
    def test_for_over_set_literal(self):
        code = """
        for item in {1, 2, 3}:
            print(item)
        """
        assert rules_hit(code) == ["unordered-iteration"]

    def test_for_over_set_call(self):
        code = """
        for item in set(values):
            print(item)
        """
        assert rules_hit(code) == ["unordered-iteration"]

    def test_comprehension_over_listdir(self):
        code = """
        import os
        names = [n for n in os.listdir(".")]
        """
        assert rules_hit(code) == ["unordered-iteration"]

    def test_set_algebra(self):
        code = """
        for item in seen | {1, 2}:
            print(item)
        """
        assert rules_hit(code) == ["unordered-iteration"]

    def test_sorted_wrapping_is_fine(self):
        code = """
        import os
        for item in sorted(set(values)):
            print(item)
        for name in sorted(os.listdir(".")):
            print(name)
        """
        assert rules_hit(code) == []

    def test_out_of_scope_package(self):
        code = """
        for item in {1, 2, 3}:
            print(item)
        """
        assert rules_hit(code, relpath="src/repro/core/fixture.py") == []

    def test_set_constructor_argument_is_fine(self):
        # Building a set from an iterable is fine; only *iterating* one is not.
        assert rules_hit("unique = set(x + 1 for x in values)\n") == []


class TestEnvRead:
    def test_environ_get(self):
        code = """
        import os
        value = os.environ.get("HOME")
        """
        assert rules_hit(code) == ["env-read"]

    def test_environ_subscript_fires_once(self):
        code = """
        import os
        value = os.environ["HOME"]
        """
        findings = findings_for(code)
        assert [f.rule for f in findings] == ["env-read"]

    def test_getenv(self):
        assert rules_hit("import os\nv = os.getenv('HOME')\n") == ["env-read"]

    def test_from_import_alias(self):
        code = """
        from os import environ
        value = environ.get("HOME")
        """
        assert rules_hit(code) == ["env-read"]

    def test_unimported_local_named_environ_is_fine(self):
        assert rules_hit("environ = {}\nv = environ.get('x')\n") == []

    def test_tests_are_out_of_scope(self):
        code = "import os\nv = os.environ.get('HOME')\n"
        assert rules_hit(code, relpath="tests/test_x.py") == []


class TestMutableDefault:
    def test_list_literal_default(self):
        code = """
        def f(items=[]):
            return items
        """
        assert rules_hit(code) == ["mutable-default"]

    def test_dict_constructor_default(self):
        code = """
        def f(options=dict()):
            return options
        """
        assert rules_hit(code) == ["mutable-default"]

    def test_keyword_only_default(self):
        code = """
        def f(*, registry={}):
            return registry
        """
        assert rules_hit(code) == ["mutable-default"]

    def test_collections_factory_default(self):
        code = """
        import collections
        def f(counts=collections.Counter()):
            return counts
        """
        assert rules_hit(code) == ["mutable-default"]

    def test_none_default_is_fine(self):
        code = """
        def f(items=None):
            return items or []
        """
        assert rules_hit(code) == []

    def test_immutable_defaults_are_fine(self):
        code = """
        def f(shape=(3, 4), name="x", scale=1.5):
            return shape, name, scale
        """
        assert rules_hit(code) == []


class TestFloatEq:
    def test_equality_with_float_literal(self):
        code = """
        def f(x):
            return x == 0.5
        """
        assert rules_hit(code) == ["float-eq"]

    def test_inequality_with_float_literal(self):
        code = """
        def f(x):
            return x != 1.0
        """
        assert rules_hit(code) == ["float-eq"]

    def test_literal_on_left(self):
        code = """
        def f(x):
            return 0.0 == x
        """
        assert rules_hit(code) == ["float-eq"]

    def test_ordering_comparisons_are_fine(self):
        code = """
        def f(x):
            return x <= 0.0 or x >= 1.0
        """
        assert rules_hit(code) == []

    def test_integer_equality_is_fine(self):
        code = """
        def f(x):
            return x == 0
        """
        assert rules_hit(code) == []

    def test_properties_allowlist(self):
        code = """
        def f(x):
            return x == 0.0
        """
        assert rules_hit(code, relpath="src/repro/core/properties.py") == []

    def test_chained_comparison_flags_each_float_op(self):
        code = """
        def f(x, y):
            return x == 0.5 != y
        """
        findings = findings_for(code)
        assert [f.rule for f in findings] == ["float-eq", "float-eq"]
