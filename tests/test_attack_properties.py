"""The under-attack acceptance properties.

The centerpiece of the active-adversary engine: under **every** canonical
attack scenario the protocol must either recover (robust reconstruction
corrects what the radius allows) or degrade *detectably* -- lost symbols
are counted as evictions/reconstruction errors, replays are counted as
drops -- and it must **never** deliver a silently wrong payload.  On top
of that the κ-floor acceptance property: the sender never samples a
schedule below floor(κ), and with the resilience layer armed the floor
either holds through the attack or admission pauses (also detectable).

Every run here is the seeded harness (see
:mod:`repro.adversary.active.harness`): zero benign loss, so any
shortfall is attack-attributable.
"""

import json

import pytest

from repro.adversary.active import canonical_attack, run_under_attack
from repro.adversary.active.scenarios import CANONICAL_ATTACKS

SCENARIOS = sorted(CANONICAL_ATTACKS)

START, STOP = 4.0, 24.0
DURATION = 20.0


@pytest.fixture(scope="module")
def rows():
    """One harness run per canonical scenario (shared across properties)."""
    return {
        name: run_under_attack(
            canonical_attack(name, START, STOP), duration=DURATION, seed=7
        )
        for name in SCENARIOS
    }


@pytest.mark.parametrize("scenario", SCENARIOS)
class TestPerScenario:
    def test_p1_no_silent_corruption_and_liveness(self, rows, scenario):
        """P1: every delivery is byte-identical to the offered payload, and
        the attack never silences the protocol completely."""
        row = rows[scenario]
        assert row["wrong_payloads"] == 0
        assert row["delivered"] > 0

    def test_p2_every_loss_is_accounted(self, rows, scenario):
        """P2: degradation is visible -- transmitted symbols are delivered,
        evicted or counted as reconstruction failures, never vanish."""
        row = rows[scenario]
        receiver = row["receiver"]
        accounted = (
            row["delivered"]
            + receiver["evicted_symbols"]
            + receiver["reconstruction_errors"]
        )
        assert accounted >= row["transmitted"]

    def test_p3_kappa_floor_never_undercut(self, rows, scenario):
        """P3: the sender never samples a (k, m) with k below floor(κ) --
        attacks may slow the protocol down but cannot talk it into a
        weaker privacy threshold."""
        row = rows[scenario]
        assert row["kappa_floor_held"]
        assert row["min_k_sampled"] is not None and row["min_k_sampled"] >= row["kappa_floor"]

    def test_p4_same_seed_replay_is_byte_identical(self, rows, scenario):
        """P4: the full JSON row -- digest included -- replays
        byte-identically under the same seed."""
        row = rows[scenario]
        replay = run_under_attack(
            canonical_attack(scenario, START, STOP), duration=DURATION, seed=7
        )
        assert json.dumps(replay, sort_keys=True) == json.dumps(row, sort_keys=True)

    def test_attack_actually_ran(self, rows, scenario):
        """Sanity: the scenario applied events and touched the wire."""
        row = rows[scenario]
        assert row["attack"]["applied"] >= 2
        stats = row["attack"]["stats"]
        assert any(
            stats[field] > 0
            for field in (
                "shares_corrupted", "shares_forged", "packets_replayed",
                "adaptive_jams", "targeted_corruptions",
            )
        )


class TestRobustRecoveryAtTheBound:
    def test_p5_single_channel_storm_within_radius_fully_recovers(self):
        """P5: with e=1 tolerance and a 100% rewrite storm confined to one
        channel, every corruption stays inside the unique-decoding radius:
        zero reconstruction errors, zero wrong payloads, corruption both
        detected and attributed to the attacked channel."""
        plan = canonical_attack(
            "corruption_storm", START, STOP, channel=0, rate=1.0, mode="rewrite"
        )
        row = run_under_attack(plan, kappa=2.0, mu=5.0, tolerance=1,
                               duration=DURATION, seed=7)
        assert row["wrong_payloads"] == 0
        assert row["receiver"]["reconstruction_errors"] == 0
        assert row["receiver"]["corrupt_shares_detected"] > 0
        assert set(row["corrupt_by_channel"]) <= {"0"}
        assert row["delivery_ratio"] == 1.0

    def test_p5_overwhelmed_radius_degrades_detectably(self):
        """Past the radius (width > e targeted rewrites of one symbol) the
        decode *fails* -- counted, never silently wrong."""
        plan = canonical_attack("targeted_corruption", START, STOP, period=2, width=3)
        row = run_under_attack(plan, duration=DURATION, seed=7)
        assert row["wrong_payloads"] == 0
        assert row["receiver"]["reconstruction_errors"] > 0
        assert row["delivery_ratio"] < 1.0


class TestKappaFloorUnderPartition:
    def test_p3_resilience_holds_floor_or_pauses_admission(self):
        """P3 (resilience form): with quarantine/failover armed, the
        adaptive partition ends with the κ floor held -- or admission
        paused, which the sender counts.  Either way: detectable."""
        plan = canonical_attack("targeted_partition", START, STOP)
        row = run_under_attack(plan, duration=DURATION, seed=7, resilience=True)
        assert row["wrong_payloads"] == 0
        assert row["kappa_floor_held"] or row["admission_paused_drops"] > 0
        assert row["resilience"] is not None
