"""Setups, unit conversions, and the iperf/echo workload tools."""

import numpy as np
import pytest

from repro.core.rate import optimal_rate
from repro.protocol.config import ProtocolConfig
from repro.workloads.echo import run_echo
from repro.workloads.iperf import run_iperf
from repro.workloads.setups import (
    MS_PER_UNIT,
    SYMBOL_SIZE,
    delay_to_ms,
    delayed_setup,
    diverse_setup,
    identical_setup,
    lossy_setup,
    mbps_to_rate,
    ms_to_delay,
    rate_to_mbps,
)


class TestUnits:
    def test_mbps_rate_identity(self):
        # With 1250-byte symbols and 10 ms units, X Mbps = X symbols/unit.
        assert mbps_to_rate(100.0) == pytest.approx(100.0)
        assert rate_to_mbps(100.0) == pytest.approx(100.0)

    def test_roundtrip(self):
        for mbps in (5.0, 62.5, 800.0):
            assert rate_to_mbps(mbps_to_rate(mbps)) == pytest.approx(mbps)

    def test_delay_conversion(self):
        assert ms_to_delay(MS_PER_UNIT) == pytest.approx(1.0)
        assert delay_to_ms(ms_to_delay(12.5)) == pytest.approx(12.5)

    def test_symbol_is_ten_kilobits(self):
        assert SYMBOL_SIZE * 8 == 10_000


class TestSetups:
    def test_identical(self):
        channels = identical_setup(100.0)
        assert channels.n == 5
        np.testing.assert_allclose(channels.rates, [100.0] * 5)
        np.testing.assert_allclose(channels.losses, [0.0] * 5)

    def test_identical_custom(self):
        channels = identical_setup(250.0, n=3)
        assert channels.n == 3
        assert channels.total_rate == pytest.approx(750.0)

    def test_identical_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            identical_setup(0.0)

    def test_diverse_rates(self):
        channels = diverse_setup()
        np.testing.assert_allclose(channels.rates, [5, 20, 60, 65, 100])

    def test_lossy_percentages(self):
        channels = lossy_setup()
        np.testing.assert_allclose(channels.losses, [0.01, 0.005, 0.01, 0.02, 0.03])

    def test_delayed_milliseconds(self):
        channels = delayed_setup()
        np.testing.assert_allclose(
            channels.delays, [0.25, 0.025, 1.25, 0.5, 0.05]
        )

    def test_risk_override(self):
        channels = diverse_setup(risks=[0.1, 0.2, 0.3, 0.4, 0.5])
        np.testing.assert_allclose(channels.risks, [0.1, 0.2, 0.3, 0.4, 0.5])


class TestIperf:
    def test_rate_within_header_overhead_of_optimal(self):
        channels = identical_setup(100.0)
        config = ProtocolConfig(kappa=1.0, mu=1.0, share_synthetic=True)
        result = run_iperf(channels, config, offered_rate=800.0, duration=10.0, warmup=2.0)
        optimum = optimal_rate(channels, 1.0)
        assert 0.95 * optimum < result.achieved_rate <= optimum
        assert result.achieved_mbps == pytest.approx(rate_to_mbps(result.achieved_rate))

    def test_below_capacity_no_loss(self):
        channels = identical_setup(100.0)
        config = ProtocolConfig(kappa=2.0, mu=2.0, share_synthetic=True)
        result = run_iperf(channels, config, offered_rate=100.0, duration=10.0, warmup=2.0)
        assert result.achieved_rate == pytest.approx(100.0, rel=0.03)
        # Up to one symbol of window-edge skew is tolerated.
        assert result.loss_fraction <= 1.0 / result.symbols_transmitted + 1e-12
        assert result.source_drops == 0

    def test_lossy_channels_produce_loss(self):
        from repro.workloads.iperf import practical_max_rate

        channels = lossy_setup()
        config = ProtocolConfig(kappa=1.0, mu=1.0, share_synthetic=True)
        result = run_iperf(
            channels, config,
            offered_rate=practical_max_rate(channels, 1.0, config.symbol_size),
            duration=20.0, warmup=5.0,
        )
        # kappa = mu = 1: symbol loss is the usage-weighted channel loss.
        usage = channels.rates / channels.total_rate
        expected = float((usage * channels.losses).sum())
        assert result.loss_fraction == pytest.approx(expected, abs=0.01)

    def test_redundancy_eliminates_loss(self):
        channels = lossy_setup()
        config = ProtocolConfig(kappa=1.0, mu=5.0, share_synthetic=True)
        result = run_iperf(
            channels, config, offered_rate=optimal_rate(channels, 5.0),
            duration=20.0, warmup=2.0,
        )
        # l(1, C) = prod l_i ~ 3e-9: effectively zero.
        assert result.loss_fraction < 0.01

    def test_real_payload_mode(self):
        channels = identical_setup(50.0)
        config = ProtocolConfig(kappa=2.0, mu=3.0)
        result = run_iperf(channels, config, offered_rate=30.0, duration=5.0, warmup=1.0)
        assert result.symbols_delivered > 0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            run_iperf(identical_setup(10.0), ProtocolConfig(), offered_rate=0.0)

    def test_auth_mode_delivers_and_counts_tags(self):
        channels = identical_setup(50.0)
        config = ProtocolConfig(kappa=2.0, mu=3.0)
        result = run_iperf(
            channels, config, offered_rate=30.0, duration=5.0, warmup=1.0, auth=True
        )
        assert result.symbols_delivered > 0
        assert result.sender_stats["auth_tagged_shares"] > 0
        assert result.receiver_stats["auth_verified_shares"] > 0
        assert result.receiver_stats["auth_failed_shares"] == 0  # no adversary

    def test_auth_accepts_explicit_root_key(self):
        channels = identical_setup(50.0)
        config = ProtocolConfig(kappa=2.0, mu=3.0)
        result = run_iperf(
            channels, config, offered_rate=30.0, duration=5.0, warmup=1.0,
            auth=b"an out-of-band 16B+",
        )
        assert result.symbols_delivered > 0
        assert result.receiver_stats["auth_verified_shares"] > 0

    def test_auth_rejects_synthetic_shares(self):
        config = ProtocolConfig(kappa=2.0, mu=3.0, share_synthetic=True)
        with pytest.raises(ValueError):
            run_iperf(
                identical_setup(10.0), config, offered_rate=5.0, duration=2.0,
                auth=True,
            )

    def test_deterministic_given_seed(self):
        channels = lossy_setup()
        config = ProtocolConfig(kappa=2.0, mu=3.0, share_synthetic=True)
        a = run_iperf(channels, config, offered_rate=50.0, duration=5.0, warmup=1.0, seed=9)
        b = run_iperf(channels, config, offered_rate=50.0, duration=5.0, warmup=1.0, seed=9)
        assert a.achieved_rate == b.achieved_rate
        assert a.loss_fraction == b.loss_fraction


class TestEcho:
    def test_lossless_low_rate_delay_matches_model(self):
        channels = delayed_setup()
        config = ProtocolConfig(kappa=1.0, mu=5.0)
        # Far below capacity: queueing is negligible, so the one-way delay
        # approaches the model's D(p) for the broadcast schedule, plus
        # serialisation time.
        result = run_echo(channels, config, offered_rate=1.0, duration=20.0, warmup=2.0)
        from repro.core.optimal import min_delay

        model_delay = min_delay(channels)[0]
        assert result.mean_delay >= model_delay
        assert result.mean_delay == pytest.approx(model_delay, abs=0.5)

    def test_rejects_synthetic(self):
        config = ProtocolConfig(share_synthetic=True)
        with pytest.raises(ValueError):
            run_echo(identical_setup(10.0), config, offered_rate=1.0)

    def test_higher_kappa_increases_delay(self):
        channels = delayed_setup()
        delays = {}
        for kappa in (1.0, 5.0):
            config = ProtocolConfig(kappa=kappa, mu=5.0)
            result = run_echo(channels, config, offered_rate=1.0, duration=15.0, warmup=2.0)
            delays[kappa] = result.mean_delay
        # kappa=5 waits for the slowest share (12.5 ms channel).
        assert delays[5.0] > delays[1.0]
