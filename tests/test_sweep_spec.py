"""SweepSpec/SweepPoint semantics: enumeration, identity, seed derivation."""

import os
import pickle
import subprocess
import sys

import pytest

import repro
from repro.sweep import SweepPoint, SweepSpec, canonical_json, derive_seed

#: The src/ directory, for subprocess PYTHONPATH regardless of test cwd.
SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class TestCanonicalJson:
    def test_key_order_is_canonical(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_floats_round_trip_stably(self):
        assert canonical_json({"mu": 0.1 + 0.2}) == '{"mu":0.30000000000000004}'

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestSweepSpec:
    def test_cartesian_enumeration_last_axis_fastest(self):
        spec = SweepSpec("s", axes={"a": [1, 2], "b": [10, 20]})
        combos = [(p.params["a"], p.params["b"]) for p in spec]
        assert combos == [(1, 10), (1, 20), (2, 10), (2, 20)]
        assert [p.index for p in spec] == [0, 1, 2, 3]
        assert len(spec) == 4

    def test_base_merged_into_every_point(self):
        spec = SweepSpec("s", axes={"a": [1]}, base={"duration": 5.0})
        assert spec.points()[0].params == {"duration": 5.0, "a": 1}

    def test_explicit_grid_for_coupled_axes(self):
        grid = [{"kappa": 1.0, "mu": 1.0}, {"kappa": 2.0, "mu": 3.5}]
        spec = SweepSpec("s", grid=grid, base={"seed": 1})
        assert len(spec) == 2
        assert spec.points()[1].params == {"seed": 1, "kappa": 2.0, "mu": 3.5}

    def test_grid_and_axes_are_exclusive(self):
        with pytest.raises(ValueError):
            SweepSpec("s", axes={"a": [1]}, grid=[{"b": 2}])

    def test_axis_may_not_shadow_base(self):
        with pytest.raises(ValueError):
            SweepSpec("s", axes={"a": [1]}, base={"a": 2})
        with pytest.raises(ValueError):
            SweepSpec("s", grid=[{"a": 1}], base={"a": 2})

    def test_shadow_error_text_is_sorted(self):
        # The shadowed names are collected into a set; the message must
        # sort them so the error text is byte-identical across runs
        # regardless of hash seed (PYTHONHASHSEED) or insertion order.
        with pytest.raises(ValueError, match=r"\['alpha', 'beta', 'gamma'\]"):
            SweepSpec(
                "s",
                grid=[{"gamma": 1, "alpha": 2}, {"beta": 3}],
                base={"beta": 0, "gamma": 0, "alpha": 0, "keep": 1},
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec("s", axes={"a": []})

    def test_points_are_picklable(self):
        point = SweepSpec("s", axes={"a": [1]}, base={"b": 2.5}).points()[0]
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point
        assert clone.seed == point.seed


class TestSeedDerivation:
    def test_seed_depends_on_identity_not_index(self):
        a = SweepPoint("s", 0, {"kappa": 1.0})
        b = SweepPoint("s", 7, {"kappa": 1.0})
        assert a.seed == b.seed

    def test_distinct_params_distinct_seeds(self):
        # The ad-hoc arithmetic this replaces collided e.g. (kappa+1, mu)
        # with (kappa, mu+100): hash-derived seeds keep all points distinct.
        spec = SweepSpec(
            "fig", grid=[{"kappa": k, "mu": m} for k in (1.0, 2.0, 3.0)
                         for m in (1.0, 1.1, 2.0, 101.0)]
        )
        seeds = [p.seed for p in spec]
        assert len(set(seeds)) == len(seeds)

    def test_spec_id_separates_seed_streams(self):
        assert derive_seed("fig3", {"a": 1}) != derive_seed("fig4", {"a": 1})

    def test_seed_stable_across_processes(self):
        params = {"kappa": 2.0, "mu": 3.3, "seed": 42}
        expected = derive_seed("fig3/identical", params)
        script = (
            "from repro.sweep import derive_seed; "
            f"print(derive_seed('fig3/identical', {params!r}))"
        )
        for hashseed in ("0", "12345"):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": SRC_DIR, "PYTHONHASHSEED": hashseed},
                check=True,
            )
            assert int(out.stdout.strip()) == expected

    def test_seed_fits_numpy_default_rng(self):
        import numpy as np

        np.random.default_rng(SweepPoint("s", 0, {"x": 1}).seed)
