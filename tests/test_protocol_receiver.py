"""The reassembly buffer: completion, eviction, late shares, memory bound."""

import numpy as np
import pytest

from repro.netsim.engine import Engine
from repro.netsim.host import CpuModel
from repro.netsim.packet import Datagram
from repro.protocol.receiver import ReassemblyBuffer
from repro.protocol.wire import encode_share
from repro.sharing.shamir import ShamirScheme

scheme = ShamirScheme()


def make_buffer(engine, deliveries, timeout=5.0, limit=16, synthetic=False, cpu=None):
    return ReassemblyBuffer(
        engine,
        scheme,
        timeout=timeout,
        limit=limit,
        on_deliver=lambda seq, payload, delay: deliveries.append((seq, payload, delay)),
        synthetic=synthetic,
        cpu=cpu,
    )


def share_datagrams(seq, secret, k, m, seed=0, sent_at=0.0):
    rng = np.random.default_rng(seed)
    packets = []
    for share in scheme.split(secret, k, m, rng):
        packet = encode_share(seq, share, scheme.name)
        packets.append(
            Datagram(size=len(packet), payload=packet, meta={"symbol_sent_at": sent_at})
        )
    return packets


class TestCompletion:
    def test_delivers_at_k_shares(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries)
        datagrams = share_datagrams(1, b"hello", 2, 4)
        buf.handle_datagram(datagrams[0])
        assert deliveries == []
        buf.handle_datagram(datagrams[1])
        assert deliveries[0][0] == 1
        assert deliveries[0][1] == b"hello"

    def test_delay_measured_from_symbol_send(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries)
        datagrams = share_datagrams(1, b"hi", 1, 1, sent_at=0.0)
        engine.schedule_at(2.5, buf.handle_datagram, datagrams[0])
        engine.run()
        assert deliveries[0][2] == pytest.approx(2.5)

    def test_late_share_counted_and_ignored(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries)
        datagrams = share_datagrams(1, b"abc", 2, 3)
        for dg in datagrams:
            buf.handle_datagram(dg)
        assert len(deliveries) == 1
        assert buf.stats.late_shares == 1

    def test_duplicate_share_ignored(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries)
        datagrams = share_datagrams(1, b"abc", 2, 3)
        buf.handle_datagram(datagrams[0])
        buf.handle_datagram(datagrams[0])
        assert buf.stats.duplicate_shares == 1
        assert deliveries == []

    def test_interleaved_symbols(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries)
        a = share_datagrams(1, b"symbol-a", 2, 2, seed=1)
        b = share_datagrams(2, b"symbol-b", 2, 2, seed=2)
        buf.handle_datagram(a[0])
        buf.handle_datagram(b[0])
        buf.handle_datagram(b[1])
        buf.handle_datagram(a[1])
        assert [d[0] for d in deliveries] == [2, 1]
        assert [d[1] for d in deliveries] == [b"symbol-b", b"symbol-a"]

    def test_decode_error_counted(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries)
        buf.handle_datagram(Datagram(size=10, payload=b"garbage!!!"))
        assert buf.stats.decode_errors == 1


class TestEviction:
    def test_timeout_evicts_incomplete(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries, timeout=2.0)
        datagrams = share_datagrams(1, b"gone", 2, 3)
        buf.handle_datagram(datagrams[0])
        engine.run_until(3.0)
        assert buf.pending == 0
        assert buf.stats.evicted_symbols == 1
        # A share arriving after eviction re-opens an entry (it cannot be
        # distinguished from a new symbol), so it is not counted late.
        buf.handle_datagram(datagrams[1])
        assert buf.pending == 1

    def test_completion_cancels_eviction(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries, timeout=2.0)
        for dg in share_datagrams(1, b"done", 2, 2):
            buf.handle_datagram(dg)
        engine.run_until(5.0)
        assert buf.stats.evicted_symbols == 0
        assert len(deliveries) == 1

    def test_memory_bound_evicts_oldest(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries, limit=2)
        for seq in (1, 2, 3):
            buf.handle_datagram(share_datagrams(seq, b"x", 2, 2, seed=seq)[0])
        assert buf.pending == 2
        assert buf.stats.evicted_symbols == 1
        # Symbol 1 (the oldest) was evicted; completing 2 and 3 works.
        buf.handle_datagram(share_datagrams(2, b"x", 2, 2, seed=2)[1])
        buf.handle_datagram(share_datagrams(3, b"x", 2, 2, seed=3)[1])
        assert [d[0] for d in deliveries] == [2, 3]

    def test_capacity_eviction_remembers_closed_seq(self):
        """Regression: a capacity eviction is a deliberate close, so a
        straggler for the evicted symbol must count as late instead of
        re-opening an entry that can never complete (which would evict
        yet another live symbol at the memory bound)."""
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries, limit=2)
        datagrams = {
            seq: share_datagrams(seq, b"x", 2, 3, seed=seq) for seq in (1, 2, 3)
        }
        for seq in (1, 2, 3):
            buf.handle_datagram(datagrams[seq][0])
        assert buf.stats.evicted_symbols == 1  # seq 1 fell off the front
        late_before = buf.stats.late_shares
        buf.handle_datagram(datagrams[1][1])
        assert buf.stats.late_shares == late_before + 1
        assert buf.pending == 2  # no fresh entry, nothing else evicted
        assert buf.stats.evicted_symbols == 1
        # The live symbols still complete normally.
        buf.handle_datagram(datagrams[2][1])
        buf.handle_datagram(datagrams[3][1])
        assert [d[0] for d in deliveries] == [2, 3]

    def test_repair_policy_extends_timeout_once(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries, timeout=2.0)
        grants = []

        def policy(entry):
            if entry.repair_rounds >= 1:
                return None  # budget spent: let the eviction proceed
            entry.repair_rounds += 1
            grants.append(entry.seq)
            return 1.5

        buf.repair_policy = policy
        datagrams = share_datagrams(1, b"fixed", 2, 3)
        buf.handle_datagram(datagrams[0])
        engine.run_until(2.5)  # past the base timeout, inside the extension
        assert grants == [1]
        assert buf.stats.repair_extensions == 1
        assert buf.stats.evicted_symbols == 0
        assert buf.pending == 1
        engine.schedule_at(3.0, buf.handle_datagram, datagrams[1])
        engine.run_until(10.0)
        assert [d[0] for d in deliveries] == [1]
        assert buf.stats.repair_recovered == 1

    def test_repair_policy_exhausted_evicts(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries, timeout=2.0)
        buf.repair_policy = lambda entry: None
        buf.handle_datagram(share_datagrams(1, b"gone", 2, 3)[0])
        engine.run_until(3.0)
        assert buf.stats.repair_extensions == 0
        assert buf.stats.evicted_symbols == 1
        assert buf.pending == 0


class TestSyntheticMode:
    def test_counts_headers_without_payload(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries, synthetic=True)
        for index in (1, 2):
            buf.handle_datagram(
                Datagram(size=100, meta={"seq": 9, "index": index, "k": 2, "m": 3,
                                         "symbol_sent_at": 0.0})
            )
        assert deliveries[0][0] == 9
        assert deliveries[0][1] is None


class TestCpuIntegration:
    def test_finite_cpu_delays_delivery(self):
        engine = Engine()
        deliveries = []
        cpu = CpuModel(engine, capacity=1.0)
        buf = make_buffer(engine, deliveries, cpu=cpu)
        buf.share_cost = 1.0
        buf.reconstruct_cost_per_k = 1.0
        for dg in share_datagrams(1, b"slow", 1, 1):
            buf.handle_datagram(dg)
        assert deliveries == []  # CPU still working
        engine.run()
        # 1 unit share processing + 1 unit reconstruction.
        assert len(deliveries) == 1
        assert engine.now == pytest.approx(2.0)

    def test_saturated_cpu_rejects_shares(self):
        engine = Engine()
        deliveries = []
        cpu = CpuModel(engine, capacity=0.1, queue_limit=1)
        buf = make_buffer(engine, deliveries, cpu=cpu)
        for seq in range(10):
            buf.handle_datagram(share_datagrams(seq, b"x", 1, 1, seed=seq)[0])
        assert buf.stats.cpu_rejected_shares > 0
