"""Synthetic application traces tunnelled through the protocol."""

import numpy as np
import pytest

from repro.core.channel import ChannelSet
from repro.protocol.config import ProtocolConfig
from repro.workloads.traces import (
    messaging_trace,
    run_trace,
    streaming_trace,
    web_trace,
)


@pytest.fixture
def clean_channels():
    return ChannelSet.from_vectors(
        risks=[0.0] * 3,
        losses=[0.0] * 3,
        delays=[0.01] * 3,
        rates=[200.0] * 3,
    )


class TestGenerators:
    def test_web_trace_heavy_tail(self, rng):
        events = list(web_trace(200.0, rng))
        sizes = np.array([len(payload) for _, payload in events])
        assert len(events) > 100
        # Responses reach well beyond the typical request size.
        assert sizes.max() > 5000
        assert np.median(sizes) < sizes.mean()  # right-skewed

    def test_web_trace_times_in_range(self, rng):
        events = list(web_trace(50.0, rng))
        assert all(0.0 <= when for when, _ in events)
        # Requests are emitted before the duration; responses may lag a
        # few hundredths past it.
        assert max(when for when, _ in events) < 50.1

    def test_streaming_trace_cbr(self, rng):
        events = list(streaming_trace(10.0, rng, datagram_size=500,
                                      datagrams_per_unit=8.0))
        assert len(events) == 80
        assert all(len(p) == 500 for _, p in events)
        times = [when for when, _ in events]
        assert times == sorted(times)

    def test_messaging_trace_sizes(self, rng):
        events = list(messaging_trace(500.0, rng, min_size=20, max_size=50))
        assert events
        assert all(20 <= len(p) <= 50 for _, p in events)

    def test_generators_deterministic(self):
        a = list(web_trace(20.0, np.random.default_rng(5)))
        b = list(web_trace(20.0, np.random.default_rng(5)))
        assert a == b


class TestRunTrace:
    @pytest.mark.parametrize("kind", ["web", "streaming", "messaging"])
    def test_lossless_traces_arrive_intact(self, clean_channels, kind):
        config = ProtocolConfig(kappa=2.0, mu=3.0, symbol_size=256)
        result = run_trace(clean_channels, config, kind=kind, duration=15.0)
        assert result.sent > 0
        assert result.delivered == result.sent
        assert result.intact == result.sent

    def test_web_trace_survives_light_loss(self):
        channels = ChannelSet.from_vectors(
            risks=[0.0] * 3,
            losses=[0.02, 0.02, 0.02],
            delays=[0.01] * 3,
            rates=[200.0] * 3,
        )
        # kappa=1, mu=3: triple redundancy shrugs the loss off.
        config = ProtocolConfig(kappa=1.0, mu=3.0, symbol_size=256,
                                reassembly_timeout=10.0)
        result = run_trace(channels, config, kind="web", duration=20.0)
        assert result.delivery_ratio > 0.95

    def test_rejects_synthetic_mode(self, clean_channels):
        config = ProtocolConfig(share_synthetic=True)
        with pytest.raises(ValueError):
            run_trace(clean_channels, config)

    def test_unknown_kind(self, clean_channels):
        config = ProtocolConfig(symbol_size=256)
        with pytest.raises(ValueError):
            run_trace(clean_channels, config, kind="voip")

    def test_deterministic(self, clean_channels):
        config = ProtocolConfig(kappa=2.0, mu=2.0, symbol_size=256)
        a = run_trace(clean_channels, config, kind="messaging", duration=10.0, seed=3)
        b = run_trace(clean_channels, config, kind="messaging", duration=10.0, seed=3)
        assert a == b
