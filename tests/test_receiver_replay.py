"""The receiver's replay defense.

A benign duplicate (network-level retransmit) carries the *same* bytes and
keeps counting as ``duplicate_shares``; a replayed-and-tampered copy -- or
a forgery squatting on an occupied (seq, index) slot -- carries
*different* bytes for the same slot and is counted as
``replayed_shares_dropped``.  Either way the first-arrival share is kept:
replays can never displace material already accepted.
"""

import numpy as np

from repro.adversary.active.primitives import corrupt_share_packet
from repro.netsim.engine import Engine
from repro.netsim.packet import Datagram
from repro.protocol.receiver import ReassemblyBuffer
from repro.protocol.wire import encode_share
from repro.sharing.shamir import ShamirScheme

scheme = ShamirScheme()


def make_buffer(engine, deliveries, **kwargs):
    return ReassemblyBuffer(
        engine,
        scheme,
        timeout=5.0,
        limit=16,
        on_deliver=lambda seq, payload, delay: deliveries.append((seq, payload)),
        **kwargs,
    )


def share_datagrams(seq, secret, k, m, seed=0, flow=0):
    rng = np.random.default_rng(seed)
    return [
        Datagram(
            size=len(packet),
            payload=packet,
            meta={"symbol_sent_at": 0.0},
        )
        for packet in (
            encode_share(seq, share, scheme.name, flow=flow)
            for share in scheme.split(secret, k, m, rng)
        )
    ]


def tampered(datagram, seed=9):
    mutated = corrupt_share_packet(
        datagram.payload, np.random.default_rng(seed), "flip"
    )
    return Datagram(size=len(mutated), payload=mutated, meta=dict(datagram.meta))


class TestReplayedSharesDropped:
    def test_tampered_duplicate_counts_as_replay(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries)
        datagrams = share_datagrams(1, b"secret", 2, 4)
        buf.handle_datagram(datagrams[0])
        buf.handle_datagram(tampered(datagrams[0]))
        assert buf.stats.replayed_shares_dropped == 1
        assert buf.stats.duplicate_shares == 0

    def test_identical_duplicate_still_benign(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries)
        datagrams = share_datagrams(1, b"secret", 2, 4)
        buf.handle_datagram(datagrams[0])
        buf.handle_datagram(datagrams[0])
        assert buf.stats.duplicate_shares == 1
        assert buf.stats.replayed_shares_dropped == 0

    def test_first_arrival_wins_and_symbol_still_decodes(self):
        engine = Engine()
        deliveries = []
        buf = make_buffer(engine, deliveries)
        datagrams = share_datagrams(1, b"secret", 2, 4)
        buf.handle_datagram(datagrams[0])
        buf.handle_datagram(tampered(datagrams[0]))
        buf.handle_datagram(datagrams[1])
        assert deliveries == [(1, b"secret")]

    def test_replays_counted_per_occurrence(self):
        engine = Engine()
        buf = make_buffer(engine, [])
        datagrams = share_datagrams(2, b"again", 2, 4)
        buf.handle_datagram(datagrams[0])
        buf.handle_datagram(tampered(datagrams[0], seed=1))
        buf.handle_datagram(tampered(datagrams[0], seed=2))
        assert buf.stats.replayed_shares_dropped == 2

    def test_flowed_shares_covered_too(self):
        engine = Engine()
        buf = make_buffer(engine, [])
        datagrams = share_datagrams(3, b"flowed", 2, 4, flow=2)
        buf.handle_datagram(datagrams[0])
        buf.handle_datagram(tampered(datagrams[0]))
        assert buf.stats.replayed_shares_dropped == 1


class TestStatsShape:
    def test_flow0_as_dict_shape_preserved(self):
        engine = Engine()
        buf = make_buffer(engine, [])
        for dg in share_datagrams(1, b"shape", 2, 4)[:2]:
            buf.handle_datagram(dg)
        data = buf.stats.as_dict()
        assert "flows" not in data
        assert data["replayed_shares_dropped"] == 0

    def test_counter_is_scalar_not_per_flow(self):
        engine = Engine()
        buf = make_buffer(engine, [])
        datagrams = share_datagrams(1, b"scalar", 2, 4, flow=2)
        buf.handle_datagram(datagrams[0])
        buf.handle_datagram(tampered(datagrams[0]))
        data = buf.stats.as_dict()
        assert data["replayed_shares_dropped"] == 1
