"""ResultCache: key stability, fingerprint invalidation, corruption, resume."""

import json
import os
import subprocess
import sys

from repro.sweep import ResultCache, SweepRunner, SweepSpec, code_fingerprint, values


import repro

#: The src/ directory, for subprocess PYTHONPATH regardless of test cwd.
SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def square_point(params, seed):
    return {"square": params["x"] ** 2}


def poison_point(params, seed):
    if params["x"] == 2:
        raise ValueError("poisoned point")
    return {"x": params["x"]}


def logging_point(params, seed):
    """Records every actual computation so resume tests can count them."""
    with open(os.path.join(params["dir"], "computed.log"), "a") as handle:
        handle.write(f"{params['x']}\n")
    return {"x": params["x"]}


def _spec(tmp_path=None, xs=(1, 2, 3, 4, 5)):
    base = {"dir": str(tmp_path)} if tmp_path is not None else {}
    return SweepSpec("cachespec", axes={"x": list(xs)}, base=base)


def _computed(tmp_path):
    log = tmp_path / "computed.log"
    if not log.exists():
        return []
    return [int(line) for line in log.read_text().splitlines()]


class TestKeys:
    def test_key_stable_across_runs(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        point = _spec().points()[0]
        assert cache.key(point) == ResultCache(str(tmp_path), fingerprint="f1").key(point)

    def test_key_stable_across_processes(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        point = _spec().points()[0]
        script = (
            "from repro.sweep import ResultCache, SweepSpec; "
            "spec = SweepSpec('cachespec', axes={'x': [1, 2, 3, 4, 5]}); "
            f"print(ResultCache({str(tmp_path)!r}, fingerprint='f1').key(spec.points()[0]))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC_DIR, "PYTHONHASHSEED": "999"},
            check=True,
        )
        assert out.stdout.strip() == cache.key(point)

    def test_key_covers_params_spec_and_fingerprint(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        p1, p2 = _spec().points()[:2]
        assert cache.key(p1) != cache.key(p2)
        other_spec = SweepSpec("otherspec", axes={"x": [1, 2]}).points()[0]
        assert cache.key(p1) != cache.key(other_spec)
        assert cache.key(p1) != ResultCache(str(tmp_path), fingerprint="f2").key(p1)

    def test_code_fingerprint_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_FINGERPRINT", "pinned")
        assert code_fingerprint() == "pinned"
        assert ResultCache("unused").fingerprint == "pinned"

    def test_code_fingerprint_is_hexdigest(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_FINGERPRINT", raising=False)
        fingerprint = code_fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        point = _spec().points()[0]
        path = cache.put(point, {"square": 1}, duration=0.5, attempts=1)
        assert os.path.exists(path)
        entry = cache.get(point)
        assert entry["value"] == {"square": 1}
        assert entry["attempts"] == 1
        assert entry["params"] == dict(point.params)

    def test_fingerprint_change_invalidates(self, tmp_path):
        point = _spec().points()[0]
        ResultCache(str(tmp_path), fingerprint="f1").put(point, {"square": 1}, 0.0, 1)
        assert ResultCache(str(tmp_path), fingerprint="f2").get(point) is None

    def test_values_round_trip_floats_exactly(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        point = _spec().points()[0]
        value = {"ratio": 0.1 + 0.2, "rate": 493.75}
        cache.put(point, value, 0.0, 1)
        assert cache.get(point)["value"] == value


class TestCorruption:
    def test_truncated_entry_recomputed_not_crashed(self, tmp_path, caplog):
        cache = ResultCache(str(tmp_path / "cache"), fingerprint="f1")
        spec = _spec(tmp_path)
        runner = SweepRunner(cache=cache)
        runner.run(spec, logging_point)
        # Corrupt one entry in place (as a kill -9 mid-write never could,
        # thanks to atomic replace -- but disks rot and users edit files).
        victim = cache.path(spec.points()[2])
        with open(victim, "w") as handle:
            handle.write('{"key": "truncat')
        with caplog.at_level("WARNING"):
            runner2 = SweepRunner(cache=cache)
            results = runner2.run(spec, logging_point)
        assert all(r.ok for r in results)
        assert runner2.stats.cache_hits == 4
        assert runner2.stats.computed == 1
        assert "corrupted cache entry" in caplog.text
        # The recomputed entry was re-persisted and is valid again.
        assert cache.get(spec.points()[2])["value"] == {"x": 3}

    def test_wrong_key_entry_discarded(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        point = _spec().points()[0]
        path = cache.path(point)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            json.dump({"key": "not-the-right-key", "value": {"square": 999}}, handle)
        assert cache.get(point) is None
        assert not os.path.exists(path)

    def test_malformed_entry_discarded(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        point = _spec().points()[0]
        path = cache.path(point)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            json.dump(["not", "a", "dict"], handle)
        assert cache.get(point) is None


class TestResume:
    def test_interrupted_run_resumes_missing_points_only(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), fingerprint="f1")
        spec = _spec(tmp_path)
        points = spec.points()
        # "Kill" the first run after three of five points.
        SweepRunner(cache=cache).run(points[:3], logging_point)
        assert _computed(tmp_path) == [1, 2, 3]
        # Resume: the full sweep completes, recomputing only the missing two.
        runner = SweepRunner(cache=cache)
        results = runner.run(spec, logging_point)
        assert values(results) == [{"x": x} for x in (1, 2, 3, 4, 5)]
        assert _computed(tmp_path) == [1, 2, 3, 4, 5]
        assert runner.stats.cache_hits == 3
        assert runner.stats.computed == 2
        assert [r.cached for r in results] == [True, True, True, False, False]

    def test_second_run_all_cache_hits(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), fingerprint="f1")
        spec = _spec(tmp_path)
        first = values(SweepRunner(cache=cache).run(spec, logging_point))
        runner = SweepRunner(cache=cache)
        second = values(runner.run(spec, logging_point))
        assert second == first
        assert runner.stats.cache_hits == 5
        assert runner.stats.computed == 0
        assert _computed(tmp_path) == [1, 2, 3, 4, 5]

    def test_failures_are_never_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), fingerprint="f1")

        spec = SweepSpec("failing", axes={"x": [2]})
        runner = SweepRunner(cache=cache)
        results = runner.run(spec, poison_point)
        assert not results[0].ok
        # A subsequent run retries the point instead of serving the failure.
        runner2 = SweepRunner(cache=cache)
        runner2.run(spec, poison_point)
        assert runner2.stats.cache_hits == 0
        assert runner2.stats.computed == 1

    def test_parallel_resume_matches_serial(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), fingerprint="f1")
        spec = _spec(tmp_path)
        SweepRunner(cache=cache).run(spec.points()[:2], logging_point)
        runner = SweepRunner(jobs=2, cache=cache)
        results = runner.run(spec, logging_point)
        assert all(r.ok for r in results)
        assert runner.stats.cache_hits == 2
        assert runner.stats.computed == 3
