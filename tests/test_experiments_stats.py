"""Replication statistics for experiment measurements."""

import numpy as np
import pytest

from repro.experiments.stats import replicate, seeds_for, summarize



class TestSummarize:
    def test_single_value(self):
        value = summarize([3.0])
        assert value.mean == 3.0
        assert value.half_width == 0.0

    def test_identical_values_zero_width(self):
        value = summarize([2.0, 2.0, 2.0])
        assert value.half_width == 0.0

    def test_interval_widens_with_variance(self):
        tight = summarize([1.0, 1.01, 0.99, 1.0])
        loose = summarize([1.0, 2.0, 0.0, 1.0])
        assert loose.half_width > tight.half_width

    def test_interval_contains_mean(self):
        value = summarize([1.0, 2.0, 3.0])
        assert value.contains(value.mean)
        assert value.low <= 2.0 <= value.high

    def test_matches_scipy_reference(self):
        from scipy import stats as scipy_stats

        data = [1.2, 1.5, 0.9, 1.1, 1.3]
        value = summarize(data, confidence=0.95)
        ref_low, ref_high = scipy_stats.t.interval(
            0.95, df=len(data) - 1,
            loc=np.mean(data), scale=scipy_stats.sem(data),
        )
        assert value.low == pytest.approx(ref_low)
        assert value.high == pytest.approx(ref_high)

    def test_coverage_statistical(self):
        """~95% of intervals over N(0,1) samples should contain 0."""
        rng = np.random.default_rng(0)
        hits = 0
        trials = 400
        for _ in range(trials):
            sample = rng.normal(size=8)
            if summarize(sample).contains(0.0):
                hits += 1
        assert hits / trials == pytest.approx(0.95, abs=0.04)

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.5)


class TestReplicate:
    def test_runs_once_per_seed(self):
        calls = []

        def measure(seed):
            calls.append(seed)
            return float(seed)

        value = replicate(measure, [1, 2, 3])
        assert calls == [1, 2, 3]
        assert value.mean == pytest.approx(2.0)

    def test_real_experiment_interval_contains_truth(self):
        """Replicated iperf loss CI should cover the analytic value."""
        from repro.core.channel import ChannelSet
        from repro.core.properties import subset_loss
        from repro.protocol.config import ProtocolConfig
        from repro.workloads.iperf import run_iperf

        channels = ChannelSet.from_vectors(
            risks=[0.0] * 3, losses=[0.1] * 3, delays=[0.01] * 3, rates=[100.0] * 3
        )
        config = ProtocolConfig(kappa=2.0, mu=3.0, share_synthetic=True,
                                reassembly_timeout=10.0)

        def measure(seed):
            result = run_iperf(
                channels, config, offered_rate=50.0, duration=20.0, warmup=2.0,
                seed=seed,
            )
            return result.loss_fraction

        value = replicate(measure, seeds_for(5, 5))
        truth = subset_loss(channels, 2, [0, 1, 2])
        # Wide tolerance: CI plus a noise allowance for edge effects.
        assert abs(value.mean - truth) < max(3 * value.half_width, 0.01)


class TestSeedsFor:
    def test_distinct_and_deterministic(self):
        a = seeds_for(1, 5)
        b = seeds_for(1, 5)
        assert a == b
        assert len(set(a)) == 5
        assert seeds_for(2, 5) != a

    def test_validation(self):
        with pytest.raises(ValueError):
            seeds_for(1, 0)
