"""The discrete-event engine: ordering, cancellation, clock discipline."""

import numpy as np
import pytest

from repro.netsim.engine import Engine


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(3.0, order.append, "c")
        engine.schedule(1.0, order.append, "a")
        engine.schedule(2.0, order.append, "b")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, order.append, 1)
        engine.schedule(1.0, order.append, 2)
        engine.schedule(1.0, order.append, 3)
        engine.run()
        assert order == [1, 2, 3]

    def test_now_advances_during_run(self):
        engine = Engine()
        seen = []
        engine.schedule(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]

    def test_run_until_stops_and_sets_clock(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, fired.append, "early")
        engine.schedule(10.0, fired.append, "late")
        engine.run_until(5.0)
        assert fired == ["early"]
        assert engine.now == 5.0
        engine.run_until(20.0)
        assert fired == ["early", "late"]

    def test_callbacks_can_schedule_more(self):
        engine = Engine()
        hits = []

        def recur(depth):
            hits.append(engine.now)
            if depth:
                engine.schedule(1.0, recur, depth - 1)

        engine.schedule(0.0, recur, 3)
        engine.run()
        assert hits == [0.0, 1.0, 2.0, 3.0]

    def test_same_time_self_schedule_runs_after_peers(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: (order.append("first"), engine.schedule(0.0, order.append, "chained")))
        engine.schedule(1.0, order.append, "second")
        engine.run()
        assert order == ["first", "second", "chained"]

    def test_past_scheduling_rejected(self):
        engine = Engine()
        engine.run_until(5.0)
        with pytest.raises(ValueError):
            engine.schedule_at(4.0, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            engine.run_until(1.0)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, fired.append, "x")
        event.cancel()
        engine.run()
        assert fired == []

    def test_cancel_after_fire_is_safe(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        engine.run()
        event.cancel()  # no error

    def test_pending_excludes_cancelled(self):
        engine = Engine()
        keep = engine.schedule(1.0, lambda: None)
        drop = engine.schedule(2.0, lambda: None)
        drop.cancel()
        assert engine.pending() == 1
        del keep

    def test_events_processed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.events_processed == 5


def _random_workload_trace(seed, end_time=50.0, chunks=1):
    """Drive a randomised self-scheduling workload; return its event trace.

    Callbacks schedule more work, cancel pending events, and mutate a
    faulty link mid-run, exercising every engine code path the fault layer
    relies on.  The trace is the byte-serialised (time, tag) sequence.
    """
    from repro.netsim.faults import FaultInjector, FaultPlan
    from repro.netsim.link import Link
    from repro.netsim.packet import Datagram

    engine = Engine()
    rng = np.random.default_rng(seed)
    trace = []
    pending = {}  # tag -> not-yet-fired Event
    cancelled_tags = set()

    link = Link(engine, byte_rate=50.0, loss=0.2, delay=0.5,
                rng=np.random.default_rng(seed + 1), queue_limit=4)
    link.set_receiver(lambda dg: trace.append((engine.now, "deliver", dg.meta["tag"])))
    plan = (FaultPlan()
            .link_down(12.0, channel=0, direction="fwd")
            .link_up(15.0, channel=0, direction="fwd")
            .set_loss(20.0, 0.5, channel=0, direction="fwd")
            .set_rate(30.0, scale=0.5, channel=0, direction="fwd"))

    class _OneLink:  # duck-types DuplexChannel for the injector
        forward = link
        reverse = link

    FaultInjector(engine, [_OneLink()], plan).arm()

    def tick(tag):
        pending.pop(tag, None)  # this event has now fired
        trace.append((engine.now, "tick", tag))
        for _ in range(int(rng.integers(0, 3))):
            child = int(rng.integers(1_000, 1_000_000))
            pending[child] = engine.schedule(float(rng.uniform(0, 5)), tick, child)
        if pending and rng.random() < 0.3:
            victim_tag = sorted(pending)[int(rng.integers(0, len(pending)))]
            pending.pop(victim_tag).cancel()
            cancelled_tags.add(victim_tag)
        if rng.random() < 0.5:
            link.send(Datagram(size=25, meta={"tag": tag}))

    for n in range(30):
        engine.schedule(float(rng.uniform(0, end_time / 2)), tick, n)

    # Optionally split the run into arbitrary run_until increments.
    if chunks == 1:
        engine.run_until(end_time)
    else:
        for bound in np.linspace(end_time / chunks, end_time, chunks):
            engine.run_until(float(bound))
    return repr(trace).encode(), trace, cancelled_tags, engine


class TestDeterminismProperties:
    def test_same_seed_runs_are_byte_identical_with_faults(self):
        for seed in (0, 7, 123):
            first, *_ = _random_workload_trace(seed)
            second, *_ = _random_workload_trace(seed)
            assert first == second

    def test_different_seeds_diverge(self):
        first, *_ = _random_workload_trace(1)
        second, *_ = _random_workload_trace(2)
        assert first != second

    def test_run_until_chunking_does_not_change_the_trace(self):
        whole, *_ = _random_workload_trace(42, chunks=1)
        for chunks in (2, 7, 50):
            split, *_ = _random_workload_trace(42, chunks=chunks)
            assert split == whole

    def test_cancelled_events_never_fire(self):
        for seed in (3, 9):
            _, trace, cancelled, _ = _random_workload_trace(seed)
            fired_ticks = {tag for _, kind, tag in trace if kind == "tick"}
            assert not fired_ticks & cancelled

    def test_clock_is_monotonic_throughout(self):
        _, trace, _, engine = _random_workload_trace(5)
        times = [t for t, *_ in trace]
        assert times == sorted(times)
        assert engine.now == 50.0

    def test_same_time_events_fire_in_scheduling_order(self):
        engine = Engine()
        rng = np.random.default_rng(0)
        fired = []
        expected = {}
        serial = 0
        # Many events on a coarse time grid -> plenty of exact ties.
        for _ in range(500):
            t = float(rng.integers(0, 10))
            tag = serial
            serial += 1
            expected.setdefault(t, []).append(tag)
            engine.schedule_at(t, lambda t=t, tag=tag: fired.append((t, tag)))
        engine.run()
        for t, tags in expected.items():
            assert [tag for ft, tag in fired if ft == t] == tags
