"""The discrete-event engine: ordering, cancellation, clock discipline."""

import pytest

from repro.netsim.engine import Engine


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(3.0, order.append, "c")
        engine.schedule(1.0, order.append, "a")
        engine.schedule(2.0, order.append, "b")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, order.append, 1)
        engine.schedule(1.0, order.append, 2)
        engine.schedule(1.0, order.append, 3)
        engine.run()
        assert order == [1, 2, 3]

    def test_now_advances_during_run(self):
        engine = Engine()
        seen = []
        engine.schedule(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]

    def test_run_until_stops_and_sets_clock(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, fired.append, "early")
        engine.schedule(10.0, fired.append, "late")
        engine.run_until(5.0)
        assert fired == ["early"]
        assert engine.now == 5.0
        engine.run_until(20.0)
        assert fired == ["early", "late"]

    def test_callbacks_can_schedule_more(self):
        engine = Engine()
        hits = []

        def recur(depth):
            hits.append(engine.now)
            if depth:
                engine.schedule(1.0, recur, depth - 1)

        engine.schedule(0.0, recur, 3)
        engine.run()
        assert hits == [0.0, 1.0, 2.0, 3.0]

    def test_same_time_self_schedule_runs_after_peers(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: (order.append("first"), engine.schedule(0.0, order.append, "chained")))
        engine.schedule(1.0, order.append, "second")
        engine.run()
        assert order == ["first", "second", "chained"]

    def test_past_scheduling_rejected(self):
        engine = Engine()
        engine.run_until(5.0)
        with pytest.raises(ValueError):
            engine.schedule_at(4.0, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            engine.run_until(1.0)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, fired.append, "x")
        event.cancel()
        engine.run()
        assert fired == []

    def test_cancel_after_fire_is_safe(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        engine.run()
        event.cancel()  # no error

    def test_pending_excludes_cancelled(self):
        engine = Engine()
        keep = engine.schedule(1.0, lambda: None)
        drop = engine.schedule(2.0, lambda: None)
        drop.cancel()
        assert engine.pending() == 1
        del keep

    def test_events_processed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.events_processed == 5
