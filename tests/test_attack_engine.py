"""The attack injector: validation, event application, link hooks, ledger."""

import pytest

from repro.adversary.active import AttackPlan
from repro.adversary.active.engine import AttackInjector
from repro.adversary.active.harness import default_channels, run_under_attack
from repro.adversary.active.plan import AttackEvent
from repro.netsim.packet import Datagram
from repro.netsim.rng import RngRegistry
from repro.protocol.remicss import PointToPointNetwork


def make_network(seed=1):
    registry = RngRegistry(seed)
    network = PointToPointNetwork(default_channels(), 64, registry)
    return network, registry


class TestValidation:
    def test_channel_out_of_bounds(self):
        network, registry = make_network()
        plan = AttackPlan().jam(1.0, channel=9)
        with pytest.raises(ValueError, match="targets channel 9"):
            AttackInjector(network.engine, network.duplex, plan, registry)

    def test_adaptive_requires_risks(self):
        network, registry = make_network()
        plan = AttackPlan().adaptive(1.0, budget=2, period=1.0, width=1, jam_for=1.0)
        with pytest.raises(ValueError, match="needs per-channel risks"):
            AttackInjector(network.engine, network.duplex, plan, registry)

    def test_adaptive_width_bounded_by_channels(self):
        network, registry = make_network()
        plan = AttackPlan().adaptive(1.0, budget=2, period=1.0, width=9, jam_for=1.0)
        with pytest.raises(ValueError, match="width 9 exceeds"):
            AttackInjector(
                network.engine, network.duplex, plan, registry, risks=[0.1] * 5
            )

    def test_risks_length_must_match(self):
        network, registry = make_network()
        with pytest.raises(ValueError, match="3 risks for 5 channels"):
            AttackInjector(
                network.engine, network.duplex, AttackPlan(), registry, risks=[0.1] * 3
            )

    def test_arm_is_once_only(self):
        network, registry = make_network()
        injector = network.apply_attack(AttackPlan(), registry)
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm()


class TestJamEvents:
    def test_jam_downs_both_directions_and_unjam_heals(self):
        network, registry = make_network()
        plan = AttackPlan().jam(1.0, channel=2).unjam(3.0, channel=2)
        injector = network.apply_attack(plan, registry)
        network.engine.run_until(2.0)
        assert not network.duplex[2].forward.up
        assert not network.duplex[2].reverse.up
        assert network.duplex[0].forward.up
        network.engine.run_until(4.0)
        assert network.duplex[2].forward.up
        assert network.duplex[2].reverse.up
        assert injector.stats.jams == 1 and injector.stats.unjams == 1

    def test_channel_none_jams_everything(self):
        network, registry = make_network()
        injector = network.apply_attack(AttackPlan().jam(1.0), registry)
        network.engine.run_until(2.0)
        assert all(not d.forward.up and not d.reverse.up for d in network.duplex)
        assert injector.stats.jams == len(network.duplex)

    def test_directional_jam_leaves_reverse_up(self):
        network, registry = make_network()
        network.apply_attack(
            AttackPlan([AttackEvent(1.0, "jam", 1, "fwd")]), registry
        )
        network.engine.run_until(2.0)
        assert not network.duplex[1].forward.up
        assert network.duplex[1].reverse.up


class TestEventLog:
    def test_log_and_summary_record_applied_events(self):
        network, registry = make_network()
        plan = AttackPlan().jam(2.0, channel=0).unjam(5.0, channel=0)
        injector = network.apply_attack(plan, registry)
        network.engine.run_until(10.0)
        assert [(t, e.action) for t, e in injector.log] == [(2.0, "jam"), (5.0, "unjam")]
        summary = injector.summary()
        assert summary["applied"] == 2
        assert summary["by_action"] == {"jam": 1, "unjam": 1}
        assert summary["first_at"] == 2.0 and summary["last_at"] == 5.0
        assert summary["stats"]["jams"] == 1

    def test_past_events_fire_immediately_on_arm(self):
        network, registry = make_network()
        network.engine.run_until(5.0)
        injector = network.apply_attack(AttackPlan().jam(1.0, channel=0), registry)
        network.engine.run_until(6.0)
        assert injector.log and injector.log[0][0] == 5.0


class TestHoldAndReorder:
    def test_held_packets_are_released_not_lost(self):
        plan = (
            AttackPlan()
            .hold(4.0, hold=0.5, batch=4, channel=0)
            .end_hold(20.0, channel=0)
        )
        row = run_under_attack(plan, duration=16.0, seed=5)
        stats = row["attack"]["stats"]
        assert stats["packets_held"] > 0
        assert stats["packets_released"] + stats["injected_dropped"] == stats["packets_held"]
        assert row["wrong_payloads"] == 0
        assert row["delivered"] > 0

    def test_hold_stop_flushes_remainder(self):
        # A huge batch never fills, so everything held drains at hold_stop.
        plan = (
            AttackPlan()
            .hold(4.0, hold=0.5, batch=10_000, channel=0)
            .end_hold(20.0, channel=0)
        )
        row = run_under_attack(plan, duration=16.0, seed=5)
        stats = row["attack"]["stats"]
        assert stats["packets_held"] > 0
        assert stats["packets_released"] + stats["injected_dropped"] == stats["packets_held"]


class TestCaptureRing:
    def test_capture_ring_is_bounded(self):
        network, registry = make_network()
        plan = AttackPlan().replay(1.0, rate=1.0).end_replay(2.0)
        injector = AttackInjector(
            network.engine, network.duplex, plan, registry, capture_limit=4
        )
        injector.arm()
        state = injector._states[0]
        for i in range(10):
            state._capture(Datagram(size=8, payload=bytes([i] * 8), sent_at=0.0))
        assert len(state.captured) == 4
        assert injector.stats.packets_captured == 10
