"""Fleet execution: shard parity, merging, admission wiring, metrics."""

import pytest

from repro.fleet import FleetRunner, FleetSpec, FlowSpec, Tenant, synthesize_fleet
from repro.obs import Observability


def small_fleet(flows=8, symbols=3):
    return synthesize_fleet(flows, symbols=symbols)


class TestShardParity:
    def test_shards_1_and_4_are_byte_identical(self):
        """The satellite property: per-flow delivery traces (digests over
        every reconstructed symbol) are byte-identical across shardings,
        with real share material on the wire."""
        fleet = small_fleet(flows=8, symbols=3)
        serial = FleetRunner(shards=1, flows_per_cell=2).run(fleet, synthetic=False)
        sharded = FleetRunner(shards=4, flows_per_cell=2).run(fleet, synthetic=False)
        assert serial.per_flow == sharded.per_flow
        assert serial.fleet_digest == sharded.fleet_digest
        assert serial.tenants == sharded.tenants
        assert serial.delivered_total == sharded.delivered_total

    def test_parity_holds_synthetic(self):
        fleet = small_fleet(flows=12, symbols=2)
        serial = FleetRunner(shards=1, flows_per_cell=3).run(fleet)
        sharded = FleetRunner(shards=2, flows_per_cell=3).run(fleet)
        assert serial.fleet_digest == sharded.fleet_digest

    def test_cell_partitioning_changes_results_but_not_validity(self):
        """Different flows_per_cell = different contention groups = a
        different (but still deterministic) fleet; both deliver fully."""
        fleet = small_fleet(flows=8, symbols=2)
        a = FleetRunner(shards=1, flows_per_cell=2).run(fleet)
        b = FleetRunner(shards=1, flows_per_cell=8).run(fleet)
        assert a.delivered_total == b.delivered_total == 16
        assert a.cells == 4 and b.cells == 1


class TestReport:
    def test_full_delivery_on_lossless_channels(self):
        fleet = small_fleet(flows=6, symbols=4)
        report = FleetRunner(shards=1, flows_per_cell=3).run(fleet)
        assert report.admitted == 6
        assert report.delivered_total == 24
        assert report.mux_drops_total == 0
        assert report.kappa_floor_violations == 0
        assert set(report.per_flow) == set(range(1, 7))
        for record in report.per_flow.values():
            assert record["delivered"] == 4
            assert len(record["digest"]) == 64

    def test_rejected_flows_are_excluded_and_counted(self):
        tenants = (Tenant(name="gold", min_kappa=2.0, max_flows=1),)
        flows = (
            FlowSpec(flow=1, tenant="gold", kappa=2.0, mu=3.0, symbols=2),
            FlowSpec(flow=2, tenant="gold", kappa=1.0, mu=3.0, symbols=2),  # floor
            FlowSpec(flow=3, tenant="gold", kappa=2.0, mu=3.0, symbols=2),  # quota
        )
        fleet = FleetSpec(tenants=tenants, flows=flows)
        report = FleetRunner(shards=1).run(fleet)
        assert report.admitted == 1
        assert report.rejected_flows == {2: "kappa_floor", 3: "quota"}
        assert set(report.per_flow) == {1}
        assert report.tenants["gold"]["flows"] == 1
        assert report.tenants["gold"]["compliant"]

    def test_empty_fleet(self):
        report = FleetRunner(shards=1).run(FleetSpec())
        assert report.cells == 0
        assert report.delivered_total == 0
        assert report.per_flow == {}

    def test_as_dict_is_json_shaped(self):
        import json

        fleet = small_fleet(flows=3, symbols=1)
        report = FleetRunner(shards=1).run(fleet)
        data = json.loads(json.dumps(report.as_dict(), sort_keys=True))
        assert data["per_flow"]["1"]["delivered"] == 1
        assert data["rejected_flows"] == {}

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FleetRunner(shards=0)
        with pytest.raises(ValueError):
            FleetRunner(flows_per_cell=0)


class TestAuthenticatedFleet:
    def test_auth_requires_real_payloads(self):
        with pytest.raises(ValueError):
            FleetRunner(shards=1).run(small_fleet(flows=2), auth=True)

    def test_auth_delivers_fully_and_keeps_shard_parity(self):
        # Arming auth keeps the two fleet invariants: lossless channels
        # still deliver everything (tags verify end to end, including
        # across per-flow key derivation), and the report stays
        # byte-identical under sharding (cell root keys derive from cell
        # seeds, never from worker order).
        fleet = small_fleet(flows=6, symbols=2)
        serial = FleetRunner(shards=1, flows_per_cell=2).run(
            fleet, synthetic=False, auth=True
        )
        sharded = FleetRunner(shards=3, flows_per_cell=2).run(
            fleet, synthetic=False, auth=True
        )
        assert serial.delivered_total == 12
        assert serial.fleet_digest == sharded.fleet_digest
        assert serial.per_flow == sharded.per_flow

    def test_auth_leaves_unauth_fleets_untouched(self):
        # The `auth` knob enters cell parameters only when armed, so an
        # unauthenticated run is byte-identical to one from a build that
        # never heard of auth (same seeds, same digests).
        fleet = small_fleet(flows=4, symbols=2)
        plain = FleetRunner(shards=1, flows_per_cell=2).run(fleet, synthetic=False)
        again = FleetRunner(shards=1, flows_per_cell=2).run(
            fleet, synthetic=False, auth=False
        )
        assert plain.fleet_digest == again.fleet_digest


class TestObservability:
    def test_fleet_metrics_are_counted(self):
        tenants = (Tenant(name="gold", min_kappa=2.0),)
        flows = (
            FlowSpec(flow=1, tenant="gold", kappa=2.0, mu=3.0, symbols=2),
            FlowSpec(flow=2, tenant="gold", kappa=1.0, mu=3.0, symbols=2),
        )
        obs = Observability.create(tracing=False)
        report = FleetRunner(shards=1, obs=obs).run(
            FleetSpec(tenants=tenants, flows=flows)
        )
        snapshot = {
            sample["name"]: sample["value"] for sample in obs.registry.snapshot()
        }
        assert snapshot["fleet_flows_total"] == 2
        assert snapshot["fleet_flows_admitted_total"] == 1
        assert snapshot["fleet_flows_rejected_total"] == 1
        assert snapshot["fleet_cells_total"] == 1
        assert snapshot["fleet_symbols_delivered_total"] == report.delivered_total
        assert snapshot["fleet_kappa_floor_violations_total"] == 0
        # The sweep layer underneath counts its own points.
        assert snapshot["sweep_points_total"] == 1
