"""Golden vectors for GF(256) arithmetic and the Shamir/ramp pipelines.

Two layers of defence against a silent arithmetic regression:

* **Field vectors.**  Fixed AES-polynomial mul/div/pow triples, asserted
  against the table-driven scalar field, the numpy batch kernels, *and*
  re-derived at runtime from the independent bit-by-bit
  :func:`repro.gf.gf256._carryless_mul` oracle (which never touches the
  log/antilog tables).  A table-construction bug cannot hide from all
  three at once.
* **Scheme vectors.**  Committed byte-exact Shamir and ramp shares for a
  fixed seed and payload, pinned *before* the vectorized rewrite landed.
  Any change to rng consumption, coefficient layout, or evaluation order
  shows up here as a hex diff, not as a subtly different privacy model.
"""

import numpy as np

from repro.gf.batch import gf_div_vec, gf_mul_vec, gf_pow_vec
from repro.gf.gf256 import GF256_FIELD, _carryless_mul
from repro.sharing.ramp import RampScheme
from repro.sharing.reference import scalar_ramp_split, scalar_shamir_split
from repro.sharing.shamir import ShamirScheme

#: (a, b, a*b) in GF(2^8) under the AES polynomial 0x11b.  The 0x53*0xca=1
#: pair is the classic AES inverse example (FIPS-197 style).
MUL_VECTORS = [
    (0x00, 0x00, 0x00),
    (0x00, 0x37, 0x00),
    (0x01, 0xFF, 0xFF),
    (0x02, 0x80, 0x1B),
    (0x03, 0xF0, 0x0B),
    (0x53, 0xCA, 0x01),
    (0x57, 0x83, 0xC1),
    (0x57, 0x13, 0xFE),
    (0xFF, 0xFF, 0x13),
    (0x80, 0x80, 0x9A),
    (0xB6, 0x53, 0x36),
    (0x0E, 0x0B, 0x62),
]

#: (a, e, a**e); 0**0 = 1 by the usual field convention, x**255 = 1 for
#: nonzero x (the multiplicative group has order 255).
POW_VECTORS = [
    (0x00, 0, 0x01),
    (0x00, 5, 0x00),
    (0x01, 200, 0x01),
    (0x02, 8, 0x1B),
    (0x03, 255, 0x01),
    (0x57, 2, 0xA5),
    (0xCA, 7, 0x89),
    (0xFF, 254, 0x1C),
    (0x35, 3, 0xAB),
]

#: (a, b, a/b).
DIV_VECTORS = [
    (0x00, 0x01, 0x00),
    (0x01, 0x53, 0xCA),
    (0xCA, 0x53, 0x75),
    (0xFF, 0x02, 0xF2),
    (0x57, 0x83, 0x38),
    (0xF0, 0xF0, 0x01),
]

#: 46-byte payload exercised by the scheme vectors: a rising run, a
#: falling run, and ASCII -- enough structure to catch byte-order bugs.
GOLDEN_PAYLOAD = (
    bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    + bytes.fromhex("fffefdfcfbfaf9f8f7f6f5f4f3f2f1f0")
    + b"golden-vector!"
)

GOLDEN_SEED = 20260807

#: Byte-exact Shamir 3-of-5 shares of GOLDEN_PAYLOAD under
#: default_rng(GOLDEN_SEED), committed before the batch rewrite landed.
SHAMIR_3_OF_5 = {
    1: "7a65aa5c25c4f2538ba88e3d34c8dfe46c9e1c2df59b76db36e3aa15929810160f27003c0384ca40e07c1e472824",
    2: "31b0d8fc70ef12cf8704aec42300c712737914d1a16c5dfc3b027c6c41947f8c008e711395b34db5ae44e2d82266",
    3: "4bd470a3512ee69b04a52af21bc516f9e019f500af0dd2dffa17238d20fe9e6a68c61d4bf359aa832b5b88f07863",
    4: "5b87dff9341d9f177358b33435515c580eecf4c04c8618e33b5020c057c0b19243696fbb6e870f61ad4950ab6f80",
    5: "21e377a615dc6b43f0f937020d948db39d8c151142e797c0fa457f2136aa50742b2103e3086de85728563a833585",
}

#: Byte-exact (k=3, L=2, m=5) ramp shares of the same payload and seed.
RAMP_L2_3_OF_5 = {
    1: "2cf21314de59a1b4bbbac9ebc89a5e544bd391747a0456b28f",
    2: "9ac56ac25772b6f5d4df01d35c00022974b66bbd8c181ee8f6",
    3: "b63779f8892a15426b60ce3f9c9356763368f4c609e2b5a682",
    4: "0a79ffbb43c6f8ce5d6036e8b1cbac090910df7b8a0daec258",
    5: "268bec819d9e5b79e2dff9047158f8564ece40000ff7058c2c",
}


class TestFieldVectors:
    def test_mul_vectors_scalar_field(self):
        for a, b, want in MUL_VECTORS:
            assert GF256_FIELD.mul(a, b) == want

    def test_mul_vectors_batch_kernel(self):
        a = np.array([v[0] for v in MUL_VECTORS], dtype=np.uint8)
        b = np.array([v[1] for v in MUL_VECTORS], dtype=np.uint8)
        want = np.array([v[2] for v in MUL_VECTORS], dtype=np.uint8)
        assert np.array_equal(gf_mul_vec(a, b), want)

    def test_mul_vectors_match_carryless_oracle(self):
        # The oracle never touches the log/exp tables, so a table bug
        # cannot agree with it by accident.
        for a, b, want in MUL_VECTORS:
            assert _carryless_mul(a, b) == want

    def test_pow_vectors(self):
        base = np.array([v[0] for v in POW_VECTORS], dtype=np.uint8)
        exp = np.array([v[1] for v in POW_VECTORS], dtype=np.int64)
        want = np.array([v[2] for v in POW_VECTORS], dtype=np.uint8)
        assert np.array_equal(gf_pow_vec(base, exp), want)

    def test_pow_vectors_match_carryless_oracle(self):
        for a, e, want in POW_VECTORS:
            acc = 1
            for _ in range(e):
                acc = _carryless_mul(acc, a)
            assert acc == want

    def test_div_vectors(self):
        a = np.array([v[0] for v in DIV_VECTORS], dtype=np.uint8)
        b = np.array([v[1] for v in DIV_VECTORS], dtype=np.uint8)
        want = np.array([v[2] for v in DIV_VECTORS], dtype=np.uint8)
        assert np.array_equal(gf_div_vec(a, b), want)
        for ai, bi, wanti in DIV_VECTORS:
            assert GF256_FIELD.div(ai, bi) == wanti

    def test_div_vectors_match_carryless_oracle(self):
        # a/b == w  <=>  w*b == a, checked bit-by-bit.
        for a, b, want in DIV_VECTORS:
            assert _carryless_mul(want, b) == a

    def test_full_mul_table_matches_carryless_oracle(self):
        # Exhaustive 256x256 sweep of the batch kernel against the oracle.
        grid = np.arange(256, dtype=np.uint8)
        batch = gf_mul_vec(grid[:, None], grid[None, :])
        oracle = np.array(
            [[_carryless_mul(a, b) for b in range(256)] for a in range(256)],
            dtype=np.uint8,
        )
        assert np.array_equal(batch, oracle)


class TestSchemeVectors:
    def test_shamir_split_pinned(self):
        shares = ShamirScheme().split(
            GOLDEN_PAYLOAD, 3, 5, np.random.default_rng(GOLDEN_SEED)
        )
        assert {s.index: s.data.hex() for s in shares} == SHAMIR_3_OF_5

    def test_shamir_scalar_reference_split_pinned(self):
        shares = scalar_shamir_split(
            GOLDEN_PAYLOAD, 3, 5, np.random.default_rng(GOLDEN_SEED)
        )
        assert {s.index: s.data.hex() for s in shares} == SHAMIR_3_OF_5

    def test_shamir_reconstruct_from_pinned_shares(self):
        from repro.sharing.base import Share

        shares = [
            Share(index=i, data=bytes.fromhex(hexdata), k=3, m=5)
            for i, hexdata in SHAMIR_3_OF_5.items()
        ]
        scheme = ShamirScheme()
        assert scheme.reconstruct(shares[:3]) == GOLDEN_PAYLOAD
        assert scheme.reconstruct(shares[2:]) == GOLDEN_PAYLOAD

    def test_ramp_split_pinned(self):
        shares = RampScheme(blocks=2).split(
            GOLDEN_PAYLOAD, 3, 5, np.random.default_rng(GOLDEN_SEED)
        )
        assert {s.index: s.data.hex() for s in shares} == RAMP_L2_3_OF_5

    def test_ramp_scalar_reference_split_pinned(self):
        shares = scalar_ramp_split(
            GOLDEN_PAYLOAD, 3, 5, np.random.default_rng(GOLDEN_SEED), blocks=2
        )
        assert {s.index: s.data.hex() for s in shares} == RAMP_L2_3_OF_5

    def test_ramp_reconstruct_from_pinned_shares(self):
        from repro.sharing.base import Share

        shares = [
            Share(index=i, data=bytes.fromhex(hexdata), k=3, m=5)
            for i, hexdata in RAMP_L2_3_OF_5.items()
        ]
        assert RampScheme(blocks=2).reconstruct(shares[:3]) == GOLDEN_PAYLOAD
