"""Engine-level semantics: suppressions, baseline, resolution, discovery.

The rule-specific fixtures live in test_lint_rules.py; here the subject
is the machinery around them -- directive parsing, grandfathering,
alias resolution, deterministic file discovery and the JSON round-trip
of findings and reports.
"""

import ast
import json
import textwrap

import pytest

from repro.lint import Baseline, Finding, LintEngine, lint_paths
from repro.lint.resolve import collect_aliases, qualified_name

SCOPED = "src/repro/netsim/fixture.py"

WALL_CLOCK_SNIPPET = "import time\nt = time.time()\n"


def lint(code, relpath=SCOPED):
    return LintEngine().lint_source(relpath, textwrap.dedent(code))


class TestSuppressions:
    def test_line_disable(self):
        live, suppressed = lint("import time\nt = time.time()  # lint: disable=wall-clock\n")
        assert live == []
        assert [f.rule for f in suppressed] == ["wall-clock"]

    def test_line_disable_only_covers_its_line(self):
        code = """
        import time
        a = time.time()  # lint: disable=wall-clock
        b = time.time()
        """
        live, suppressed = lint(code)
        assert [f.rule for f in live] == ["wall-clock"]
        assert len(suppressed) == 1

    def test_line_disable_multiple_rules(self):
        code = (
            "import time, os\n"
            "t = (time.time(), os.getenv('X'))  # lint: disable=wall-clock,env-read\n"
        )
        live, suppressed = lint(code)
        assert live == []
        assert sorted(f.rule for f in suppressed) == ["env-read", "wall-clock"]

    def test_file_disable(self):
        code = """
        # Wall-time is reporting-only in this fixture.
        # lint: file-disable=wall-clock
        import time
        a = time.time()
        b = time.time()
        """
        live, suppressed = lint(code)
        assert live == []
        assert len(suppressed) == 2

    def test_unknown_rule_is_reported(self):
        live, _ = lint("x = 1  # lint: disable=no-such-rule\n")
        assert [f.rule for f in live] == ["bad-directive"]
        assert "no-such-rule" in live[0].message

    def test_malformed_directive_is_reported(self):
        live, _ = lint("x = 1  # lint: disabled=wall-clock\n")
        assert [f.rule for f in live] == ["bad-directive"]

    def test_directive_in_docstring_is_inert(self):
        code = '''
        def f():
            """Suppress with ``# lint: disable=wall-clock`` on the line."""
            return 1
        '''
        live, suppressed = lint(code)
        assert live == [] and suppressed == []

    def test_directive_does_not_suppress_other_rules(self):
        live, _ = lint("import time\nt = time.time()  # lint: disable=env-read\n")
        assert [f.rule for f in live] == ["wall-clock"]


class TestBaseline:
    def finding(self, line=2):
        return Finding(file=SCOPED, line=line, column=4, rule="wall-clock", message="m")

    def test_partition_absorbs_by_identity_not_line(self):
        baseline = Baseline.from_findings([self.finding(line=2)])
        new, grandfathered = baseline.partition([self.finding(line=99)])
        assert new == [] and len(grandfathered) == 1

    def test_counts_absorb_at_most_count_occurrences(self):
        baseline = Baseline.from_findings([self.finding()])
        new, grandfathered = baseline.partition([self.finding(3), self.finding(7)])
        assert len(grandfathered) == 1 and len(new) == 1

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        original = Baseline.from_findings([self.finding(), self.finding(), self.finding(9)])
        original.write(path)
        loaded = Baseline.load(path)
        assert loaded.counts == original.counts
        # Regenerating on unchanged input is byte-identical.
        second = str(tmp_path / "baseline2.json")
        loaded.write(second)
        assert open(path).read() == open(second).read()

    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(str(path))
        path.write_text(json.dumps({"version": 1, "findings": [{"file": "x"}]}))
        with pytest.raises(ValueError):
            Baseline.load(str(path))

    def test_engine_reports_baselined_separately(self, tmp_path):
        root = tmp_path / "repo"
        target = root / "src" / "repro" / "netsim"
        target.mkdir(parents=True)
        (target / "mod.py").write_text(WALL_CLOCK_SNIPPET)
        report = lint_paths(str(root), ["src"])
        assert not report.ok and len(report.findings) == 1
        baseline = Baseline.from_findings(report.findings)
        gated = lint_paths(str(root), ["src"], baseline=baseline)
        assert gated.ok and len(gated.baselined) == 1


class TestResolution:
    def aliases(self, code):
        return collect_aliases(ast.parse(textwrap.dedent(code)))

    def qual(self, code, expr):
        aliases = self.aliases(code)
        node = ast.parse(expr, mode="eval").body
        return qualified_name(node, aliases)

    def test_plain_import(self):
        assert self.qual("import time", "time.time") == "time.time"

    def test_aliased_import(self):
        assert self.qual("import numpy as np", "np.random.seed") == "numpy.random.seed"

    def test_dotted_import_binds_root(self):
        assert self.qual("import numpy.random", "numpy.random.rand") == "numpy.random.rand"

    def test_from_import_with_alias(self):
        code = "from time import perf_counter as tick"
        assert self.qual(code, "tick") == "time.perf_counter"

    def test_from_import_module_member(self):
        code = "from datetime import datetime"
        assert self.qual(code, "datetime.now") == "datetime.datetime.now"

    def test_unimported_name_resolves_to_itself(self):
        assert self.qual("", "set") == "set"

    def test_relative_import_cannot_collide(self):
        code = "from .faults import FaultPlan"
        assert self.qual(code, "FaultPlan") == ".faults.FaultPlan"

    def test_non_dotted_expressions_resolve_to_none(self):
        aliases = self.aliases("import numpy as np")
        call_result_attr = ast.parse("np.random.default_rng(0).integers", mode="eval").body
        assert qualified_name(call_result_attr, aliases) is None


class TestEngine:
    def test_discovery_is_sorted_and_skips_pycache(self, tmp_path):
        root = tmp_path / "repo"
        (root / "src" / "__pycache__").mkdir(parents=True)
        (root / "src" / "b.py").write_text("x = 1\n")
        (root / "src" / "a.py").write_text("x = 1\n")
        (root / "src" / "__pycache__" / "a.cpython-311.py").write_text("x = 1\n")
        (root / "src" / "notes.txt").write_text("not python\n")
        assert LintEngine.discover(str(root), ["src"]) == ["src/a.py", "src/b.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            LintEngine.discover(str(tmp_path), ["nope"])

    def test_parse_error_is_a_finding(self):
        live, _ = lint("def broken(:\n")
        assert [f.rule for f in live] == ["parse-error"]

    def test_findings_sorted_and_stable(self, tmp_path):
        root = tmp_path / "repo"
        target = root / "src" / "repro" / "netsim"
        target.mkdir(parents=True)
        (target / "b.py").write_text(WALL_CLOCK_SNIPPET)
        (target / "a.py").write_text("import os\nv = os.getenv('X')\n")
        first = lint_paths(str(root), ["src"])
        second = lint_paths(str(root), ["src"])
        assert [f.to_dict() for f in first.findings] == [f.to_dict() for f in second.findings]
        assert first.findings == sorted(first.findings)
        assert first.files_scanned == 2

    def test_finding_json_round_trip(self):
        live, _ = lint(WALL_CLOCK_SNIPPET)
        (finding,) = live
        assert Finding.from_dict(json.loads(json.dumps(finding.to_dict()))) == finding

    def test_report_schema(self, tmp_path):
        root = tmp_path / "repo"
        target = root / "src" / "repro" / "netsim"
        target.mkdir(parents=True)
        (target / "mod.py").write_text(WALL_CLOCK_SNIPPET)
        data = lint_paths(str(root), ["src"]).to_dict()
        assert data["version"] == 1
        assert data["ok"] is False
        assert data["counts"] == {"wall-clock": 1}
        assert data["suppressed"] == 0 and data["baselined"] == 0
        assert set(data["findings"][0]) == {"file", "line", "column", "rule", "message"}

    def test_obs_counters(self, tmp_path):
        from repro.obs import Observability

        root = tmp_path / "repo"
        target = root / "src" / "repro" / "netsim"
        target.mkdir(parents=True)
        (target / "mod.py").write_text(
            WALL_CLOCK_SNIPPET + "u = time.time()  # lint: disable=wall-clock\n"
        )
        obs = Observability.create()
        report = lint_paths(str(root), ["src"], obs=obs)
        assert len(report.findings) == 1 and len(report.suppressed) == 1
        registry = obs.registry
        assert registry.counter("lint_files_scanned_total").value == 1
        assert registry.counter("lint_findings_total", rule="wall-clock").value == 1
        assert registry.counter("lint_suppressed_total", rule="wall-clock").value == 1
