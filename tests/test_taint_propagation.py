"""Fixture corpus for the taint dataflow analysis (repro.analysis.taint).

Two halves, mirroring the acceptance criteria in docs/TAINT.md:

* ``PLANTED`` -- known-leaky snippets; every single one must be caught
  (100% recall over the corpus is asserted, not per-snippet best effort).
* ``CLEAN`` -- flows through sanitizers, declassification and untainted
  neighbours of tainted values; none may be flagged (precision floor).

Each snippet is analyzed through the filesystem-free
:meth:`TaintEngine.analyze_sources` entry point so the corpus never
touches disk and cannot itself trip the live-tree meta-test.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.framework import BAD_DIRECTIVE, PARSE_ERROR
from repro.analysis.taint import TaintEngine


def analyze(*files):
    """Analyze ``(relpath, source)`` pairs (sources are dedented)."""
    pairs = [(relpath, textwrap.dedent(source)) for relpath, source in files]
    return TaintEngine().analyze_sources(pairs)


def analyze_one(source, relpath="src/repro/demo/mod.py"):
    return analyze((relpath, source))


def live_rules(report):
    return sorted({finding.rule for finding in report.findings})


# ---------------------------------------------------------------------------
# Known-leaky corpus: every entry must produce its expected rule.
# ---------------------------------------------------------------------------

PLANTED = [
    (
        "print-direct",
        """
        def handle(secret):
            print(secret)
        """,
        "taint-print",
    ),
    (
        "log-method",
        """
        import logging

        logger = logging.getLogger(__name__)

        def handle(secret):
            logger.info("payload %s", secret)
        """,
        "taint-log",
    ),
    (
        "warnings-warn",
        """
        import warnings

        def handle(secret):
            warnings.warn(secret)
        """,
        "taint-log",
    ),
    (
        "trace-event",
        """
        def handle(tracer, secret):
            tracer.event("deliver", secret)
        """,
        "taint-trace",
    ),
    (
        "metrics-kwargs",
        """
        def handle(registry, secret):
            registry.counter("deliveries", label=secret)
        """,
        "taint-metrics",
    ),
    (
        "json-dump",
        """
        import json

        def handle(secret):
            return json.dumps({"payload": secret})
        """,
        "taint-persist",
    ),
    (
        "file-write",
        """
        def handle(handle, secret):
            handle.write(secret)
        """,
        "taint-persist",
    ),
    (
        "cache-put",
        """
        def handle(cache, secret):
            cache.put("latest", secret)
        """,
        "taint-persist",
    ),
    (
        "str-format",
        """
        def handle(secret):
            return str(secret)
        """,
        "taint-format",
    ),
    (
        "f-string",
        """
        def handle(secret):
            return f"payload={secret!r}"
        """,
        "taint-format",
    ),
    (
        "raise-exception",
        """
        def handle(secret):
            raise ValueError(secret)
        """,
        "taint-exception",
    ),
    (
        "assert-message",
        """
        def handle(secret, ok):
            assert ok, secret
        """,
        "taint-exception",
    ),
    (
        "assignment-chain",
        """
        def handle(secret):
            staged = secret
            copied = staged
            print(copied)
        """,
        "taint-print",
    ),
    (
        "augmented-assignment",
        """
        def handle(secret):
            buf = b""
            buf += secret
            print(buf)
        """,
        "taint-print",
    ),
    (
        "container-element",
        """
        def handle(secret):
            batch = [secret]
            print(batch[0])
        """,
        "taint-print",
    ),
    (
        "loop-variable",
        """
        def handle(secrets):
            for item in secrets:
                print(item)
        """,
        "taint-print",
    ),
    (
        "f-string-then-print",
        """
        def handle(secret):
            message = "v=" + repr(secret)
            print(message)
        """,
        "taint-print",
    ),
    (
        "self-attribute-flow",
        """
        class Buffer:
            def __init__(self, secret):
                self.data = secret

            def dump(self):
                print(self.data)
        """,
        "taint-print",
    ),
    (
        "dataclass-field-flow",
        """
        from dataclasses import dataclass

        @dataclass
        class Packet:
            payload: bytes
            seq: int

        def handle(secret):
            pkt = Packet(secret, 1)
            print(pkt.payload)
        """,
        "taint-print",
    ),
    (
        "call-into-sink",
        """
        def emit(data):
            print(data)

        def handle(secret):
            emit(secret)
        """,
        "taint-call",
    ),
    (
        "two-level-call-chain",
        """
        def inner(x):
            print(x)

        def outer(y):
            inner(y)

        def handle(secret):
            outer(secret)
        """,
        "taint-call",
    ),
    (
        "return-flow",
        """
        def passthrough(x):
            return x

        def handle(secret):
            staged = passthrough(secret)
            print(staged)
        """,
        "taint-print",
    ),
    (
        "source-call-reconstruct",
        """
        def handle(scheme, shares):
            recovered = scheme.reconstruct(shares)
            print(recovered)
        """,
        "taint-print",
    ),
    (
        "source-call-robust",
        """
        from repro.sharing.robust import robust_reconstruct

        def handle(shares):
            print(robust_reconstruct(shares))
        """,
        "taint-print",
    ),
    (
        "annotated-source",
        """
        def handle(reader):
            material = reader.fetch()  # taint: source=keyfile
            print(material)
        """,
        "taint-print",
    ),
    (
        "annotated-sink",
        """
        def handle(transmit, secret):
            transmit(secret)  # taint: sink=uplink
        """,
        "taint-sink",
    ),
]


@pytest.mark.parametrize(
    "source, expected_rule",
    [(source, rule) for _, source, rule in PLANTED],
    ids=[name for name, _, _ in PLANTED],
)
def test_planted_leak_is_caught(source, expected_rule):
    report = analyze_one(source)
    assert expected_rule in live_rules(report), (
        f"expected {expected_rule}, got {live_rules(report)}: "
        f"{[f.render() for f in report.findings]}"
    )


def test_corpus_recall_is_total():
    """The acceptance bar: 100% of planted leaks caught, not 'most'."""
    missed = []
    for name, source, expected_rule in PLANTED:
        report = analyze_one(source)
        if expected_rule not in live_rules(report):
            missed.append(name)
    assert missed == []


# ---------------------------------------------------------------------------
# Clean corpus: sanitized / declassified / untainted -- zero findings.
# ---------------------------------------------------------------------------

CLEAN = [
    (
        "len-is-sanitized",
        """
        def handle(secret):
            print(len(secret))
        """,
    ),
    (
        "digest-is-sanitized",
        """
        import hashlib

        def handle(secret):
            print(hashlib.sha256(secret).hexdigest())
        """,
    ),
    (
        "redact-bytes-is-sanitized",
        """
        from repro.redact import redact_bytes

        def handle(secret):
            print(redact_bytes(secret))
        """,
    ),
    (
        "split-output-is-shares",
        """
        def handle(scheme, secret, rng):
            shares = scheme.split(secret, 2, 3, rng)
            print(len(shares))
        """,
    ),
    (
        "comparison-declassifies",
        """
        def handle(secret, expected):
            matches = secret == expected
            print(matches)
        """,
    ),
    (
        "enumerate-counter-is-clean",
        """
        def handle(secrets):
            for index, item in enumerate(secrets):
                print(index)
        """,
    ),
    (
        "tuple-unpack-precision",
        """
        def handle(secret):
            hot, cold = secret, 1
            print(cold)
        """,
    ),
    (
        "dataclass-clean-field",
        """
        from dataclasses import dataclass

        @dataclass
        class Packet:
            payload: bytes
            seq: int

        def handle(secret):
            pkt = Packet(secret, 7)
            print(pkt.seq)
        """,
    ),
    (
        "metrics-positional-is-clean",
        """
        def handle(registry, secret):
            registry.counter("deliveries", 1)
        """,
    ),
    (
        "declassified-annotation",
        """
        def handle(mask, secret):
            summary = mask(secret)  # taint: declassified
            print(summary)
        """,
    ),
    (
        "untainted-print",
        """
        def handle(count):
            print("delivered", count)
        """,
    ),
    (
        "directive-in-string-is-inert",
        '''
        DOC = """
        Suppress with  # taint: disable=not-a-rule
        """

        def handle(count):
            return count + 1
        ''',
    ),
]


@pytest.mark.parametrize(
    "source",
    [source for _, source in CLEAN],
    ids=[name for name, _ in CLEAN],
)
def test_clean_snippet_is_not_flagged(source):
    report = analyze_one(source)
    assert report.findings == [], [f.render() for f in report.findings]


# ---------------------------------------------------------------------------
# Cross-module propagation and the directive machinery.
# ---------------------------------------------------------------------------


class TestCrossModule:
    def test_call_edge_across_modules(self):
        report = analyze(
            (
                "src/repro/demo/emitter.py",
                """
                def emit(data):
                    print(data)
                """,
            ),
            (
                "src/repro/demo/caller.py",
                """
                from repro.demo.emitter import emit

                def handle(secret):
                    emit(secret)
                """,
            ),
        )
        rules = live_rules(report)
        assert "taint-call" in rules
        (finding,) = [f for f in report.findings if f.rule == "taint-call"]
        assert finding.file == "src/repro/demo/caller.py"
        assert "emit()" in finding.message
        assert "taint-print" in finding.message

    def test_return_taint_across_modules(self):
        report = analyze(
            (
                "src/repro/demo/producer.py",
                """
                def recover(scheme, shares):
                    return scheme.reconstruct(shares)
                """,
            ),
            (
                "src/repro/demo/consumer.py",
                """
                from repro.demo.producer import recover

                def handle(scheme, shares):
                    print(recover(scheme, shares))
                """,
            ),
        )
        assert "taint-print" in live_rules(report)

    def test_finding_names_its_origin(self):
        report = analyze_one(
            """
            def handle(secret):
                print(secret)
            """
        )
        (finding,) = report.findings
        assert "secret" in finding.message
        assert "origins:" in finding.message


class TestDirectives:
    def test_disable_suppresses_finding(self):
        report = analyze_one(
            """
            def handle(secret):
                # Justified: demonstration fixture, not a real sink.
                print(secret)  # taint: disable=taint-print
            """
        )
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["taint-print"]

    def test_unknown_rule_in_directive_is_flagged(self):
        report = analyze_one(
            """
            def handle(count):
                return count  # taint: disable=no-such-rule
            """
        )
        assert live_rules(report) == [BAD_DIRECTIVE]

    def test_lint_directive_does_not_affect_taint(self):
        """`# lint: disable=` must not silence the taint analyzer."""
        report = analyze_one(
            """
            def handle(secret):
                print(secret)  # lint: disable=taint-print
            """
        )
        assert "taint-print" in live_rules(report)

    def test_parse_error_is_reported(self):
        report = analyze_one("def broken(:\n")
        assert live_rules(report) == [PARSE_ERROR]
        assert not report.ok

    def test_source_annotation_on_def_line(self):
        report = analyze_one(
            """
            def deliver(blob):  # taint: source=blob
                print(blob)
            """
        )
        assert "taint-print" in live_rules(report)


class TestReportShape:
    def test_findings_are_sorted_and_deduplicated(self):
        report = analyze_one(
            """
            def handle(secret):
                print(secret)
                print(secret)
            """
        )
        assert len(report.findings) == 2
        assert report.findings == sorted(report.findings)
        assert len(set(report.findings)) == 2

    def test_rule_counts_and_summary(self):
        report = analyze_one(
            """
            def handle(secret):
                print(secret)
            """
        )
        assert report.rule_counts() == {"taint-print": 1}
        assert "1 finding(s)" in report.summary()
        assert not report.ok
