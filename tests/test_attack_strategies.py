"""Strategic attackers: risk-ranked jamming and targeted symbol corruption."""

from repro.adversary.active import AttackPlan
from repro.adversary.active.engine import AttackStats
from repro.adversary.active.harness import default_channels
from repro.adversary.active.strategies import TargetedCorruptor
from repro.netsim.packet import Datagram
from repro.netsim.rng import RngRegistry
from repro.protocol.remicss import PointToPointNetwork


def make_network(seed=1):
    registry = RngRegistry(seed)
    network = PointToPointNetwork(default_channels(), 64, registry)
    return network, registry


def adaptive_plan(start=1.0, stop=50.0, **overrides):
    params = dict(budget=2, period=1.0, width=1, jam_for=0.5)
    params.update(overrides)
    return AttackPlan().adaptive(start, **params).end_adaptive(stop)


class TestAdaptiveAttacker:
    def test_jams_lowest_risk_channel_first(self):
        network, registry = make_network()
        # default_channels risks are strictly decreasing, so the least
        # risky channel is the last one.
        network.apply_attack(adaptive_plan(), registry)
        network.engine.run_until(2.1)
        assert not network.duplex[4].forward.up
        assert all(network.duplex[i].forward.up for i in range(4))

    def test_explicit_risks_override_ranking(self):
        network, registry = make_network()
        risks = [0.05, 0.5, 0.5, 0.5, 0.5]
        network.apply_attack(adaptive_plan(), registry, risks=risks)
        network.engine.run_until(2.1)
        assert not network.duplex[0].forward.up
        assert all(network.duplex[i].forward.up for i in range(1, 5))

    def test_budget_bounds_total_jams(self):
        network, registry = make_network()
        injector = network.apply_attack(
            adaptive_plan(budget=3, width=5, jam_for=0.1), registry
        )
        network.engine.run_until(60.0)
        assert injector.stats.adaptive_jams == 3

    def test_jams_heal_after_jam_for(self):
        network, registry = make_network()
        network.apply_attack(adaptive_plan(budget=1, jam_for=0.5), registry)
        network.engine.run_until(2.1)
        assert not network.duplex[4].forward.up
        network.engine.run_until(3.0)
        assert network.duplex[4].forward.up

    def test_stop_halts_further_jamming(self):
        network, registry = make_network()
        injector = network.apply_attack(
            adaptive_plan(stop=2.5, budget=100, period=1.0), registry
        )
        network.engine.run_until(30.0)
        # One tick at t=2 fires before the stop at 2.5; none after.
        assert injector.stats.adaptive_jams == 1

    def test_skips_channels_already_down(self):
        network, registry = make_network()
        plan = AttackPlan().jam(0.5, channel=4)
        for event in adaptive_plan(budget=1).events:
            plan.add(event)
        network.apply_attack(plan, registry)
        network.engine.run_until(2.1)
        # Channel 4 (least risky) was pre-jammed, so the adaptive tick
        # moves on to the next-least-risky channel 3.
        assert not network.duplex[3].forward.up


class _StubInjector:
    def __init__(self):
        self.stats = AttackStats()


class TestTargetedCorruptor:
    def share(self, seq, flow=0, forged=False):
        meta = {"seq": seq, "flow": flow}
        if forged:
            meta["forged"] = True
        return Datagram(size=8, payload=b"x" * 8, sent_at=0.0, meta=meta)

    def test_every_period_th_symbol_targeted_on_low_channels(self):
        corruptor = TargetedCorruptor(_StubInjector(), period=3, width=2)
        # Symbols 0 and 3 are targeted (ordinals 0 and 3); 1, 2 are not.
        assert corruptor.should_corrupt(0, self.share(0))
        assert corruptor.should_corrupt(1, self.share(0))
        assert not corruptor.should_corrupt(2, self.share(0))  # beyond width
        assert not corruptor.should_corrupt(0, self.share(1))
        assert not corruptor.should_corrupt(0, self.share(2))
        assert corruptor.should_corrupt(0, self.share(3))

    def test_ordinal_is_sticky_per_symbol(self):
        corruptor = TargetedCorruptor(_StubInjector(), period=2, width=1)
        assert corruptor.should_corrupt(0, self.share(5))
        # Later shares of the same symbol keep its targeting decision.
        assert corruptor.should_corrupt(0, self.share(5))
        assert not corruptor.should_corrupt(0, self.share(6))
        assert not corruptor.should_corrupt(0, self.share(6))

    def test_counts_targeted_symbols_once(self):
        stub = _StubInjector()
        corruptor = TargetedCorruptor(stub, period=2, width=1)
        for _ in range(3):
            corruptor.should_corrupt(0, self.share(0))
        corruptor.should_corrupt(0, self.share(1))
        corruptor.should_corrupt(0, self.share(2))
        assert stub.stats.targeted_symbols == 2  # symbols 0 and 2

    def test_ignores_forged_and_meta_less_packets(self):
        corruptor = TargetedCorruptor(_StubInjector(), period=1, width=5)
        assert not corruptor.should_corrupt(0, self.share(0, forged=True))
        assert not corruptor.should_corrupt(
            0, Datagram(size=8, payload=b"x" * 8, sent_at=0.0)
        )

    def test_flows_tracked_independently(self):
        corruptor = TargetedCorruptor(_StubInjector(), period=2, width=1)
        assert corruptor.should_corrupt(0, self.share(0, flow=1))
        assert not corruptor.should_corrupt(0, self.share(0, flow=2))
        assert corruptor.should_corrupt(0, self.share(1, flow=1))
