"""SweepRunner execution semantics: order, parallelism, isolation, retry."""

import os

import pytest

from repro.obs import Observability
from repro.sweep import SweepError, SweepRunner, SweepSpec, values


def square_point(params, seed):
    """Module-level (picklable) point function used across these tests."""
    return {"square": params["x"] ** 2, "seed": seed}


def flaky_point(params, seed):
    """Fails on the first N calls per point, tracked via a marker file."""
    marker = os.path.join(params["dir"], f"attempts-{params['x']}")
    attempts = 0
    if os.path.exists(marker):
        with open(marker) as handle:
            attempts = int(handle.read())
    with open(marker, "w") as handle:
        handle.write(str(attempts + 1))
    if attempts < params["fail_first"]:
        raise RuntimeError(f"transient failure {attempts}")
    return {"x": params["x"]}


def poison_point(params, seed):
    if params["x"] == 2:
        raise ValueError("poisoned point")
    return {"x": params["x"]}


SPEC = SweepSpec("squares", axes={"x": [1, 2, 3, 4, 5]})


class TestSerial:
    def test_results_in_enumeration_order(self):
        results = SweepRunner().run(SPEC, square_point)
        assert [r.value["square"] for r in results] == [1, 4, 9, 16, 25]
        assert all(r.ok and r.attempts == 1 and not r.cached for r in results)

    def test_stats(self):
        runner = SweepRunner()
        runner.run(SPEC, square_point)
        assert runner.stats.points == 5
        assert runner.stats.computed == 5
        assert runner.stats.cache_hits == 0
        assert runner.stats.failures == 0
        assert "points=5" in runner.stats.summary()

    def test_point_list_accepted(self):
        results = SweepRunner().run(SPEC.points()[:2], square_point)
        assert len(results) == 2


class TestParallel:
    def test_identical_to_serial(self):
        serial = values(SweepRunner(jobs=1).run(SPEC, square_point))
        parallel = values(SweepRunner(jobs=3).run(SPEC, square_point))
        assert parallel == serial

    def test_seeds_derived_from_identity(self):
        # The seed handed to the point function must be the point's own,
        # regardless of which worker ran it.
        results = SweepRunner(jobs=2).run(SPEC, square_point)
        for result in results:
            assert result.value["seed"] == result.point.seed

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


class TestFailureIsolation:
    def test_one_failing_point_does_not_stop_the_sweep(self):
        results = SweepRunner().run(SPEC, poison_point)
        assert [r.ok for r in results] == [True, False, True, True, True]
        failed = results[1]
        assert "poisoned point" in failed.error
        assert failed.value is None
        with pytest.raises(SweepError):
            values(results)

    def test_parallel_failure_isolation(self):
        results = SweepRunner(jobs=2).run(SPEC, poison_point)
        assert [r.ok for r in results] == [True, False, True, True, True]

    def test_failure_counted_in_stats(self):
        runner = SweepRunner()
        runner.run(SPEC, poison_point)
        assert runner.stats.failures == 1
        assert runner.stats.computed == 5


class TestRetry:
    def test_bounded_retry_recovers_transient_failures(self, tmp_path):
        spec = SweepSpec(
            "flaky", axes={"x": [1, 2]},
            base={"dir": str(tmp_path), "fail_first": 2},
        )
        results = SweepRunner(retries=2).run(spec, flaky_point)
        assert all(r.ok for r in results)
        assert all(r.attempts == 3 for r in results)

    def test_retries_exhausted_records_failure(self, tmp_path):
        spec = SweepSpec(
            "flaky2", axes={"x": [1]},
            base={"dir": str(tmp_path), "fail_first": 5},
        )
        runner = SweepRunner(retries=1)
        results = runner.run(spec, flaky_point)
        assert not results[0].ok
        assert results[0].attempts == 2
        assert runner.stats.retries == 1
        assert runner.stats.failures == 1

    def test_invalid_retries_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(retries=-1)


class TestMetrics:
    def test_counters_reach_the_registry(self):
        obs = Observability.create()
        runner = SweepRunner(obs=obs)
        runner.run(SPEC, poison_point)
        registry = obs.registry
        assert registry.counter("sweep_points_total").value == 5
        assert registry.counter("sweep_failures_total").value == 1
        assert registry.counter("sweep_cache_hits_total").value == 0

    def test_counters_accumulate_across_runs(self):
        obs = Observability.create()
        runner = SweepRunner(obs=obs)
        runner.run(SPEC, square_point)
        runner.run(SPEC, square_point)
        assert obs.registry.counter("sweep_points_total").value == 10
