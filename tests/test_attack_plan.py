"""AttackPlan / AttackEvent: validation, builders, spec round-trips."""

import pytest

from repro.adversary.active.plan import ACTIONS, AttackEvent, AttackPlan


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            AttackEvent(-1.0, "jam")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown attack action"):
            AttackEvent(1.0, "teleport")

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError, match="unknown direction"):
            AttackEvent(1.0, "jam", direction="sideways")

    def test_negative_channel_rejected(self):
        with pytest.raises(ValueError, match="channel index"):
            AttackEvent(1.0, "jam", channel=-1)

    def test_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="does not take parameters"):
            AttackEvent(1.0, "jam", params={"rate": 0.5})

    @pytest.mark.parametrize("rate", [0.0, -0.5, 1.5])
    def test_corrupt_rate_must_be_probability(self, rate):
        with pytest.raises(ValueError, match="corrupt rate"):
            AttackEvent(1.0, "corrupt_start", params={"rate": rate})

    def test_corrupt_mode_checked(self):
        with pytest.raises(ValueError, match="corrupt mode"):
            AttackEvent(1.0, "corrupt_start", params={"rate": 0.5, "mode": "melt"})

    def test_forge_needs_positive_rate(self):
        with pytest.raises(ValueError, match="rate"):
            AttackEvent(1.0, "forge_start", params={"rate": 0})

    def test_forge_mode_checked(self):
        with pytest.raises(ValueError, match="forge mode"):
            AttackEvent(1.0, "forge_start", params={"rate": 2.0, "mode": "psychic"})

    def test_replay_tamper_must_be_bool(self):
        with pytest.raises(ValueError, match="tamper"):
            AttackEvent(1.0, "replay_start", params={"rate": 2.0, "tamper": 1})

    def test_adaptive_params_all_required(self):
        with pytest.raises(ValueError, match="budget"):
            AttackEvent(1.0, "adaptive_start", params={"period": 1.0, "width": 1, "jam_for": 1.0})

    def test_adaptive_width_must_be_integer(self):
        with pytest.raises(ValueError, match="integer"):
            AttackEvent(
                1.0, "adaptive_start",
                params={"budget": 4, "period": 1.0, "width": 1.5, "jam_for": 1.0},
            )

    def test_target_period_positive_int(self):
        with pytest.raises(ValueError, match="period"):
            AttackEvent(1.0, "target_start", params={"period": 0, "width": 1})

    def test_stop_events_take_no_params(self):
        for action in ACTIONS:
            if action.endswith("_stop"):
                with pytest.raises(ValueError, match="does not take"):
                    AttackEvent(1.0, action, params={"rate": 0.5})


class TestBuilders:
    def test_fluent_chain_orders_by_insertion(self):
        plan = (
            AttackPlan()
            .corrupt(5.0, rate=0.5, channel=0)
            .end_corrupt(15.0, channel=0)
            .replay(2.0, rate=4.0, tamper=True)
            .end_replay(20.0)
        )
        assert len(plan) == 4
        assert [e.action for e in plan] == [
            "corrupt_start", "corrupt_stop", "replay_start", "replay_stop",
        ]
        assert [e.time for e in plan.sorted_events()] == [2.0, 5.0, 15.0, 20.0]

    def test_corrupt_defaults_forward_direction(self):
        plan = AttackPlan().corrupt(1.0, rate=0.5)
        assert plan.events[0].direction == "fwd"

    def test_replay_defaults_both_directions(self):
        plan = AttackPlan().replay(1.0, rate=2.0)
        assert plan.events[0].direction == "both"

    def test_strategic_builders_target_every_channel(self):
        plan = (
            AttackPlan()
            .adaptive(1.0, budget=8, period=4.0, width=2, jam_for=2.0)
            .end_adaptive(9.0)
            .target(1.0, period=3, width=2)
            .end_target(9.0)
        )
        assert all(event.channel is None for event in plan)

    def test_end_time_and_has_action(self):
        plan = AttackPlan().jam(3.0, channel=1).unjam(7.0, channel=1)
        assert plan.end_time() == 7.0
        assert plan.has_action("jam")
        assert not plan.has_action("forge_start", "replay_start")
        assert AttackPlan().end_time() == 0.0


class TestSpecRoundTrip:
    def test_to_spec_from_spec_identity(self):
        plan = (
            AttackPlan()
            .corrupt(5.0, rate=0.25, mode="rewrite", channel=2)
            .end_corrupt(15.0, channel=2)
            .forge(6.0, rate=3.0, mode="blind", channel=0)
            .hold(1.0, hold=0.5, batch=8, channel=1)
            .adaptive(2.0, budget=4, period=2.0, width=1, jam_for=1.0)
        )
        rebuilt = AttackPlan.from_spec(plan.to_spec())
        assert rebuilt.to_spec() == plan.to_spec()

    def test_json_round_trip(self):
        plan = AttackPlan().replay(4.0, rate=2.0, tamper=True).end_replay(8.0)
        rebuilt = AttackPlan.from_json(plan.to_json())
        assert rebuilt.to_spec() == plan.to_spec()

    def test_from_spec_validates(self):
        with pytest.raises(ValueError, match="unknown attack action"):
            AttackPlan.from_spec([{"time": 1.0, "action": "nope"}])

    def test_spec_omits_defaults(self):
        spec = AttackPlan().jam(3.0).to_spec()
        assert spec == [{"time": 3.0, "action": "jam"}]
