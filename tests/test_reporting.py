"""The text reporting helpers used by the experiment drivers."""

from repro.experiments.reporting import format_table, rows_to_table, summarize_ratio


class TestFormatTable:
    def test_alignment_and_separator(self):
        table = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # Right-justified columns: every line has the same total width.
        assert len({len(line) for line in lines}) == 1

    def test_float_precision(self):
        table = format_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in table
        assert "1.235" not in table

    def test_non_float_values_passed_through(self):
        table = format_table(["x", "y"], [["label", (1, 2)]])
        assert "label" in table
        assert "(1, 2)" in table

    def test_empty_row_list_renders_header_only(self):
        table = format_table(["a", "bb"], [])
        lines = table.splitlines()
        assert len(lines) == 2
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_short_rows_padded(self):
        table = format_table(["a", "b", "c"], [[1], [2, 3]])
        lines = table.splitlines()
        assert len(lines) == 4
        # Every line is the same width despite the ragged input.
        assert len({len(line) for line in lines}) == 1

    def test_long_rows_widen_table(self):
        table = format_table(["a"], [[1, 2, 3]])
        assert "2" in table and "3" in table
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_empty_everything_is_empty_string(self):
        assert format_table([], []) == ""

    def test_rows_with_empty_headers(self):
        table = format_table([], [[1, 2]])
        assert "1" in table and "2" in table


class TestRowsToTable:
    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2.0, "c": 3}, {"a": 4, "b": 5.0, "c": 6}]
        table = rows_to_table(rows, ["c", "a"])
        header = table.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_key_renders_empty(self):
        table = rows_to_table([{"a": 1}], ["a", "zz"])
        assert "zz" in table


class TestSummarizeRatio:
    def test_mean_and_worst(self):
        rows = [
            {"act": 9.0, "opt": 10.0},
            {"act": 8.0, "opt": 10.0},
        ]
        summary = summarize_ratio(rows, "act", "opt")
        assert "0.8500" in summary
        assert "0.8000" in summary
        assert "2 points" in summary

    def test_skips_zero_optimal(self):
        rows = [{"act": 1.0, "opt": 0.0}]
        assert summarize_ratio(rows, "act", "opt") == "no comparable rows"
