"""Unit tests for the metrics registry: counters, gauges, histograms."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    merge_counters,
)


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("sim_x_total", channel="0")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("sim_x_total", {}).inc(-1)

    def test_cached_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("sim_x_total", channel="0")
        b = registry.counter("sim_x_total", channel="0")
        c = registry.counter("sim_x_total", channel="1")
        assert a is b
        assert a is not c

    def test_label_values_coerced_to_str(self):
        registry = MetricsRegistry()
        a = registry.counter("sim_x_total", channel=3)
        b = registry.counter("sim_x_total", channel="3")
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("sim_depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6.0


class TestNaming:
    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "Sim_X", "1abc", "with-dash", "dot.ted"):
            with pytest.raises(ValueError):
                registry.counter(bad)

    def test_same_name_different_type_is_distinct(self):
        registry = MetricsRegistry()
        registry.counter("sim_x")
        registry.gauge("sim_x")  # cached under a different kind key
        samples = registry.snapshot()
        assert [s["type"] for s in samples] == ["counter", "gauge"]


class TestHistogram:
    def test_bucketing_cumulative(self):
        hist = Histogram("sim_lat", {}, buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 1.7, 4.0, 100.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(107.7)
        assert hist.cumulative_buckets() == [
            (1.0, 1),
            (2.0, 3),
            (5.0, 4),
            (math.inf, 5),
        ]
        assert hist.minimum == 0.5
        assert hist.maximum == 100.0

    def test_boundary_value_lands_in_le_bucket(self):
        hist = Histogram("sim_lat", {}, buckets=(1.0, 2.0))
        hist.observe(1.0)  # le="1.0" is inclusive, Prometheus-style
        assert hist.cumulative_buckets()[0] == (1.0, 1)

    def test_empty_histogram_sample(self):
        hist = Histogram("sim_lat", {}, buckets=(1.0,))
        sample = hist.as_sample()
        assert sample["count"] == 0
        assert sample["min"] is None and sample["max"] is None

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("sim_lat", {}, buckets=())
        with pytest.raises(ValueError):
            Histogram("sim_lat", {}, buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("sim_lat", {}, buckets=(1.0, 1.0))


class TestSnapshot:
    def test_deterministic_ordering(self):
        registry = MetricsRegistry()
        registry.counter("sim_b_total").inc()
        registry.counter("sim_a_total", z="2").inc()
        registry.counter("sim_a_total", z="1").inc()
        names = [(s["name"], s["labels"]) for s in registry.snapshot()]
        assert names == [
            ("sim_a_total", {"z": "1"}),
            ("sim_a_total", {"z": "2"}),
            ("sim_b_total", {}),
        ]

    def test_collectors_run_before_snapshot(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("sim_pull")
        state = {"v": 0}
        registry.register_collector(lambda: gauge.set(state["v"]))
        state["v"] = 42
        (sample,) = registry.snapshot()
        assert sample["value"] == 42.0

    def test_merge_counters_helper(self):
        registry = MetricsRegistry()
        registry.counter("sim_x_total", c="0").inc(2)
        registry.counter("sim_x_total", c="1").inc(3)
        assert merge_counters(registry.snapshot(), "sim_x_total") == 5.0


class TestNullRegistry:
    def test_everything_is_noop(self):
        registry = NullRegistry()
        assert registry.enabled is False
        counter = registry.counter("sim_x_total")
        gauge = registry.gauge("sim_y")
        hist = registry.histogram("sim_z")
        counter.inc()
        gauge.set(3)
        gauge.dec()
        hist.observe(1.0)
        registry.register_collector(lambda: 1 / 0)  # must never run
        assert registry.snapshot() == []

    def test_shared_instrument(self):
        registry = NullRegistry()
        assert registry.counter("sim_a") is registry.gauge("sim_b")
