"""Adversary: eavesdropping, ground-truth reconstruction, Monte-Carlo checks."""

import pytest

from repro.adversary.eavesdropper import Eavesdropper
from repro.adversary.montecarlo import (
    estimate_schedule_properties,
    estimate_subset_properties,
)
from repro.core.channel import ChannelSet
from repro.core.optimal import max_privacy_risk
from repro.core.properties import subset_loss, subset_risk
from repro.core.schedule import ShareSchedule
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork
from repro.sharing.shamir import ShamirScheme


def run_with_adversary(risks, kappa, mu, symbols=3000, seed=5):
    """Send symbols through the protocol with an eavesdropper attached."""
    n = len(risks)
    channels = ChannelSet.from_vectors(
        risks=risks,
        losses=[0.0] * n,
        delays=[0.001] * n,
        rates=[100.0] * n,
    )
    registry = RngRegistry(seed)
    network = PointToPointNetwork(channels, 64, registry)
    config = ProtocolConfig(kappa=kappa, mu=mu, symbol_size=64)
    node_a, node_b = network.node_pair(config, registry)
    adversary = Eavesdropper(
        links=[duplex.forward for duplex in network.duplex],
        risks=risks,
        rng=registry.stream("adversary"),
        scheme=ShamirScheme(),
    )
    originals = {}
    payload_rng = registry.stream("payloads")
    sent = {"count": 0}

    def offer():
        payload = payload_rng.bytes(64)
        if node_a.send(payload):
            originals[sent["count"]] = payload
            sent["count"] += 1

    t = 0.0
    engine = network.engine
    # Offer well below capacity so every symbol is transmitted.
    for _ in range(symbols):
        engine.schedule_at(t, offer)
        t += 0.02
    engine.run_until(t + 5.0)
    return adversary, originals, node_a


class TestEavesdropper:
    def test_empirical_risk_matches_model(self):
        risks = [0.3, 0.5, 0.4]
        adversary, originals, node_a = run_with_adversary(risks, kappa=2.0, mu=3.0)
        channels = ChannelSet.from_vectors(
            risks=risks, losses=[0.0] * 3, delays=[0.0] * 3, rates=[1.0] * 3
        )
        predicted = subset_risk(channels, 2, [0, 1, 2])
        empirical = adversary.compromise_rate(node_a.sender.stats.symbols_sent)
        assert empirical == pytest.approx(predicted, abs=0.03)

    def test_reconstructed_plaintexts_are_correct(self):
        adversary, originals, _ = run_with_adversary(
            [0.5, 0.5, 0.5], kappa=2.0, mu=3.0, symbols=500
        )
        assert adversary.compromised_count() > 0
        assert adversary.verify_plaintexts(originals)

    def test_zero_risk_channels_leak_nothing(self):
        adversary, _, _ = run_with_adversary([0.0, 0.0, 0.0], kappa=1.0, mu=1.0, symbols=200)
        assert adversary.compromised_count() == 0
        assert adversary.shares_captured == 0

    def test_full_risk_with_k1_compromises_everything(self):
        adversary, _, node = run_with_adversary([1.0, 1.0, 1.0], kappa=1.0, mu=1.0, symbols=200)
        assert adversary.compromised_count() == node.sender.stats.symbols_sent

    def test_higher_kappa_reduces_compromise(self):
        rates = {}
        for kappa in (1.0, 3.0):
            adversary, _, node = run_with_adversary(
                [0.4, 0.4, 0.4], kappa=kappa, mu=3.0, symbols=1500
            )
            rates[kappa] = adversary.compromise_rate(node.sender.stats.symbols_sent)
        assert rates[3.0] < rates[1.0]

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            Eavesdropper(links=[], risks=[0.5], rng=rng)


class TestMonteCarloEstimators:
    def test_subset_estimates_match_formulas(self, five_channels, rng):
        estimate = estimate_subset_properties(five_channels, 3, [0, 1, 2, 3], rng, samples=150_000)
        assert estimate.risk == pytest.approx(
            subset_risk(five_channels, 3, [0, 1, 2, 3]), abs=0.01
        )
        assert estimate.loss == pytest.approx(
            subset_loss(five_channels, 3, [0, 1, 2, 3]), abs=0.01
        )

    def test_schedule_estimates_match_formulas(self, five_channels, rng):
        schedule = ShareSchedule(
            five_channels,
            {(1, frozenset({0, 4})): 0.4, (3, frozenset({0, 1, 2, 3, 4})): 0.6},
        )
        estimate = estimate_schedule_properties(schedule, rng, samples=150_000)
        assert estimate.risk == pytest.approx(schedule.privacy_risk(), abs=0.01)
        assert estimate.loss == pytest.approx(schedule.loss(), abs=0.01)
        assert estimate.delay == pytest.approx(schedule.delay(), rel=0.05)

    def test_max_privacy_schedule_estimate(self, five_channels, rng):
        value, schedule = max_privacy_risk(five_channels)
        estimate = estimate_schedule_properties(schedule, rng, samples=300_000)
        assert estimate.risk == pytest.approx(value, abs=0.005)

    def test_invalid_subset_rejected(self, five_channels, rng):
        with pytest.raises(ValueError):
            estimate_subset_properties(five_channels, 3, [0, 1], rng)
