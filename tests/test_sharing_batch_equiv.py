"""Batch-vs-scalar equivalence for the whole sharing pipeline.

The vectorized kernels in :mod:`repro.gf.batch` power ``split`` and
``reconstruct`` for the GF(2^8) schemes; :mod:`repro.sharing.reference`
keeps the byte-at-a-time scalar oracle.  This suite asserts the two are
*bit-identical* -- not approximately equal -- for every scheme (xor,
shamir, ramp, blakley, robust), payload lengths including 0, 1, and
non-multiples of the ramp block size, and every ``(k, n)`` with
``1 <= k <= n <= 10``; and that any k-subset of shares reconstructs.

Exactness is load-bearing: the privacy model treats share bytes as exact
field elements (``H(Y) = H(X)``, Sec. III-C), so a vectorization bug that
perturbed even one byte would silently invalidate the leakage analysis
rather than fail loudly.
"""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharing.base import Share
from repro.sharing.blakley import BlakleyScheme
from repro.sharing.ramp import RampScheme
from repro.sharing.reference import (
    scalar_evaluate_shares_at,
    scalar_ramp_reconstruct,
    scalar_ramp_split,
    scalar_shamir_reconstruct,
    scalar_shamir_split,
)
from repro.sharing.robust import evaluate_shares_at, robust_reconstruct
from repro.sharing.shamir import ShamirScheme
from repro.sharing.xor import XorScheme

#: Every threshold geometry the protocol model can ask for at n <= 10.
ALL_KN = [(k, n) for n in range(1, 11) for k in range(1, n + 1)]

#: Payload lengths: empty, single byte, a prime (non-multiple of any ramp
#: block size), and a round block.
PAYLOAD_LENGTHS = [0, 1, 37, 64]


def payload_of(length: int, seed: int) -> bytes:
    return np.random.default_rng(seed).integers(0, 256, size=length, dtype=np.uint8).tobytes()


def share_bytes(shares) -> list:
    return [s.data for s in shares]


class TestShamirEquivalence:
    @pytest.mark.parametrize("k,n", ALL_KN)
    def test_split_bit_identical_to_scalar(self, k, n):
        scheme = ShamirScheme()
        for length in PAYLOAD_LENGTHS:
            secret = payload_of(length, seed=1000 + 31 * k + n)
            batch = scheme.split(secret, k, n, np.random.default_rng(42))
            scalar = scalar_shamir_split(secret, k, n, np.random.default_rng(42))
            assert share_bytes(batch) == share_bytes(scalar)

    @pytest.mark.parametrize("k,n", ALL_KN)
    def test_every_k_subset_reconstructs(self, k, n):
        scheme = ShamirScheme()
        secret = payload_of(37, seed=2000 + 31 * k + n)
        shares = scheme.split(secret, k, n, np.random.default_rng(7))
        for subset in combinations(shares, k):
            assert scheme.reconstruct(list(subset)) == secret

    @pytest.mark.parametrize("k,n", ALL_KN)
    def test_reconstruct_bit_identical_to_scalar(self, k, n):
        scheme = ShamirScheme()
        secret = payload_of(37, seed=3000 + 31 * k + n)
        shares = scheme.split(secret, k, n, np.random.default_rng(9))
        # Scalar interpolation is per-byte Python; spot-check one subset
        # per geometry (the full-subset sweep above uses the batch path).
        subset = list(shares)[n - k :]
        assert scheme.reconstruct(subset) == scalar_shamir_reconstruct(subset) == secret

    @given(
        secret=st.binary(min_size=0, max_size=300),
        k=st.integers(min_value=1, max_value=10),
        extra=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_split_equivalence_property(self, secret, k, extra, seed):
        scheme = ShamirScheme()
        m = k + extra
        batch = scheme.split(secret, k, m, np.random.default_rng(seed))
        scalar = scalar_shamir_split(secret, k, m, np.random.default_rng(seed))
        assert share_bytes(batch) == share_bytes(scalar)
        assert scheme.reconstruct(batch[extra:]) == secret

    def test_split_many_bit_identical_to_sequential(self):
        scheme = ShamirScheme()
        secrets = [payload_of(length, seed=50 + length) for length in (0, 1, 37, 64, 128)]
        batched = scheme.split_many(secrets, 3, 5, np.random.default_rng(11))
        sequential_rng = np.random.default_rng(11)
        sequential = [scheme.split(secret, 3, 5, sequential_rng) for secret in secrets]
        assert [share_bytes(g) for g in batched] == [share_bytes(g) for g in sequential]

    def test_reconstruct_many_matches_per_group(self):
        scheme = ShamirScheme()
        secrets = [payload_of(length, seed=60 + length) for length in (0, 5, 37, 37)]
        groups = []
        for i, secret in enumerate(secrets):
            shares = scheme.split(secret, 3, 5, np.random.default_rng(70 + i))
            groups.append(shares[i % 3 : i % 3 + 3])
        assert scheme.reconstruct_many(groups) == [scheme.reconstruct(g) for g in groups]
        assert scheme.reconstruct_many([]) == []

    def test_split_many_empty_batch(self):
        assert ShamirScheme().split_many([], 2, 3, np.random.default_rng(0)) == []


class TestRampEquivalence:
    @pytest.mark.parametrize("blocks", [1, 2, 3])
    def test_split_bit_identical_to_scalar(self, blocks):
        scheme = RampScheme(blocks=blocks)
        for k, n in ALL_KN:
            if k < blocks:
                continue
            for length in PAYLOAD_LENGTHS:
                secret = payload_of(length, seed=4000 + 31 * k + n + length)
                batch = scheme.split(secret, k, n, np.random.default_rng(13))
                scalar = scalar_ramp_split(
                    secret, k, n, np.random.default_rng(13), blocks=blocks
                )
                assert share_bytes(batch) == share_bytes(scalar)

    @pytest.mark.parametrize("blocks", [2, 3])
    def test_reconstruct_bit_identical_to_scalar(self, blocks):
        scheme = RampScheme(blocks=blocks)
        for k, n in ALL_KN:
            if k < blocks:
                continue
            # 37 is a non-multiple of every block size in play.
            secret = payload_of(37, seed=5000 + 31 * k + n)
            shares = scheme.split(secret, k, n, np.random.default_rng(17))
            subset = list(shares)[n - k :]
            assert (
                scheme.reconstruct(subset)
                == scalar_ramp_reconstruct(subset, blocks=blocks)
                == secret
            )

    def test_every_k_subset_reconstructs(self):
        scheme = RampScheme(blocks=2)
        for k, n in ALL_KN:
            if k < 2:
                continue
            secret = payload_of(23, seed=6000 + 31 * k + n)
            shares = scheme.split(secret, k, n, np.random.default_rng(19))
            for subset in combinations(shares, k):
                assert scheme.reconstruct(list(subset)) == secret

    def test_blocks_one_degenerates_to_shamir_arithmetic(self):
        # L=1 ramp is Shamir plus a length prefix; both must ride the same
        # batch kernels and agree with the scalar oracle.
        scheme = RampScheme(blocks=1)
        secret = payload_of(37, seed=77)
        batch = scheme.split(secret, 3, 5, np.random.default_rng(21))
        scalar = scalar_ramp_split(secret, 3, 5, np.random.default_rng(21), blocks=1)
        assert share_bytes(batch) == share_bytes(scalar)
        assert scheme.reconstruct(batch[2:]) == secret


class TestRobustEquivalence:
    @pytest.mark.parametrize("k,n", [(k, n) for k, n in ALL_KN if n >= k + 2])
    def test_evaluate_shares_bit_identical_to_scalar(self, k, n):
        scheme = ShamirScheme()
        secret = payload_of(29, seed=7000 + 31 * k + n)
        shares = scheme.split(secret, k, n, np.random.default_rng(23))[:k]
        for x in (0, k + 1, 200, 255):
            assert evaluate_shares_at(shares, x) == scalar_evaluate_shares_at(shares, x)

    def test_robust_reconstruct_matches_scalar_under_corruption(self):
        scheme = ShamirScheme()
        for k, n in [(2, 6), (3, 7), (3, 10), (4, 10)]:
            secret = payload_of(41, seed=8000 + 31 * k + n)
            shares = scheme.split(secret, k, n, np.random.default_rng(29))
            radius = (n - k) // 2
            corrupted = list(shares)
            for i in range(radius):
                flipped = bytes([corrupted[i].data[0] ^ 0x5A]) + corrupted[i].data[1:]
                corrupted[i] = Share(index=corrupted[i].index, data=flipped, k=k, m=n)
            result = robust_reconstruct(corrupted)
            assert result.secret == secret
            assert result.secret == scalar_shamir_reconstruct(shares[radius : radius + k])
            assert result.corrupted == frozenset(s.index for s in shares[:radius])

    def test_zero_length_payload(self):
        scheme = ShamirScheme()
        shares = scheme.split(b"", 2, 6, np.random.default_rng(31))
        assert robust_reconstruct(shares).secret == b""
        assert evaluate_shares_at(shares[:2], 0) == b"" == scalar_evaluate_shares_at(shares[:2], 0)


class TestXorEquivalence:
    @pytest.mark.parametrize("n", list(range(1, 11)))
    def test_roundtrip_and_determinism(self, n):
        scheme = XorScheme()
        for length in PAYLOAD_LENGTHS:
            secret = payload_of(length, seed=9000 + n + length)
            first = scheme.split(secret, n, n, np.random.default_rng(37))
            second = scheme.split(secret, n, n, np.random.default_rng(37))
            # XOR has no separate batch path; the invariant is determinism
            # plus exact reconstruction from the full (only) share set.
            assert share_bytes(first) == share_bytes(second)
            assert scheme.reconstruct(first) == secret

    def test_split_many_matches_sequential(self):
        scheme = XorScheme()
        secrets = [payload_of(length, seed=90 + length) for length in (0, 1, 37)]
        batched = scheme.split_many(secrets, 4, 4, np.random.default_rng(41))
        rng = np.random.default_rng(41)
        sequential = [scheme.split(secret, 4, 4, rng) for secret in secrets]
        assert [share_bytes(g) for g in batched] == [share_bytes(g) for g in sequential]
        assert scheme.reconstruct_many(batched) == secrets


class TestBlakleyEquivalence:
    # Blakley is big-integer Python either way (no batch path); the grid
    # still runs to n = 10 to honour the (k, n) contract, with a short
    # secret so the general-position sweep stays quick.
    @pytest.mark.parametrize("k,n", [(k, n) for k, n in ALL_KN if k <= 4])
    def test_roundtrip_determinism_and_k_subsets(self, k, n):
        scheme = BlakleyScheme(max_secret_len=8)
        secret = payload_of(min(8, 1 + k), seed=10000 + 31 * k + n)
        first = scheme.split(secret, k, n, np.random.default_rng(43))
        second = scheme.split(secret, k, n, np.random.default_rng(43))
        assert share_bytes(first) == share_bytes(second)
        for subset in combinations(first, k):
            assert scheme.reconstruct(list(subset)) == secret

    def test_empty_and_single_byte_payloads(self):
        scheme = BlakleyScheme(max_secret_len=8)
        for secret in (b"", b"\xff"):
            shares = scheme.split(secret, 3, 5, np.random.default_rng(47))
            assert scheme.reconstruct(shares[1:4]) == secret
