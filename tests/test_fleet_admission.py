"""Per-tenant admission: κ floors, quotas, deterministic decisions."""

import pytest

from repro.fleet import AdmissionController, FlowSpec, Tenant

GOLD = Tenant(name="gold", min_kappa=2.0, max_flows=2)
OPEN = Tenant(name="open", min_kappa=1.0)


def flow(flow_id, tenant="open", kappa=1.0, mu=2.0):
    return FlowSpec(flow=flow_id, tenant=tenant, kappa=kappa, mu=mu)


class TestDecisions:
    def test_admits_at_or_above_floor(self):
        controller = AdmissionController([GOLD])
        assert controller.admit(flow(1, "gold", kappa=2.0, mu=3.0)) is None
        assert controller.stats.admitted == 1

    def test_rejects_below_kappa_floor(self):
        controller = AdmissionController([GOLD])
        assert controller.admit(flow(1, "gold", kappa=1.5, mu=3.0)) == "kappa_floor"
        assert controller.stats.rejected["kappa_floor"] == 1
        assert controller.stats.admitted == 0

    def test_rejects_unknown_tenant(self):
        controller = AdmissionController([GOLD])
        assert controller.admit(flow(1, "open")) == "unknown_tenant"

    def test_quota_enforced_in_admission_order(self):
        controller = AdmissionController([GOLD])
        assert controller.admit(flow(1, "gold", kappa=2.0, mu=3.0)) is None
        assert controller.admit(flow(2, "gold", kappa=2.0, mu=3.0)) is None
        assert controller.admit(flow(3, "gold", kappa=2.0, mu=3.0)) == "quota"
        assert controller.flows_admitted("gold") == 2

    def test_rejected_flows_do_not_consume_quota(self):
        controller = AdmissionController([GOLD])
        controller.admit(flow(1, "gold", kappa=1.0, mu=3.0))  # below floor
        assert controller.flows_admitted("gold") == 0

    def test_duplicate_tenant_rejected(self):
        with pytest.raises(ValueError, match="duplicate tenant"):
            AdmissionController([OPEN, OPEN])


class TestFilter:
    def test_decides_in_flow_id_order_regardless_of_input_order(self):
        # Quota 2: with id-ordered decisions, flows 1 and 2 win no matter
        # how the input is shuffled.
        flows = [flow(3, "gold", kappa=2.0, mu=3.0),
                 flow(1, "gold", kappa=2.0, mu=3.0),
                 flow(2, "gold", kappa=2.0, mu=3.0)]
        for ordering in (flows, flows[::-1]):
            controller = AdmissionController([GOLD])
            admitted, rejected = controller.filter(ordering)
            assert [f.flow for f in admitted] == [1, 2]
            assert rejected == {3: "quota"}

    def test_mixed_reasons(self):
        controller = AdmissionController([GOLD, OPEN])
        admitted, rejected = controller.filter(
            [
                flow(1, "open"),
                flow(2, "gold", kappa=1.0, mu=3.0),
                flow(3, "nobody"),
            ]
        )
        assert [f.flow for f in admitted] == [1]
        assert rejected == {2: "kappa_floor", 3: "unknown_tenant"}
        assert controller.stats.as_dict() == {
            "admitted": 1,
            "rejected": {"unknown_tenant": 1, "kappa_floor": 1, "quota": 0},
        }
