"""Erasure-mode robust decoding: the full m - k radius, seeded.

Property suite for :func:`repro.sharing.robust.reconstruct_with_erasures`
(docs/AUTH.md): with every bad position *located* (a failed MAC names its
share index), recovery holds with up to ``m - k`` corrupted channels --
double the unique-decoding radius ``floor((m - k) / 2)`` -- and one past
the radius is refused, never silently wrong.  All draws are seeded and
replayed, so every property doubles as a byte-identical determinism pin.
"""

import numpy as np
import pytest

from repro.sharing.base import ReconstructionError, Share
from repro.sharing.robust import (
    max_correctable_errors,
    max_recoverable_erasures,
    reconstruct_with_erasures,
    robust_reconstruct,
)
from repro.sharing.shamir import ShamirScheme

scheme = ShamirScheme()

GEOMETRIES = [(2, 3), (2, 4), (3, 5), (2, 6), (3, 7), (5, 8), (4, 4)]


def rewrite(share, rng):
    data = bytes(rng.integers(0, 256, size=len(share.data), dtype=np.uint8))
    if data == share.data:
        data = bytes([data[0] ^ 0xFF]) + data[1:]
    return Share(index=share.index, data=data, k=share.k, m=share.m)


class TestErasureRadius:
    @pytest.mark.parametrize("k,m", GEOMETRIES)
    def test_erasures_cost_half_of_errors(self, k, m):
        assert max_recoverable_erasures(m, k) == m - k
        assert max_recoverable_erasures(m, k) >= 2 * max_correctable_errors(m, k)

    @pytest.mark.parametrize("k,m", GEOMETRIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_full_radius_recovery(self, k, m, seed):
        # Corrupt m - k shares *and tell the decoder which*: recovery must
        # hold at the full erasure radius, where unique decoding would
        # already have failed for any radius > floor((m - k) / 2).
        rng = np.random.default_rng(seed)
        secret = bytes(rng.integers(0, 256, size=32, dtype=np.uint8))
        shares = scheme.split(secret, k, m, rng)
        erased = set()
        for position in rng.permutation(m)[: m - k]:
            shares[position] = rewrite(shares[position], rng)
            erased.add(shares[position].index)
        result = reconstruct_with_erasures(shares, erasures=erased)
        assert result.secret == secret
        assert result.corrupted == frozenset(erased)
        assert result.agreement == k

    @pytest.mark.parametrize("k,m", GEOMETRIES)
    def test_one_past_the_radius_is_refused(self, k, m):
        rng = np.random.default_rng(9)
        shares = scheme.split(b"one past the erasure radius", k, m, rng)
        erased = {share.index for share in shares[: m - k + 1]}
        with pytest.raises(ReconstructionError):
            reconstruct_with_erasures(shares, erasures=erased)

    def test_unlocated_corruption_among_survivors_is_detected(self):
        # errors=0 promises every survivor is verified; a survivor that
        # nonetheless disagrees must be refused, never folded in.
        rng = np.random.default_rng(11)
        shares = scheme.split(b"survivor corruption detected", 2, 5, rng)
        shares[3] = rewrite(shares[3], rng)
        with pytest.raises(ReconstructionError):
            reconstruct_with_erasures(shares, erasures={shares[0].index})

    def test_combined_errors_and_erasures(self):
        # n - t >= k + 2e: with m = 6, k = 3, one erasure and one residual
        # error among the survivors, the candidate search still recovers
        # and the located error unions with the erasure.
        rng = np.random.default_rng(13)
        secret = b"errors and erasures compose."
        shares = scheme.split(secret, 3, 6, rng)
        shares[0] = rewrite(shares[0], rng)  # known bad: erased
        shares[4] = rewrite(shares[4], rng)  # unlocated residual error
        result = reconstruct_with_erasures(
            shares, erasures={shares[0].index}, errors=1
        )
        assert result.secret == secret
        assert result.corrupted == {shares[0].index, shares[4].index}

    def test_combined_budget_is_enforced(self):
        # 5 shares, 1 erasure, 1 residual error: 4 survivors < k + 2e = 5.
        rng = np.random.default_rng(15)
        shares = scheme.split(b"insufficient combined budget", 3, 5, rng)
        with pytest.raises(ReconstructionError):
            reconstruct_with_erasures(shares, erasures={shares[0].index}, errors=1)

    def test_all_shares_erased_is_refused(self):
        rng = np.random.default_rng(17)
        shares = scheme.split(b"nothing survives", 2, 3, rng)
        with pytest.raises(ReconstructionError):
            reconstruct_with_erasures(shares, erasures={s.index for s in shares})

    def test_erasing_nothing_matches_plain_robust_decode(self):
        rng = np.random.default_rng(19)
        shares = scheme.split(b"no erasures, same answer", 3, 5, rng)
        plain = robust_reconstruct(shares, errors=0)
        erasure_mode = reconstruct_with_erasures(shares)
        assert erasure_mode.secret == plain.secret
        assert erasure_mode.agreement == plain.agreement


class TestSeededReplay:
    @pytest.mark.parametrize("k,m", [(3, 5), (2, 6), (4, 4)])
    def test_same_seed_replay_is_byte_identical(self, k, m):
        def run(seed):
            rng = np.random.default_rng(seed)
            secret = bytes(rng.integers(0, 256, size=48, dtype=np.uint8))
            shares = scheme.split(secret, k, m, rng)
            erased = set()
            for position in rng.permutation(m)[: m - k]:
                shares[position] = rewrite(shares[position], rng)
                erased.add(shares[position].index)
            result = reconstruct_with_erasures(shares, erasures=erased)
            return secret, result.secret, sorted(result.corrupted)

        assert run(23) == run(23)
        secret, recovered, _ = run(23)
        assert recovered == secret
