"""End-to-end integration: protocol + simulator + model + adversary together."""

import numpy as np
import pytest

from repro.core.channel import ChannelSet
from repro.core.program import Objective, optimal_schedule
from repro.core.properties import subset_loss
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.micss import MicssNode
from repro.protocol.remicss import PointToPointNetwork
from repro.sharing.blakley import BlakleyScheme
from repro.workloads.setups import lossy_setup


def run_stream(channels, config, symbols, rate, seed=1, schedule=None, drain=20.0,
               fault_plan=None):
    """Send a stream of random payloads; return (sent list, delivered dict, nodes)."""
    registry = RngRegistry(seed)
    network = PointToPointNetwork(channels, config.symbol_size, registry)
    if fault_plan is not None:
        network.apply_faults(fault_plan)
    node_a, node_b = network.node_pair(config, registry, schedule=schedule)
    delivered = {}
    node_b.on_deliver(lambda seq, payload, delay: delivered.__setitem__(seq, payload))
    payload_rng = registry.stream("payloads")
    sent = []

    def offer():
        payload = payload_rng.bytes(config.symbol_size)
        if node_a.send(payload):
            sent.append(payload)

    engine = network.engine
    t = 0.0
    for _ in range(symbols):
        engine.schedule_at(t, offer)
        t += 1.0 / rate
    engine.run_until(t + drain)
    return sent, delivered, (node_a, node_b)


class TestEndToEndIntegrity:
    def test_every_delivered_symbol_is_intact(self):
        channels = lossy_setup()
        config = ProtocolConfig(kappa=2.0, mu=3.0, symbol_size=200)
        sent, delivered, _ = run_stream(channels, config, symbols=800, rate=50.0)
        assert len(delivered) > 700
        for seq, payload in delivered.items():
            assert payload == sent[seq]

    def test_loss_rate_matches_subset_formula(self):
        # Fixed integer (k, m): symbol loss should match l(k, M) for the
        # channels the dynamic scheduler actually picks.  With identical
        # loss on all channels the subset does not matter.
        channels = ChannelSet.from_vectors(
            risks=[0.0] * 4,
            losses=[0.1] * 4,
            delays=[0.01] * 4,
            rates=[100.0] * 4,
        )
        config = ProtocolConfig(kappa=2.0, mu=3.0, symbol_size=100,
                                reassembly_timeout=10.0)
        sent, delivered, _ = run_stream(channels, config, symbols=4000, rate=100.0)
        expected = subset_loss(channels, 2, [0, 1, 2])
        measured = 1.0 - len(delivered) / len(sent)
        assert measured == pytest.approx(expected, abs=0.015)

    def test_explicit_lp_schedule_end_to_end(self):
        channels = lossy_setup()
        schedule = optimal_schedule(channels, Objective.LOSS, 2.0, 3.0, at_max_rate=True)
        config = ProtocolConfig(kappa=2.0, mu=3.0, symbol_size=200)
        sent, delivered, (node_a, _) = run_stream(
            channels, config, symbols=1000, rate=60.0, schedule=schedule
        )
        assert len(delivered) > 900
        for seq, payload in delivered.items():
            assert payload == sent[seq]
        # Channel usage follows the LP schedule's proportions.
        usage = np.array(node_a.sender.shares_per_channel, dtype=float)
        usage /= usage.sum()
        target = schedule.channel_usage() / schedule.channel_usage().sum()
        np.testing.assert_allclose(usage, target, atol=0.05)

    def test_blakley_scheme_end_to_end(self):
        channels = ChannelSet.from_vectors(
            risks=[0.0] * 3, losses=[0.0] * 3, delays=[0.01] * 3, rates=[200.0] * 3
        )
        config = ProtocolConfig(
            kappa=2.0, mu=3.0, symbol_size=48, scheme=BlakleyScheme(max_secret_len=48)
        )
        sent, delivered, _ = run_stream(channels, config, symbols=100, rate=20.0)
        assert len(delivered) == 100
        for seq, payload in delivered.items():
            assert payload == sent[seq]

    def test_determinism_end_to_end(self):
        channels = lossy_setup()
        config = ProtocolConfig(kappa=2.0, mu=3.5, symbol_size=100)
        a = run_stream(channels, config, symbols=300, rate=40.0, seed=3)
        b = run_stream(channels, config, symbols=300, rate=40.0, seed=3)
        assert set(a[1]) == set(b[1])
        assert a[1] == b[1]


class TestFaultToleranceEndToEnd:
    """The protocol + simulator + fault layer together (see also
    tests/test_netsim_faults.py for the per-scenario matrix)."""

    def test_flap_plus_burst_degrades_gracefully(self):
        from repro.netsim.faults import FaultPlan

        channels = lossy_setup()
        config = ProtocolConfig(kappa=2.0, mu=3.0, symbol_size=100)
        plan = (
            FaultPlan()
            .flap(4, period=4.0, down_for=1.5, start=3.0, stop=12.0)
            .burst(3.0, p_bad=0.1, p_good=0.3, loss_bad=0.9, channel=2)
            .end_burst(12.0, channel=2)
        )
        baseline = run_stream(channels, config, symbols=800, rate=50.0, seed=6)
        faulted = run_stream(channels, config, symbols=800, rate=50.0, seed=6,
                             fault_plan=plan)
        # Faults cost symbols but never integrity, and never wedge the run.
        assert 0 < len(faulted[1]) <= len(baseline[1])
        for seq, payload in faulted[1].items():
            assert payload == faulted[0][seq]
        # Deliveries continue after every fault has healed (t=12).
        node_b = faulted[2][1]
        assert node_b.receiver.stats.symbols_delivered == len(faulted[1])
        assert node_b.receiver.pending == 0  # reassembly table fully drained

    def test_partition_heal_resumes_and_matches_baseline_loss_model(self):
        from repro.netsim.faults import FaultPlan

        channels = lossy_setup()
        config = ProtocolConfig(kappa=2.0, mu=3.0, symbol_size=100)
        plan = FaultPlan().partition(5.0).heal(8.0)
        sent, delivered, (node_a, node_b) = run_stream(
            channels, config, symbols=800, rate=50.0, seed=7, fault_plan=plan
        )
        assert len(delivered) > 0
        assert node_b.receiver.pending == 0
        # The source queue shed load during the outage but the pipeline
        # recovered: sender counters stay conserved.
        s = node_a.sender.stats
        assert s.symbols_offered == s.symbols_sent + s.source_drops + node_a.sender.backlog


class TestMicssVsRemicss:
    """The Sec. V comparison: best-effort threshold transport vs MICSS."""

    def _channels(self):
        return ChannelSet.from_vectors(
            risks=[0.0] * 3,
            losses=[0.05, 0.05, 0.05],
            delays=[0.05] * 3,
            rates=[50.0] * 3,
        )

    def test_remicss_needs_no_retransmission_when_k_below_m(self):
        channels = self._channels()
        config = ProtocolConfig(kappa=2.0, mu=3.0, symbol_size=100,
                                reassembly_timeout=10.0)
        sent, delivered, _ = run_stream(channels, config, symbols=1000, rate=30.0)
        expected_loss = subset_loss(channels, 2, [0, 1, 2])
        measured = 1.0 - len(delivered) / len(sent)
        # Loses only the l(2, M) fraction with zero retransmissions.
        assert measured == pytest.approx(expected_loss, abs=0.015)

    def test_micss_delivers_everything_but_retransmits(self):
        channels = self._channels()
        registry = RngRegistry(2)
        network = PointToPointNetwork(channels, 100, registry)
        node_a = MicssNode(
            network.engine, network.ports_a_out, network.ports_a_in, 100, registry,
            name="a",
        )
        node_b = MicssNode(
            network.engine, network.ports_b_out, network.ports_b_in, 100, registry,
            name="b",
        )
        delivered = {}
        node_b.on_deliver(lambda seq, payload, delay: delivered.__setitem__(seq, payload))
        payload_rng = registry.stream("payloads")
        sent = []

        def offer():
            payload = payload_rng.bytes(100)
            if node_a.send(payload):
                sent.append(payload)

        engine = network.engine
        for i in range(300):
            engine.schedule_at(i / 30.0, offer)
        engine.run_until(100.0)
        assert len(delivered) == len(sent)
        assert all(delivered[i] == sent[i] for i in range(len(sent)))
        assert node_a.stats.retransmissions > 0
