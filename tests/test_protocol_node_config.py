"""ProtocolConfig validation, RemicssNode wiring, network construction."""

import numpy as np
import pytest

from repro.core.channel import ChannelSet
from repro.core.schedule import ShareSchedule
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork
from repro.protocol.scheduler import DynamicParameterSampler, ExplicitScheduler
from repro.sharing.xor import XorScheme


class TestProtocolConfig:
    def test_defaults(self):
        config = ProtocolConfig()
        assert config.kappa == 1.0
        assert config.mu == 1.0
        assert config.symbol_size == 1250
        assert config.scheme.name == "shamir-gf256"

    def test_parameter_ordering_enforced(self):
        with pytest.raises(ValueError):
            ProtocolConfig(kappa=3.0, mu=2.0)
        with pytest.raises(ValueError):
            ProtocolConfig(kappa=0.5, mu=1.0)

    def test_other_validation(self):
        with pytest.raises(ValueError):
            ProtocolConfig(symbol_size=0)
        with pytest.raises(ValueError):
            ProtocolConfig(source_queue_limit=0)
        with pytest.raises(ValueError):
            ProtocolConfig(reassembly_timeout=0.0)
        with pytest.raises(ValueError):
            ProtocolConfig(reassembly_limit=0)

    def test_custom_scheme(self):
        config = ProtocolConfig(kappa=3.0, mu=3.0, scheme=XorScheme())
        assert config.scheme.supports(3, 3)


@pytest.fixture
def small_network():
    channels = ChannelSet.from_vectors(
        risks=[0.0] * 3,
        losses=[0.0] * 3,
        delays=[0.01] * 3,
        rates=[100.0] * 3,
    )
    registry = RngRegistry(5)
    return PointToPointNetwork(channels, 100, registry), registry


class TestPointToPointNetwork:
    def test_one_duplex_per_channel(self, small_network):
        network, _ = small_network
        assert len(network.duplex) == 3
        assert len(network.ports_a_out) == 3
        assert len(network.ports_b_out) == 3

    def test_byte_rate_is_rate_times_symbol(self, small_network):
        network, _ = small_network
        assert network.duplex[0].forward.byte_rate == pytest.approx(100.0 * 100)

    def test_port_indices_align_with_channels(self, small_network):
        network, _ = small_network
        assert [p.index for p in network.ports_a_out] == [0, 1, 2]
        assert [p.index for p in network.ports_b_out] == [0, 1, 2]


class TestRemicssNode:
    def test_dynamic_sampler_by_default(self, small_network):
        network, registry = small_network
        config = ProtocolConfig(kappa=2.0, mu=3.0, symbol_size=100)
        node_a, _ = network.node_pair(config, registry)
        assert isinstance(node_a.sampler, DynamicParameterSampler)

    def test_explicit_scheduler_when_schedule_given(self, small_network):
        network, registry = small_network
        config = ProtocolConfig(kappa=2.0, mu=3.0, symbol_size=100)
        schedule = ShareSchedule.singleton(network.channels, 2, [0, 1, 2])
        node_a, _ = network.node_pair(config, registry, schedule=schedule)
        assert isinstance(node_a.sampler, ExplicitScheduler)

    def test_multiple_deliver_callbacks(self, small_network):
        network, registry = small_network
        config = ProtocolConfig(kappa=1.0, mu=1.0, symbol_size=100)
        node_a, node_b = network.node_pair(config, registry)
        first, second = [], []
        node_b.on_deliver(lambda seq, payload, delay: first.append(seq))
        node_b.on_deliver(lambda seq, payload, delay: second.append(seq))
        node_a.send(bytes(100))
        network.engine.run_until(1.0)
        assert first == [0]
        assert second == [0]

    def test_bidirectional_traffic(self, small_network):
        network, registry = small_network
        config = ProtocolConfig(kappa=2.0, mu=2.0, symbol_size=100)
        node_a, node_b = network.node_pair(config, registry)
        to_b, to_a = [], []
        node_b.on_deliver(lambda seq, payload, delay: to_b.append(payload))
        node_a.on_deliver(lambda seq, payload, delay: to_a.append(payload))
        node_a.send(b"a" * 100)
        node_b.send(b"b" * 100)
        network.engine.run_until(2.0)
        assert to_b == [b"a" * 100]
        assert to_a == [b"b" * 100]

    def test_independent_rng_streams_for_nodes(self, small_network):
        network, registry = small_network
        config = ProtocolConfig(kappa=1.0, mu=1.0, symbol_size=100)
        node_a, node_b = network.node_pair(config, registry)
        assert node_a.sender.rng is not node_b.sender.rng


class TestLinkJitter:
    def test_jitter_varies_delivery_times(self):
        from repro.netsim.engine import Engine
        from repro.netsim.link import Link
        from repro.netsim.packet import Datagram

        engine = Engine()
        link = Link(
            engine, byte_rate=1e6, loss=0.0, delay=1.0,
            rng=np.random.default_rng(0), queue_limit=1000, jitter=0.5,
        )
        arrivals = []
        link.set_receiver(lambda dg: arrivals.append(engine.now))
        for _ in range(200):
            link.send(Datagram(size=1))
        engine.run()
        spreads = np.diff(sorted(arrivals))
        assert max(arrivals) - min(arrivals) > 0.5
        assert all(0.4 < a < 1.7 for a in np.array(arrivals) - np.arange(len(arrivals)) * 1e-6)

    def test_zero_jitter_is_deterministic(self):
        from repro.netsim.engine import Engine
        from repro.netsim.link import Link
        from repro.netsim.packet import Datagram

        engine = Engine()
        link = Link(
            engine, byte_rate=100.0, loss=0.0, delay=1.0,
            rng=np.random.default_rng(0), queue_limit=10,
        )
        arrivals = []
        link.set_receiver(lambda dg: arrivals.append(engine.now))
        link.send(Datagram(size=100))
        engine.run()
        assert arrivals == [pytest.approx(2.0)]

    def test_negative_jitter_rejected(self):
        from repro.netsim.engine import Engine
        from repro.netsim.link import Link

        with pytest.raises(ValueError):
            Link(
                Engine(), byte_rate=1.0, loss=0.0, delay=1.0,
                rng=np.random.default_rng(0), jitter=-0.1,
            )

    def test_protocol_handles_jitter_reordering(self):
        """Jitter reorders shares; the reassembly buffer still reconstructs."""
        from repro.netsim.engine import Engine
        from repro.netsim.link import DuplexChannel
        from repro.netsim.ports import ChannelPort
        from repro.protocol.remicss import RemicssNode

        engine = Engine()
        registry = RngRegistry(8)
        duplexes = [
            DuplexChannel(
                engine, byte_rate=100.0 * 100, loss=0.0, delay=0.5,
                forward_rng=registry.stream(f"f{i}"),
                reverse_rng=registry.stream(f"r{i}"),
                jitter=0.4,
                name=f"j{i}",
            )
            for i in range(3)
        ]
        ports_out = [ChannelPort(i, d.forward) for i, d in enumerate(duplexes)]
        ports_in = [ChannelPort(i, d.reverse) for i, d in enumerate(duplexes)]
        config = ProtocolConfig(kappa=3.0, mu=3.0, symbol_size=100,
                                reassembly_timeout=20.0)
        node_a = RemicssNode(engine, ports_out, ports_in, config, registry, name="a")
        # Receiver-only node on the far side of the forward links.
        delivered = {}
        node_b = RemicssNode(engine, ports_in, ports_out, config, registry, name="b")
        node_b.on_deliver(lambda seq, payload, delay: delivered.__setitem__(seq, payload))
        payloads = [bytes([i]) * 100 for i in range(30)]
        for i, payload in enumerate(payloads):
            engine.schedule_at(i * 0.05, node_a.send, payload)
        engine.run_until(30.0)
        assert len(delivered) == 30
        assert all(delivered[i] == payloads[i] for i in range(30))
