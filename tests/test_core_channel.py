"""Channel and ChannelSet validation and accessors."""

import numpy as np
import pytest

from repro.core.channel import Channel, ChannelSet


class TestChannel:
    def test_valid(self):
        ch = Channel(risk=0.5, loss=0.1, delay=2.0, rate=10.0, name="a")
        assert ch.risk == 0.5

    def test_risk_bounds(self):
        Channel(risk=0.0, loss=0.0, delay=0.0, rate=1.0)
        Channel(risk=1.0, loss=0.0, delay=0.0, rate=1.0)
        with pytest.raises(ValueError):
            Channel(risk=1.1, loss=0.0, delay=0.0, rate=1.0)
        with pytest.raises(ValueError):
            Channel(risk=-0.1, loss=0.0, delay=0.0, rate=1.0)

    def test_loss_strictly_below_one(self):
        """A channel that never delivers is excluded from C (Sec. III-B)."""
        Channel(risk=0.0, loss=0.999, delay=0.0, rate=1.0)
        with pytest.raises(ValueError):
            Channel(risk=0.0, loss=1.0, delay=0.0, rate=1.0)

    def test_rate_strictly_positive(self):
        with pytest.raises(ValueError):
            Channel(risk=0.0, loss=0.0, delay=0.0, rate=0.0)
        with pytest.raises(ValueError):
            Channel(risk=0.0, loss=0.0, delay=0.0, rate=float("inf"))

    def test_delay_nonnegative_finite(self):
        with pytest.raises(ValueError):
            Channel(risk=0.0, loss=0.0, delay=-1.0, rate=1.0)
        with pytest.raises(ValueError):
            Channel(risk=0.0, loss=0.0, delay=float("nan"), rate=1.0)


class TestChannelSet:
    def test_from_vectors(self, five_channels):
        assert five_channels.n == 5
        assert len(five_channels) == 5
        assert five_channels.total_rate == pytest.approx(250.0)

    def test_vector_length_mismatch(self):
        with pytest.raises(ValueError):
            ChannelSet.from_vectors([0.1], [0.0, 0.0], [0.0], [1.0])

    def test_names_length_mismatch(self):
        with pytest.raises(ValueError):
            ChannelSet.from_vectors([0.1], [0.0], [0.0], [1.0], names=["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChannelSet([])

    def test_vectors(self, three_channels):
        np.testing.assert_allclose(three_channels.risks, [0.2, 0.5, 0.1])
        np.testing.assert_allclose(three_channels.losses, [0.1, 0.05, 0.2])
        np.testing.assert_allclose(three_channels.delays, [2.0, 9.0, 10.0])
        np.testing.assert_allclose(three_channels.rates, [3.0, 4.0, 8.0])

    def test_indices(self, three_channels):
        assert three_channels.indices == frozenset({0, 1, 2})

    def test_subset_access(self, three_channels):
        members = three_channels.subset([0, 2])
        assert members[0].rate == 3.0
        assert members[1].rate == 8.0

    def test_subset_validation(self, three_channels):
        assert three_channels.validate_subset([2, 0]) == frozenset({0, 2})
        with pytest.raises(ValueError):
            three_channels.validate_subset([])
        with pytest.raises(IndexError):
            three_channels.validate_subset([3])
        with pytest.raises(IndexError):
            three_channels.validate_subset([-1])

    def test_equality_and_hash(self, three_channels):
        clone = ChannelSet.from_vectors(
            risks=[0.2, 0.5, 0.1],
            losses=[0.1, 0.05, 0.2],
            delays=[2.0, 9.0, 10.0],
            rates=[3.0, 4.0, 8.0],
        )
        # Names differ (defaults applied by from_vectors are equal), so the
        # sets compare equal.
        assert clone == three_channels
        assert hash(clone) == hash(three_channels)

    def test_iteration_order(self, three_channels):
        rates = [c.rate for c in three_channels]
        assert rates == [3.0, 4.0, 8.0]
