"""Exact perfect-secrecy verification over small fields."""

import math

import pytest

from repro.analysis.secrecy import (
    entropy,
    joint_distribution,
    mutual_information,
    verify_perfect_secrecy,
)
from repro.gf.gfp import PrimeField

GF5 = PrimeField(5)
GF7 = PrimeField(7)
GF11 = PrimeField(11)


class TestEntropy:
    def test_uniform(self):
        assert entropy([0.25] * 4) == pytest.approx(2.0)

    def test_deterministic(self):
        assert entropy([1.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            entropy([-0.1, 1.1])


class TestJointDistribution:
    def test_probabilities_sum_to_one(self):
        joint = joint_distribution(GF5, 2, [1, 2])
        assert sum(joint.values()) == pytest.approx(1.0)

    def test_secret_marginal_uniform(self):
        joint = joint_distribution(GF7, 3, [1, 2])
        marginal = {}
        for (secret, _), p in joint.items():
            marginal[secret] = marginal.get(secret, 0.0) + p
        assert all(p == pytest.approx(1 / 7) for p in marginal.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            joint_distribution(GF5, 0, [1])
        with pytest.raises(ValueError):
            joint_distribution(GF5, 2, [1, 1])
        with pytest.raises(ValueError):
            joint_distribution(GF5, 2, [0])
        with pytest.raises(ValueError):
            joint_distribution(GF5, 2, [7])

    def test_enumeration_size_guard(self):
        big = PrimeField(127)
        with pytest.raises(ValueError):
            joint_distribution(big, 4, [1])


class TestMutualInformation:
    @pytest.mark.parametrize("field", [GF5, GF7])
    @pytest.mark.parametrize("k", [2, 3])
    def test_below_threshold_is_exactly_zero(self, field, k):
        for count in range(1, k):
            xs = list(range(1, count + 1))
            joint = joint_distribution(field, k, xs)
            assert mutual_information(joint) == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("field", [GF5, GF7])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_at_threshold_reveals_everything(self, field, k):
        xs = list(range(1, k + 1))
        joint = joint_distribution(field, k, xs)
        assert mutual_information(joint) == pytest.approx(
            math.log2(field.order), abs=1e-9
        )

    def test_beyond_threshold_no_extra_information(self):
        joint = joint_distribution(GF5, 2, [1, 2, 3])
        assert mutual_information(joint) == pytest.approx(math.log2(5), abs=1e-9)

    def test_nonconsecutive_observation_points(self):
        # Which shares are observed must not matter, only how many.
        joint_a = joint_distribution(GF11, 3, [1, 5])
        joint_b = joint_distribution(GF11, 3, [2, 9])
        assert mutual_information(joint_a) == pytest.approx(
            mutual_information(joint_b), abs=1e-12
        )
        assert mutual_information(joint_a) == pytest.approx(0.0, abs=1e-12)


class TestVerifyPerfectSecrecy:
    @pytest.mark.parametrize("field,k,m", [(GF5, 2, 4), (GF7, 3, 5), (GF11, 2, 3)])
    def test_shamir_is_perfectly_secret(self, field, k, m):
        report = verify_perfect_secrecy(field, k, m)
        assert report.perfectly_secret
        assert report.leakage_below_threshold == pytest.approx(0.0, abs=1e-12)
        assert report.information_at_threshold == pytest.approx(
            math.log2(field.order), abs=1e-9
        )
        assert report.uniform_marginals

    def test_k_equals_one_broadcast(self):
        # k = 1: a single share IS the secret; still "perfect" in the
        # degenerate sense (no below-threshold observations exist).
        report = verify_perfect_secrecy(GF5, 1, 3)
        assert report.perfectly_secret

    def test_validation(self):
        with pytest.raises(ValueError):
            verify_perfect_secrecy(GF5, 3, 2)
        with pytest.raises(ValueError):
            verify_perfect_secrecy(GF5, 2, 5)  # m must stay below |F|
