"""Satellite: the resilience layer is bit-reproducible, serial or parallel.

Every resilience timer runs on the simulation engine and every random
draw comes from a named seeded stream, so a faulted resilient run must
serialize byte-identically across repeats -- including its observability
snapshot -- and a sweep over such runs must not care how many worker
processes computed it.
"""

import json

from repro.core.planner import Requirements
from repro.obs import Observability
from repro.protocol.config import ProtocolConfig
from repro.protocol.resilience import ResilienceConfig
from repro.sweep import SweepRunner, SweepSpec
from repro.workloads.iperf import run_iperf
from repro.workloads.setups import diverse_setup
from repro.workloads.setups import testbed_fault_plan as fault_plan_for

REQUIREMENTS = Requirements(max_risk=0.02)


def resilient_run(seed, scenario="partition_heal", obs=None):
    return run_iperf(
        diverse_setup(),
        ProtocolConfig(kappa=2.0, mu=2.0, share_synthetic=True),
        offered_rate=100.0,
        duration=15.0,
        warmup=3.0,
        seed=seed,
        fault_plan=fault_plan_for(scenario, 60.0, 120.0, channel=4),
        obs=obs,
        resilience=ResilienceConfig(),
        requirements=REQUIREMENTS,
    )


def serialize(result, obs):
    return json.dumps(
        {
            "achieved": result.achieved_rate,
            "sender": result.sender_stats,
            "receiver": result.receiver_stats,
            "resilience": result.resilience_summary,
            "metrics": obs.snapshot() if obs is not None else None,
        },
        sort_keys=True,
    )


def sweep_point(params, seed):
    """Module-level (picklable) sweep point: one short resilient run."""
    result = resilient_run(seed, scenario=params["scenario"])
    row = dict(result.resilience_summary)
    row["scenario"] = params["scenario"]
    row["achieved_rate"] = result.achieved_rate
    return row


class TestByteIdentical:
    def test_same_seed_same_bytes_with_obs(self):
        blobs = []
        for _ in range(2):
            obs = Observability.create(tracing=False)
            blobs.append(serialize(resilient_run(seed=11, obs=obs), obs))
        assert blobs[0] == blobs[1]
        # Sanity: the run actually exercised the layer.
        assert '"quarantines": 1' in blobs[0]

    def test_different_seeds_diverge(self):
        first = serialize(resilient_run(seed=11), None)
        second = serialize(resilient_run(seed=12), None)
        assert first != second


class TestSweepParallelism:
    SPEC = SweepSpec(
        "resilience-determinism",
        axes={"scenario": ["partition_heal", "burst"]},
    )

    def test_serial_and_parallel_sweeps_agree(self):
        serial = SweepRunner(jobs=1).run(self.SPEC, sweep_point)
        parallel = SweepRunner(jobs=2).run(self.SPEC, sweep_point)
        assert [r.value for r in serial] == [r.value for r in parallel]
        assert all(r.ok for r in parallel)
        by_scenario = {r.value["scenario"]: r.value for r in serial}
        assert by_scenario["partition_heal"]["quarantines"] >= 1
        assert by_scenario["burst"]["nacks_received"] >= 1
