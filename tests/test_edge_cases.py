"""Edge-case and failure-injection tests across modules."""

import pytest

from repro.core.channel import ChannelSet
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork


class TestSingleChannelDegenerate:
    """n = 1: the model degenerates to a single path, and must still hold."""

    @pytest.fixture
    def single(self):
        return ChannelSet.from_vectors([0.3], [0.1], [0.5], [10.0])

    def test_rate_theorems(self, single):
        from repro.core.rate import (
            full_utilization_mu_limit,
            max_rate,
            optimal_rate,
        )

        assert max_rate(single) == 10.0
        assert optimal_rate(single, 1.0) == 10.0
        assert full_utilization_mu_limit(single) == 1.0

    def test_extremes(self, single):
        from repro.core.optimal import max_privacy_risk, min_delay, min_loss

        assert max_privacy_risk(single)[0] == pytest.approx(0.3)
        assert min_loss(single)[0] == pytest.approx(0.1)
        assert min_delay(single)[0] == pytest.approx(0.5)

    def test_lp(self, single):
        from repro.core.program import Objective, optimal_schedule

        schedule = optimal_schedule(single, Objective.PRIVACY, 1.0, 1.0,
                                    at_max_rate=True)
        assert schedule.kappa == 1.0
        assert schedule.max_symbol_rate() == pytest.approx(10.0)

    def test_protocol_end_to_end(self, single):
        registry = RngRegistry(1)
        network = PointToPointNetwork(single, 100, registry)
        config = ProtocolConfig(kappa=1.0, mu=1.0, symbol_size=100,
                                reassembly_timeout=10.0)
        node_a, node_b = network.node_pair(config, registry)
        got = []
        node_b.on_deliver(lambda s, p, d: got.append(p))
        for i in range(20):
            network.engine.schedule_at(i * 0.5, node_a.send, bytes([i]) * 100)
        network.engine.run_until(30.0)
        # 10% loss channel: most but not necessarily all arrive.
        assert 14 <= len(got) <= 20


class TestMicssAckLoss:
    def test_lost_acks_cause_spurious_retransmissions_not_loss(self):
        """ACKs crossing a lossy reverse path: duplicates, not data loss."""
        from repro.protocol.micss import MicssNode

        channels = ChannelSet.from_vectors(
            risks=[0.0] * 2, losses=[0.0, 0.0], delays=[0.05] * 2, rates=[50.0] * 2
        )
        registry = RngRegistry(2)
        network = PointToPointNetwork(channels, 100, registry)
        # Make the REVERSE direction lossy: data arrives, ACKs die.
        for duplex in network.duplex:
            duplex.reverse.loss = 0.4
        node_a = MicssNode(network.engine, network.ports_a_out, network.ports_a_in,
                           100, registry, name="a")
        node_b = MicssNode(network.engine, network.ports_b_out, network.ports_b_in,
                           100, registry, name="b")
        got = {}
        node_b.on_deliver(lambda s, p, d: got.__setitem__(s, p))
        sent = []
        for i in range(30):
            payload = bytes([i]) * 100
            network.engine.schedule_at(i * 0.2, node_a.send, payload)
            sent.append(payload)
        network.engine.run_until(100.0)
        assert len(got) == 30
        assert all(got[i] == sent[i] for i in range(30))
        assert node_a.stats.retransmissions > 0


class TestDibsResync:
    def test_gap_triggers_resync_and_recovery(self):
        """A hole in the symbol stream flushes state but later data flows."""
        from repro.protocol.dibs import DibsInterceptor

        channels = ChannelSet.from_vectors(
            risks=[0.0], losses=[0.0], delays=[0.01], rates=[1000.0]
        )
        registry = RngRegistry(3)
        network = PointToPointNetwork(channels, 64, registry)
        config = ProtocolConfig(kappa=1.0, mu=1.0, symbol_size=64)
        node_a, node_b = network.node_pair(config, registry)
        received = []
        rx_shim = DibsInterceptor(node_b, on_datagram=received.append)
        # Bypass the sender shim: inject symbols with a gap directly by
        # feeding the rx shim's symbol hook.
        good = b"\x00\x00\x00\x05hello".ljust(64, b"\0")
        rx_shim._on_symbol(0, good, 0.0)
        assert received == [b"hello"]
        # Deliver far-future symbols only: eventually triggers resync.
        for seq in range(2, 80):
            rx_shim._on_symbol(seq, good, 0.0)
        assert rx_shim.datagrams_corrupted >= 1
        assert len(received) > 1  # post-resync data decoded again


class TestRngIndependenceAcrossComponents:
    def test_adding_probe_does_not_change_results(self):
        """Attaching an adversary must not perturb the protocol's RNG."""
        from repro.adversary.eavesdropper import Eavesdropper
        from repro.sharing.shamir import ShamirScheme

        def run(with_adversary):
            channels = ChannelSet.from_vectors(
                risks=[0.5] * 2, losses=[0.2] * 2, delays=[0.01] * 2, rates=[100.0] * 2
            )
            registry = RngRegistry(11)
            network = PointToPointNetwork(channels, 64, registry)
            config = ProtocolConfig(kappa=1.0, mu=2.0, symbol_size=64,
                                    reassembly_timeout=5.0)
            node_a, node_b = network.node_pair(config, registry)
            if with_adversary:
                Eavesdropper(
                    [d.forward for d in network.duplex], [0.5, 0.5],
                    registry.stream("adv"), scheme=ShamirScheme(),
                )
            got = []
            node_b.on_deliver(lambda s, p, d: got.append(s))
            payload_rng = registry.stream("p")
            for i in range(200):
                network.engine.schedule_at(i * 0.05, lambda: node_a.send(payload_rng.bytes(64)))
            network.engine.run_until(20.0)
            return got

        assert run(False) == run(True)


class TestZeroAndExtremeParameters:
    def test_zero_delay_zero_loss_channels(self):
        channels = ChannelSet.from_vectors([0.0], [0.0], [0.0], [1.0])
        from repro.core.properties import subset_delay, subset_loss, subset_risk

        assert subset_risk(channels, 1, [0]) == 0.0
        assert subset_loss(channels, 1, [0]) == 0.0
        assert subset_delay(channels, 1, [0]) == 0.0

    def test_certain_risk_channels(self):
        channels = ChannelSet.from_vectors([1.0, 1.0], [0.0, 0.0], [0.0, 0.0], [1.0, 1.0])
        from repro.core.properties import subset_risk

        assert subset_risk(channels, 2, [0, 1]) == pytest.approx(1.0)

    def test_near_one_loss(self):
        channels = ChannelSet.from_vectors([0.0], [0.999], [0.0], [1.0])
        from repro.core.properties import subset_delay, subset_loss

        assert subset_loss(channels, 1, [0]) == pytest.approx(0.999)
        # Conditional delay is still finite and well-defined.
        assert subset_delay(channels, 1, [0]) == 0.0

    def test_huge_rate_spread(self):
        from repro.core.rate import optimal_rate, optimal_rate_bruteforce

        channels = ChannelSet.from_vectors(
            [0.0] * 3, [0.0] * 3, [0.0] * 3, [1e-3, 1.0, 1e6]
        )
        for mu in (1.0, 1.5, 2.0, 2.5, 3.0):
            assert optimal_rate(channels, mu) == pytest.approx(
                optimal_rate_bruteforce(channels, mu)
            )
