"""Per-symbol parameter samplers (dynamic and explicit)."""

import numpy as np
import pytest

from repro.core.schedule import ShareSchedule
from repro.protocol.scheduler import DynamicParameterSampler, ExplicitScheduler


class TestDynamicSampler:
    def test_integral_parameters_deterministic(self, rng):
        sampler = DynamicParameterSampler(2.0, 4.0, rng)
        for _ in range(50):
            assert sampler.sample() == (2, 4, None)

    def test_averages_converge(self, rng):
        sampler = DynamicParameterSampler(1.7, 3.4, rng)
        draws = [sampler.sample() for _ in range(30000)]
        assert np.mean([k for k, _, _ in draws]) == pytest.approx(1.7, abs=0.02)
        assert np.mean([m for _, m, _ in draws]) == pytest.approx(3.4, abs=0.02)

    def test_ordering_always_valid(self, rng):
        sampler = DynamicParameterSampler(2.9, 3.1, rng)
        for _ in range(2000):
            k, m, subset = sampler.sample()
            assert 1 <= k <= m
            assert subset is None

    def test_same_unit_cell(self, rng):
        sampler = DynamicParameterSampler(2.2, 2.8, rng)
        draws = [sampler.sample() for _ in range(30000)]
        assert np.mean([k for k, _, _ in draws]) == pytest.approx(2.2, abs=0.02)
        assert np.mean([m for _, m, _ in draws]) == pytest.approx(2.8, abs=0.02)

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            DynamicParameterSampler(3.0, 2.0, rng)


class TestExplicitScheduler:
    def test_returns_subsets_from_schedule(self, five_channels, rng):
        schedule = ShareSchedule(
            five_channels,
            {(1, frozenset({0})): 0.5, (2, frozenset({1, 4})): 0.5},
        )
        sampler = ExplicitScheduler(schedule, rng)
        seen = set()
        for _ in range(200):
            k, m, subset = sampler.sample()
            assert subset is not None
            assert len(subset) == m
            seen.add((k, subset))
        assert seen == {(1, frozenset({0})), (2, frozenset({1, 4}))}

    def test_single_atom_fast_path(self, five_channels, rng):
        schedule = ShareSchedule.singleton(five_channels, 3, [0, 1, 2])
        sampler = ExplicitScheduler(schedule, rng)
        assert sampler.sample() == (3, 3, frozenset({0, 1, 2}))

    def test_respects_probabilities(self, five_channels, rng):
        schedule = ShareSchedule(
            five_channels,
            {(1, frozenset({0})): 0.2, (1, frozenset({1})): 0.8},
        )
        sampler = ExplicitScheduler(schedule, rng)
        draws = [sampler.sample()[2] for _ in range(10000)]
        frac = sum(1 for s in draws if s == frozenset({1})) / len(draws)
        assert frac == pytest.approx(0.8, abs=0.02)
