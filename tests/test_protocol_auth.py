"""The authenticated-share layer: keys, tags, wire carriage, redaction.

Unit coverage for :mod:`repro.protocol.auth` (docs/AUTH.md): key
derivation is deterministic and shard-order-free, per-flow keys isolate
tenants, tags bind a share to its exact slot (scheme, seq, index, k, m,
flow), verification is total over malformed tags, and no repr ever shows
key material.  Plus the wire contract: tagged frames roundtrip through
version 3, and auth-off frames stay byte-identical to the pre-auth
goldens pinned here as hex.
"""

import numpy as np
import pytest

from repro.protocol.auth import (
    AuthConfig,
    KeyChain,
    ShareAuthenticator,
    compute_tag,
    derive_flow_key,
    derive_root_key,
)
from repro.protocol.auth.keys import MAX_KEY_SIZE, MIN_KEY_SIZE
from repro.protocol.wire import SCHEME_IDS, TAG_SIZE, decode_share, encode_share
from repro.sharing.base import Share
from repro.sharing.shamir import ShamirScheme

scheme = ShamirScheme()
SCHEME_ID = SCHEME_IDS[scheme.name]

ROOT = derive_root_key(7)


def make_share(index=2, data=bytes(range(16)), k=3, m=5):
    return Share(index=index, data=data, k=k, m=m)


class TestKeyDerivation:
    def test_root_key_is_deterministic(self):
        assert derive_root_key(7) == derive_root_key(7)
        assert len(derive_root_key(7)) == 32

    def test_root_key_depends_on_seed(self):
        assert derive_root_key(7) != derive_root_key(8)

    def test_flow_key_is_deterministic_and_order_free(self):
        # Deriving flow 3 before or after flow 1 yields the same bytes:
        # derivation depends only on the (root, flow) identity, which is
        # what makes fleet shards agree (docs/AUTH.md).
        chain_a = KeyChain(ROOT)
        chain_b = KeyChain(ROOT)
        first = (chain_a.flow_key(1), chain_a.flow_key(3))
        second = (chain_b.flow_key(3), chain_b.flow_key(1))
        assert first == (second[1], second[0])
        assert chain_a.flow_key(1) == derive_flow_key(ROOT, 1)

    def test_flow_keys_isolate_flows(self):
        keys = {derive_flow_key(ROOT, flow) for flow in range(16)}
        assert len(keys) == 16
        assert ROOT not in keys

    def test_flow_keys_isolate_roots(self):
        assert derive_flow_key(ROOT, 1) != derive_flow_key(derive_root_key(8), 1)

    def test_key_length_bounds(self):
        with pytest.raises(ValueError):
            derive_flow_key(b"x" * (MIN_KEY_SIZE - 1), 0)
        with pytest.raises(ValueError):
            derive_flow_key(b"x" * (MAX_KEY_SIZE + 1), 0)

    def test_key_type_checked(self):
        with pytest.raises(TypeError):
            derive_flow_key("not-bytes" * 4, 0)

    def test_negative_flow_rejected(self):
        with pytest.raises(ValueError):
            derive_flow_key(ROOT, -1)


class TestAuthConfig:
    def test_rejects_foreign_tag_size(self):
        with pytest.raises(ValueError):
            AuthConfig(root_key=ROOT, tag_size=TAG_SIZE - 1)

    def test_rejects_short_root_key(self):
        with pytest.raises(ValueError):
            AuthConfig(root_key=b"short")

    def test_repr_redacts_root_key(self):
        text = repr(AuthConfig(root_key=ROOT))
        assert ROOT.hex() not in text
        assert "32 bytes" in text

    def test_keychain_repr_redacts(self):
        chain = KeyChain(ROOT)
        chain.flow_key(4)
        text = repr(chain)
        assert ROOT.hex() not in text
        assert chain.flow_key(4).hex() not in text

    def test_authenticator_repr_redacts(self):
        auth = ShareAuthenticator(AuthConfig(root_key=ROOT))
        assert ROOT.hex() not in repr(auth)


class TestTagging:
    def setup_method(self):
        self.auth = ShareAuthenticator(AuthConfig(root_key=ROOT))

    def test_tag_verify_roundtrip(self):
        share = make_share()
        tag = self.auth.tag(0, 7, share, SCHEME_ID)
        assert len(tag) == TAG_SIZE
        assert self.auth.verify(0, 7, share, SCHEME_ID, tag)

    def test_tag_matches_compute_tag(self):
        share = make_share()
        expected = compute_tag(
            derive_flow_key(ROOT, 5), SCHEME_ID, 7,
            share.index, share.k, share.m, 5, share.data,
        )
        assert self.auth.tag(5, 7, share, SCHEME_ID) == expected

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: (1, 7, s, SCHEME_ID),                      # wrong flow
            lambda s: (0, 8, s, SCHEME_ID),                      # wrong seq
            lambda s: (0, 7, s, SCHEME_ID + 1),                  # wrong scheme
            lambda s: (0, 7, make_share(index=3), SCHEME_ID),    # replanted index
            lambda s: (0, 7, make_share(k=2), SCHEME_ID),        # altered k
            lambda s: (0, 7, make_share(m=6), SCHEME_ID),        # altered m
            lambda s: (0, 7, make_share(data=b"\xff" * 16), SCHEME_ID),  # body
        ],
    )
    def test_tag_binds_the_slot(self, mutate):
        share = make_share()
        tag = self.auth.tag(0, 7, share, SCHEME_ID)
        assert not self.auth.verify(*mutate(share), tag)

    def test_cross_tenant_tags_do_not_verify(self):
        # A share validly tagged under tenant flow 1 authenticates nothing
        # for flow 2: per-flow keys are the isolation boundary.
        share = make_share()
        tag = self.auth.tag(1, 7, share, SCHEME_ID)
        assert not self.auth.verify(2, 7, share, SCHEME_ID, tag)

    def test_wrong_root_key_fails(self):
        share = make_share()
        tag = self.auth.tag(0, 7, share, SCHEME_ID)
        other = ShareAuthenticator(AuthConfig(root_key=derive_root_key(8)))
        assert not other.verify(0, 7, share, SCHEME_ID, tag)

    def test_malformed_tags_fail_closed(self):
        share = make_share()
        assert not self.auth.verify(0, 7, share, SCHEME_ID, None)
        assert not self.auth.verify(0, 7, share, SCHEME_ID, b"")
        assert not self.auth.verify(0, 7, share, SCHEME_ID, b"\x00" * (TAG_SIZE - 1))
        assert not self.auth.verify(0, 7, share, SCHEME_ID, b"\x00" * (TAG_SIZE + 1))

    def test_flipping_any_tag_bit_fails(self):
        share = make_share()
        tag = bytearray(self.auth.tag(0, 7, share, SCHEME_ID))
        for position in range(TAG_SIZE):
            tag[position] ^= 0x01
            assert not self.auth.verify(0, 7, share, SCHEME_ID, bytes(tag))
            tag[position] ^= 0x01


class TestWireCarriage:
    def setup_method(self):
        self.auth = ShareAuthenticator(AuthConfig(root_key=ROOT))

    @pytest.mark.parametrize("flow", [0, 9])
    def test_tagged_frame_roundtrips_and_verifies(self, flow):
        rng = np.random.default_rng(3)
        for seq, share in enumerate(scheme.split(b"wire carriage of tags!", 3, 5, rng)):
            tag = self.auth.tag(flow, seq, share, SCHEME_ID)
            packet = encode_share(seq, share, scheme.name, flow=flow, tag=tag)
            header, decoded = decode_share(packet)
            assert header.tag == tag
            assert header.flow == flow
            assert self.auth.verify(
                header.flow, header.seq, decoded, header.scheme_id, header.tag
            )

    def test_tag_costs_exactly_tag_size_bytes(self):
        share = make_share()
        tag = self.auth.tag(0, 7, share, SCHEME_ID)
        plain = encode_share(7, share, scheme.name)
        tagged = encode_share(7, share, scheme.name, tag=tag)
        assert len(tagged) == len(plain) + TAG_SIZE

    def test_auth_off_frames_match_pre_auth_goldens(self):
        # The acceptance pin: arming nobody means changing nothing.  These
        # hex strings are the exact pre-auth encodings (v1 flow 0, v2
        # nonzero flow) of a fixed share; auth-off senders must still emit
        # them byte for byte.
        share = make_share()
        assert encode_share(7, share, scheme.name).hex() == (
            "52530101000000000000000702030500"
            "000102030405060708090a0b0c0d0e0f"
        )
        assert encode_share(7, share, scheme.name, flow=9).hex() == (
            "5253020100000000000000070203050100000009"
            "000102030405060708090a0b0c0d0e0f"
        )
