"""The LP layer: problem validation, simplex solver, scipy cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import (
    InfeasibleError,
    LinearProgram,
    UnboundedError,
    solve,
)
from repro.lp.scipy_backend import solve_scipy
from repro.lp.simplex import solve_simplex


class TestLinearProgram:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearProgram(c=[1.0, 2.0], a_eq=[[1.0]], b_eq=[1.0])
        with pytest.raises(ValueError):
            LinearProgram(c=[1.0], a_eq=[[1.0]], b_eq=[1.0, 2.0])

    def test_names_validation(self):
        with pytest.raises(ValueError):
            LinearProgram(c=[1.0, 2.0], a_eq=[[1.0, 1.0]], b_eq=[1.0], names=("x",))

    def test_properties(self):
        lp = LinearProgram(c=[1.0, 2.0, 3.0], a_eq=[[1.0, 1.0, 1.0]], b_eq=[1.0])
        assert lp.num_vars == 3
        assert lp.num_constraints == 1

    def test_unknown_backend(self):
        lp = LinearProgram(c=[1.0], a_eq=[[1.0]], b_eq=[1.0])
        with pytest.raises(ValueError):
            solve(lp, backend="cplex")


SIMPLE_LP = LinearProgram(
    # minimise x0 + 2 x1 subject to x0 + x1 = 1: optimum at x = (1, 0).
    c=[1.0, 2.0],
    a_eq=[[1.0, 1.0]],
    b_eq=[1.0],
)


@pytest.mark.parametrize("backend", ["simplex", "scipy"])
class TestBackends:
    def test_simple(self, backend):
        solution = solve(SIMPLE_LP, backend=backend)
        assert solution.objective == pytest.approx(1.0)
        assert solution.x == pytest.approx([1.0, 0.0])

    def test_two_constraints(self, backend):
        # minimise x0 subject to x0 + x1 = 2, x1 + x2 = 1.
        lp = LinearProgram(
            c=[1.0, 0.0, 0.0],
            a_eq=[[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]],
            b_eq=[2.0, 1.0],
        )
        solution = solve(lp, backend=backend)
        assert solution.objective == pytest.approx(1.0)

    def test_negative_rhs_normalised(self, backend):
        # -x0 - x1 = -1 is the same constraint as x0 + x1 = 1.
        lp = LinearProgram(c=[1.0, 2.0], a_eq=[[-1.0, -1.0]], b_eq=[-1.0])
        solution = solve(lp, backend=backend)
        assert solution.objective == pytest.approx(1.0)

    def test_infeasible(self, backend):
        # x0 = 1 and x0 = 2 cannot both hold.
        lp = LinearProgram(
            c=[1.0],
            a_eq=[[1.0], [1.0]],
            b_eq=[1.0, 2.0],
        )
        with pytest.raises(InfeasibleError):
            solve(lp, backend=backend)

    def test_infeasible_negative_requirement(self, backend):
        # x0 + x1 = -1 with x >= 0 is infeasible.
        lp = LinearProgram(c=[1.0, 1.0], a_eq=[[1.0, 1.0]], b_eq=[-1.0])
        with pytest.raises(InfeasibleError):
            solve(lp, backend=backend)

    def test_unbounded(self, backend):
        # minimise -x1 with x0 - x1 = 0: x can grow along (t, t) forever.
        lp = LinearProgram(c=[0.0, -1.0], a_eq=[[1.0, -1.0]], b_eq=[0.0])
        with pytest.raises(UnboundedError):
            solve(lp, backend=backend)

    def test_redundant_constraint(self, backend):
        # The same constraint twice (tests phase-1 artificial cleanup).
        lp = LinearProgram(
            c=[1.0, 2.0],
            a_eq=[[1.0, 1.0], [1.0, 1.0]],
            b_eq=[1.0, 1.0],
        )
        solution = solve(lp, backend=backend)
        assert solution.objective == pytest.approx(1.0)

    def test_degenerate_vertex(self, backend):
        # Multiple constraints meeting at the optimum (degeneracy exercise
        # for Bland's rule).
        lp = LinearProgram(
            c=[1.0, 1.0, 0.0],
            a_eq=[[1.0, 0.0, 1.0], [0.0, 1.0, 1.0]],
            b_eq=[1.0, 1.0],
        )
        solution = solve(lp, backend=backend)
        assert solution.objective == pytest.approx(0.0)
        assert solution.x[2] == pytest.approx(1.0)

    def test_solution_satisfies_constraints(self, backend):
        lp = LinearProgram(
            c=[3.0, 1.0, 4.0, 1.0, 5.0],
            a_eq=[[1.0, 1.0, 1.0, 1.0, 1.0], [1.0, 2.0, 3.0, 4.0, 5.0]],
            b_eq=[1.0, 2.5],
        )
        solution = solve(lp, backend=backend)
        assert lp.a_eq @ solution.x == pytest.approx(lp.b_eq)
        assert (solution.x >= -1e-9).all()


@given(
    costs=st.lists(st.floats(min_value=-10, max_value=10), min_size=3, max_size=8),
    target=st.floats(min_value=0.1, max_value=5.0),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_simplex_matches_scipy_on_random_feasible_lps(costs, target, seed):
    """Random LPs of the schedule shape: distribution + one moment constraint."""
    n = len(costs)
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.0, 5.0, size=n)
    # Constraint set: sum x = 1, weights @ x = t for a t inside the
    # attainable range, guaranteeing feasibility.
    t = weights.min() + (weights.max() - weights.min()) * min(target / 5.0, 1.0)
    lp = LinearProgram(
        c=costs,
        a_eq=[np.ones(n), weights],
        b_eq=[1.0, t],
    )
    ours = solve_simplex(lp)
    ref = solve_scipy(lp)
    assert ours.objective == pytest.approx(ref.objective, abs=1e-7)
    assert lp.a_eq @ ours.x == pytest.approx(lp.b_eq, abs=1e-7)


def test_auto_backend_prefers_scipy():
    solution = solve(SIMPLE_LP, backend="auto")
    assert solution.backend == "scipy"
