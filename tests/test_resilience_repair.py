"""The bounded repair buffer: NACKs in, budgeted retransmissions out."""

from repro.netsim.rng import RngRegistry
from repro.protocol.resilience import RepairBuffer, ResilienceConfig

CONFIG = ResilienceConfig(
    repair_buffer_limit=4, repair_retry_budget=2,
    repair_backoff=0.5, repair_backoff_factor=2.0, repair_jitter=0.0,
)


def make_buffer(config=CONFIG, seed=5):
    return RepairBuffer(config, RngRegistry(seed).stream("resilience.repair"))


def remember(buffer, seq, k=2, m=3, offered_at=0.0, flow=0):
    # Synthetic-mode shares: position i holds share index i+1 (None body).
    buffer.remember(flow, seq, k, m, offered_at, shares=(None,) * m)


class TestJobs:
    def test_missing_indices_complement_have(self):
        buffer = make_buffer()
        remember(buffer, seq=7, k=3, m=5)
        job = buffer.handle_nack(1.0, 0, 7, have=[2, 4])
        assert job is not None
        assert job.seq == 7
        assert (job.k, job.m, job.round) == (3, 5, 1)
        # Needs k - held = 1 more share, from the missing set {1, 3, 5}.
        assert [index for index, _share in job.shares] == [1]

    def test_exactly_enough_shares_to_reach_k(self):
        buffer = make_buffer()
        remember(buffer, seq=1, k=3, m=4)
        job = buffer.handle_nack(1.0, 0, 1, have=[2])
        assert len(job.shares) == 2  # k=3, held 1

    def test_backoff_grows_per_round(self):
        buffer = make_buffer()
        remember(buffer, seq=1)
        first = buffer.handle_nack(1.0, 0, 1, have=[1])
        assert first.send_at == 1.0 + 0.5
        second = buffer.handle_nack(first.send_at + 0.1, 0, 1, have=[1])
        assert second.round == 2
        assert second.send_at == (first.send_at + 0.1) + 1.0

    def test_jitter_is_seeded_and_bounded(self):
        config = ResilienceConfig(
            repair_backoff=1.0, repair_backoff_factor=1.0, repair_jitter=0.5
        )
        delays = []
        for _ in range(2):
            buffer = make_buffer(config=config, seed=9)
            remember(buffer, seq=1)
            delays.append(buffer.handle_nack(0.0, 0, 1, have=[1]).send_at)
        assert delays[0] == delays[1]  # same stream, same jitter
        assert 1.0 <= delays[0] <= 1.5


class TestBounds:
    def test_unknown_seq_is_counted(self):
        buffer = make_buffer()
        assert buffer.handle_nack(1.0, 0, 99, have=[1]) is None
        assert buffer.unknown_nacks == 1

    def test_budget_exhaustion(self):
        buffer = make_buffer()
        remember(buffer, seq=1)
        now = 1.0
        for expected_round in (1, 2):
            job = buffer.handle_nack(now, 0, 1, have=[1])
            assert job.round == expected_round
            now = job.send_at + 0.01
        assert buffer.handle_nack(now, 0, 1, have=[1]) is None
        assert buffer.budget_exhausted == 1

    def test_duplicate_nack_before_send_time(self):
        buffer = make_buffer()
        remember(buffer, seq=1)
        job = buffer.handle_nack(1.0, 0, 1, have=[1])
        assert buffer.handle_nack(job.send_at - 0.1, 0, 1, have=[1]) is None
        assert buffer.duplicate_nacks == 1

    def test_nothing_needed_is_a_duplicate(self):
        buffer = make_buffer()
        remember(buffer, seq=1, k=2, m=3)
        assert buffer.handle_nack(1.0, 0, 1, have=[1, 2]) is None
        assert buffer.duplicate_nacks == 1

    def test_buffer_evicts_oldest_when_full(self):
        buffer = make_buffer()  # limit 4
        for seq in range(6):
            remember(buffer, seq)
        assert len(buffer) == 4
        assert buffer.handle_nack(1.0, 0, 0, have=[1]) is None  # evicted
        assert buffer.unknown_nacks == 1
        assert buffer.handle_nack(1.0, 0, 5, have=[1]) is not None

    def test_forget(self):
        buffer = make_buffer()
        remember(buffer, seq=1)
        buffer.forget(0, 1)
        assert buffer.handle_nack(1.0, 0, 1, have=[1]) is None
        buffer.forget(0, 1)  # idempotent
