"""Wire hardening fuzz: arbitrary bytes never raise anything but
``WireFormatError``.

The active adversary hands the decoders attacker-controlled bytes, so the
decode boundary must be total: for any input, :func:`decode_share` and
:func:`decode_control` either return a parsed value or raise
:class:`WireFormatError` -- never ``struct.error``, ``IndexError`` or any
other leak of the parsing internals.  Seeded fuzz over random mutations,
truncations and pure garbage locks that contract.
"""

import numpy as np
import pytest

from repro.protocol.wire import (
    FLAG_AUTH,
    HEADER_SIZE,
    TAG_SIZE,
    WireFormatError,
    decode_control,
    decode_share,
    encode_nack,
    encode_probe,
    encode_probe_ack,
    encode_share,
    is_control,
)
from repro.sharing.shamir import ShamirScheme

scheme = ShamirScheme()

TRIALS = 400

TAG = bytes(range(TAG_SIZE))


def valid_packets():
    rng = np.random.default_rng(17)
    shares = scheme.split(b"fuzzing the wire format decoders", 3, 5, rng)
    packets = [encode_share(9, share, scheme.name) for share in shares]
    packets += [encode_share(9, share, scheme.name, flow=4) for share in shares]
    packets += [encode_share(9, share, scheme.name, tag=TAG) for share in shares]
    packets += [
        encode_share(9, share, scheme.name, flow=4, tag=TAG) for share in shares
    ]
    packets += [
        encode_probe(2, 0xDEADBEEF),
        encode_probe_ack(2, 0xDEADBEEF),
        encode_nack(12, 3, 5, [1, 3]),
        encode_nack(12, 3, 5, [1, 3], flow=7),
    ]
    return packets


def decode_any(packet: bytes):
    """Route like the receiver does; only WireFormatError may escape."""
    if is_control(packet):
        return decode_control(packet)
    return decode_share(packet)


class TestDecodeTotality:
    def test_random_garbage(self):
        rng = np.random.default_rng(101)
        for _ in range(TRIALS):
            packet = rng.bytes(int(rng.integers(0, 64)))
            try:
                decode_any(packet)
            except WireFormatError:
                pass

    def test_mutated_valid_packets(self):
        rng = np.random.default_rng(202)
        packets = valid_packets()
        for _ in range(TRIALS):
            packet = bytearray(packets[int(rng.integers(0, len(packets)))])
            for _ in range(int(rng.integers(1, 4))):
                packet[int(rng.integers(0, len(packet)))] = int(rng.integers(0, 256))
            try:
                decode_any(bytes(packet))
            except WireFormatError:
                pass

    def test_truncations_of_valid_packets(self):
        for packet in valid_packets():
            for cut in range(len(packet)):
                try:
                    decode_any(packet[:cut])
                except WireFormatError:
                    pass

    def test_extensions_of_valid_packets(self):
        rng = np.random.default_rng(303)
        for packet in valid_packets():
            extended = packet + rng.bytes(int(rng.integers(1, 16)))
            try:
                decode_any(extended)
            except WireFormatError:
                pass

    def test_magic_preserving_mutations(self):
        """Keep the 2-byte magic intact so mutations reach the deep parse
        paths (version/flags/struct unpacks) instead of bailing at the
        magic check."""
        rng = np.random.default_rng(404)
        packets = valid_packets()
        for _ in range(TRIALS):
            packet = bytearray(packets[int(rng.integers(0, len(packets)))])
            position = int(rng.integers(2, len(packet)))
            packet[position] = int(rng.integers(0, 256))
            try:
                decode_any(bytes(packet))
            except WireFormatError:
                pass


class TestAuthFrameTolerance:
    """Version 3 (FLAG_AUTH) edges of the decode-totality contract."""

    def _v3_packet(self, flow=0):
        rng = np.random.default_rng(55)
        share = scheme.split(b"v3 auth frame fuzz seed payload!", 3, 5, rng)[0]
        return encode_share(21, share, scheme.name, flow=flow, tag=TAG)

    def test_garbage_tag_bytes_still_decode(self):
        """A corrupted tag is a *verification* failure, not a parse error:
        the decoder must hand it up intact for the MAC check."""
        rng = np.random.default_rng(606)
        packet = bytearray(self._v3_packet())
        for _ in range(TRIALS):
            position = HEADER_SIZE + int(rng.integers(0, TAG_SIZE))
            packet[position] = int(rng.integers(0, 256))
            header, _ = decode_share(bytes(packet))
            assert header.tag == bytes(packet[HEADER_SIZE : HEADER_SIZE + TAG_SIZE])

    def test_truncated_tag_is_wire_error(self):
        packet = self._v3_packet()
        for cut in range(HEADER_SIZE, HEADER_SIZE + TAG_SIZE):
            with pytest.raises(WireFormatError):
                decode_share(packet[:cut])

    def test_flag_auth_with_no_tag_bytes_is_wire_error(self):
        """A bare v3 header claiming FLAG_AUTH but carrying zero extension
        bytes must be rejected as truncated, never sliced short."""
        packet = self._v3_packet()[:HEADER_SIZE]
        with pytest.raises(WireFormatError):
            decode_share(packet)

    def test_v3_without_flag_auth_means_no_tag(self):
        packet = bytearray(self._v3_packet())
        packet[15] &= ~FLAG_AUTH
        header, share = decode_share(bytes(packet))
        assert header.tag is None
        # The tag bytes are no longer claimed, so they land in the body.
        assert share.data.startswith(TAG)

    def test_unknown_flag_bits_are_ignored(self):
        reference_header, reference_share = decode_share(self._v3_packet(flow=4))
        packet = bytearray(self._v3_packet(flow=4))
        packet[15] |= 0xF4  # every undefined bit
        header, share = decode_share(bytes(packet))
        assert header.tag == reference_header.tag
        assert header.flow == reference_header.flow
        assert share.data == reference_share.data

    def test_mutated_v3_packets_keep_the_contract(self):
        rng = np.random.default_rng(707)
        packets = [self._v3_packet(), self._v3_packet(flow=4)]
        for _ in range(TRIALS):
            packet = bytearray(packets[int(rng.integers(0, len(packets)))])
            position = int(rng.integers(2, len(packet)))
            packet[position] = int(rng.integers(0, 256))
            try:
                decode_any(bytes(packet))
            except WireFormatError:
                pass

    def test_truncations_of_v3_packets(self):
        for packet in (self._v3_packet(), self._v3_packet(flow=4)):
            for cut in range(len(packet)):
                try:
                    decode_any(packet[:cut])
                except WireFormatError:
                    pass

    def test_tag_length_is_not_attacker_controlled(self):
        """No header field can stretch or shrink the tag region: the slice
        is a fixed TAG_SIZE regardless of surrounding bytes."""
        rng = np.random.default_rng(808)
        base = self._v3_packet()
        for _ in range(TRIALS):
            packet = bytearray(base)
            # Mutate seq/index/k/m (bytes 4..14) but preserve magic,
            # version and flags so the auth path is always taken.
            position = int(rng.integers(4, 15))
            packet[position] = int(rng.integers(0, 256))
            try:
                header, _ = decode_share(bytes(packet))
            except WireFormatError:
                continue
            assert header.tag is not None and len(header.tag) == TAG_SIZE


class TestDecodeErrors:
    def test_empty_inputs(self):
        with pytest.raises(WireFormatError):
            decode_share(b"")
        with pytest.raises(WireFormatError):
            decode_control(b"")

    def test_short_header_is_wire_error_not_struct_error(self):
        packet = valid_packets()[0]
        with pytest.raises(WireFormatError):
            decode_share(packet[:5])

    def test_control_truncated_after_magic(self):
        with pytest.raises(WireFormatError):
            decode_control(encode_probe(0, 1)[:4])
