"""Wire hardening fuzz: arbitrary bytes never raise anything but
``WireFormatError``.

The active adversary hands the decoders attacker-controlled bytes, so the
decode boundary must be total: for any input, :func:`decode_share` and
:func:`decode_control` either return a parsed value or raise
:class:`WireFormatError` -- never ``struct.error``, ``IndexError`` or any
other leak of the parsing internals.  Seeded fuzz over random mutations,
truncations and pure garbage locks that contract.
"""

import numpy as np
import pytest

from repro.protocol.wire import (
    WireFormatError,
    decode_control,
    decode_share,
    encode_nack,
    encode_probe,
    encode_probe_ack,
    encode_share,
    is_control,
)
from repro.sharing.shamir import ShamirScheme

scheme = ShamirScheme()

TRIALS = 400


def valid_packets():
    rng = np.random.default_rng(17)
    shares = scheme.split(b"fuzzing the wire format decoders", 3, 5, rng)
    packets = [encode_share(9, share, scheme.name) for share in shares]
    packets += [encode_share(9, share, scheme.name, flow=4) for share in shares]
    packets += [
        encode_probe(2, 0xDEADBEEF),
        encode_probe_ack(2, 0xDEADBEEF),
        encode_nack(12, 3, 5, [1, 3]),
        encode_nack(12, 3, 5, [1, 3], flow=7),
    ]
    return packets


def decode_any(packet: bytes):
    """Route like the receiver does; only WireFormatError may escape."""
    if is_control(packet):
        return decode_control(packet)
    return decode_share(packet)


class TestDecodeTotality:
    def test_random_garbage(self):
        rng = np.random.default_rng(101)
        for _ in range(TRIALS):
            packet = rng.bytes(int(rng.integers(0, 64)))
            try:
                decode_any(packet)
            except WireFormatError:
                pass

    def test_mutated_valid_packets(self):
        rng = np.random.default_rng(202)
        packets = valid_packets()
        for _ in range(TRIALS):
            packet = bytearray(packets[int(rng.integers(0, len(packets)))])
            for _ in range(int(rng.integers(1, 4))):
                packet[int(rng.integers(0, len(packet)))] = int(rng.integers(0, 256))
            try:
                decode_any(bytes(packet))
            except WireFormatError:
                pass

    def test_truncations_of_valid_packets(self):
        for packet in valid_packets():
            for cut in range(len(packet)):
                try:
                    decode_any(packet[:cut])
                except WireFormatError:
                    pass

    def test_extensions_of_valid_packets(self):
        rng = np.random.default_rng(303)
        for packet in valid_packets():
            extended = packet + rng.bytes(int(rng.integers(1, 16)))
            try:
                decode_any(extended)
            except WireFormatError:
                pass

    def test_magic_preserving_mutations(self):
        """Keep the 2-byte magic intact so mutations reach the deep parse
        paths (version/flags/struct unpacks) instead of bailing at the
        magic check."""
        rng = np.random.default_rng(404)
        packets = valid_packets()
        for _ in range(TRIALS):
            packet = bytearray(packets[int(rng.integers(0, len(packets)))])
            position = int(rng.integers(2, len(packet)))
            packet[position] = int(rng.integers(0, 256))
            try:
                decode_any(bytes(packet))
            except WireFormatError:
                pass


class TestDecodeErrors:
    def test_empty_inputs(self):
        with pytest.raises(WireFormatError):
            decode_share(b"")
        with pytest.raises(WireFormatError):
            decode_control(b"")

    def test_short_header_is_wire_error_not_struct_error(self):
        packet = valid_packets()[0]
        with pytest.raises(WireFormatError):
            decode_share(packet[:5])

    def test_control_truncated_after_magic(self):
        with pytest.raises(WireFormatError):
            decode_control(encode_probe(0, 1)[:4])
