"""Authenticated shares under active attack: the end-to-end guarantee.

With ``auth=True`` armed in :func:`run_under_attack`, every share carries
a keyed MAC, bad-tag shares are dropped before reassembly as *erasures*,
and robust decoding runs at the full ``m - k`` erasure radius.  The
properties here are the ones docs/ADVERSARY.md now claims:

* **unconditional detection** -- under every canonical scenario, zero
  silently-accepted wrong payloads (for forgery/corruption this no longer
  depends on redundancy arithmetic, only on the MAC assumption);
* **the erasure payoff** -- the same corruption storm that saturates
  unique decoding is survived when failed positions are located;
* **verified-failure feedback** -- per-channel auth-failure attribution
  reaches the resilience layer's health monitor and quarantines the
  forgery-heavy channel;
* **determinism** -- same-seed auth runs replay byte-identically.
"""

import pytest

from repro.adversary.active import CANONICAL_ATTACKS, canonical_attack, run_under_attack

START, STOP = 4.0, 24.0
DURATION = 20.0


def run(name, auth, seed=7, resilience=False, **overrides):
    plan = canonical_attack(name, START, STOP, **overrides)
    return run_under_attack(
        plan, duration=DURATION, seed=seed, auth=auth, resilience=resilience
    )


class TestUnconditionalDetection:
    @pytest.mark.parametrize("name", sorted(CANONICAL_ATTACKS))
    def test_no_silent_acceptance_under_any_canonical_scenario(self, name):
        row = run(name, auth=True)
        assert row["auth_armed"] is True
        assert row["wrong_payloads"] == 0
        assert row["kappa_floor_held"]

    def test_forged_injection_is_detected_not_absorbed(self):
        row = run("forged_injection", auth=True)
        # Every forged share fails verification (the forger has no key --
        # copying a live tag onto a different body is the strongest
        # keyless move and still fails the slot binding).
        assert row["receiver"]["auth_failed_shares"] > 0
        assert row["wrong_payloads"] == 0
        assert row["attack"]["stats"]["shares_forged"] > 0

    def test_targeted_corruption_delivers_everything(self):
        row = run("targeted_corruption", auth=True)
        # width=2 corrupted channels sit inside the erasure radius
        # m - k = 2 of the default (κ=2, µ=4) geometry, so detection is
        # also *recovery*: nothing wrong and nothing lost.
        assert row["wrong_payloads"] == 0
        assert row["delivered"] == row["transmitted"]

    def test_auth_failures_attribute_to_the_attacked_channel(self):
        row = run("corruption_storm", auth=True, channel=1, rate=1.0, mode="rewrite")
        assert row["wrong_payloads"] == 0
        assert set(row["auth_fail_by_channel"]) == {"1"}


class TestErasurePayoff:
    def test_storm_survived_at_the_erasure_radius(self):
        # An aggressive storm on two channels: unique decoding tolerates
        # floor((4-2)/2) = 1 corrupted share per symbol, erasure decoding
        # tolerates 2.  Auth must deliver strictly more than unauth.
        overrides = dict(rate=1.0, mode="rewrite")
        unauth = run("corruption_storm", auth=False, **overrides)
        auth = run("corruption_storm", auth=True, **overrides)
        assert auth["wrong_payloads"] == 0
        assert unauth["wrong_payloads"] == 0  # robust decode already held
        assert auth["delivered"] > unauth["delivered"]

    def test_verified_shares_counted(self):
        row = run("corruption_storm", auth=True)
        receiver = row["receiver"]
        assert receiver["auth_verified_shares"] > 0
        assert receiver["auth_failed_shares"] > 0
        assert receiver["auth_missing_shares"] == 0  # sender tags everything
        # Conservation: every share the receiver judged was tagged once at
        # the sender (the testbed is lossless; <= absorbs in-flight shares
        # cut off at the drain horizon).
        judged = receiver["auth_verified_shares"] + receiver["auth_failed_shares"]
        assert judged <= row["sender"]["auth_tagged_shares"]


class TestVerifiedFailureFeedback:
    def test_forgery_heavy_channel_is_quarantined(self):
        # Unauth, forged shares that collide as duplicates or decode fine
        # are invisible to loss accounting; with auth every one of them is
        # *verified* bad and folds into the health monitor's uselessness
        # EWMA, so the channel crosses the suspicion threshold.
        row = run(
            "forged_injection", auth=True, resilience=True, channel=2, rate=8.0
        )
        resilience = row["resilience"]
        assert resilience["quarantines"] >= 1
        assert any(
            t["channel"] == 2 and t["target"] == "quarantined"
            for t in resilience["transitions"]
        )
        assert row["wrong_payloads"] == 0


class TestRepairReTagging:
    def test_repaired_shares_verify_and_recover_at_k_equals_m(self):
        # κ = µ = 3 with a storm on one channel: each hit symbol holds
        # 2 verified shares < k, times out, NACKs, and the repair sender
        # re-tags the retransmission per flow.  If repairs went out
        # untagged (or tagged under the wrong slot) they would fail
        # verification and recovery would be zero.
        plan = canonical_attack(
            "corruption_storm", START, 14.0, rate=0.5, mode="rewrite", channel=1
        )
        row = run_under_attack(
            plan, kappa=3.0, mu=3.0, tolerance=1, duration=DURATION, seed=7,
            auth=True, resilience=True,
        )
        resilience = row["resilience"]
        assert resilience["nacks_received"] > 0
        assert resilience["repair_shares_sent"] > 0
        assert row["receiver"]["repair_recovered"] == resilience["nacks_received"]
        assert row["wrong_payloads"] == 0
        assert row["delivered"] == row["transmitted"]


class TestDeterminism:
    def test_same_seed_auth_replay_is_byte_identical(self):
        first = run("corruption_storm", auth=True, seed=11)
        second = run("corruption_storm", auth=True, seed=11)
        assert first == second

    def test_auth_rows_differ_only_deterministically_across_seeds(self):
        assert run("corruption_storm", auth=True, seed=11)["digest"] != run(
            "corruption_storm", auth=True, seed=12
        )["digest"]

    def test_unauth_rows_keep_zero_auth_counters(self):
        row = run("corruption_storm", auth=False)
        assert row["auth_armed"] is False
        assert row["sender"]["auth_tagged_shares"] == 0
        assert row["receiver"]["auth_verified_shares"] == 0
        assert row["receiver"]["auth_failed_shares"] == 0
        assert row["auth_fail_by_channel"] == {}
