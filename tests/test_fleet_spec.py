"""Fleet descriptors: validation, round-trips, deterministic synthesis."""

import pytest

from repro.fleet import FleetSpec, FlowSpec, Tenant, synthesize_fleet
from repro.sweep.spec import canonical_json


def tenant(name="acme", **kwargs):
    return Tenant(name=name, **kwargs)


class TestTenant:
    def test_defaults(self):
        t = tenant()
        assert t.min_kappa == 1.0
        assert t.weight == 1.0
        assert t.max_flows is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"min_kappa": 0.5},
            {"weight": 0.0},
            {"weight": -1.0},
            {"max_flows": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            Tenant(**{"name": "t", **kwargs})

    def test_dict_roundtrip(self):
        t = Tenant(name="gold", min_kappa=2.0, weight=2.0, max_flows=5)
        assert Tenant.from_dict(t.as_dict()) == t


class TestFlowSpec:
    def test_dict_roundtrip(self):
        f = FlowSpec(flow=3, tenant="gold", kappa=2.0, mu=3.0, rate=8.0, symbols=16, start=0.5)
        assert FlowSpec.from_dict(f.as_dict()) == f

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"flow": 0},  # 0 is the reserved default stream
            {"kappa": 0.5},
            {"kappa": 3.0, "mu": 2.0},  # κ > µ
            {"rate": 0.0},
            {"symbols": -1},
            {"start": -0.1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        base = {"flow": 1, "tenant": "t", "kappa": 1.0, "mu": 2.0}
        with pytest.raises(ValueError):
            FlowSpec(**{**base, **kwargs})


class TestFleetSpec:
    def test_flows_sorted_by_id(self):
        flows = [
            FlowSpec(flow=2, tenant="t", kappa=1.0, mu=2.0),
            FlowSpec(flow=1, tenant="t", kappa=1.0, mu=2.0),
        ]
        fleet = FleetSpec(tenants=(tenant("t"),), flows=tuple(flows))
        assert [f.flow for f in fleet.flows] == [1, 2]

    def test_duplicate_flow_ids_rejected(self):
        flows = [FlowSpec(flow=1, tenant="t", kappa=1.0, mu=2.0)] * 2
        with pytest.raises(ValueError, match="duplicate flow"):
            FleetSpec(tenants=(tenant("t"),), flows=tuple(flows))

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ValueError, match="duplicate tenant"):
            FleetSpec(tenants=(tenant("t"), tenant("t")))

    def test_unknown_tenant_rejected(self):
        flows = (FlowSpec(flow=1, tenant="ghost", kappa=1.0, mu=2.0),)
        with pytest.raises(ValueError, match="unknown tenant"):
            FleetSpec(tenants=(tenant("t"),), flows=flows)

    def test_dict_roundtrip_is_canonical(self):
        fleet = synthesize_fleet(9)
        again = FleetSpec.from_dict(fleet.as_dict())
        assert again == fleet
        # The dict form feeds sweep-point identity hashing, so it must be
        # canonical-JSON clean (no NaN, JSON-able scalars only).
        assert canonical_json(fleet.as_dict()) == canonical_json(again.as_dict())


class TestSynthesize:
    def test_deterministic(self):
        assert synthesize_fleet(50) == synthesize_fleet(50)

    def test_flow_ids_are_dense_from_one(self):
        fleet = synthesize_fleet(10)
        assert [f.flow for f in fleet.flows] == list(range(1, 11))

    def test_every_flow_meets_its_tenants_floor(self):
        fleet = synthesize_fleet(100)
        for flow in fleet.flows:
            assert flow.kappa >= fleet.tenant(flow.tenant).min_kappa

    def test_tenants_are_cycled(self):
        fleet = synthesize_fleet(6)
        names = [f.tenant for f in fleet.flows]
        assert names == ["gold", "silver", "bronze"] * 2

    def test_empty_fleet(self):
        fleet = synthesize_fleet(0)
        assert fleet.flows == ()

    def test_infeasible_tenant_floor_rejected(self):
        strict = Tenant(name="paranoid", min_kappa=9.0)
        with pytest.raises(ValueError, match="no synthesis profile"):
            synthesize_fleet(1, tenants=(strict,))
