"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.channel import ChannelSet


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def three_channels() -> ChannelSet:
    """A small diverse channel set used across model tests."""
    return ChannelSet.from_vectors(
        risks=[0.2, 0.5, 0.1],
        losses=[0.1, 0.05, 0.2],
        delays=[2.0, 9.0, 10.0],
        rates=[3.0, 4.0, 8.0],
    )


@pytest.fixture
def five_channels() -> ChannelSet:
    """A five-channel set mirroring the paper's testbed scale."""
    return ChannelSet.from_vectors(
        risks=[0.3, 0.1, 0.25, 0.15, 0.2],
        losses=[0.01, 0.005, 0.01, 0.02, 0.03],
        delays=[0.25, 0.025, 1.25, 0.5, 0.05],
        rates=[5.0, 20.0, 60.0, 65.0, 100.0],
    )


@pytest.fixture
def lossless_channels() -> ChannelSet:
    """Channels with zero loss (delay formulas collapse to order stats)."""
    return ChannelSet.from_vectors(
        risks=[0.4, 0.3, 0.2],
        losses=[0.0, 0.0, 0.0],
        delays=[2.0, 9.0, 10.0],
        rates=[10.0, 10.0, 10.0],
    )
