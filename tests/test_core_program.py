"""The schedule linear programs (Sec. IV-B, IV-D) and limited schedules (IV-E)."""

import numpy as np
import pytest

from repro.core.channel import ChannelSet
from repro.core.optimal import max_privacy_risk, min_delay, min_loss
from repro.core.program import (
    Objective,
    build_program,
    fractional_atoms,
    limited_pairs,
    optimal_property_value,
    optimal_schedule,
    schedule_pairs,
    theorem5_schedule,
)
from repro.core.rate import optimal_channel_usage, optimal_rate


class TestSchedulePairs:
    def test_count_for_n(self, five_channels, three_channels):
        # Sum over subsets M of |M| choices of k: n=3 -> 1*3 + 2*3 + 3*1 = 12.
        assert len(schedule_pairs(three_channels)) == 12
        # n=5 -> sum m*C(5,m) = 5 + 20 + 30 + 20 + 5 = 80.
        assert len(schedule_pairs(five_channels)) == 80

    def test_all_pairs_valid(self, five_channels):
        for k, members in schedule_pairs(five_channels):
            assert 1 <= k <= len(members)

    def test_deterministic_order(self, five_channels):
        assert schedule_pairs(five_channels) == schedule_pairs(five_channels)

    def test_limited_pairs_respect_floors(self, five_channels):
        pairs = limited_pairs(five_channels, kappa=2.5, mu=3.5)
        assert pairs
        for k, members in pairs:
            assert k >= 2
            assert len(members) >= 3

    def test_limited_pairs_subset_of_all(self, five_channels):
        all_pairs = set(schedule_pairs(five_channels))
        assert set(limited_pairs(five_channels, 2.0, 4.0)) <= all_pairs


class TestFreeProgram:
    @pytest.mark.parametrize("objective", list(Objective))
    def test_schedule_hits_kappa_mu(self, five_channels, objective):
        s = optimal_schedule(five_channels, objective, kappa=2.0, mu=3.5)
        assert s.kappa == pytest.approx(2.0, abs=1e-6)
        assert s.mu == pytest.approx(3.5, abs=1e-6)

    def test_free_extremes_match_closed_forms(self, five_channels):
        n = five_channels.n
        z = optimal_property_value(five_channels, Objective.PRIVACY, kappa=n, mu=n)
        assert z == pytest.approx(max_privacy_risk(five_channels)[0], abs=1e-9)
        l = optimal_property_value(five_channels, Objective.LOSS, kappa=1.0, mu=n)
        assert l == pytest.approx(min_loss(five_channels)[0], abs=1e-9)
        d = optimal_property_value(five_channels, Objective.DELAY, kappa=1.0, mu=n)
        assert d == pytest.approx(min_delay(five_channels)[0], abs=1e-6)

    def test_objective_value_matches_schedule_property(self, five_channels):
        value = optimal_property_value(five_channels, Objective.LOSS, 2.0, 3.0)
        s = optimal_schedule(five_channels, Objective.LOSS, 2.0, 3.0)
        assert s.loss() == pytest.approx(value, abs=1e-9)

    def test_relaxing_mu_never_hurts_loss(self, five_channels):
        # More multiplicity budget cannot increase the optimal loss.
        losses = [
            optimal_property_value(five_channels, Objective.LOSS, 1.5, mu)
            for mu in (2.0, 3.0, 4.0, 5.0)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(losses, losses[1:]))

    def test_invalid_parameters_rejected(self, five_channels):
        with pytest.raises(ValueError):
            build_program(five_channels, Objective.LOSS, kappa=3.0, mu=2.0)
        with pytest.raises(ValueError):
            build_program(five_channels, Objective.LOSS, kappa=0.5, mu=2.0)
        with pytest.raises(ValueError):
            build_program(five_channels, Objective.LOSS, kappa=1.0, mu=6.0)


class TestMaxRateProgram:
    @pytest.mark.parametrize("objective", list(Objective))
    def test_schedule_sustains_optimal_rate(self, five_channels, objective):
        mu = 3.0
        s = optimal_schedule(five_channels, objective, kappa=2.0, mu=mu, at_max_rate=True)
        assert s.max_symbol_rate() == pytest.approx(
            optimal_rate(five_channels, mu), rel=1e-6
        )

    def test_usage_matches_theorem(self, five_channels):
        mu = 3.4
        s = optimal_schedule(
            five_channels, Objective.PRIVACY, kappa=2.0, mu=mu, at_max_rate=True
        )
        np.testing.assert_allclose(
            s.channel_usage(), optimal_channel_usage(five_channels, mu), atol=1e-7
        )

    def test_mu_constraint_implied(self, five_channels):
        s = optimal_schedule(
            five_channels, Objective.LOSS, kappa=2.0, mu=3.0, at_max_rate=True
        )
        assert s.mu == pytest.approx(3.0, abs=1e-6)
        assert s.kappa == pytest.approx(2.0, abs=1e-6)

    def test_max_rate_costs_some_optimality(self, five_channels):
        """Free optimisation is at least as good as max-rate optimisation."""
        free = optimal_property_value(five_channels, Objective.LOSS, 2.0, 3.0)
        at_rate = optimal_property_value(
            five_channels, Objective.LOSS, 2.0, 3.0, at_max_rate=True
        )
        assert free <= at_rate + 1e-9

    def test_backends_agree(self, five_channels):
        for backend in ("simplex", "scipy"):
            value = optimal_property_value(
                five_channels, Objective.DELAY, 2.0, 3.5, at_max_rate=True,
                backend=backend,
            )
            assert value == pytest.approx(
                optimal_property_value(
                    five_channels, Objective.DELAY, 2.0, 3.5, at_max_rate=True,
                    backend="scipy",
                ),
                abs=1e-7,
            )


class TestFractionalAtoms:
    def test_integral_parameters_single_atom(self):
        assert fractional_atoms(2.0, 4.0) == [((2, 4), 1.0)]

    def test_exact_averages(self):
        for kappa, mu in [(1.5, 3.5), (2.0, 2.7), (1.2, 1.6), (3.0, 3.0), (1.0, 4.9)]:
            atoms = fractional_atoms(kappa, mu)
            mean_k = sum(k * p for (k, _), p in atoms)
            mean_m = sum(m * p for (_, m), p in atoms)
            total = sum(p for _, p in atoms)
            assert total == pytest.approx(1.0)
            assert mean_k == pytest.approx(kappa)
            assert mean_m == pytest.approx(mu)

    def test_all_atoms_satisfy_ordering(self):
        for kappa, mu in [(1.5, 1.9), (2.3, 2.6), (4.9, 5.0), (1.0, 1.1)]:
            for (k, m), p in fractional_atoms(kappa, mu):
                assert 1 <= k <= m
                assert p > 0

    def test_same_unit_cell_three_atoms(self):
        atoms = fractional_atoms(2.3, 2.7)
        assert len(atoms) <= 3
        mean_k = sum(k * p for (k, _), p in atoms)
        mean_m = sum(m * p for (_, m), p in atoms)
        assert mean_k == pytest.approx(2.3)
        assert mean_m == pytest.approx(2.7)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            fractional_atoms(2.0, 1.5)
        with pytest.raises(ValueError):
            fractional_atoms(0.5, 1.0)


class TestTheorem5:
    @pytest.mark.parametrize(
        "kappa,mu", [(1.0, 1.0), (1.5, 3.5), (2.3, 2.7), (3.0, 4.2), (5.0, 5.0)]
    )
    def test_limited_schedule_exists_with_exact_averages(self, five_channels, kappa, mu):
        s = theorem5_schedule(five_channels, kappa, mu)
        assert s.kappa == pytest.approx(kappa)
        assert s.mu == pytest.approx(mu)
        # Every atom lies in M' (k >= floor(kappa), |M| >= floor(mu)).
        for (k, members), _ in s.support():
            assert k >= int(kappa)
            assert len(members) >= int(mu)

    def test_custom_subset_chooser(self, five_channels):
        s = theorem5_schedule(
            five_channels, 2.0, 3.0, subset_chooser=lambda size: range(5 - size, 5)
        )
        ((k, members),) = [pair for pair, _ in s.support()]
        assert members == frozenset({2, 3, 4})


class TestSectionIVECounterexample:
    """The paper's d = (2, 9, 10) example: limiting the schedule loses delay."""

    @pytest.fixture
    def example_channels(self):
        return ChannelSet.from_vectors(
            risks=[0.0] * 3,
            losses=[0.0] * 3,
            delays=[2.0, 9.0, 10.0],
            rates=[1.0] * 3,
        )

    def test_limited_schedule_is_stuck_at_nine(self, example_channels):
        value = optimal_property_value(
            example_channels, Objective.DELAY, kappa=2.0, mu=3.0, limited=True
        )
        assert value == pytest.approx(9.0)

    def test_unrestricted_schedule_achieves_six(self, example_channels):
        value = optimal_property_value(
            example_channels, Objective.DELAY, kappa=2.0, mu=3.0, limited=False
        )
        assert value == pytest.approx(6.0)

    def test_the_paper_mixture_attains_it(self, example_channels):
        from repro.core.schedule import ShareSchedule

        s = ShareSchedule(
            example_channels,
            {(1, frozenset({0, 1, 2})): 0.5, (3, frozenset({0, 1, 2})): 0.5},
        )
        assert s.kappa == pytest.approx(2.0)
        assert s.mu == pytest.approx(3.0)
        assert s.delay() == pytest.approx(6.0)

    def test_rate_unaffected_by_limiting(self, example_channels):
        """Sec. IV-E: the optimal rate depends only on µ, so limiting the
        schedule does not change it."""
        s_limited = optimal_schedule(
            example_channels, Objective.DELAY, 2.0, 3.0, limited=True
        )
        s_free = optimal_schedule(
            example_channels, Objective.DELAY, 2.0, 3.0, limited=False
        )
        assert s_limited.max_symbol_rate() == pytest.approx(s_free.max_symbol_rate())
