"""Batched sharing is bit-identical to the per-datagram path.

The ISSUE acceptance criterion: routing the sender hot path through
``split_many`` (and the receive path through ``reconstruct_many``) must
change *nothing* observable -- same wire shares, same delivery order,
same delays, same stats -- because ``split_many`` preserves the exact
per-secret rng draw order and parameter sampling lives on a separate
named stream.  These tests run the same seeded simulation twice with
only the batch knobs flipped and compare everything.

Also the stats JSON shape regression (satellite 6): single-flow callers
keep the historical dict shape -- no ``flows`` key appears until a
nonzero flow actually carries traffic.
"""

from repro.core.channel import Channel, ChannelSet
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.receiver import ReceiverStats
from repro.protocol.remicss import PointToPointNetwork
from repro.protocol.sender import SenderStats

SYMBOLS = 24


def run_once(sender_batch_limit=1, batch_reconstruct=False, seed=5, symbols=SYMBOLS):
    """One seeded A -> B run; returns (transmit trace, delivery trace,
    sender stats, receiver stats, split_many call sizes).

    Slow channels plus a burst of offers keep the source queue deep, so a
    batching sender genuinely has multiple queued symbols to split at
    once; κ = µ = 2 keeps every queued symbol's (k, m) equal so batches
    actually form.
    """
    channels = ChannelSet(
        Channel(risk=0.1, loss=0.0, delay=0.02, rate=4.0) for _ in range(3)
    )
    registry = RngRegistry(seed)
    config = ProtocolConfig(
        kappa=2.0,
        mu=2.0,
        symbol_size=64,
        share_synthetic=False,
        sender_batch_limit=sender_batch_limit,
        batch_reconstruct=batch_reconstruct,
    )
    network = PointToPointNetwork(
        channels, config.symbol_size, registry, queue_limit=2
    )
    node_a, node_b = network.node_pair(config, registry)

    split_sizes = []
    inner_split = config.scheme.split_many

    def counting_split(secrets, k, m, rng):
        split_sizes.append(len(secrets))
        return inner_split(secrets, k, m, rng)

    config.scheme.split_many = counting_split

    transmitted = []
    node_a.sender.on_transmit = (
        lambda flow, seq, k, m, offered_at, shares: transmitted.append(
            (flow, seq, k, m, offered_at, tuple(shares))
        )
    )
    delivered = []
    node_b.on_deliver(
        lambda seq, payload, delay: delivered.append((seq, payload, delay))
    )

    payload_rng = registry.stream("test.payload")
    for _ in range(symbols):
        assert node_a.send(payload_rng.bytes(config.symbol_size))
    network.engine.run()
    del config.scheme.split_many  # restore the class method on the instance
    return (
        transmitted,
        delivered,
        node_a.sender.stats.as_dict(),
        node_b.receiver.stats.as_dict(),
        split_sizes,
    )


class TestBatchedSenderIdentity:
    def test_batched_path_is_bit_identical(self):
        """batch_limit 8 vs 1: every transmitted Share (index, data, k),
        every delivered (seq, payload, delay) and both stat dicts match
        exactly."""
        tx_one, rx_one, s_one, r_one, _ = run_once(sender_batch_limit=1)
        tx_bat, rx_bat, s_bat, r_bat, _ = run_once(sender_batch_limit=8)
        assert tx_bat == tx_one
        assert rx_bat == rx_one
        assert s_bat == s_one
        assert r_bat == r_one
        assert rx_one, "sanity: traffic was delivered"

    def test_split_many_really_batches(self):
        """The hot path demonstrably goes through one split_many call for
        several queued symbols -- not a degenerate length-1 loop."""
        _, _, _, _, sizes_one = run_once(sender_batch_limit=1)
        _, _, _, _, sizes_bat = run_once(sender_batch_limit=8)
        assert all(size == 1 for size in sizes_one)
        assert max(sizes_bat) > 1
        assert sum(sizes_bat) == sum(sizes_one) == SYMBOLS
        assert len(sizes_bat) < len(sizes_one)

    def test_batch_limit_respected(self):
        _, _, _, _, sizes = run_once(sender_batch_limit=4)
        assert max(sizes) <= 4


class TestBatchedReconstructIdentity:
    def test_reconstruct_many_path_is_identical(self):
        tx_off, rx_off, s_off, r_off, _ = run_once(batch_reconstruct=False)
        tx_on, rx_on, s_on, r_on, _ = run_once(batch_reconstruct=True)
        assert rx_on == rx_off
        assert tx_on == tx_off
        assert s_on == s_off
        assert r_on == r_off

    def test_both_knobs_together(self):
        _, rx_plain, s_plain, r_plain, _ = run_once()
        _, rx_both, s_both, r_both, _ = run_once(
            sender_batch_limit=8, batch_reconstruct=True
        )
        assert rx_both == rx_plain
        assert s_both == s_plain
        assert r_both == r_plain


class TestStatsJsonShape:
    """Satellite 6: pre-fleet callers see the exact historical JSON."""

    HISTORICAL_SENDER_KEYS = {
        "symbols_offered", "symbols_sent", "source_drops", "shares_sent",
        "share_send_failures", "readiness_stalls", "admission_paused_drops",
        "auth_tagged_shares",
    }

    def test_sender_stats_flow0_shape_unchanged(self):
        stats = SenderStats()
        stats.count(0, "symbols_offered")
        stats.count(0, "symbols_sent")
        data = stats.as_dict()
        assert "flows" not in data
        assert set(data) == self.HISTORICAL_SENDER_KEYS

    def test_receiver_stats_flow0_shape_unchanged(self):
        stats = ReceiverStats()
        stats.count(0, "shares_received")
        stats.count(0, "symbols_delivered")
        data = stats.as_dict()
        assert "flows" not in data

    def test_flows_block_appears_only_with_nonzero_flows(self):
        stats = SenderStats()
        stats.count(0, "symbols_offered")
        stats.count(3, "symbols_offered")
        data = stats.as_dict()
        assert data["symbols_offered"] == 2  # totals span all flows
        assert set(data["flows"]) == {"3"}
        assert data["flows"]["3"]["symbols_offered"] == 1

    def test_single_flow_simulation_keeps_historical_shape(self):
        """End to end: a flow-0-only run serialises with no flows block in
        either direction, so existing reports and baselines are stable."""
        _, _, sender_dict, receiver_dict, _ = run_once(symbols=4)
        assert "flows" not in sender_dict
        assert "flows" not in receiver_dict
