"""Field axioms and arithmetic for GF(2^8) and prime fields."""

import pytest
from hypothesis import given

from hypothesis import strategies as st

from repro.gf.field import Field
from repro.gf.gf256 import GF256_FIELD, _carryless_mul

from repro.gf.gfp import PrimeField, is_prime, next_prime

gf256_elems = st.integers(min_value=0, max_value=255)
gfp_elems = st.integers(min_value=0, max_value=250)  # within GF(251)

GF251 = PrimeField(251)


@pytest.fixture(params=["gf256", "gf251"])
def field(request) -> Field:
    return GF256_FIELD if request.param == "gf256" else GF251


def elems(field: Field):
    return st.integers(min_value=0, max_value=field.order - 1)


class TestGF256Tables:
    def test_table_mul_matches_carryless_oracle(self):
        f = GF256_FIELD
        for a in range(0, 256, 7):
            for b in range(0, 256, 5):
                assert f.mul(a, b) == _carryless_mul(a, b)

    def test_known_aes_product(self):
        # 0x57 * 0x83 = 0xc1 under the AES polynomial (FIPS-197 example).
        assert GF256_FIELD.mul(0x57, 0x83) == 0xC1

    def test_inverse_of_one_is_one(self):
        assert GF256_FIELD.inv(1) == 1

    def test_every_nonzero_element_has_inverse(self):
        f = GF256_FIELD
        for a in range(1, 256):
            assert f.mul(a, f.inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            GF256_FIELD.inv(0)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256_FIELD.div(7, 0)

    def test_add_is_xor(self):
        assert GF256_FIELD.add(0b1010, 0b0110) == 0b1100

    def test_characteristic_two_self_inverse(self):
        f = GF256_FIELD
        for a in range(256):
            assert f.add(a, a) == 0
            assert f.neg(a) == a


@given(a=gf256_elems, b=gf256_elems, c=gf256_elems)
def test_gf256_ring_axioms(a, b, c):
    f = GF256_FIELD
    assert f.add(a, b) == f.add(b, a)
    assert f.mul(a, b) == f.mul(b, a)
    assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))


@given(a=gf256_elems)
def test_gf256_identities(a):
    f = GF256_FIELD
    assert f.add(a, 0) == a
    assert f.mul(a, 1) == a
    assert f.mul(a, 0) == 0
    assert f.sub(a, a) == 0


@given(a=st.integers(min_value=1, max_value=255), b=st.integers(min_value=1, max_value=255))
def test_gf256_div_inverts_mul(a, b):
    f = GF256_FIELD
    assert f.div(f.mul(a, b), b) == a


@given(a=gfp_elems, b=gfp_elems, c=gfp_elems)
def test_gfp_ring_axioms(a, b, c):
    f = GF251
    assert f.add(a, b) == f.add(b, a)
    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))


@given(a=st.integers(min_value=1, max_value=250))
def test_gfp_inverse(a):
    f = GF251
    assert f.mul(a, f.inv(a)) == 1


class TestFieldHelpers:
    def test_pow_matches_repeated_mul(self, field):
        a = 3 % field.order
        acc = 1
        for exponent in range(10):
            assert field.pow(a, exponent) == acc
            acc = field.mul(acc, a)

    def test_pow_negative_exponent(self, field):
        a = 5 % field.order
        assert field.mul(field.pow(a, -3), field.pow(a, 3)) == 1

    def test_sum_and_dot(self, field):
        values = [1, 2, 3, 4]
        assert field.sum([]) == 0
        expected = 0
        for v in values:
            expected = field.add(expected, v)
        assert field.sum(values) == expected
        assert field.dot([1, 0, 1], [5, 7, 9]) == field.add(5, 9)

    def test_validate_accepts_and_rejects(self, field):
        assert field.validate(0) == 0
        assert field.validate(field.order - 1) == field.order - 1
        with pytest.raises(ValueError):
            field.validate(field.order)
        with pytest.raises(ValueError):
            field.validate(-1)

    def test_contains(self, field):
        assert 0 in field
        assert field.order not in field
        assert "x" not in field


class TestPrimality:
    def test_is_prime_small(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43}
        for n in range(45):
            assert is_prime(n) == (n in primes)

    def test_is_prime_large(self):
        assert is_prime(2**61 - 1)  # Mersenne prime
        assert not is_prime(2**61 + 1)

    def test_next_prime(self):
        assert next_prime(2) == 2
        assert next_prime(14) == 17
        assert next_prime(17) == 17
        assert next_prime(256**2) > 256**2

    def test_prime_field_rejects_composite(self):
        with pytest.raises(ValueError):
            PrimeField(256)

    def test_prime_field_equality_and_hash(self):
        assert PrimeField(251) == PrimeField(251)
        assert PrimeField(251) != PrimeField(257)
        assert hash(PrimeField(251)) == hash(PrimeField(251))
