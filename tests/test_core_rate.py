"""The rate results: Theorems 1-4, corollaries, and the Fig. 2 packing."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.channel import ChannelSet
from repro.core.rate import (
    full_utilization_mu_limit,
    fully_utilized_set,
    max_rate,
    mu_for_target_rate,
    optimal_channel_usage,
    optimal_rate,
    optimal_rate_bruteforce,
    pack_schedule,
    rate_maximizing_schedule,
    theorem1_lower_bound,
)

rate_lists = st.lists(
    st.floats(min_value=0.5, max_value=100.0), min_size=1, max_size=6
)


def channels_from_rates(rates):
    n = len(rates)
    return ChannelSet.from_vectors(
        risks=[0.0] * n, losses=[0.0] * n, delays=[0.0] * n, rates=rates
    )


class TestMaxRate:
    def test_is_total(self, five_channels):
        assert max_rate(five_channels) == pytest.approx(250.0)

    def test_rate_maximizing_schedule(self, five_channels):
        s = rate_maximizing_schedule(five_channels)
        assert s.kappa == pytest.approx(1.0)
        assert s.mu == pytest.approx(1.0)
        assert s.max_symbol_rate() == pytest.approx(250.0)
        # Proportional split: p(1, {i}) = r_i / R_C.
        assert s.probability(1, {4}) == pytest.approx(100.0 / 250.0)


class TestTheorem4:
    def test_mu_one_gives_total(self, five_channels):
        assert optimal_rate(five_channels, 1.0) == pytest.approx(250.0)

    def test_mu_n_gives_min(self, five_channels):
        assert optimal_rate(five_channels, 5.0) == pytest.approx(5.0)

    def test_diverse_known_value(self, five_channels):
        # rates (5,20,60,65,100), mu=3: min over prefixes -> 75.
        assert optimal_rate(five_channels, 3.0) == pytest.approx(75.0)

    def test_identical_channels_closed_form(self):
        channels = channels_from_rates([10.0] * 5)
        for mu in (1.0, 1.7, 2.5, 4.0, 5.0):
            assert optimal_rate(channels, mu) == pytest.approx(50.0 / mu)

    def test_matches_bruteforce(self, five_channels):
        for mu in np.arange(1.0, 5.01, 0.25):
            assert optimal_rate(five_channels, float(mu)) == pytest.approx(
                optimal_rate_bruteforce(five_channels, float(mu))
            )

    @given(rates=rate_lists, mu_frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce_property(self, rates, mu_frac):
        channels = channels_from_rates(rates)
        mu = 1.0 + mu_frac * (len(rates) - 1)
        assert optimal_rate(channels, mu) == pytest.approx(
            optimal_rate_bruteforce(channels, mu)
        )

    @given(rates=rate_lists, mu_frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone_decreasing_in_mu(self, rates, mu_frac):
        channels = channels_from_rates(rates)
        mu = 1.0 + mu_frac * (len(rates) - 1)
        higher_mu = min(float(len(rates)), mu + 0.3)
        assert optimal_rate(channels, mu) >= optimal_rate(channels, higher_mu) - 1e-9

    def test_invalid_mu_rejected(self, five_channels):
        with pytest.raises(ValueError):
            optimal_rate(five_channels, 0.5)
        with pytest.raises(ValueError):
            optimal_rate(five_channels, 5.5)


class TestTheorem1:
    def test_lower_bound_value(self, five_channels):
        # mu = 3: the 3rd-highest rate is 60.
        assert theorem1_lower_bound(five_channels, 3.0) == pytest.approx(60.0)
        # mu = 2.5 -> ceil = 3 -> still 60.
        assert theorem1_lower_bound(five_channels, 2.5) == pytest.approx(60.0)

    @given(rates=rate_lists, mu_frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_theorem1_holds(self, rates, mu_frac):
        channels = channels_from_rates(rates)
        mu = 1.0 + mu_frac * (len(rates) - 1)
        assert optimal_rate(channels, mu) >= theorem1_lower_bound(channels, mu) - 1e-9


class TestTheorem2:
    def test_limit_value(self, five_channels):
        assert full_utilization_mu_limit(five_channels) == pytest.approx(2.5)

    def test_identical_channels_always_full(self):
        # Corollary 1: identical rates -> limit is n.
        channels = channels_from_rates([7.0] * 4)
        assert full_utilization_mu_limit(channels) == pytest.approx(4.0)

    def test_full_utilization_iff_below_limit(self, five_channels):
        limit = full_utilization_mu_limit(five_channels)
        total = max_rate(five_channels)
        # Below the limit, R_C = total/mu (all channels fully used).
        for mu in (1.0, 1.5, 2.0, 2.49):
            assert optimal_rate(five_channels, mu) == pytest.approx(total / mu)
        # Above it, strictly less.
        for mu in (2.6, 3.0, 4.0):
            assert optimal_rate(five_channels, mu) < total / mu - 1e-9
        assert limit == pytest.approx(2.5)


class TestTheorem3:
    @given(rates=rate_lists, mu_frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_theorem3_fixed_point(self, rates, mu_frac):
        """R_C(µ) and µ(R_C) are inverses: µ = Σ min(r_i/R_C, 1)."""
        channels = channels_from_rates(rates)
        mu = 1.0 + mu_frac * (len(rates) - 1)
        rate = optimal_rate(channels, mu)
        assert mu_for_target_rate(channels, rate) == pytest.approx(mu, abs=1e-9)

    def test_mu_for_target_rate_monotone(self, five_channels):
        rates = [10.0, 50.0, 100.0, 200.0]
        mus = [mu_for_target_rate(five_channels, r) for r in rates]
        assert all(a >= b - 1e-12 for a, b in zip(mus, mus[1:]))

    def test_invalid_target(self, five_channels):
        with pytest.raises(ValueError):
            mu_for_target_rate(five_channels, 0.0)


class TestFullyUtilizedSet:
    def test_corollary2_size_bound(self, five_channels):
        for mu in np.arange(1.0, 5.01, 0.5):
            utilized = fully_utilized_set(five_channels, float(mu))
            assert len(utilized) > five_channels.n - mu

    def test_mu_one_all_utilized(self, five_channels):
        assert fully_utilized_set(five_channels, 1.0) == frozenset(range(5))

    def test_mu_n_slowest_only(self, five_channels):
        # R_C = 5; only the 5 Mbps channel satisfies r_i <= R_C.
        assert fully_utilized_set(five_channels, 5.0) == frozenset({0})

    def test_usage_vector(self, five_channels):
        usage = optimal_channel_usage(five_channels, 3.0)
        rate = optimal_rate(five_channels, 3.0)
        np.testing.assert_allclose(
            usage, np.minimum(five_channels.rates / rate, 1.0)
        )
        # Theorem 3: usages sum to mu.
        assert usage.sum() == pytest.approx(3.0)


class TestPackSchedule:
    def test_fig2_example(self):
        """The paper's Figure 2 rates (3, 4, 8) pack to the optimum."""
        channels = channels_from_rates([3.0, 4.0, 8.0])
        for m in (1, 2, 3):
            columns, used = pack_schedule([3, 4, 8], m)
            assert len(columns) == int(optimal_rate(channels, float(m)))
            assert all(len(col) == m for col in columns)

    def test_mu_one_uses_everything(self):
        columns, used = pack_schedule([3, 4, 8], 1)
        assert len(columns) == 15
        assert used == [3, 4, 8]

    def test_usage_never_exceeds_capacity(self):
        columns, used = pack_schedule([2, 5, 9, 1], 2)
        assert all(u <= r for u, r in zip(used, [2, 5, 9, 1]))

    def test_no_channel_twice_per_symbol(self):
        columns, _ = pack_schedule([5, 5, 5], 3)
        assert all(len(col) == 3 for col in columns)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pack_schedule([3, 4], 3)
        with pytest.raises(ValueError):
            pack_schedule([3, -1], 1)
        with pytest.raises(ValueError):
            pack_schedule([3, 4], 0)

    @given(
        rates=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=6),
        m=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_greedy_achieves_theorem4_floor(self, rates, m):
        if m > len(rates) or all(r == 0 for r in rates):
            return
        columns, used = pack_schedule(rates, m)
        positive = [float(max(r, 1e-9)) for r in rates]
        channels = channels_from_rates(positive)
        # Greedy water-filling is optimal for integer capacities.
        optimum = optimal_rate(channels, float(m))
        assert len(columns) == math.floor(optimum + 1e-9)
