"""The send path: queueing, readiness waiting, dynamic/explicit selection."""

import numpy as np
import pytest

from repro.core.schedule import ShareSchedule
from repro.netsim.engine import Engine
from repro.netsim.host import CpuModel
from repro.netsim.link import Link
from repro.netsim.ports import ChannelPort
from repro.protocol.config import ProtocolConfig
from repro.protocol.scheduler import DynamicParameterSampler, ExplicitScheduler
from repro.protocol.sender import ShareSender
from repro.protocol.wire import HEADER_SIZE, decode_share


def make_ports(engine, n=3, byte_rate=1000.0, queue_limit=4):
    ports = []
    for i in range(n):
        link = Link(
            engine, byte_rate=byte_rate, loss=0.0, delay=0.0,
            rng=np.random.default_rng(100 + i), queue_limit=queue_limit,
        )
        ports.append(ChannelPort(i, link))
    return ports


def make_sender(engine, ports, kappa=1.0, mu=1.0, config=None, sampler=None, cpu=None):
    config = config or ProtocolConfig(kappa=kappa, mu=mu, symbol_size=100)
    sampler = sampler or DynamicParameterSampler(
        config.kappa, config.mu, np.random.default_rng(0)
    )
    return ShareSender(engine, ports, sampler, config, np.random.default_rng(1), cpu=cpu)


class TestBasicSending:
    def test_one_share_per_chosen_channel(self):
        engine = Engine()
        ports = make_ports(engine)
        received = []
        for port in ports:
            port.on_receive(lambda dg, p=port: received.append((p.index, dg)))
        sender = make_sender(engine, ports, kappa=2.0, mu=3.0)
        payload = bytes(100)
        assert sender.offer(payload)
        engine.run()
        assert len(received) == 3
        assert len({index for index, _ in received}) == 3
        assert sender.stats.shares_sent == 3
        assert sender.stats.symbols_sent == 1

    def test_share_packets_decode(self):
        engine = Engine()
        ports = make_ports(engine)
        packets = []
        ports[0].on_receive(lambda dg: packets.append(dg))
        sender = make_sender(engine, ports, kappa=3.0, mu=3.0)
        sender.offer(bytes(100))
        engine.run()
        header, share = decode_share(packets[0].payload)
        assert header.k == 3
        assert header.m == 3
        assert len(share.data) == 100
        assert packets[0].size == 100 + HEADER_SIZE

    def test_payload_size_enforced(self):
        engine = Engine()
        sender = make_sender(engine, make_ports(engine))
        with pytest.raises(ValueError):
            sender.offer(bytes(99))

    def test_synthetic_requires_flag(self):
        engine = Engine()
        sender = make_sender(engine, make_ports(engine))
        with pytest.raises(ValueError):
            sender.offer(None)

    def test_synthetic_datagrams_have_size_only(self):
        engine = Engine()
        ports = make_ports(engine)
        got = []
        ports[0].on_receive(lambda dg: got.append(dg))
        config = ProtocolConfig(kappa=1.0, mu=3.0, symbol_size=100, share_synthetic=True)
        sender = make_sender(engine, ports, config=config)
        sender.offer(None)
        engine.run()
        assert got[0].payload is None
        assert got[0].size == 100 + HEADER_SIZE
        assert got[0].meta["m"] == 3


class TestBackpressure:
    def test_source_queue_overflow_drops(self):
        engine = Engine()
        ports = make_ports(engine, byte_rate=10.0, queue_limit=1)
        config = ProtocolConfig(kappa=1.0, mu=3.0, symbol_size=100, source_queue_limit=2)
        sender = make_sender(engine, ports, config=config)
        results = [sender.offer(bytes(100)) for _ in range(10)]
        assert not all(results)
        assert sender.stats.source_drops == results.count(False)

    def test_waits_for_enough_writable_channels(self):
        engine = Engine()
        # Slow channels with tiny queues: a 3-channel symbol must wait.
        ports = make_ports(engine, n=3, byte_rate=100.0, queue_limit=1)
        # Saturate channel 2's queue.
        from repro.netsim.packet import Datagram

        ports[2].send(Datagram(size=1000))
        ports[2].send(Datagram(size=1000))
        assert not ports[2].writable()
        sender = make_sender(engine, ports, kappa=3.0, mu=3.0)
        sender.offer(bytes(100))
        # Cannot send yet: only two channels writable.
        assert sender.stats.symbols_sent == 0
        assert sender.backlog == 1
        engine.run()  # queue drains -> writable notification -> pump
        assert sender.stats.symbols_sent == 1

    def test_progress_resumes_after_drain(self):
        engine = Engine()
        ports = make_ports(engine, n=2, byte_rate=100.0, queue_limit=2)
        delivered = []
        for port in ports:
            port.on_receive(lambda dg: delivered.append(1))
        sender = make_sender(engine, ports, kappa=2.0, mu=2.0)
        for _ in range(10):
            sender.offer(bytes(100))
        engine.run()
        assert sender.stats.symbols_sent == 10
        assert len(delivered) == 20


class TestExplicitSchedule:
    def test_uses_exact_subset(self, rng):
        engine = Engine()
        ports = make_ports(engine, n=3)
        per_port = {0: 0, 1: 0, 2: 0}
        for port in ports:
            port.on_receive(lambda dg, p=port: per_port.__setitem__(p.index, per_port[p.index] + 1))

        from repro.core.channel import ChannelSet

        channels = ChannelSet.from_vectors(
            risks=[0.0] * 3, losses=[0.0] * 3, delays=[0.0] * 3, rates=[1.0] * 3
        )
        schedule = ShareSchedule.singleton(channels, 2, [0, 2])
        config = ProtocolConfig(kappa=2.0, mu=2.0, symbol_size=100)
        sampler = ExplicitScheduler(schedule, rng)
        sender = ShareSender(engine, ports, sampler, config, np.random.default_rng(1))
        for _ in range(5):
            sender.offer(bytes(100))
        engine.run()
        assert per_port == {0: 5, 1: 0, 2: 5}

    def test_shares_per_channel_counters(self):
        engine = Engine()
        ports = make_ports(engine, n=3)
        sender = make_sender(engine, ports, kappa=1.0, mu=2.0)
        for _ in range(20):
            sender.offer(bytes(100))
        engine.run()
        assert sum(sender.shares_per_channel) == sender.stats.shares_sent == 40


class TestCpuPacing:
    def test_finite_cpu_caps_symbol_rate(self):
        engine = Engine()
        ports = make_ports(engine, byte_rate=1e6, queue_limit=64)
        # 2 work units per symbol (split 1 + one share 1) at capacity 1/unit
        # -> one symbol every 2 time units.
        cpu = CpuModel(engine, capacity=1.0)
        config = ProtocolConfig(kappa=1.0, mu=1.0, symbol_size=100)
        sender = make_sender(engine, ports, config=config, cpu=cpu)
        for _ in range(5):
            sender.offer(bytes(100))
        engine.run()
        assert sender.stats.symbols_sent == 5
        # 5 symbols x 2 units at capacity 1 = 10, plus the final share's
        # serialisation tail on the wire.
        assert engine.now == pytest.approx(10.0, abs=0.01)
