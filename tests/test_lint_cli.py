"""CLI surface of the determinism linter, plus the live-tree meta-test."""

import json
import os

import pytest

from repro.cli import main as repro_main
from repro.lint import Baseline, lint_paths
from repro.lint.cli import main as lint_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HAZARD = "import time\nt = time.time()\n"
CLEAN = "def f(x):\n    return x + 1\n"


@pytest.fixture
def tree(tmp_path):
    target = tmp_path / "src" / "repro" / "netsim"
    target.mkdir(parents=True)
    (target / "bad.py").write_text(HAZARD)
    (target / "good.py").write_text(CLEAN)
    return tmp_path


class TestLintCli:
    def test_exit_one_on_findings_text(self, tree, capsys):
        assert lint_main(["--root", str(tree), "src"]) == 1
        out = capsys.readouterr().out
        assert "src/repro/netsim/bad.py:2" in out
        assert "wall-clock" in out
        assert "1 finding(s)" in out

    def test_exit_zero_on_clean_tree(self, tree, capsys):
        (tree / "src" / "repro" / "netsim" / "bad.py").write_text(CLEAN)
        assert lint_main(["--root", str(tree), "src"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_format(self, tree, capsys):
        assert lint_main(["--root", str(tree), "--format", "json", "src"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert data["counts"] == {"wall-clock": 1}
        assert data["findings"][0]["file"] == "src/repro/netsim/bad.py"

    def test_update_then_gate_on_baseline(self, tree, capsys):
        assert lint_main(["--root", str(tree), "--update-baseline", "src"]) == 0
        baseline_path = tree / "lint-baseline.json"
        assert len(Baseline.load(str(baseline_path))) == 1
        # The default baseline next to --root is picked up automatically...
        assert lint_main(["--root", str(tree), "src"]) == 0
        capsys.readouterr()
        # ...and --no-baseline reports the grandfathered finding again.
        assert lint_main(["--root", str(tree), "--no-baseline", "src"]) == 1

    def test_repro_cli_lint_subcommand(self, tree, capsys):
        assert repro_main(["lint", "--root", str(tree), "src"]) == 1
        assert "wall-clock" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "wall-clock",
            "unseeded-rng",
            "unordered-iteration",
            "env-read",
            "mutable-default",
            "float-eq",
        ):
            assert rule_id in out

    def test_metrics_out(self, tree, tmp_path, capsys):
        metrics = tmp_path / "lint-metrics.jsonl"
        assert lint_main(["--root", str(tree), "--metrics-out", str(metrics), "src"]) == 1
        names = {json.loads(line)["name"] for line in metrics.read_text().splitlines()}
        assert "lint_files_scanned_total" in names
        assert "lint_findings_total" in names

    def test_missing_path_is_an_error(self, tmp_path, capsys):
        assert lint_main(["--root", str(tmp_path), "nope"]) == 2


class TestLiveTree:
    """The acceptance gate: this repository lints clean, baseline empty."""

    PATHS = ("src", "tests", "benchmarks")

    def test_shipped_baseline_is_empty(self):
        baseline = Baseline.load(os.path.join(REPO_ROOT, "lint-baseline.json"))
        assert len(baseline) == 0

    def test_tree_lints_clean(self):
        report = lint_paths(REPO_ROOT, [p for p in self.PATHS])
        assert report.ok, "\n".join(f.render() for f in report.findings)
        # The four wall-time reporting sites in experiments/runner.py, the
        # fingerprint override in sweep/cache.py and the documented
        # exact-zero sentinels are suppressed, not silently exempted.
        assert len(report.suppressed) >= 8

    def test_cli_exits_zero_on_repo(self, capsys):
        assert lint_main(["--root", REPO_ROOT]) == 0
