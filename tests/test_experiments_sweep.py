"""Sweep-orchestrated experiments: figure wiring, MC chunking, CLI surface."""

import json

import numpy as np
import pytest

from repro.adversary.montecarlo import (
    _pool_chunks,
    _split_samples,
    estimate_schedule_properties_sweep,
    estimate_subset_properties_sweep,
    subset_sweep_spec,
)
from repro.cli import main as cli_main
from repro.core.channel import ChannelSet
from repro.core.properties import subset_loss, subset_risk
from repro.experiments.fig3 import fig3_point, fig3_spec, run_fig3
from repro.experiments.fig67 import fig6_spec, fig7_spec
from repro.sweep import ResultCache, SweepRunner, values


QUICK = dict(kappas=(1.0, 3.0), mu_step=1.0, duration=4.0, warmup=1.0)


@pytest.fixture
def five_channels():
    return ChannelSet.from_vectors(
        risks=[0.2, 0.1, 0.3, 0.05, 0.15],
        losses=[0.01, 0.02, 0.005, 0.03, 0.01],
        delays=[1.0, 2.0, 3.0, 4.0, 5.0],
        rates=[10.0] * 5,
    )


class TestFigureWiring:
    def test_fig3_serial_path_matches_plain_loop(self):
        """run_fig3 is the spec enumerated point-by-point, nothing more."""
        spec = fig3_spec(setup="identical", **QUICK)
        expected = [fig3_point(dict(p.params), p.seed) for p in spec]
        assert run_fig3(setup="identical", **QUICK) == expected

    @pytest.mark.slow
    def test_fig3_jobs_do_not_change_rows(self):
        serial = run_fig3(setup="identical", **QUICK, jobs=1)
        parallel = run_fig3(setup="identical", **QUICK, jobs=2)
        assert parallel == serial

    @pytest.mark.slow
    def test_fig3_resume_serves_identical_rows(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="test")
        cold = run_fig3(setup="identical", **QUICK, cache=cache)
        runner_check = SweepRunner(cache=cache)
        warm_results = runner_check.run(fig3_spec(setup="identical", **QUICK), fig3_point)
        assert values(warm_results) == cold
        assert runner_check.stats.cache_hits == runner_check.stats.points

    def test_fig3_spec_grid_matches_mu_grid(self):
        spec = fig3_spec(setup="diverse", kappas=(2.0,), mu_step=1.0)
        mus = [p.params["mu"] for p in spec]
        assert mus == [2.0, 3.0, 4.0, 5.0]
        assert all(p.params["setup"] == "diverse" for p in spec)

    def test_fig67_specs_cover_expected_grids(self):
        spec6 = fig6_spec(sweep_mbps=(100.0, 200.0))
        assert [p.params["channel_mbps"] for p in spec6] == [100.0, 200.0]
        assert all(p.params["kappa"] == 1.0 and p.params["mu"] == 1.0 for p in spec6)
        spec7 = fig7_spec(sweep_mbps=(100.0,), kappas=(1.0, 5.0))
        assert [(p.params["kappa"], p.params["channel_mbps"]) for p in spec7] == [
            (1.0, 100.0),
            (5.0, 100.0),
        ]

    def test_per_point_seeds_are_collision_free(self):
        # The arithmetic this subsystem replaced (seed + int(kappa*1000) +
        # int(mu*10)) collided across (kappa, mu) pairs; derived seeds don't.
        spec = fig3_spec(setup="identical", kappas=(1.0, 2.0, 3.0, 4.0, 5.0), mu_step=0.1)
        seeds = [p.seed for p in spec]
        assert len(set(seeds)) == len(seeds)


class TestMonteCarloSweep:
    def test_chunk_split_conserves_samples(self):
        assert _split_samples(10, 3) == [4, 3, 3]
        assert _split_samples(2, 8) == [1, 1]
        assert sum(_split_samples(100_000, 7)) == 100_000
        with pytest.raises(ValueError):
            _split_samples(0, 3)

    def test_pooling_weights_delay_by_delivered(self):
        pooled = _pool_chunks(
            [
                {"risk": 0.1, "loss": 0.5, "delay": 2.0, "samples": 100},
                {"risk": 0.3, "loss": 0.0, "delay": 4.0, "samples": 100},
            ]
        )
        assert pooled.risk == pytest.approx(0.2)
        assert pooled.loss == pytest.approx(0.25)
        # 50 delivered at 2.0, 100 delivered at 4.0.
        assert pooled.delay == pytest.approx((50 * 2.0 + 100 * 4.0) / 150)
        assert pooled.samples == 200

    def test_pooling_all_lost_gives_nan_delay(self):
        pooled = _pool_chunks(
            [{"risk": 0.0, "loss": 1.0, "delay": float("nan"), "samples": 10}]
        )
        assert np.isnan(pooled.delay)

    def test_sweep_estimates_match_closed_forms(self, five_channels):
        estimate = estimate_subset_properties_sweep(
            five_channels, 2, [0, 2, 4], samples=120_000, chunks=6, seed=3
        )
        assert estimate.samples == 120_000
        assert estimate.risk == pytest.approx(
            subset_risk(five_channels, 2, [0, 2, 4]), abs=0.01
        )
        assert estimate.loss == pytest.approx(
            subset_loss(five_channels, 2, [0, 2, 4]), abs=0.005
        )

    @pytest.mark.slow
    def test_jobs_do_not_change_estimates(self, five_channels):
        kwargs = dict(samples=40_000, chunks=4, seed=9)
        serial = estimate_subset_properties_sweep(five_channels, 2, [0, 1, 2], **kwargs)
        parallel = estimate_subset_properties_sweep(
            five_channels, 2, [0, 1, 2], jobs=2, **kwargs
        )
        assert serial == parallel

    def test_chunks_are_independently_seeded(self, five_channels):
        spec = subset_sweep_spec(five_channels, 2, [0, 1, 2], samples=1000, chunks=4)
        seeds = [p.seed for p in spec]
        assert len(set(seeds)) == 4

    def test_schedule_sweep_matches_closed_forms(self, five_channels):
        from repro.core.schedule import ShareSchedule

        schedule = ShareSchedule(
            five_channels, {(2, frozenset({0, 1, 2})): 0.5, (3, frozenset({1, 2, 3, 4})): 0.5}
        )
        estimate = estimate_schedule_properties_sweep(
            schedule, samples=60_000, chunks=3, seed=1
        )
        assert estimate.risk == pytest.approx(schedule.privacy_risk(), abs=0.01)
        assert estimate.loss == pytest.approx(schedule.loss(), abs=0.01)


class TestSweepCli:
    ARGS = [
        "sweep", "--figure", "fig3", "--kappa", "1",
        "--mu-step", "2", "--duration", "3", "--warmup", "1",
    ]

    def test_sweep_command_runs_and_reports(self, capsys):
        assert cli_main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "sweep: points=3 cache_hits=0 computed=3" in out
        assert "ratio" in out

    @pytest.mark.slow
    def test_resume_round_trip_is_byte_identical(self, tmp_path, capsys):
        args = self.ARGS + [
            "--jobs", "2", "--resume", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert cli_main(args + ["--out", str(tmp_path / "a.json")]) == 0
        first = capsys.readouterr().out
        assert "computed=3" in first
        assert cli_main(args + ["--out", str(tmp_path / "b.json")]) == 0
        second = capsys.readouterr().out
        assert "cache_hits=3 computed=0" in second
        assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()
        assert json.loads((tmp_path / "a.json").read_text())

    def test_runner_module_exit_codes(self):
        from repro.experiments.runner import main as runner_main

        assert runner_main(["--only", "fig2"]) == 0
