"""Schema and invariants of the committed ``BENCH_micro.json`` trend file.

The micro benchmark (``benchmarks/bench_micro.py --json``) commits its
scalar-vs-batch throughput table at the repo root so the batch pipeline's
advantage is visible PR-to-PR and gated in CI (``--check``).  A trend file
nobody validates rots silently, so this suite pins:

* the schema (names, types, positivity) the CI gate parses,
* internal consistency (the recorded speedup is batch/scalar),
* the headline acceptance bar: the committed Shamir 3-of-5 split speedup
  is at least the 10x the vectorized rewrite promised, and
* the gate logic itself (regressions detected, self-comparison clean).
"""

import importlib.util
import json
import math
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_micro.json"

EXPECTED_SCHEMES = {"shamir_3of5", "ramp_L2_3of5", "xor_5of5"}
EXPECTED_OPS = {"split", "reconstruct"}
EXPECTED_FIELDS = {"scalar_mbps", "batch_mbps", "speedup"}


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_micro", ROOT / "benchmarks" / "bench_micro.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def trend() -> dict:
    assert BENCH_JSON.exists(), "BENCH_micro.json must be committed at the repo root"
    return json.loads(BENCH_JSON.read_text())


class TestSchema:
    def test_header(self, trend):
        assert trend["schema"] == "bench-micro/1"
        assert isinstance(trend["payload_bytes"], int) and trend["payload_bytes"] == 1280
        assert isinstance(trend["repeats"], int) and trend["repeats"] >= 1

    def test_scheme_coverage(self, trend):
        assert set(trend["schemes"]) == EXPECTED_SCHEMES

    def test_entry_shape_and_positivity(self, trend):
        for scheme, ops in trend["schemes"].items():
            assert set(ops) == EXPECTED_OPS, scheme
            for op, row in ops.items():
                assert set(row) == EXPECTED_FIELDS, (scheme, op)
                for field, value in row.items():
                    assert isinstance(value, (int, float)), (scheme, op, field)
                    assert value > 0, (scheme, op, field)

    def test_speedup_is_batch_over_scalar(self, trend):
        for scheme, ops in trend["schemes"].items():
            for op, row in ops.items():
                derived = row["batch_mbps"] / row["scalar_mbps"]
                # The file stores round(_, 2)/round(_, 3) values; allow the
                # rounding slack but nothing more.
                assert math.isclose(row["speedup"], derived, rel_tol=0.02), (scheme, op)

    def test_shamir_split_meets_10x_bar(self, trend):
        # The acceptance bar of the vectorized rewrite: batch split of the
        # 1280-byte SYMBOL payload at >= 10x the scalar oracle.
        assert trend["schemes"]["shamir_3of5"]["split"]["speedup"] >= 10.0


class TestRegressionGate:
    def test_self_comparison_is_clean(self, trend):
        bench = _load_bench_module()
        assert bench.check_against_baseline(trend, trend) == []

    def test_speedup_regression_detected(self, trend):
        bench = _load_bench_module()
        regressed = json.loads(json.dumps(trend))
        row = regressed["schemes"]["ramp_L2_3of5"]["reconstruct"]
        row["speedup"] = trend["schemes"]["ramp_L2_3of5"]["reconstruct"]["speedup"] * 0.5
        failures = bench.check_against_baseline(regressed, trend)
        assert any("ramp_L2_3of5.reconstruct" in f for f in failures)

    def test_10x_floor_enforced_even_if_baseline_regresses_too(self, trend):
        # Committing a bad baseline must not silence the absolute floor.
        bench = _load_bench_module()
        slowed = json.loads(json.dumps(trend))
        slowed["schemes"]["shamir_3of5"]["split"]["speedup"] = 6.0
        failures = bench.check_against_baseline(slowed, slowed)
        assert any(">= 10x" in f for f in failures)

    def test_within_tolerance_passes(self, trend):
        bench = _load_bench_module()
        wobbled = json.loads(json.dumps(trend))
        for ops in wobbled["schemes"].values():
            for row in ops.values():
                row["speedup"] = row["speedup"] * 0.9  # inside the 20% band
        assert bench.check_against_baseline(wobbled, trend) == []
