"""The command-line interface."""

import json

import pytest

from repro.cli import load_channels, main

CHANNELS = [
    [0.3, 0.01, 0.25, 5.0],
    [0.1, 0.005, 0.025, 20.0],
    [0.25, 0.01, 1.25, 60.0],
]


@pytest.fixture
def channels_file(tmp_path):
    path = tmp_path / "channels.json"
    path.write_text(json.dumps(CHANNELS))
    return str(path)


class TestLoadChannels:
    def test_json_rows(self, channels_file):
        channels = load_channels(channels_file, None)
        assert channels.n == 3
        assert channels[1].rate == 20.0

    def test_json_objects(self, tmp_path):
        path = tmp_path / "objs.json"
        path.write_text(
            json.dumps([{"risk": 0.1, "loss": 0.0, "delay": 0.5, "rate": 10.0}])
        )
        channels = load_channels(str(path), None)
        assert channels[0].delay == 0.5

    def test_inline(self):
        channels = load_channels(None, [[0.1, 0.0, 0.5, 10.0]])
        assert channels.n == 1

    def test_both_rejected(self, channels_file):
        with pytest.raises(ValueError):
            load_channels(channels_file, [[0.1, 0.0, 0.5, 10.0]])

    def test_neither_rejected(self):
        with pytest.raises(ValueError):
            load_channels(None, None)


class TestRateCommand:
    def test_basic(self, channels_file, capsys):
        code = main(["rate", "--channels", channels_file, "--mu", "2.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "n = 3 channels" in out
        assert "Theorem 4" in out
        assert "Z_C" in out

    def test_inline_channels(self, capsys):
        code = main(
            ["rate", "--channel", "0.1,0.0,0.5,10", "--channel", "0.2,0.0,0.1,30"]
        )
        assert code == 0
        assert "total rate = 40" in capsys.readouterr().out

    def test_missing_channels_errors(self, capsys):
        code = main(["rate"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestOptimizeCommand:
    def test_privacy_at_max_rate(self, channels_file, capsys):
        code = main(
            ["optimize", "--channels", channels_file, "--kappa", "2", "--mu", "2.5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kappa = 2.0000" in out
        assert "atoms:" in out

    def test_free_and_limited_flags(self, channels_file, capsys):
        code = main(
            [
                "optimize", "--channels", channels_file,
                "--kappa", "2", "--mu", "3", "--objective", "delay",
                "--free", "--limited",
            ]
        )
        assert code == 0

    def test_invalid_parameters_reported(self, channels_file, capsys):
        code = main(
            ["optimize", "--channels", channels_file, "--kappa", "3", "--mu", "2"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestPlanCommand:
    def test_feasible_plan(self, channels_file, capsys):
        code = main(["plan", "--channels", channels_file, "--max-risk", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan: kappa" in out
        assert "risk =" in out

    def test_infeasible_plan(self, channels_file, capsys):
        code = main(["plan", "--channels", channels_file, "--max-risk", "0"])
        assert code == 1
        assert "no feasible plan" in capsys.readouterr().err


class TestSimulateCommand:
    def test_quick_run(self, channels_file, capsys):
        code = main(
            [
                "simulate", "--channels", channels_file,
                "--kappa", "1", "--mu", "1",
                "--duration", "5", "--warmup", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "achieved rate" in out
        assert "achieved/optimal" in out
        # Sanity: the measured ratio printed is near 1.
        ratio = float(out.split("achieved/optimal = ")[1].splitlines()[0])
        assert 0.9 < ratio <= 1.0

    def test_faults_scenario_by_name(self, channels_file, capsys):
        code = main(
            [
                "simulate", "--channels", channels_file,
                "--kappa", "1", "--mu", "1",
                "--duration", "5", "--warmup", "1",
                "--faults", "flap",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults applied" in out
        summary = json.loads(out.split("faults applied = ")[1].splitlines()[0])
        assert summary["applied"] >= 2
        assert summary["by_action"].get("link_down", 0) >= 1

    def test_faults_json_file(self, channels_file, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps([
            {"time": 2.0, "action": "link_down", "channel": 0},
            {"time": 3.0, "action": "link_up", "channel": 0},
        ]))
        code = main(
            [
                "simulate", "--channels", channels_file,
                "--kappa", "1", "--mu", "1",
                "--duration", "5", "--warmup", "1",
                "--faults", str(plan_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        summary = json.loads(out.split("faults applied = ")[1].splitlines()[0])
        assert summary["by_action"] == {"link_down": 1, "link_up": 1}

    def test_metrics_out_writes_dump(self, channels_file, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.jsonl"
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "simulate", "--channels", channels_file,
                "--kappa", "1", "--mu", "1",
                "--duration", "5", "--warmup", "1",
                "--faults", "flap",
                "--metrics-out", str(metrics_path),
                "--trace-out", str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics" in out and "trace" in out
        samples = [json.loads(line) for line in metrics_path.read_text().splitlines()]
        names = {s["name"] for s in samples}
        assert "sim_link_delivered_total" in names
        assert "sim_sender_symbols_sent_total" in names
        assert "sim_fault_events_total" in names
        traces = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert any(t["name"] == "fault_applied" for t in traces)

    def test_metrics_out_prometheus_format(self, channels_file, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            [
                "simulate", "--channels", channels_file,
                "--kappa", "1", "--mu", "1",
                "--duration", "5", "--warmup", "1",
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        text = metrics_path.read_text()
        assert "# TYPE sim_link_delivered_total counter" in text

    def test_faults_unknown_spec_errors(self, channels_file, capsys):
        code = main(
            [
                "simulate", "--channels", channels_file,
                "--kappa", "1", "--mu", "1",
                "--duration", "5", "--warmup", "1",
                "--faults", "no-such-scenario",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestAttackCommand:
    def run_quick(self, tmp_path, name, extra=()):
        out = tmp_path / name
        code = main(
            [
                "attack", "--scenario", "replay_flood",
                "--quick", "--out", str(out), *extra,
            ]
        )
        return code, out

    def test_quick_scenario_runs_clean(self, tmp_path, capsys):
        code, out = self.run_quick(tmp_path, "rows.json")
        assert code == 0
        stdout = capsys.readouterr().out
        assert "replay_flood" in stdout
        rows = json.loads(out.read_text())
        assert len(rows) == 2  # two κ values in quick mode
        assert all(row["wrong_payloads"] == 0 for row in rows)
        assert all(row["scenario"] == "replay_flood" for row in rows)

    def test_same_seed_runs_are_byte_identical(self, tmp_path, capsys):
        _, first = self.run_quick(tmp_path, "a.json")
        _, second = self.run_quick(tmp_path, "b.json")
        assert first.read_bytes() == second.read_bytes()

    def test_jobs_fanout_matches_serial(self, tmp_path, capsys):
        _, serial = self.run_quick(tmp_path, "serial.json")
        _, fanned = self.run_quick(tmp_path, "fanned.json", extra=("--jobs", "2"))
        assert serial.read_bytes() == fanned.read_bytes()

    def test_unknown_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["attack", "--scenario", "zero-day"])
        assert "invalid choice" in capsys.readouterr().err

    def test_kappa_override(self, tmp_path, capsys):
        out = tmp_path / "kappa.json"
        code = main(
            [
                "attack", "--scenario", "corruption_storm", "--quick",
                "--kappa", "2", "--out", str(out),
            ]
        )
        assert code == 0
        rows = json.loads(out.read_text())
        assert [row["kappa"] for row in rows] == [2.0]
        assert all(row["min_k_sampled"] >= 2 for row in rows)
