"""Byte-identity regression lockdown for the determinism linter.

The lint engine was rehosted onto the shared ``repro.analysis.framework``
when the taint analysis landed (docs/TAINT.md).  These tests pin the
*observable* lint contract to literal byte strings captured from the
pre-refactor implementation: CLI text and JSON output, the finding
render format, the baseline file format, and the public import paths.
If the framework refactor (or any future one) changes a byte of lint
output, these fail with a diff rather than silently shifting CI gates.
"""

from __future__ import annotations

import json

import pytest

from repro.lint import Baseline, LintEngine
from repro.lint.cli import main as lint_main
from repro.lint.findings import Finding

WALL_CLOCK_MESSAGE = (
    "wall-clock read time.time() is nondeterministic; use simulated time, "
    "or suppress with a justification in reporting-only code"
)

#: Exact pre-refactor CLI text output for the fixture tree below.
GOLDEN_TEXT = (
    f"src/repro/netsim/bad.py:2:4: wall-clock: {WALL_CLOCK_MESSAGE}\n"
    "1 finding(s) (0 suppressed, 0 baselined) in 2 file(s)\n"
)

#: Exact pre-refactor CLI JSON output (indent=1, sorted keys, trailing
#: newline) for the same tree.
GOLDEN_JSON = (
    "{\n"
    ' "baselined": 0,\n'
    ' "counts": {\n'
    '  "wall-clock": 1\n'
    " },\n"
    ' "files_scanned": 2,\n'
    ' "findings": [\n'
    "  {\n"
    '   "column": 4,\n'
    '   "file": "src/repro/netsim/bad.py",\n'
    '   "line": 2,\n'
    f'   "message": "{WALL_CLOCK_MESSAGE}",\n'
    '   "rule": "wall-clock"\n'
    "  }\n"
    " ],\n"
    ' "ok": false,\n'
    ' "suppressed": 0,\n'
    ' "version": 1\n'
    "}\n"
)

#: Exact pre-refactor baseline file content for one grandfathered finding.
GOLDEN_BASELINE = (
    "{\n"
    ' "findings": [\n'
    "  {\n"
    '   "count": 1,\n'
    '   "file": "src/a.py",\n'
    '   "message": "msg here",\n'
    '   "rule": "wall-clock"\n'
    "  }\n"
    " ],\n"
    ' "version": 1\n'
    "}\n"
)


@pytest.fixture
def fixture_tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "netsim"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import time\nt = time.time()\n")
    (pkg / "ok.py").write_text("x = 1\n")
    return tmp_path


class TestCliOutputBytes:
    def test_text_output_is_byte_identical(self, fixture_tree, capsys):
        assert lint_main(["--root", str(fixture_tree), "--format", "text", "src"]) == 1
        assert capsys.readouterr().out == GOLDEN_TEXT

    def test_json_output_is_byte_identical(self, fixture_tree, capsys):
        assert lint_main(["--root", str(fixture_tree), "--format", "json", "src"]) == 1
        assert capsys.readouterr().out == GOLDEN_JSON

    def test_json_is_loadable_and_versioned(self, fixture_tree, capsys):
        lint_main(["--root", str(fixture_tree), "--format", "json", "src"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1


class TestFindingContract:
    def test_render_format(self):
        finding = Finding(
            file="src/a.py", line=3, column=7, rule="wall-clock", message="msg"
        )
        assert finding.render() == "src/a.py:3:7: wall-clock: msg"

    def test_engine_finding_matches_golden(self):
        live, suppressed = LintEngine().lint_source(
            "src/repro/netsim/bad.py", "import time\nt = time.time()\n"
        )
        assert suppressed == []
        (finding,) = live
        assert finding == Finding(
            file="src/repro/netsim/bad.py",
            line=2,
            column=4,
            rule="wall-clock",
            message=WALL_CLOCK_MESSAGE,
        )

    def test_sort_order_is_positional(self):
        findings = [
            Finding(file="b.py", line=1, column=0, rule="r", message="m"),
            Finding(file="a.py", line=2, column=0, rule="r", message="m"),
            Finding(file="a.py", line=1, column=5, rule="r", message="m"),
            Finding(file="a.py", line=1, column=0, rule="r", message="m"),
        ]
        assert [f.file + str(f.line) + str(f.column) for f in sorted(findings)] == [
            "a.py10",
            "a.py15",
            "a.py20",
            "b.py10",
        ]


class TestBaselineBytes:
    def test_write_format_is_byte_identical(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        Baseline.from_findings(
            [Finding(file="src/a.py", line=3, column=0, rule="wall-clock", message="msg here")]
        ).write(str(path))
        assert path.read_text() == GOLDEN_BASELINE

    def test_load_round_trip_partitions(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        grandfathered = Finding(
            file="src/a.py", line=3, column=0, rule="wall-clock", message="msg here"
        )
        Baseline.from_findings([grandfathered]).write(str(path))
        loaded = Baseline.load(str(path))
        # Line drift must not defeat the baseline: identity is (file, rule, message).
        moved = Finding(
            file="src/a.py", line=99, column=2, rule="wall-clock", message="msg here"
        )
        fresh = Finding(file="src/a.py", line=4, column=0, rule="wall-clock", message="other")
        live, baselined = loaded.partition([moved, fresh])
        assert live == [fresh]
        assert baselined == [moved]


class TestImportPaths:
    """The pre-refactor module layout keeps working (re-export shims)."""

    def test_legacy_imports_resolve(self):
        from repro.lint.baseline import Baseline as LegacyBaseline
        from repro.lint.findings import Finding as LegacyFinding
        from repro.lint.resolve import collect_aliases, qualified_name
        from repro.lint.suppressions import FileSuppressions, parse_suppressions

        from repro.analysis import framework

        assert LegacyBaseline is framework.Baseline
        assert LegacyFinding is framework.Finding
        assert FileSuppressions is framework.FileSuppressions
        assert parse_suppressions is framework.parse_suppressions
        assert collect_aliases is framework.collect_aliases
        assert callable(qualified_name)

    def test_lint_directive_messages_unchanged(self):
        suppressions = __import__(
            "repro.lint.suppressions", fromlist=["parse_suppressions"]
        ).parse_suppressions(["x = 1  # lint: disable=not-a-rule"], ["wall-clock"])
        ((line, column, message),) = suppressions.bad_directives
        assert line == 1
        assert message == "unknown rule(s) in lint directive: not-a-rule"


class TestExitCodes:
    def test_clean_tree_exit_zero(self, tmp_path, capsys):
        pkg = tmp_path / "src"
        pkg.mkdir()
        (pkg / "ok.py").write_text("x = 1\n")
        assert lint_main(["--root", str(tmp_path), "src"]) == 0
        assert capsys.readouterr().out == "0 finding(s) (0 suppressed, 0 baselined) in 1 file(s)\n"

    def test_missing_path_exit_two(self, tmp_path, capsys):
        assert lint_main(["--root", str(tmp_path), "nope"]) == 2
        assert "lint path does not exist" in capsys.readouterr().err
