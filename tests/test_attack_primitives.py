"""Byte-level attack primitives: framing preserved, determinism, forgery."""

import numpy as np
import pytest

from repro.adversary.active.primitives import (
    corrupt_any_packet,
    corrupt_share_packet,
    forge_share_packet,
    is_share,
    share_body_offset,
)
from repro.protocol.wire import (
    FLOW_HEADER_SIZE,
    HEADER_SIZE,
    decode_share,
    encode_probe,
    encode_share,
)
from repro.sharing.shamir import ShamirScheme

scheme = ShamirScheme()


def make_share_packet(seq=7, secret=b"attack at dawn!!", k=2, m=4, flow=0, seed=3):
    rng = np.random.default_rng(seed)
    share = scheme.split(secret, k, m, rng)[0]
    return encode_share(seq, share, scheme.name, flow=flow)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestRecognisers:
    def test_is_share(self, rng):
        assert is_share(make_share_packet())
        assert not is_share(encode_probe(0, 1))
        assert not is_share(b"")
        assert not is_share(b"\x00")

    def test_body_offset_v1(self):
        assert share_body_offset(make_share_packet(flow=0)) == HEADER_SIZE

    def test_body_offset_flow_header(self):
        assert share_body_offset(make_share_packet(flow=3)) == FLOW_HEADER_SIZE

    def test_body_offset_none_for_non_share(self):
        assert share_body_offset(encode_probe(0, 1)) is None

    def test_body_offset_none_for_truncated(self):
        assert share_body_offset(make_share_packet()[:10]) is None

    def test_body_offset_none_for_headerless_body(self):
        assert share_body_offset(make_share_packet()[:HEADER_SIZE]) is None


class TestCorruptShare:
    @pytest.mark.parametrize("mode", ["flip", "rewrite", "zero"])
    def test_framing_preserved(self, rng, mode):
        packet = make_share_packet()
        mutated = corrupt_share_packet(packet, rng, mode)
        assert mutated is not None and len(mutated) == len(packet)
        header, share = decode_share(packet)
        header2, share2 = decode_share(mutated)
        assert (header2.seq, header2.k, header2.m) == (header.seq, header.k, header.m)
        assert share2.index == share.index

    def test_flip_changes_exactly_one_body_byte(self, rng):
        packet = make_share_packet()
        mutated = corrupt_share_packet(packet, rng, "flip")
        diffs = [i for i, (a, b) in enumerate(zip(packet, mutated)) if a != b]
        assert len(diffs) == 1 and diffs[0] >= HEADER_SIZE

    def test_zero_mode_zeroes_body(self, rng):
        packet = make_share_packet()
        mutated = corrupt_share_packet(packet, rng, "zero")
        assert set(mutated[HEADER_SIZE:]) == {0}

    def test_non_share_returns_none(self, rng):
        assert corrupt_share_packet(encode_probe(1, 2), rng) is None

    def test_unknown_mode_rejected(self, rng):
        with pytest.raises(ValueError, match="corrupt mode"):
            corrupt_share_packet(make_share_packet(), rng, "melt")

    def test_same_seed_same_corruption(self):
        packet = make_share_packet()
        a = corrupt_share_packet(packet, np.random.default_rng(5), "rewrite")
        b = corrupt_share_packet(packet, np.random.default_rng(5), "rewrite")
        assert a == b != packet


class TestCorruptAny:
    def test_flips_one_byte_anywhere(self, rng):
        packet = encode_probe(2, 77)
        mutated = corrupt_any_packet(packet, rng)
        assert len(mutated) == len(packet)
        assert sum(a != b for a, b in zip(packet, mutated)) == 1

    def test_empty_packet_returns_none(self, rng):
        assert corrupt_any_packet(b"", rng) is None


class TestForge:
    def test_forgery_decodes_with_template_geometry(self, rng):
        template = make_share_packet(seq=11, k=2, m=4)
        forged = forge_share_packet(template, rng)
        assert forged is not None
        t_header, t_share = decode_share(template)
        f_header, f_share = decode_share(forged)
        assert f_header.seq == t_header.seq  # tracking default: same symbol
        assert (f_header.k, f_header.m) == (t_header.k, t_header.m)
        assert 1 <= f_share.index <= t_header.m
        assert len(f_share.data) == len(t_share.data)

    def test_explicit_seq_and_index(self, rng):
        forged = forge_share_packet(make_share_packet(), rng, seq=123, index=3)
        header, share = decode_share(forged)
        assert header.seq == 123 and share.index == 3

    def test_flow_preserved(self, rng):
        forged = forge_share_packet(make_share_packet(flow=5), rng)
        header, _ = decode_share(forged)
        assert header.flow == 5

    def test_control_template_refused(self, rng):
        assert forge_share_packet(encode_probe(0, 1), rng) is None

    def test_garbage_template_refused(self, rng):
        assert forge_share_packet(b"\x52\x53" + b"\xff" * 6, rng) is None

    def test_same_seed_same_forgery(self):
        template = make_share_packet()
        a = forge_share_packet(template, np.random.default_rng(8))
        b = forge_share_packet(template, np.random.default_rng(8))
        assert a == b
