"""The resilience loop end to end: detect, quarantine, fail over, repair."""

import pytest

from repro.core.planner import Requirements, plan_max_rate
from repro.netsim.faults import FaultEvent, FaultPlan
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork
from repro.protocol.resilience import (
    ChannelState,
    ResilienceConfig,
    ResilienceManager,
)
from repro.protocol.resilience.failover import schedule_min_threshold
from repro.workloads.setups import diverse_setup
from repro.workloads.setups import testbed_fault_plan as fault_plan_for

#: At this bound the Diverse setup plans kappa = 2 (every atom k >= 2),
#: which is the privacy floor failover must hold.
REQUIREMENTS = Requirements(max_risk=0.02)
#: The 100 Mbps channel: the plan leans on it, so losing it matters.
FAULT_CHANNEL = 4


def build(
    fault_plan=None,
    requirements=REQUIREMENTS,
    resilience=None,
    config=None,
    seed=7,
    interval=0.02,
    end=40.0,
):
    """A planned A -> B run with the resilience layer armed; traffic is
    offered every ``interval`` until ``end``."""
    channels = diverse_setup()
    registry = RngRegistry(seed)
    config = config or ProtocolConfig(symbol_size=100, share_synthetic=True)
    network = PointToPointNetwork(channels, config.symbol_size, registry)
    if fault_plan is not None:
        network.apply_faults(fault_plan)
    plan = plan_max_rate(channels, requirements)
    node_a, node_b = network.node_pair(config, registry, schedule=plan.schedule)
    manager = ResilienceManager(
        network, node_a, node_b, config,
        resilience or ResilienceConfig(), registry,
        requirements=requirements,
    )
    engine = network.engine

    def offer():
        node_a.send(None if config.share_synthetic else payload_rng.bytes(config.symbol_size))
        if engine.now + interval < end:
            engine.schedule(interval, offer)

    payload_rng = registry.stream("test.payload")
    engine.schedule_at(0.0, offer)
    return network, node_a, node_b, manager


def outage_plan(start=10.0, stop=25.0, channel=FAULT_CHANNEL):
    return FaultPlan([
        FaultEvent(start, "partition", channel),
        FaultEvent(stop, "heal", channel),
    ])


class TestOutageLifecycle:
    def test_quarantine_failover_probe_reinstate(self):
        network, node_a, _, manager = build(fault_plan=outage_plan())
        network.engine.run_until(40.0)
        stats = manager.stats
        assert stats.quarantines >= 1
        assert stats.failovers >= 1
        assert stats.probes_sent >= 1
        assert stats.probe_acks_received >= 1
        assert stats.reinstatements >= 1
        assert stats.control_decode_errors == 0
        # The cycle ends healthy, on the original plan.
        assert all(g.state is ChannelState.HEALTHY for g in manager.guards)
        modes = [record.mode for record in manager.failover.records]
        assert modes[0] == "replanned"
        assert modes[-1] == "restored"
        assert node_a.sampler is manager.failover.base_sampler
        assert node_a.sender.selector.excluded == frozenset()

    def test_transitions_are_time_ordered_with_reasons(self):
        network, _, _, manager = build(fault_plan=outage_plan())
        network.engine.run_until(40.0)
        transitions = manager.transitions()
        assert transitions, "outage must produce transitions"
        times = [t.time for t in transitions]
        assert times == sorted(times)
        assert all(t.reason for t in transitions)
        assert {t.channel for t in transitions} == {FAULT_CHANNEL}

    def test_summary_is_json_safe(self):
        import json

        network, _, _, manager = build(fault_plan=outage_plan())
        network.engine.run_until(40.0)
        text = json.dumps(manager.summary(), sort_keys=True)
        assert "replanned" in text

    def test_stop_cancels_reviews(self):
        network, _, _, manager = build(fault_plan=outage_plan())
        network.engine.run_until(5.0)
        manager.stop()
        before = manager.stats.quarantines
        network.engine.run_until(20.0)
        assert manager.stats.quarantines == before


class TestPrivacyFloor:
    def test_no_schedule_below_kappa_floor_during_quarantine(self):
        """ISSUE acceptance: every (k, m) the sender samples while the
        fault channel is quarantined keeps k at or above the plan's
        privacy floor."""
        network, node_a, _, manager = build(fault_plan=outage_plan())
        engine = network.engine
        engine.run_until(16.0)
        assert FAULT_CHANNEL in manager.quarantined
        floor = int(manager.failover.kappa_floor)
        assert floor >= 2
        before = dict(node_a.sender.schedule_picks)
        engine.run_until(24.0)  # still inside the outage window
        assert FAULT_CHANNEL in manager.quarantined
        picked = {
            km: count - before.get(km, 0)
            for km, count in node_a.sender.schedule_picks.items()
            if count - before.get(km, 0) > 0
        }
        assert picked, "sender must keep sampling on the survivor plan"
        assert all(k >= floor for (k, _m) in picked)

    def test_failover_schedule_never_weakens_threshold(self):
        network, node_a, _, manager = build(fault_plan=outage_plan())
        network.engine.run_until(16.0)
        floor = int(manager.failover.kappa_floor)
        assert schedule_min_threshold(node_a.sampler.schedule) >= floor


class TestDegradedMode:
    def test_full_partition_pauses_admission(self):
        plan = FaultPlan([FaultEvent(10.0, "partition", None)])  # all channels
        network, node_a, node_b, manager = build(fault_plan=plan, end=25.0)
        network.engine.run_until(25.0)
        assert manager.failover.degraded
        assert node_a.sender.admission_paused
        assert node_a.sender.stats.admission_paused_drops > 0
        last = manager.failover.records[-1]
        assert last.mode == "degraded"
        assert last.error is not None
        # Leak nothing: no shares go out while degraded.
        delivered_at_pause = node_b.receiver.stats.symbols_delivered
        network.engine.run_until(30.0)
        assert node_b.receiver.stats.symbols_delivered == delivered_at_pause

    def test_detector_only_mode_masks_without_failover(self):
        resilience = ResilienceConfig(failover=False)
        network, node_a, _, manager = build(
            fault_plan=outage_plan(), resilience=resilience, end=20.0
        )
        network.engine.run_until(20.0)
        assert manager.stats.quarantines >= 1
        assert manager.failover.records == []
        assert FAULT_CHANNEL in node_a.sender.selector.excluded


class TestRepair:
    def test_burst_loss_triggers_nack_and_recovery(self):
        plan = fault_plan_for("burst", 100.0, 250.0, channel=FAULT_CHANNEL)
        network, _, node_b, manager = build(fault_plan=plan, end=35.0)
        network.engine.run_until(35.0)
        stats = manager.stats
        assert stats.nacks_received >= 1
        assert stats.repair_shares_sent >= 1
        assert node_b.receiver.stats.repair_recovered >= 1
        assert manager.repair_buffer.unknown_nacks == 0

    def test_repaired_symbols_reconstruct_real_payloads(self):
        """Repair resends *original* shares; with real share material the
        reconstructed payloads must match what was offered."""
        plan = fault_plan_for("burst", 100.0, 250.0, channel=FAULT_CHANNEL)
        config = ProtocolConfig(symbol_size=64, share_synthetic=False)
        network, node_a, node_b, manager = build(
            fault_plan=plan, config=config, interval=0.05, end=35.0
        )
        offered = {}
        original_send = node_a.sender.offer

        def tracked_offer(payload):
            seq = node_a.sender._next_seq
            if original_send(payload):
                offered[seq] = payload
        node_a.send = tracked_offer  # wrap to map seq -> payload

        delivered = {}
        node_b.on_deliver(lambda seq, payload, delay: delivered.setdefault(seq, payload))
        network.engine.run_until(35.0)
        assert node_b.receiver.stats.repair_recovered >= 1
        assert delivered, "nothing delivered"
        for seq, payload in delivered.items():
            assert payload == offered[seq], f"symbol {seq} corrupted"

    def test_repair_disabled_leaves_hooks_unset(self):
        resilience = ResilienceConfig(repair=False)
        network, node_a, node_b, manager = build(
            fault_plan=None, resilience=resilience, end=5.0
        )
        assert manager.repair_buffer is None
        assert node_a.sender.on_transmit is None
        assert node_b.receiver.repair_policy is None
        network.engine.run_until(5.0)
        assert manager.stats.nacks_sent == 0


class TestNoFaults:
    def test_quiet_run_never_quarantines(self):
        network, node_a, _, manager = build(fault_plan=None, end=20.0)
        network.engine.run_until(20.0)
        assert manager.stats.quarantines == 0
        assert manager.failover.records == []
        assert all(g.state is ChannelState.HEALTHY for g in manager.guards)
        assert node_a.sampler is manager.failover.base_sampler
