"""Exporter round-trips (snapshot -> text -> parse -> equal values) and
seeded-determinism of full metric dumps."""

import math

import pytest

from repro.obs.export import (
    format_for_path,
    histogram_quantile,
    metrics_from_csv,
    metrics_from_jsonl,
    metrics_to_csv,
    metrics_to_jsonl,
    metrics_to_prometheus,
    trace_to_jsonl,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("sim_link_offered_total", channel="0", direction="fwd").inc(17)
    registry.counter("sim_link_offered_total", channel="1", direction="fwd").inc(3)
    registry.gauge("sim_engine_queue_depth").set(4.5)
    hist = registry.histogram("sim_receiver_reconstruct_latency", buckets=(0.5, 1.0, 5.0), node="nodeB")
    for value in (0.2, 0.7, 0.7, 3.0, 9.0):
        hist.observe(value)
    return registry


class TestJsonlRoundTrip:
    def test_values_survive(self):
        snapshot = sample_registry().snapshot()
        parsed = metrics_from_jsonl(metrics_to_jsonl(snapshot))
        assert parsed == snapshot

    def test_empty_snapshot(self):
        assert metrics_to_jsonl([]) == ""
        assert metrics_from_jsonl("") == []


class TestCsvRoundTrip:
    def test_values_survive(self):
        snapshot = sample_registry().snapshot()
        parsed = metrics_from_csv(metrics_to_csv(snapshot))
        assert len(parsed) == len(snapshot)
        for original, back in zip(snapshot, parsed):
            assert back["name"] == original["name"]
            assert back["type"] == original["type"]
            assert back["labels"] == original["labels"]
            if original["type"] == "histogram":
                assert back["count"] == original["count"]
                assert back["sum"] == pytest.approx(original["sum"])
                assert back["min"] == original["min"]
                assert back["max"] == original["max"]
                assert [
                    [le, count] for le, count in original["buckets"]
                ] == back["buckets"]
            else:
                assert back["value"] == original["value"]

    def test_rejects_foreign_header(self):
        with pytest.raises(ValueError):
            metrics_from_csv("a,b\n1,2\n")


class TestPrometheus:
    def test_exposition_shape(self):
        text = metrics_to_prometheus(sample_registry().snapshot())
        assert '# TYPE sim_link_offered_total counter' in text
        assert 'sim_link_offered_total{channel="0",direction="fwd"} 17' in text
        assert '# TYPE sim_receiver_reconstruct_latency histogram' in text
        assert 'sim_receiver_reconstruct_latency_bucket{node="nodeB",le="+Inf"} 5' in text
        assert 'sim_receiver_reconstruct_latency_count{node="nodeB"} 5' in text
        # One TYPE line per metric name even across label sets.
        assert text.count("# TYPE sim_link_offered_total") == 1

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("sim_x_total", handler='say "hi"\\now').inc()
        text = metrics_to_prometheus(registry.snapshot())
        assert 'handler="say \\"hi\\"\\\\now"' in text


class TestWriteMetrics:
    def test_suffix_dispatch(self, tmp_path):
        snapshot = sample_registry().snapshot()
        assert write_metrics(str(tmp_path / "m.jsonl"), snapshot) == "jsonl"
        assert write_metrics(str(tmp_path / "m.csv"), snapshot) == "csv"
        assert write_metrics(str(tmp_path / "m.prom"), snapshot) == "prometheus"
        assert write_metrics(str(tmp_path / "m.unknown"), snapshot) == "jsonl"
        assert write_metrics(str(tmp_path / "m.dat"), snapshot, fmt="csv") == "csv"
        parsed = metrics_from_csv((tmp_path / "m.csv").read_text())
        assert len(parsed) == len(snapshot)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            format_for_path("x.jsonl", fmt="xml")


class TestTraceExport:
    def test_jsonl_lines(self):
        clock = {"now": 0.0}
        tracer = Tracer(lambda: clock["now"])
        tracer.event("fault_applied", action="link_down", channel=2)
        clock["now"] = 1.5
        with tracer.span("share_tx", seq=9):
            pass
        text = trace_to_jsonl(tracer.events)
        lines = text.splitlines()
        assert len(lines) == 2
        assert '"name": "fault_applied"' in lines[0]
        assert '"duration": 0.0' in lines[1]

    def test_empty(self):
        assert trace_to_jsonl([]) == ""


class TestHistogramQuantile:
    def test_interpolates(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sim_lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            hist.observe(value)
        sample = hist.as_sample()
        assert histogram_quantile(sample, 0.5) == pytest.approx(1.5, abs=0.5)
        assert histogram_quantile(sample, 1.0) == pytest.approx(4.0)

    def test_empty_is_nan(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sim_lat", buckets=(1.0,))
        assert math.isnan(histogram_quantile(hist.as_sample(), 0.5))

    def test_bad_quantile(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sim_lat2", buckets=(1.0,))
        with pytest.raises(ValueError):
            histogram_quantile(hist.as_sample(), 1.5)
