"""The HMM-based risk assessment substrate."""

import numpy as np
import pytest

from repro.adversary.riskassess import (
    COMPROMISED,
    SAFE,
    HmmRiskEstimator,
    HmmRiskModel,
    assess_channel_set,
    forward_posterior,
    simulate_channel_history,
)
from repro.core.channel import ChannelSet


def brute_force_posterior(model, alerts):
    """P(last state = COMPROMISED | alerts) by enumerating all state paths."""
    from itertools import product

    transition = model.transition
    emission = model.emission
    prior = [1.0 - model.initial_risk, model.initial_risk]
    total = 0.0
    compromised = 0.0
    for path in product((SAFE, COMPROMISED), repeat=len(alerts)):
        p = 1.0
        previous = None
        for state, alert in zip(path, alerts):
            if previous is None:
                p *= prior[SAFE] * transition[SAFE, state] + prior[COMPROMISED] * transition[
                    COMPROMISED, state
                ]
            else:
                p *= transition[previous, state]
            p *= emission[state, int(alert)]
            previous = state
        total += p
        if path[-1] == COMPROMISED:
            compromised += p
    return compromised / total


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            HmmRiskModel(p_compromise=1.5)
        with pytest.raises(ValueError):
            HmmRiskModel(p_true_alert=0.1, p_false_alert=0.2)

    def test_matrices_are_stochastic(self):
        model = HmmRiskModel()
        np.testing.assert_allclose(model.transition.sum(axis=1), [1.0, 1.0])
        np.testing.assert_allclose(model.emission.sum(axis=1), [1.0, 1.0])

    def test_stationary_risk(self):
        model = HmmRiskModel(p_compromise=0.02, p_recover=0.08)
        assert model.stationary_risk == pytest.approx(0.2)


class TestForwardFiltering:
    def test_matches_brute_force(self):
        model = HmmRiskModel(
            p_compromise=0.1, p_recover=0.2, p_false_alert=0.1, p_true_alert=0.8,
            initial_risk=0.3,
        )
        for alerts in ([], [True], [False], [True, False, True], [False] * 5, [True] * 4):
            if not alerts:
                continue
            assert forward_posterior(model, alerts) == pytest.approx(
                brute_force_posterior(model, alerts)
            )

    def test_alerts_raise_risk(self):
        model = HmmRiskModel()
        quiet = forward_posterior(model, [False] * 10)
        noisy = forward_posterior(model, [False] * 9 + [True])
        assert noisy > quiet

    def test_sustained_alerts_approach_certainty(self):
        model = HmmRiskModel(p_true_alert=0.9, p_false_alert=0.01)
        risk = forward_posterior(model, [True] * 30)
        assert risk > 0.95

    def test_quiet_stream_approaches_low_risk(self):
        model = HmmRiskModel(p_compromise=0.01, p_recover=0.3)
        risk = forward_posterior(model, [False] * 50)
        assert risk < 0.05

    def test_estimator_is_incremental(self):
        model = HmmRiskModel()
        alerts = [True, False, True, True, False]
        incremental = HmmRiskEstimator(model)
        for alert in alerts:
            incremental.update(alert)
        assert incremental.risk == pytest.approx(forward_posterior(model, alerts))

    def test_estimates_track_ground_truth(self):
        """Filtered risk separates compromised epochs from safe ones."""
        model = HmmRiskModel(
            p_compromise=0.02, p_recover=0.05, p_false_alert=0.05, p_true_alert=0.7
        )
        rng = np.random.default_rng(3)
        states, alerts = simulate_channel_history(model, 2000, rng)
        estimator = HmmRiskEstimator(model)
        risks = [estimator.update(alert) for alert in alerts]
        risks = np.array(risks)
        states = np.array(states)
        if states.any() and not states.all():
            assert risks[states == COMPROMISED].mean() > risks[states == SAFE].mean() + 0.2


class TestSimulation:
    def test_history_shapes(self, rng):
        model = HmmRiskModel()
        states, alerts = simulate_channel_history(model, 100, rng)
        assert len(states) == len(alerts) == 100
        assert set(states) <= {SAFE, COMPROMISED}

    def test_invalid_epochs(self, rng):
        with pytest.raises(ValueError):
            simulate_channel_history(HmmRiskModel(), 0, rng)

    def test_alert_rates_match_emission(self, rng):
        model = HmmRiskModel(p_false_alert=0.05, p_true_alert=0.7)
        states, alerts = simulate_channel_history(model, 20000, rng)
        states = np.array(states)
        alerts = np.array(alerts)
        safe_rate = alerts[states == SAFE].mean()
        assert safe_rate == pytest.approx(0.05, abs=0.01)


class TestAssessChannelSet:
    def test_risks_replaced_others_kept(self, rng):
        base = ChannelSet.from_vectors(
            risks=[0.5, 0.5],
            losses=[0.01, 0.02],
            delays=[0.1, 0.2],
            rates=[10.0, 20.0],
            names=["a", "b"],
        )
        models = [HmmRiskModel(), HmmRiskModel(p_true_alert=0.9)]
        streams = [[False] * 20, [True] * 20]
        assessed = assess_channel_set(base, models, streams)
        assert assessed[0].risk < 0.2
        assert assessed[1].risk > 0.5
        np.testing.assert_allclose(assessed.losses, base.losses)
        np.testing.assert_allclose(assessed.rates, base.rates)
        assert assessed[0].name == "a"

    def test_length_mismatch(self):
        base = ChannelSet.from_vectors([0.1], [0.0], [0.0], [1.0])
        with pytest.raises(ValueError):
            assess_channel_set(base, [HmmRiskModel()], [])
