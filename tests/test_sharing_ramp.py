"""The (k, L, m) ramp scheme: roundtrip, size advantage, graded secrecy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharing.base import ReconstructionError
from repro.sharing.ramp import RampScheme
from repro.sharing.shamir import ShamirScheme


class TestRoundtrip:
    def test_basic(self):
        scheme = RampScheme(blocks=2)
        rng = np.random.default_rng(0)
        secret = b"ramp schemes trade margin for rate"
        shares = scheme.split(secret, 3, 5, rng)
        assert scheme.reconstruct(shares[:3]) == secret

    def test_any_k_subset(self):
        from itertools import combinations

        scheme = RampScheme(blocks=2)
        rng = np.random.default_rng(1)
        secret = bytes(range(100))
        shares = scheme.split(secret, 3, 5, rng)
        for subset in combinations(shares, 3):
            assert scheme.reconstruct(list(subset)) == secret

    def test_l_equals_one_matches_shamir_semantics(self):
        scheme = RampScheme(blocks=1)
        rng = np.random.default_rng(2)
        secret = b"degenerate ramp"
        shares = scheme.split(secret, 2, 4, rng)
        assert scheme.reconstruct(shares[2:]) == secret
        assert scheme.name == "shamir-gf256"

    def test_empty_secret(self):
        scheme = RampScheme(blocks=3)
        rng = np.random.default_rng(3)
        shares = scheme.split(b"", 3, 4, rng)
        assert scheme.reconstruct(shares[:3]) == b""

    def test_k_equals_l(self):
        scheme = RampScheme(blocks=3)
        rng = np.random.default_rng(4)
        secret = b"threshold equals blocks"
        shares = scheme.split(secret, 3, 5, rng)
        assert scheme.reconstruct(shares[1:4]) == secret

    @given(
        secret=st.binary(max_size=120),
        blocks=st.integers(min_value=1, max_value=4),
        slack=st.integers(min_value=0, max_value=2),
        extra=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, secret, blocks, slack, extra):
        scheme = RampScheme(blocks=blocks)
        k = blocks + slack
        m = k + extra
        rng = np.random.default_rng(7)
        shares = scheme.split(secret, k, m, rng)
        assert scheme.reconstruct(shares[extra:]) == secret


class TestSizeAdvantage:
    def test_share_size_is_secret_over_l(self):
        scheme = RampScheme(blocks=4)
        rng = np.random.default_rng(0)
        secret = bytes(1000)
        shares = scheme.split(secret, 4, 5, rng)
        # (4-byte length + 1000) / 4 = 251 bytes per share.
        assert all(len(s.data) == 251 for s in shares)
        assert scheme.share_size(1000) == 251

    def test_smaller_than_shamir(self):
        secret = bytes(1250)
        ramp = RampScheme(blocks=2)
        shamir = ShamirScheme()
        rng = np.random.default_rng(0)
        ramp_share = ramp.split(secret, 2, 3, rng)[0]
        shamir_share = shamir.split(secret, 2, 3, rng)[0]
        assert len(ramp_share.data) < len(shamir_share.data)
        assert len(ramp_share.data) == pytest.approx(len(secret) / 2, abs=4)


class TestSecrecy:
    def test_below_ramp_threshold_uniform(self):
        """With k - L shares, share bytes are uniform regardless of secret."""
        scheme = RampScheme(blocks=1)  # k - L = 1 share reveals nothing
        rng = np.random.default_rng(5)
        samples = []
        for _ in range(3000):
            shares = scheme.split(b"\x00\x00", 2, 2, rng)
            samples.append(shares[0].data[0])
        assert abs(np.mean(samples) - 127.5) < 7.0

    def test_partial_leakage_documented(self):
        """Between k-L and k shares the ramp leaks: with L=k every single
        share is a linear combination of secret blocks only (no randomness),
        which is the extreme of the documented tradeoff."""
        scheme = RampScheme(blocks=2)
        rng = np.random.default_rng(6)
        # k = L = 2: coefficients are both secret blocks; the share at x=0
        # would BE block 0.  Shares are deterministic given the secret.
        a = scheme.split(b"same secret!", 2, 3, rng)
        b = scheme.split(b"same secret!", 2, 3, rng)
        assert [s.data for s in a] == [s.data for s in b]


class TestValidation:
    def test_blocks_validation(self):
        with pytest.raises(ValueError):
            RampScheme(blocks=0)

    def test_k_below_blocks_rejected(self):
        scheme = RampScheme(blocks=3)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            scheme.split(b"x", 2, 4, rng)

    def test_supports(self):
        scheme = RampScheme(blocks=2)
        assert scheme.supports(2, 4)
        assert scheme.supports(3, 3)
        assert not scheme.supports(1, 4)  # k < L
        assert not scheme.supports(2, 256)

    def test_too_few_shares(self):
        scheme = RampScheme(blocks=2)
        rng = np.random.default_rng(0)
        shares = scheme.split(b"secret", 3, 4, rng)
        with pytest.raises(ReconstructionError):
            scheme.reconstruct(shares[:2])

    def test_inconsistent_lengths(self):
        from repro.sharing.base import Share

        scheme = RampScheme(blocks=2)
        rng = np.random.default_rng(0)
        shares = scheme.split(b"secretsecret", 2, 3, rng)
        bad = Share(index=shares[1].index, data=shares[1].data[:-1], k=2, m=3)
        with pytest.raises(ReconstructionError):
            scheme.reconstruct([shares[0], bad])
