"""CPU model, rng registry, trace meters, ports and readiness selector."""

import math

import numpy as np
import pytest

from repro.netsim.engine import Engine
from repro.netsim.host import CpuModel
from repro.netsim.link import Link
from repro.netsim.packet import Datagram
from repro.netsim.ports import ChannelPort
from repro.netsim.readiness import WriteSelector
from repro.netsim.rng import RngRegistry
from repro.netsim.trace import DelayStats, RateMeter


class TestCpuModel:
    def test_infinite_capacity_runs_synchronously(self):
        engine = Engine()
        cpu = CpuModel(engine)
        ran = []
        assert cpu.submit(100.0, lambda: ran.append(engine.now))
        assert ran == [0.0]

    def test_finite_capacity_paces_work(self):
        engine = Engine()
        cpu = CpuModel(engine, capacity=10.0)
        done = []
        for _ in range(3):
            cpu.submit(10.0, lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_queue_limit_rejects(self):
        engine = Engine()
        cpu = CpuModel(engine, capacity=1.0, queue_limit=2)
        accepted = [cpu.submit(1.0, lambda: None) for _ in range(5)]
        # First starts immediately (popped off the queue), two wait, rest drop.
        assert accepted == [True, True, True, False, False]
        assert cpu.rejected == 2

    def test_saturated_and_backlog(self):
        engine = Engine()
        cpu = CpuModel(engine, capacity=1.0)
        cpu.submit(5.0, lambda: None)
        cpu.submit(5.0, lambda: None)
        assert cpu.saturated()
        assert cpu.backlog == 1
        engine.run()
        assert not cpu.saturated()

    def test_busy_time_accounting(self):
        engine = Engine()
        cpu = CpuModel(engine, capacity=2.0)
        cpu.submit(4.0, lambda: None)
        engine.run()
        assert cpu.busy_time == pytest.approx(2.0)
        assert cpu.completed == 1

    def test_invalid_parameters(self):
        engine = Engine()
        with pytest.raises(ValueError):
            CpuModel(engine, capacity=0.0)
        with pytest.raises(ValueError):
            CpuModel(engine, capacity=1.0, queue_limit=0)
        cpu = CpuModel(engine, capacity=1.0)
        with pytest.raises(ValueError):
            cpu.submit(-1.0, lambda: None)


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_different_names_independent(self):
        registry = RngRegistry(1)
        a = registry.stream("a").random(4)
        b = registry.stream("b").random(4)
        assert not np.allclose(a, b)

    def test_same_seed_reproducible(self):
        x = RngRegistry(42).stream("link0").random(8)
        y = RngRegistry(42).stream("link0").random(8)
        np.testing.assert_array_equal(x, y)

    def test_different_seed_differs(self):
        x = RngRegistry(1).stream("link0").random(8)
        y = RngRegistry(2).stream("link0").random(8)
        assert not np.allclose(x, y)

    def test_stream_isolation_from_creation_order(self):
        r1 = RngRegistry(7)
        r1.stream("noise").random(100)
        value1 = r1.stream("target").random()
        r2 = RngRegistry(7)
        value2 = r2.stream("target").random()
        assert value1 == value2

    def test_fork_changes_streams(self):
        base = RngRegistry(7)
        fork = base.fork("rep1")
        assert base.stream("x").random() != fork.stream("x").random()

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(-1)


class TestRateMeter:
    def test_window_accounting(self):
        meter = RateMeter()
        meter.record(0.5)  # before start: ignored
        meter.start(1.0)
        meter.record(1.5, size=10)
        meter.record(2.5, size=10)
        meter.stop(3.0)
        meter.record(3.5)  # after stop: ignored
        assert meter.count == 2
        assert meter.rate() == pytest.approx(1.0)
        assert meter.byte_rate() == pytest.approx(10.0)

    def test_unstarted_meter_raises(self):
        with pytest.raises(RuntimeError):
            RateMeter().rate()

    def test_zero_length_window_is_zero_rate(self):
        meter = RateMeter()
        meter.start(2.0)
        meter.record(2.0, size=100)
        meter.stop(2.0)
        assert meter.rate() == 0.0
        assert meter.byte_rate() == 0.0

    def test_zero_length_empty_window(self):
        meter = RateMeter()
        meter.start(0.0)
        meter.stop(0.0)
        assert meter.rate() == 0.0
        assert meter.byte_rate() == 0.0


class TestDelayStats:
    def test_moments(self):
        stats = DelayStats()
        for v in (1.0, 2.0, 3.0, 4.0):
            stats.record(v)
        assert stats.mean == pytest.approx(2.5)
        assert stats.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert stats.stddev == pytest.approx(math.sqrt(stats.variance))
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    def test_single_observation(self):
        stats = DelayStats()
        stats.record(5.0)
        assert stats.variance == 0.0

    def test_merge_matches_pooled(self):
        rng = np.random.default_rng(0)
        xs, ys = rng.normal(size=50), rng.normal(loc=3, size=70)
        a, b = DelayStats(), DelayStats()
        for v in xs:
            a.record(v)
        for v in ys:
            b.record(v)
        merged = a.merge(b)
        pooled = np.concatenate([xs, ys])
        assert merged.count == 120
        assert merged.mean == pytest.approx(pooled.mean())
        assert merged.variance == pytest.approx(pooled.var(ddof=1))

    def test_merge_with_empty(self):
        a = DelayStats()
        b = DelayStats()
        b.record(1.0)
        assert a.merge(b) is b
        assert b.merge(a) is b


def _port(engine, index, queue_limit=4, byte_rate=100.0):
    link = Link(
        engine, byte_rate=byte_rate, loss=0.0, delay=0.0,
        rng=np.random.default_rng(index), queue_limit=queue_limit,
    )
    return ChannelPort(index, link)


class TestPortsAndSelector:
    def test_port_send_and_receive(self):
        engine = Engine()
        port = _port(engine, 0)
        got = []
        port.on_receive(lambda dg: got.append(dg.size))
        port.send(Datagram(size=10))
        engine.run()
        assert got == [10]

    def test_headroom(self):
        engine = Engine()
        port = _port(engine, 0, queue_limit=3)
        assert port.headroom == 3
        port.send(Datagram(size=10))  # serialising, not queued
        port.send(Datagram(size=10))  # queued
        assert port.headroom == 2

    def test_selector_needs_enough_ready(self):
        engine = Engine()
        ports = [_port(engine, i, queue_limit=1) for i in range(3)]
        selector = WriteSelector(ports)
        assert len(selector.select(3)) == 3
        # Fill one port's queue entirely.
        ports[0].send(Datagram(size=1000))
        ports[0].send(Datagram(size=1000))
        assert not ports[0].writable()
        assert selector.select(3) == []
        assert len(selector.select(2)) == 2

    def test_headroom_ordering_prefers_emptier(self):
        engine = Engine()
        ports = [_port(engine, i, queue_limit=4) for i in range(3)]
        ports[1].send(Datagram(size=1000))
        ports[1].send(Datagram(size=1000))
        selector = WriteSelector(ports, ordering="headroom")
        chosen = selector.select(2)
        assert [p.index for p in chosen] == [0, 2]

    def test_fixed_ordering_is_index_order(self):
        engine = Engine()
        ports = [_port(engine, i, queue_limit=4) for i in range(3)]
        ports[0].send(Datagram(size=1000))
        ports[0].send(Datagram(size=1000))
        selector = WriteSelector(ports, ordering="fixed")
        chosen = selector.select(2)
        assert [p.index for p in chosen] == [0, 1]

    def test_unknown_ordering_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            WriteSelector([_port(engine, 0)], ordering="random")
