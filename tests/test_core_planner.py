"""Requirement-driven planning: inverse queries over the model."""

import pytest

from repro.core.planner import (
    NoFeasiblePlanError,
    Requirements,
    constrained_schedule,
    plan_max_rate,
)
from repro.core.program import Objective
from repro.core.rate import max_rate, optimal_rate
from repro.lp import InfeasibleError


class TestRequirements:
    def test_validation(self):
        with pytest.raises(ValueError):
            Requirements(max_risk=1.5)
        with pytest.raises(ValueError):
            Requirements(max_loss=-0.1)
        with pytest.raises(ValueError):
            Requirements(max_delay=-1.0)
        with pytest.raises(ValueError):
            Requirements(min_rate=0.0)

    def test_any_bound(self):
        assert not Requirements().any_bound()
        assert Requirements(max_loss=0.1).any_bound()
        assert not Requirements(min_rate=5.0).any_bound()


class TestConstrainedSchedule:
    def test_unconstrained_matches_plain_program(self, five_channels):
        from repro.core.program import optimal_schedule

        constrained = constrained_schedule(
            five_channels, 2.0, 3.0, Requirements(), at_max_rate=True
        )
        plain = optimal_schedule(
            five_channels, Objective.PRIVACY, 2.0, 3.0, at_max_rate=True
        )
        assert constrained.privacy_risk() == pytest.approx(plain.privacy_risk(), abs=1e-9)

    def test_loss_bound_is_respected(self, five_channels):
        requirements = Requirements(max_loss=0.001)
        schedule = constrained_schedule(five_channels, 2.0, 3.5, requirements)
        assert schedule.loss() <= 0.001 + 1e-9
        assert schedule.kappa == pytest.approx(2.0, abs=1e-6)
        assert schedule.mu == pytest.approx(3.5, abs=1e-6)

    def test_bound_costs_objective(self, five_channels):
        """Constraining loss can only worsen (or keep) the optimal risk."""
        from repro.core.program import optimal_property_value

        free = constrained_schedule(five_channels, 2.0, 3.5, Requirements())
        best_loss = optimal_property_value(
            five_channels, Objective.LOSS, 2.0, 3.5, at_max_rate=True
        )
        # A bound strictly between the loss-optimal value and the
        # risk-optimal schedule's loss is feasible but binding.
        bound = best_loss + 0.25 * (free.loss() - best_loss)
        tight = constrained_schedule(
            five_channels, 2.0, 3.5, Requirements(max_loss=bound)
        )
        assert tight.loss() <= bound + 1e-9
        assert tight.privacy_risk() >= free.privacy_risk() - 1e-9

    def test_impossible_bound_raises(self, five_channels):
        with pytest.raises(InfeasibleError):
            constrained_schedule(
                five_channels, 2.0, 2.0, Requirements(max_loss=1e-12)
            )

    def test_delay_bound(self, five_channels):
        schedule = constrained_schedule(
            five_channels, 1.0, 2.0, Requirements(max_delay=0.3), at_max_rate=False
        )
        assert schedule.delay() <= 0.3 + 1e-9

    def test_simplex_backend_with_inequalities(self, five_channels):
        a = constrained_schedule(
            five_channels, 2.0, 3.0, Requirements(max_loss=0.002), backend="simplex"
        )
        b = constrained_schedule(
            five_channels, 2.0, 3.0, Requirements(max_loss=0.002), backend="scipy"
        )
        assert a.privacy_risk() == pytest.approx(b.privacy_risk(), abs=1e-7)


class TestPlanMaxRate:
    def test_unconstrained_plan_is_full_rate(self, five_channels):
        plan = plan_max_rate(five_channels, Requirements())
        assert plan.rate == pytest.approx(max_rate(five_channels))
        assert plan.mu == pytest.approx(1.0)

    def test_risk_requirement_forces_higher_kappa(self, five_channels):
        lenient = plan_max_rate(five_channels, Requirements())
        strict = plan_max_rate(five_channels, Requirements(max_risk=0.01))
        assert strict.risk <= 0.01 + 1e-9
        assert strict.rate <= lenient.rate
        assert strict.kappa > lenient.kappa

    def test_loss_requirement_forces_redundancy(self, five_channels):
        plan = plan_max_rate(five_channels, Requirements(max_loss=1e-4))
        assert plan.loss <= 1e-4 + 1e-9
        assert plan.mu > plan.kappa  # redundancy present

    def test_plan_meets_reports_truth(self, five_channels):
        requirements = Requirements(max_risk=0.05, max_loss=0.01)
        plan = plan_max_rate(five_channels, requirements)
        assert plan.meets(requirements)
        assert not plan.meets(Requirements(max_risk=plan.risk / 2))
        assert not plan.meets(Requirements(min_rate=plan.rate * 2))

    def test_min_rate_prunes_search(self, five_channels):
        # Demand more rate than the strictest-privacy config can deliver.
        with pytest.raises(NoFeasiblePlanError):
            plan_max_rate(
                five_channels,
                Requirements(max_risk=1e-4, min_rate=0.9 * max_rate(five_channels)),
            )

    def test_impossible_requirements_raise(self, five_channels):
        with pytest.raises(NoFeasiblePlanError):
            plan_max_rate(five_channels, Requirements(max_risk=0.0, max_loss=0.0))

    def test_invalid_steps(self, five_channels):
        with pytest.raises(ValueError):
            plan_max_rate(five_channels, Requirements(), mu_step=0.0)

    def test_rate_matches_theorem4_at_plan_mu(self, five_channels):
        plan = plan_max_rate(five_channels, Requirements(max_risk=0.05))
        assert plan.rate == pytest.approx(optimal_rate(five_channels, plan.mu))
        assert plan.schedule.max_symbol_rate() == pytest.approx(plan.rate, rel=1e-6)
