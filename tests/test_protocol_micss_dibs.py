"""The MICSS baseline and the DIBS interception shim."""


from repro.core.channel import ChannelSet
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.dibs import DibsInterceptor
from repro.protocol.micss import MicssNode
from repro.protocol.remicss import PointToPointNetwork


def micss_pair(losses, symbol_size=100, seed=1, delays=None, rates=None):
    n = len(losses)
    channels = ChannelSet.from_vectors(
        risks=[0.0] * n,
        losses=losses,
        delays=delays or [0.01] * n,
        rates=rates or [100.0] * n,
    )
    registry = RngRegistry(seed)
    network = PointToPointNetwork(channels, symbol_size, registry)
    node_a = MicssNode(
        network.engine, network.ports_a_out, network.ports_a_in,
        symbol_size, registry, name="micssA",
    )
    node_b = MicssNode(
        network.engine, network.ports_b_out, network.ports_b_in,
        symbol_size, registry, name="micssB",
    )
    return network, node_a, node_b


class TestMicssReliability:
    def test_lossless_delivery(self):
        network, a, b = micss_pair([0.0] * 3)
        got = {}
        b.on_deliver(lambda seq, payload, delay: got.__setitem__(seq, payload))
        payloads = [bytes([i]) * 100 for i in range(10)]
        for p in payloads:
            a.send(p)
        network.engine.run_until(50.0)
        assert [got[i] for i in range(10)] == payloads
        assert a.stats.retransmissions == 0

    def test_delivers_despite_loss_via_retransmission(self):
        network, a, b = micss_pair([0.2, 0.1, 0.3], seed=3)
        got = {}
        b.on_deliver(lambda seq, payload, delay: got.__setitem__(seq, payload))
        payloads = [bytes([i]) * 100 for i in range(20)]
        for p in payloads:
            a.send(p)
        network.engine.run_until(500.0)
        assert len(got) == 20
        assert all(got[i] == payloads[i] for i in range(20))
        assert a.stats.retransmissions > 0

    def test_source_queue_bound(self):
        network, a, b = micss_pair([0.0] * 2, seed=4)
        a.source_queue_limit = 4
        a.window = 1
        results = [a.send(bytes(100)) for _ in range(20)]
        assert not all(results)
        assert a.stats.source_drops > 0

    def test_rto_scales_with_channel(self):
        network, a, b = micss_pair([0.0] * 2, delays=[0.001, 1.0])
        assert a.channel_rto(1) > a.channel_rto(0)

    def test_uses_every_channel_per_symbol(self):
        network, a, b = micss_pair([0.0] * 4)
        b.on_deliver(lambda *args: None)
        for _ in range(5):
            a.send(bytes(100))
        network.engine.run_until(10.0)
        assert a.stats.shares_sent == 20  # 5 symbols x 4 channels


class TestDibs:
    def _pair(self, seed=1, losses=None):
        channels = ChannelSet.from_vectors(
            risks=[0.0] * 3,
            losses=losses or [0.0] * 3,
            delays=[0.01] * 3,
            rates=[100.0] * 3,
        )
        registry = RngRegistry(seed)
        network = PointToPointNetwork(channels, 100, registry)
        config = ProtocolConfig(kappa=2.0, mu=3.0, symbol_size=100)
        node_a, node_b = network.node_pair(config, registry)
        return network, node_a, node_b

    def test_datagram_roundtrip(self):
        network, a, b = self._pair()
        received = []
        DibsInterceptor(b, on_datagram=received.append)
        tx = DibsInterceptor(a)
        messages = [b"short", b"x" * 250, b"tail"]
        for message in messages:
            tx.intercept(message)
        tx.flush()
        network.engine.run_until(20.0)
        assert received == messages

    def test_datagram_larger_than_symbol(self):
        network, a, b = self._pair()
        received = []
        DibsInterceptor(b, on_datagram=received.append)
        tx = DibsInterceptor(a)
        big = bytes(range(256)) * 4  # 1024 bytes over 100-byte symbols
        tx.intercept(big)
        tx.flush()
        network.engine.run_until(20.0)
        assert received == [big]

    def test_multiple_datagrams_in_one_symbol(self):
        network, a, b = self._pair()
        received = []
        DibsInterceptor(b, on_datagram=received.append)
        tx = DibsInterceptor(a)
        small = [b"a", b"bb", b"ccc"]
        for message in small:
            tx.intercept(message)
        tx.flush()
        network.engine.run_until(20.0)
        assert received == small
        assert tx.datagrams_sent == 3

    def test_counters(self):
        network, a, b = self._pair()
        rx_shim = DibsInterceptor(b)
        tx = DibsInterceptor(a)
        tx.intercept(b"hello")
        tx.flush()
        network.engine.run_until(20.0)
        assert rx_shim.datagrams_delivered == 1
