"""Robust (Byzantine-tolerant) Shamir reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharing.base import ReconstructionError, Share
from repro.sharing.robust import (
    evaluate_shares_at,
    max_correctable_errors,
    robust_reconstruct,
    verify_share,
)
from repro.sharing.shamir import ShamirScheme

scheme = ShamirScheme()


def make_shares(secret=b"byzantine fault tolerance", k=2, m=5, seed=0):
    return scheme.split(secret, k, m, np.random.default_rng(seed))


def corrupt(share: Share, offset: int = 0, flip: int = 0x5A) -> Share:
    data = bytearray(share.data)
    data[offset] ^= flip
    return Share(index=share.index, data=bytes(data), k=share.k, m=share.m)


class TestRadius:
    def test_values(self):
        assert max_correctable_errors(5, 2) == 1
        assert max_correctable_errors(5, 1) == 2
        assert max_correctable_errors(5, 5) == 0
        assert max_correctable_errors(3, 2) == 0

    def test_too_few_shares(self):
        with pytest.raises(ValueError):
            max_correctable_errors(2, 3)


class TestEvaluateAt:
    def test_at_zero_is_reconstruction(self):
        secret = b"eval at zero"
        shares = make_shares(secret, k=3, m=5)
        assert evaluate_shares_at(shares[:3], 0) == secret

    def test_predicts_other_shares(self):
        shares = make_shares(k=2, m=4)
        predicted = evaluate_shares_at(shares[:2], shares[3].index)
        assert predicted == shares[3].data

    def test_duplicate_indices_rejected(self):
        shares = make_shares(k=2, m=3)
        with pytest.raises(ReconstructionError):
            evaluate_shares_at([shares[0], shares[0]], 0)


class TestVerifyShare:
    def test_honest_share_verifies(self):
        shares = make_shares(k=2, m=4)
        assert verify_share(shares[:2], shares[2])

    def test_corrupt_share_fails(self):
        shares = make_shares(k=2, m=4)
        assert not verify_share(shares[:2], corrupt(shares[2]))


class TestRobustReconstruct:
    def test_no_corruption(self):
        secret = b"clean path"
        result = robust_reconstruct(make_shares(secret, k=2, m=5))
        assert result.secret == secret
        assert result.corrupted == frozenset()
        assert result.agreement == 5

    def test_corrects_one_corruption(self):
        secret = b"one bad courier"
        shares = make_shares(secret, k=2, m=5)
        shares[3] = corrupt(shares[3])
        result = robust_reconstruct(shares)
        assert result.secret == secret
        assert result.corrupted == frozenset({shares[3].index})

    def test_corrects_two_corruptions_when_radius_allows(self):
        secret = b"two bad couriers"
        shares = make_shares(secret, k=1, m=5)
        shares[0] = corrupt(shares[0])
        shares[4] = corrupt(shares[4], offset=3)
        result = robust_reconstruct(shares)
        assert result.secret == secret
        assert result.corrupted == frozenset({shares[0].index, shares[4].index})

    def test_beyond_radius_detected(self):
        secret = b"too many liars"
        shares = make_shares(secret, k=3, m=5)  # radius = 1
        shares[0] = corrupt(shares[0])
        shares[1] = corrupt(shares[1], offset=2)
        with pytest.raises(ReconstructionError):
            robust_reconstruct(shares)

    def test_explicit_error_budget(self):
        shares = make_shares(k=2, m=5)
        with pytest.raises(ReconstructionError):
            robust_reconstruct(shares, errors=2)  # radius is 1

    def test_zero_radius_still_reconstructs_clean(self):
        secret = b"exact fit"
        shares = make_shares(secret, k=3, m=3)
        result = robust_reconstruct(shares)
        assert result.secret == secret

    def test_inconsistent_lengths_rejected(self):
        shares = make_shares(k=2, m=4)
        shares[1] = Share(index=shares[1].index, data=shares[1].data[:-1], k=2, m=4)
        with pytest.raises(ReconstructionError):
            robust_reconstruct(shares)

    @given(
        secret=st.binary(min_size=1, max_size=60),
        k=st.integers(min_value=1, max_value=3),
        bad_position=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_corruption_property(self, secret, k, bad_position, seed):
        m = 5  # radius (5 - k) // 2 >= 1 for k <= 3
        shares = scheme.split(secret, k, m, np.random.default_rng(seed))
        shares[bad_position] = corrupt(shares[bad_position], offset=len(secret) // 2)
        result = robust_reconstruct(shares)
        assert result.secret == secret
        assert shares[bad_position].index in result.corrupted


class TestEndToEndByzantine:
    """A corrupting channel, end to end through the protocol."""

    def _run(self, corruption, byzantine_tolerance, kappa=2.0, mu=4.0, symbols=300):
        from repro.core.channel import ChannelSet
        from repro.netsim.rng import RngRegistry
        from repro.protocol.config import ProtocolConfig
        from repro.protocol.remicss import PointToPointNetwork

        channels = ChannelSet.from_vectors(
            risks=[0.0] * 4,
            losses=[0.0] * 4,
            delays=[0.01] * 4,
            rates=[100.0] * 4,
        )
        registry = RngRegistry(6)
        network = PointToPointNetwork(channels, 100, registry)
        # Channel 0 is the Byzantine one (with identical channels the
        # receiver hears shares in index order, so channel 0 is always
        # among the k fastest and its corruption actually matters).
        network.duplex[0].forward.corruption = corruption
        config = ProtocolConfig(
            kappa=kappa, mu=mu, symbol_size=100,
            byzantine_tolerance=byzantine_tolerance,
        )
        node_a, node_b = network.node_pair(config, registry)
        delivered = {}
        node_b.on_deliver(lambda seq, payload, delay: delivered.__setitem__(seq, payload))
        sent = []
        payload_rng = registry.stream("payloads")
        engine = network.engine

        def offer():
            payload = payload_rng.bytes(100)
            if node_a.send(payload):
                sent.append(payload)

        for i in range(symbols):
            engine.schedule_at(i * 0.05, offer)
        engine.run_until(symbols * 0.05 + 10.0)
        return sent, delivered, node_b

    def test_without_tolerance_corruption_garbles_payloads(self):
        sent, delivered, _ = self._run(corruption=0.5, byzantine_tolerance=0)
        garbled = sum(
            1 for seq, payload in delivered.items() if payload != sent[seq]
        )
        assert garbled > 10  # k-of-m reconstruction trusts whatever arrives

    def test_with_tolerance_every_payload_is_intact(self):
        sent, delivered, node_b = self._run(corruption=0.5, byzantine_tolerance=1)
        assert len(delivered) > 250
        assert all(delivered[seq] == sent[seq] for seq in delivered)
        assert node_b.receiver.stats.corrupt_shares_detected > 10

    def test_corruption_attributed_to_the_right_channel(self):
        _, _, node_b = self._run(corruption=0.5, byzantine_tolerance=1)
        counts = node_b.receiver.corrupt_by_channel
        assert counts  # something detected
        assert max(counts, key=counts.get) == 0  # the Byzantine channel

    def test_config_validation(self):
        from repro.protocol.config import ProtocolConfig

        with pytest.raises(ValueError):
            ProtocolConfig(kappa=2.0, mu=3.0, byzantine_tolerance=1)  # needs mu >= 4
        with pytest.raises(ValueError):
            ProtocolConfig(kappa=1.0, mu=3.0, byzantine_tolerance=1, share_synthetic=True)
        with pytest.raises(ValueError):
            ProtocolConfig(byzantine_tolerance=-1)
