"""Multi-hop topology: routed paths, shared edges, edge-tap adversary."""

import networkx as nx
import pytest

from repro.core.overlap import joint_subset_risk
from repro.netsim.rng import RngRegistry
from repro.netsim.topology import EdgeTapAdversary, TopologyNetwork
from repro.protocol.config import ProtocolConfig


def simple_graph(overrides=None):
    """s - {a, b} - t diamond plus a trunk s - m - t."""
    overrides = overrides or {}
    defaults = {"risk": 0.0, "loss": 0.0, "delay": 0.01, "rate": 100.0}
    graph = nx.Graph()
    for u, v in [("s", "a"), ("a", "t"), ("s", "b"), ("b", "t"), ("s", "m"), ("m", "t")]:
        graph.add_edge(u, v, **{**defaults, **overrides.get((u, v), {})})
    return graph


DISJOINT = [["s", "a", "t"], ["s", "b", "t"], ["s", "m", "t"]]


class TestConstruction:
    def test_paths_must_share_endpoints(self):
        graph = simple_graph()
        with pytest.raises(ValueError):
            TopologyNetwork(graph, [["s", "a", "t"], ["s", "b"]], 100, RngRegistry(1))

    def test_missing_edge_rejected(self):
        graph = simple_graph()
        with pytest.raises(ValueError):
            TopologyNetwork(graph, [["s", "t"]], 100, RngRegistry(1))

    def test_missing_rate_rejected(self):
        graph = nx.Graph()
        graph.add_edge("s", "t", loss=0.0)
        with pytest.raises(KeyError):
            TopologyNetwork(graph, [["s", "t"]], 100, RngRegistry(1))

    def test_links_shared_between_overlapping_paths(self):
        graph = simple_graph()
        graph.add_edge("m", "a", risk=0.0, loss=0.0, delay=0.01, rate=100.0)
        network = TopologyNetwork(
            graph, [["s", "m", "t"], ["s", "m", "a", "t"]], 100, RngRegistry(1)
        )
        # s->m instantiated once even though two paths cross it.
        assert ("s", "m") in network.links
        count = sum(1 for key in network.links if key == ("s", "m"))
        assert count == 1

    def test_empty_paths_rejected(self):
        with pytest.raises(ValueError):
            TopologyNetwork(simple_graph(), [], 100, RngRegistry(1))


class TestRouting:
    def test_end_to_end_protocol_over_paths(self):
        graph = simple_graph()
        registry = RngRegistry(2)
        network = TopologyNetwork(graph, DISJOINT, 100, registry)
        config = ProtocolConfig(kappa=2.0, mu=3.0, symbol_size=100)
        node_a, node_b = network.node_pair(config, registry)
        delivered = {}
        node_b.on_deliver(lambda seq, payload, delay: delivered.__setitem__(seq, payload))
        payloads = [bytes([i]) * 100 for i in range(50)]
        for i, payload in enumerate(payloads):
            network.engine.schedule_at(i * 0.05, node_a.send, payload)
        network.engine.run_until(20.0)
        assert len(delivered) == 50
        assert all(delivered[i] == payloads[i] for i in range(50))

    def test_bidirectional_over_paths(self):
        graph = simple_graph()
        registry = RngRegistry(3)
        network = TopologyNetwork(graph, DISJOINT, 100, registry)
        config = ProtocolConfig(kappa=1.0, mu=1.0, symbol_size=100)
        node_a, node_b = network.node_pair(config, registry)
        to_b, to_a = [], []
        node_b.on_deliver(lambda seq, payload, delay: to_b.append(payload))
        node_a.on_deliver(lambda seq, payload, delay: to_a.append(payload))
        node_a.send(b"x" * 100)
        node_b.send(b"y" * 100)
        network.engine.run_until(5.0)
        assert to_b == [b"x" * 100]
        assert to_a == [b"y" * 100]

    def test_multihop_delay_accumulates(self):
        graph = simple_graph()
        registry = RngRegistry(4)
        # Single two-hop path: delay should be ~2 x 0.01 plus serialisation.
        network = TopologyNetwork(graph, [["s", "a", "t"]], 100, registry)
        config = ProtocolConfig(kappa=1.0, mu=1.0, symbol_size=100)
        node_a, node_b = network.node_pair(config, registry)
        delays = []
        node_b.on_deliver(lambda seq, payload, delay: delays.append(delay))
        node_a.send(bytes(100))
        network.engine.run_until(5.0)
        assert len(delays) == 1
        serialisation = (100 + 16) / (100.0 * 100)
        assert delays[0] == pytest.approx(2 * 0.01 + 2 * serialisation, abs=1e-6)

    def test_shared_bottleneck_limits_throughput(self):
        # Two paths over one shared trunk of rate 50 symbols/unit.
        graph = nx.Graph()
        base = {"risk": 0.0, "loss": 0.0, "delay": 0.0, "rate": 50.0}
        for u, v in [("s", "m"), ("m", "a"), ("m", "b"), ("a", "t"), ("b", "t")]:
            graph.add_edge(u, v, **dict(base))
        registry = RngRegistry(5)
        network = TopologyNetwork(
            graph, [["s", "m", "a", "t"], ["s", "m", "b", "t"]], 100, registry
        )
        config = ProtocolConfig(kappa=1.0, mu=1.0, symbol_size=100, share_synthetic=True)
        node_a, node_b = network.node_pair(config, registry)
        delivered = []
        node_b.on_deliver(lambda seq, payload, delay: delivered.append(seq))
        engine = network.engine

        def offer():
            node_a.send(None)
            if engine.now < 20.0:
                engine.schedule(1.0 / 100.0, offer)  # offer 100 sym/unit

        engine.schedule_at(0.0, offer)
        engine.run_until(25.0)
        achieved = len(delivered) / 25.0
        # Both paths bottleneck on the shared s->m edge: ~50 total, not 100.
        assert achieved < 55.0
        assert achieved > 35.0


class TestEdgeTapAdversary:
    def _run(self, graph, paths, kappa, mu, symbols=4000, seed=6):
        registry = RngRegistry(seed)
        network = TopologyNetwork(graph, paths, 64, registry)
        config = ProtocolConfig(
            kappa=kappa, mu=mu, symbol_size=64, share_synthetic=True
        )
        node_a, node_b = network.node_pair(config, registry)
        adversary = EdgeTapAdversary(network, registry.stream("taps"))
        engine = network.engine
        for i in range(symbols):
            engine.schedule_at(i * 0.05, node_a.send, None)
        engine.run_until(symbols * 0.05 + 5.0)
        return adversary, node_a

    def test_disjoint_paths_match_independent_model(self):
        graph = simple_graph({
            ("s", "a"): {"risk": 0.3},
            ("s", "b"): {"risk": 0.25},
            ("s", "m"): {"risk": 0.35},
        })
        adversary, node_a = self._run(graph, DISJOINT, kappa=2.0, mu=3.0)
        predicted = joint_subset_risk(graph, DISJOINT, 2)
        empirical = adversary.compromise_rate(node_a.sender.stats.symbols_sent)
        assert empirical == pytest.approx(predicted, abs=0.03)

    def test_shared_trunk_matches_joint_model_not_independent(self):
        from repro.core.overlap import independent_subset_risk

        graph = nx.Graph()
        base = {"risk": 0.0, "loss": 0.0, "delay": 0.001, "rate": 200.0}
        graph.add_edge("s", "m", **{**base, "risk": 0.4})
        for u, v in [("m", "a"), ("m", "b"), ("a", "t"), ("b", "t")]:
            graph.add_edge(u, v, **dict(base))
        paths = [["s", "m", "a", "t"], ["s", "m", "b", "t"]]
        adversary, node_a = self._run(graph, paths, kappa=2.0, mu=2.0)
        joint = joint_subset_risk(graph, paths, 2)  # 0.4: one tap gets both
        independent = independent_subset_risk(graph, paths, 2)  # 0.16
        empirical = adversary.compromise_rate(node_a.sender.stats.symbols_sent)
        assert empirical == pytest.approx(joint, abs=0.03)
        assert abs(empirical - independent) > 0.15

    def test_zero_risk_edges_capture_nothing(self):
        graph = simple_graph()
        adversary, _ = self._run(graph, DISJOINT, kappa=1.0, mu=1.0, symbols=200)
        assert adversary.shares_observed == 0
        assert not adversary.compromised
