"""The quarantine state machine: suspect, quarantine, probe, reinstate."""

import pytest

from repro.protocol.resilience import ChannelGuard, ChannelState, ResilienceConfig
from repro.protocol.resilience.health import HealthSample

CONFIG = ResilienceConfig(
    stuck_reviews=2, recover_reviews=2, reinstate_acks=1,
    probe_interval=1.0, probe_backoff=2.0, probe_max_interval=8.0,
)


def sample(loss=0.0, suspicion=0.0, stuck=0, channel=0):
    return HealthSample(
        channel=channel, loss=loss, suspicion=suspicion, stuck_reviews=stuck
    )


def quarantine(guard, now=1.0):
    """Drive a guard HEALTHY -> QUARANTINED via two stuck reviews."""
    guard.review(now, sample(stuck=1))
    transition = guard.review(now + 1.0, sample(stuck=2))
    assert guard.state is ChannelState.QUARANTINED
    return transition


class TestSuspicionPath:
    @pytest.mark.parametrize(
        "bad,reason",
        [
            (sample(loss=0.6), "loss"),
            (sample(suspicion=5.0), "suspicion"),
            (sample(stuck=1), "stuck"),
        ],
    )
    def test_one_bad_review_suspects(self, bad, reason):
        guard = ChannelGuard(0, CONFIG)
        transition = guard.review(1.0, bad)
        assert guard.state is ChannelState.SUSPECT
        assert transition.reason == reason

    def test_healthy_review_does_nothing(self):
        guard = ChannelGuard(0, CONFIG)
        assert guard.review(1.0, sample()) is None
        assert guard.state is ChannelState.HEALTHY

    def test_suspect_recovers_after_clean_reviews(self):
        guard = ChannelGuard(0, CONFIG)
        guard.review(1.0, sample(loss=0.6))
        assert guard.review(2.0, sample(loss=0.1)) is None  # 1 clean
        transition = guard.review(3.0, sample(loss=0.1))  # 2 clean
        assert guard.state is ChannelState.HEALTHY
        assert transition.reason == "clean_reviews"

    def test_bad_review_resets_the_clean_count(self):
        guard = ChannelGuard(0, CONFIG)
        guard.review(1.0, sample(loss=0.6))
        guard.review(2.0, sample(loss=0.1))
        guard.review(3.0, sample(loss=0.6))  # still suspect-worthy
        guard.review(4.0, sample(loss=0.1))
        assert guard.state is ChannelState.SUSPECT  # count restarted


class TestQuarantinePath:
    def test_escalating_loss_quarantines(self):
        guard = ChannelGuard(0, CONFIG)
        guard.review(1.0, sample(loss=0.6))
        transition = guard.review(2.0, sample(loss=0.8))
        assert guard.state is ChannelState.QUARANTINED
        assert transition.reason == "loss"

    def test_stuck_needs_consecutive_reviews(self):
        guard = ChannelGuard(0, CONFIG)
        guard.review(1.0, sample(stuck=1))
        assert guard.state is ChannelState.SUSPECT
        guard.review(2.0, sample(stuck=2))
        assert guard.state is ChannelState.QUARANTINED

    def test_quarantine_schedules_the_first_probe(self):
        guard = ChannelGuard(0, CONFIG)
        quarantine(guard)
        assert guard.next_probe_at == pytest.approx(3.0)  # quarantined at 2
        assert guard.probe_due(3.0)
        assert not guard.probe_due(2.5)

    def test_reviews_do_not_touch_quarantined_channels(self):
        guard = ChannelGuard(0, CONFIG)
        quarantine(guard)
        assert guard.review(5.0, sample()) is None
        assert guard.state is ChannelState.QUARANTINED


class TestProbing:
    def test_probe_backoff_is_exponential_and_capped(self):
        guard = ChannelGuard(0, CONFIG)
        quarantine(guard)  # quarantined at t=2, first probe due at 3
        times = []
        now = guard.next_probe_at
        for _ in range(6):
            times.append(now)
            guard.on_probe_sent(now)
            now = guard.next_probe_at
        # Intervals 1, 2, 4, 8, 8 (capped at probe_max_interval).
        assert times == [pytest.approx(t) for t in (3.0, 4.0, 6.0, 10.0, 18.0, 26.0)]
        assert guard.state is ChannelState.PROBING

    def test_ack_reinstates_and_resets(self):
        guard = ChannelGuard(0, CONFIG)
        quarantine(guard)
        guard.on_probe_sent(3.0)
        transition = guard.on_probe_ack(3.5)
        assert transition is not None
        assert transition.reason == "probe_ack"
        assert guard.state is ChannelState.HEALTHY
        assert guard.next_probe_at is None
        assert guard.probes_sent == 0

    def test_multiple_acks_required_when_configured(self):
        config = ResilienceConfig(reinstate_acks=2)
        guard = ChannelGuard(0, config)
        quarantine(guard)
        guard.on_probe_sent(3.0)
        assert guard.on_probe_ack(3.5) is None
        assert guard.state is ChannelState.PROBING
        assert guard.on_probe_ack(4.5) is not None
        assert guard.state is ChannelState.HEALTHY

    def test_stray_ack_on_healthy_channel_ignored(self):
        guard = ChannelGuard(0, CONFIG)
        assert guard.on_probe_ack(1.0) is None
        assert guard.state is ChannelState.HEALTHY

    def test_requarantine_restarts_the_backoff(self):
        guard = ChannelGuard(0, CONFIG)
        quarantine(guard)
        for now in (3.0, 4.0, 6.0):
            guard.on_probe_sent(now)
        guard.on_probe_ack(6.5)
        quarantine(guard, now=10.0)
        assert guard.next_probe_at == pytest.approx(12.0)


class TestTransitionLog:
    def test_full_cycle_is_logged_in_order(self):
        guard = ChannelGuard(3, CONFIG)
        quarantine(guard)
        guard.on_probe_sent(3.0)
        guard.on_probe_ack(3.5)
        states = [(t.source, t.target) for t in guard.transitions]
        assert states == [
            (ChannelState.HEALTHY, ChannelState.SUSPECT),
            (ChannelState.SUSPECT, ChannelState.QUARANTINED),
            (ChannelState.QUARANTINED, ChannelState.PROBING),
            (ChannelState.PROBING, ChannelState.HEALTHY),
        ]
        assert all(t.channel == 3 for t in guard.transitions)
        times = [t.time for t in guard.transitions]
        assert times == sorted(times)

    def test_excluded_property(self):
        assert not ChannelState.HEALTHY.excluded
        assert not ChannelState.SUSPECT.excluded
        assert ChannelState.QUARANTINED.excluded
        assert ChannelState.PROBING.excluded
