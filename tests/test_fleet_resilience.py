"""Fleet flows under the resilience layer: flow-keyed repair, tenant
isolation, per-tenant κ floors through quarantine.

Multiple flows share one resilient sender here, with overlapping per-flow
sequence numbers (every flow counts from 0).  That overlap is the point:
any repair or delivery that ignored the flow id would visibly corrupt
another flow's stream, so payload equality per (flow, seq) is a direct
cross-tenant-isolation check.
"""

from repro.core.planner import Requirements, plan_max_rate
from repro.netsim.faults import FaultEvent, FaultPlan
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork
from repro.protocol.resilience import ResilienceConfig, ResilienceManager
from repro.protocol.scheduler import ExplicitScheduler
from repro.workloads.setups import diverse_setup
from repro.workloads.setups import testbed_fault_plan as fault_plan_for

REQUIREMENTS = Requirements(max_risk=0.02)
#: The 100 Mbps channel the plan leans on; faulting it matters.
FAULT_CHANNEL = 4
#: At max_risk 0.02 the Diverse plan keeps every atom's k >= 2 -- that
#: is the tenants' κ floor.  Each flow draws from the planned schedule
#: with its own RNG stream, so the fault channel carries real traffic
#: and burst loss produces repairable partial symbols.
FLOW_KAPPA = 2.0


def build(fault_plan=None, seed=11, interval=0.02, end=35.0):
    """A resilient A -> B run with two tenant flows sharing the sender."""
    channels = diverse_setup()
    registry = RngRegistry(seed)
    config = ProtocolConfig(symbol_size=64, share_synthetic=False)
    network = PointToPointNetwork(channels, config.symbol_size, registry)
    if fault_plan is not None:
        network.apply_faults(fault_plan)
    plan = plan_max_rate(channels, REQUIREMENTS)
    node_a, node_b = network.node_pair(config, registry, schedule=plan.schedule)
    manager = ResilienceManager(
        network, node_a, node_b, config,
        ResilienceConfig(), registry,
        requirements=REQUIREMENTS,
    )
    for flow in (1, 2):
        node_a.sender.set_flow_sampler(
            flow,
            ExplicitScheduler(plan.schedule, registry.stream(f"flow{flow}.sched")),
        )

    engine = network.engine
    payload_rng = registry.stream("test.payload")
    offered = {}

    def offer(flow):
        seq = node_a.sender._flow_seqs.get(flow, 0)
        payload = payload_rng.bytes(config.symbol_size)
        if node_a.sender.offer(payload, flow=flow):
            offered[(flow, seq)] = payload
        next_flow = 2 if flow == 1 else 1
        if engine.now + interval < end:
            engine.schedule(interval, offer, next_flow)

    delivered = {}
    node_b.receiver.on_deliver_flow = (
        lambda flow, seq, payload, delay: delivered.setdefault((flow, seq), payload)
    )
    engine.schedule_at(0.0, offer, 1)
    return network, node_a, node_b, manager, offered, delivered


def burst_plan():
    return fault_plan_for("burst", 100.0, 250.0, channel=FAULT_CHANNEL)


class TestFlowKeyedRepair:
    def test_nack_repair_is_keyed_by_flow(self):
        network, _, node_b, manager, offered, delivered = build(
            fault_plan=burst_plan()
        )
        network.engine.run_until(35.0)
        stats = manager.stats
        assert stats.nacks_received >= 1
        assert stats.repair_shares_sent >= 1
        assert node_b.receiver.stats.repair_recovered >= 1
        # Every NACK found its symbol under its (flow, seq) key.
        assert manager.repair_buffer.unknown_nacks == 0

    def test_repair_never_crosses_flows(self):
        """Sequence numbers overlap across flows; a repair (or delivery)
        that dropped the flow key would hand one tenant another tenant's
        payload.  Exact payload equality per (flow, seq) rules that out."""
        network, _, node_b, manager, offered, delivered = build(
            fault_plan=burst_plan()
        )
        network.engine.run_until(35.0)
        assert node_b.receiver.stats.repair_recovered >= 1
        assert delivered, "nothing delivered"
        seqs = {seq for (_flow, seq) in delivered}
        both = [seq for seq in seqs
                if (1, seq) in delivered and (2, seq) in delivered]
        assert both, "expected overlapping per-flow sequence numbers"
        for key, payload in delivered.items():
            assert payload == offered[key], f"cross-flow corruption at {key}"
        # The two flows carried different payloads at the same seq, so the
        # equality above is discriminating, not vacuous.
        assert any(delivered[(1, seq)] != delivered[(2, seq)] for seq in both)


class TestKappaFloorUnderQuarantine:
    def test_per_tenant_kappa_floor_holds_through_outage(self):
        """Quarantine removes channels, never thresholds: every symbol of
        every tenant flow keeps k >= its tenant's κ floor while a channel
        is out, because per-flow samplers are untouched by failover."""
        plan = FaultPlan([
            FaultEvent(10.0, "partition", FAULT_CHANNEL),
            FaultEvent(25.0, "heal", FAULT_CHANNEL),
        ])
        network, node_a, node_b, manager, offered, delivered = build(
            fault_plan=plan
        )
        min_k = {}
        inner = node_a.sender.on_transmit  # the repair buffer's hook

        def audit(flow, seq, k, m, offered_at, shares):
            min_k[flow] = min(min_k.get(flow, 99), k)
            if inner is not None:
                inner(flow, seq, k, m, offered_at, shares)

        node_a.sender.on_transmit = audit
        network.engine.run_until(35.0)
        assert manager.stats.quarantines >= 1
        for flow in (1, 2):
            assert min_k[flow] >= FLOW_KAPPA
        # Traffic kept flowing for both tenants during the outage.
        flows_delivered = {flow for (flow, _seq) in delivered}
        assert flows_delivered == {1, 2}
