"""The DRR flow multiplexer: fairness, bounds, back-pressure."""

import pytest

from repro.core.channel import Channel, ChannelSet
from repro.fleet import FlowMux
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork
from repro.protocol.scheduler import DynamicParameterSampler


def build(
    channels=2,
    rate=2.0,
    link_queue=1,
    source_queue_limit=1,
    quantum=1.0,
    queue_limit=64,
    seed=3,
):
    """A two-node synthetic network with a mux on node A's sender.

    The tiny link queue and source queue make the sender back-pressure
    almost immediately, so the mux's DRR order is observable.
    """
    channel_set = ChannelSet(
        Channel(risk=0.1, loss=0.0, delay=0.01, rate=rate) for _ in range(channels)
    )
    registry = RngRegistry(seed)
    network = PointToPointNetwork(
        channel_set, symbol_size=64, rng_registry=registry, queue_limit=link_queue
    )
    config = ProtocolConfig(
        kappa=1.0,
        mu=1.0,
        symbol_size=64,
        share_synthetic=True,
        source_queue_limit=source_queue_limit,
    )
    node_a, node_b = network.node_pair(config, registry)
    mux = FlowMux(node_a.sender, quantum=quantum, queue_limit=queue_limit)
    return network, node_a, node_b, mux, registry


def offer_order(node_a):
    """Wrap the sender to record the flow of every accepted offer."""
    order = []
    original = node_a.sender.offer

    def recording(payload=None, flow=0):
        accepted = original(payload, flow=flow)
        if accepted:
            order.append(flow)
        return accepted

    node_a.sender.offer = recording
    return order


class TestRegistration:
    def test_flow_zero_is_reserved(self):
        _, _, _, mux, _ = build()
        with pytest.raises(ValueError, match="flow ids start at 1"):
            mux.register(0)

    def test_double_registration_rejected(self):
        _, _, _, mux, _ = build()
        mux.register(1)
        with pytest.raises(ValueError, match="already registered"):
            mux.register(1)

    def test_bad_weight_rejected(self):
        _, _, _, mux, _ = build()
        with pytest.raises(ValueError, match="weight"):
            mux.register(1, weight=0.0)

    def test_unregistered_flow_rejected(self):
        _, _, _, mux, _ = build()
        with pytest.raises(KeyError):
            mux.enqueue(7)

    def test_sampler_is_registered_on_sender(self):
        _, node_a, _, mux, registry = build()
        sampler = DynamicParameterSampler(1.0, 2.0, registry.stream("flow1.sched"))
        mux.register(1, sampler=sampler)
        assert node_a.sender.flow_samplers[1] is sampler


class TestFairness:
    def test_weighted_drr_ratio(self):
        """A weight-2 flow drains twice the symbols of a weight-1 flow
        while both are backlogged."""
        network, node_a, _, mux, _ = build()
        order = offer_order(node_a)
        mux.register(1, weight=2.0)
        mux.register(2, weight=1.0)
        for _ in range(30):
            mux.enqueue(1)
            mux.enqueue(2)
        # Stop mid-contention: both queues must still be backlogged.
        network.engine.run_until(4.0)
        assert mux.backlog > 0
        from1 = order.count(1)
        from2 = order.count(2)
        assert from1 > from2
        assert abs(from1 - 2 * from2) <= 2  # DRR rounding at the window edge

    def test_equal_weights_alternate(self):
        network, node_a, _, mux, _ = build()
        order = offer_order(node_a)
        mux.register(1)
        mux.register(2)
        for _ in range(20):
            mux.enqueue(1)
            mux.enqueue(2)
        network.engine.run_until(4.0)
        assert mux.backlog > 0
        contended = order[2:]  # first offers may pass through pre-contention
        assert abs(contended.count(1) - contended.count(2)) <= 1

    def test_fractional_quantum_accumulates(self):
        """quantum < 1 still makes progress: credit builds across rounds."""
        network, node_a, _, mux, _ = build(quantum=0.25)
        order = offer_order(node_a)
        mux.register(1)
        for _ in range(4):
            mux.enqueue(1)
        network.engine.run_until(20.0)
        assert order.count(1) == 4


class TestBoundsAndBackpressure:
    def test_per_flow_queue_bound_drops(self):
        _, node_a, _, mux, _ = build(queue_limit=2)
        node_a.sender.admission_paused = True  # nothing drains downstream
        mux.register(1)
        assert mux.enqueue(1)
        assert mux.enqueue(1)
        assert not mux.enqueue(1)  # third exceeds the bound
        assert mux.stats.flows[1]["dropped"] == 1
        assert mux.stats.dropped == 1

    def test_uncontended_flow_passes_straight_through(self):
        network, node_a, _, mux, _ = build(
            rate=64.0, link_queue=16, source_queue_limit=64
        )
        mux.register(1)
        for _ in range(4):
            assert mux.enqueue(1)
        # With sender space available the mux holds nothing back.
        assert mux.backlog == 0
        assert node_a.sender.stats.flows[1]["symbols_offered"] == 4
        network.engine.run()
        assert node_a.sender.stats.flows[1]["symbols_sent"] == 4

    def test_backpressure_drains_everything_eventually(self):
        network, node_a, node_b, mux, _ = build()
        mux.register(1)
        mux.register(2, weight=3.0)
        for _ in range(25):
            mux.enqueue(1)
            mux.enqueue(2)
        network.engine.run()
        assert mux.backlog == 0
        assert node_a.sender.stats.symbols_sent == 50
        assert node_b.receiver.stats.symbols_delivered == 50
        assert mux.stats.offer_failures == 0

    def test_stats_shape(self):
        _, _, _, mux, _ = build()
        mux.register(1)
        mux.enqueue(1)
        stats = mux.stats.as_dict()
        assert stats["enqueued"] == 1
        assert stats["flows"]["1"]["enqueued"] == 1
        assert set(stats["flows"]["1"]) == {"enqueued", "offered", "dropped"}
