"""The resilience control-plane wire format: probes, acks, NACKs."""

import pytest

from repro.protocol.wire import (
    CONTROL_MAGIC,
    CTRL_NACK,
    CTRL_PROBE,
    CTRL_PROBE_ACK,
    WireFormatError,
    decode_control,
    encode_nack,
    encode_probe,
    encode_probe_ack,
    encode_share,
    is_control,
)
from repro.sharing.base import Share


class TestProbeRoundtrip:
    def test_probe(self):
        message = decode_control(encode_probe(channel=3, nonce=42))
        assert message.kind == CTRL_PROBE
        assert message.channel == 3
        assert message.nonce == 42

    def test_probe_ack_echoes_nonce(self):
        message = decode_control(encode_probe_ack(channel=0, nonce=2**63))
        assert message.kind == CTRL_PROBE_ACK
        assert message.channel == 0
        assert message.nonce == 2**63

    def test_field_ranges(self):
        with pytest.raises(ValueError):
            encode_probe(channel=256, nonce=0)
        with pytest.raises(ValueError):
            encode_probe(channel=0, nonce=2**64)


class TestNackRoundtrip:
    def test_basic(self):
        message = decode_control(encode_nack(seq=9, k=3, m=5, have=[2, 4]))
        assert message.kind == CTRL_NACK
        assert (message.seq, message.k, message.m) == (9, 3, 5)
        assert message.have == (2, 4)

    def test_have_is_sorted_and_deduped(self):
        message = decode_control(encode_nack(seq=1, k=3, m=4, have=[3, 1, 3]))
        assert message.have == (1, 3)

    def test_requires_partial_symbol(self):
        # A NACK only makes sense for 1 <= held < k: zero shares cannot
        # identify the symbol, k shares are already completing.
        with pytest.raises(ValueError):
            encode_nack(seq=1, k=2, m=3, have=[])
        with pytest.raises(ValueError):
            encode_nack(seq=1, k=2, m=3, have=[1, 2])

    def test_indices_within_multiplicity(self):
        with pytest.raises(ValueError):
            encode_nack(seq=1, k=3, m=3, have=[4])


class TestDispatch:
    def test_control_magic_disjoint_from_share_magic(self):
        share = Share(index=1, data=b"x" * 4, k=2, m=3)
        share_packet = encode_share(0, share, "xor-perfect")
        assert not is_control(share_packet)
        assert is_control(encode_probe(0, 0))
        assert is_control(encode_nack(1, 2, 3, [1]))
        with pytest.raises(WireFormatError):
            decode_control(share_packet)


class TestDecodeErrors:
    def test_too_short(self):
        with pytest.raises(WireFormatError):
            decode_control(b"\x52")

    def test_truncated_probe(self):
        with pytest.raises(WireFormatError):
            decode_control(encode_probe(1, 7)[:-1])

    def test_truncated_nack_header(self):
        with pytest.raises(WireFormatError):
            decode_control(encode_nack(1, 3, 5, [1])[:10])

    def test_nack_index_list_shorter_than_count(self):
        packet = encode_nack(1, 3, 5, [1, 2])
        with pytest.raises(WireFormatError):
            decode_control(packet[:-1])

    def test_nack_index_out_of_range(self):
        packet = bytearray(encode_nack(1, 3, 5, [1]))
        packet[-1] = 6  # > m
        with pytest.raises(WireFormatError):
            decode_control(bytes(packet))

    def test_bad_version(self):
        packet = bytearray(encode_probe(1, 7))
        packet[2] = 3  # versions 1 (legacy) and 2 (flow-aware) are valid
        with pytest.raises(WireFormatError):
            decode_control(bytes(packet))

    def test_unknown_control_type(self):
        packet = bytearray(encode_probe(1, 7))
        packet[3] = 200
        with pytest.raises(WireFormatError):
            decode_control(bytes(packet))

    def test_magic_value(self):
        assert CONTROL_MAGIC == 0x5243  # "RC", disjoint from the share "RS"
