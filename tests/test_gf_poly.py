"""Polynomial evaluation and Lagrange interpolation over finite fields."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf.gf256 import GF256_FIELD
from repro.gf.gfp import PrimeField
from repro.gf.poly import (
    Polynomial,
    evaluate,
    lagrange_interpolate,
    lagrange_interpolate_at,
)

GF251 = PrimeField(251)


class TestEvaluate:
    def test_constant(self):
        assert evaluate(GF256_FIELD, [42], 17) == 42

    def test_empty_coefficients_is_zero(self):
        assert evaluate(GF256_FIELD, [], 5) == 0

    def test_linear_over_prime_field(self):
        # 3 + 5x at x=10 mod 251 = 53
        assert evaluate(GF251, [3, 5], 10) == 53

    def test_horner_matches_naive(self):
        f = GF251
        coeffs = [7, 0, 3, 9]
        for x in range(0, 50, 7):
            naive = 0
            for power, c in enumerate(coeffs):
                naive = f.add(naive, f.mul(c, f.pow(x, power)))
            assert evaluate(f, coeffs, x) == naive


class TestPolynomialWrapper:
    def test_degree(self):
        assert Polynomial(GF251, (0,)).degree == -1
        assert Polynomial(GF251, (5,)).degree == 0
        assert Polynomial(GF251, (5, 0, 3, 0)).degree == 2

    def test_call_matches_evaluate(self):
        p = Polynomial(GF251, (1, 2, 3))
        assert p(7) == evaluate(GF251, (1, 2, 3), 7)

    def test_add(self):
        a = Polynomial(GF251, (1, 2))
        b = Polynomial(GF251, (3, 4, 5))
        c = a.add(b)
        for x in range(10):
            assert c(x) == GF251.add(a(x), b(x))

    def test_mul(self):
        a = Polynomial(GF251, (1, 2))
        b = Polynomial(GF251, (3, 0, 5))
        c = a.mul(b)
        assert c.degree == 3
        for x in range(10):
            assert c(x) == GF251.mul(a(x), b(x))

    def test_mul_by_zero_polynomial(self):
        a = Polynomial(GF251, (1, 2))
        z = Polynomial(GF251, (0,))
        assert a.mul(z).degree == -1

    def test_scale(self):
        a = Polynomial(GF251, (1, 2, 3))
        s = a.scale(10)
        for x in range(5):
            assert s(x) == GF251.mul(10, a(x))

    def test_rejects_out_of_range_coefficients(self):
        with pytest.raises(ValueError):
            Polynomial(GF251, (251,))


class TestInterpolation:
    def test_recovers_polynomial_through_points(self):
        f = GF251
        coeffs = (17, 42, 7)
        points = [(x, evaluate(f, coeffs, x)) for x in (1, 2, 3)]
        poly = lagrange_interpolate(f, points)
        for x in range(20):
            assert poly(x) == evaluate(f, coeffs, x)

    def test_interpolate_at_zero_recovers_constant_term(self):
        f = GF256_FIELD
        coeffs = (99, 3, 250)
        points = [(x, evaluate(f, coeffs, x)) for x in (1, 5, 9)]
        assert lagrange_interpolate_at(f, points, 0) == 99

    def test_duplicate_x_rejected(self):
        with pytest.raises(ValueError):
            lagrange_interpolate_at(GF251, [(1, 2), (1, 3)], 0)
        with pytest.raises(ValueError):
            lagrange_interpolate(GF251, [(1, 2), (1, 3)])

    def test_single_point_is_constant(self):
        assert lagrange_interpolate_at(GF251, [(5, 123)], 77) == 123

    @given(
        coeffs=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=5),
        extra=st.integers(min_value=0, max_value=255),
    )
    def test_roundtrip_gf256(self, coeffs, extra):
        f = GF256_FIELD
        xs = list(range(1, len(coeffs) + 1))
        points = [(x, evaluate(f, coeffs, x)) for x in xs]
        assert lagrange_interpolate_at(f, points, 0) == coeffs[0]
        # Interpolating at a sample point returns that sample.
        assert lagrange_interpolate_at(f, points, xs[0]) == points[0][1]
        del extra

    @given(degree=st.integers(min_value=0, max_value=4))
    def test_interpolated_polynomial_degree_bound(self, degree):
        f = GF251
        coeffs = tuple(range(1, degree + 2))
        points = [(x, evaluate(f, coeffs, x)) for x in range(1, degree + 2)]
        poly = lagrange_interpolate(f, points)
        assert poly.degree <= degree
