"""CSV export of experiment series."""

import csv

import pytest

from repro.experiments.export import write_rows


class TestWriteRows:
    def test_roundtrip(self, tmp_path):
        rows = [
            {"kappa": 1.0, "mu": 2.0, "rate": 75.0},
            {"kappa": 2.0, "mu": 3.0, "rate": 50.0},
        ]
        path = tmp_path / "out.csv"
        count = write_rows(str(path), rows)
        assert count == 2
        with open(path) as handle:
            read = list(csv.DictReader(handle))
        assert read[0]["kappa"] == "1.0"
        assert read[1]["rate"] == "50.0"

    def test_explicit_columns_and_missing_keys(self, tmp_path):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        path = tmp_path / "cols.csv"
        write_rows(str(path), rows, columns=["b", "a"])
        with open(path) as handle:
            read = list(csv.DictReader(handle))
        assert list(read[0].keys()) == ["b", "a"]
        assert read[1]["b"] == ""

    def test_non_scalar_values_skipped_in_auto_columns(self, tmp_path):
        rows = [{"x": 1, "stuff": (1, 2, 3)}]
        path = tmp_path / "skip.csv"
        write_rows(str(path), rows)
        with open(path) as handle:
            header = handle.readline().strip()
        assert header == "x"

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_rows(str(tmp_path / "none.csv"), [])

    def test_creates_directories(self, tmp_path):
        nested = tmp_path / "a" / "b" / "out.csv"
        write_rows(str(nested), [{"x": 1}])
        assert nested.exists()

    def test_fig2_rows_export(self, tmp_path):
        from repro.experiments.fig2 import run_fig2

        path = tmp_path / "fig2.csv"
        count = write_rows(str(path), run_fig2())
        assert count == 3
        with open(path) as handle:
            read = list(csv.DictReader(handle))
        assert read[0]["symbols_packed"] == "15"
