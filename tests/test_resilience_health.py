"""The per-channel failure detector: EWMA loss, suspicion, stuck reviews."""

import pytest

from repro.protocol.resilience import HealthMonitor, ResilienceConfig

CONFIG = ResilienceConfig(loss_alpha=0.5)


def observe_clean(monitor, now, channel=0, sent=10):
    return monitor.observe(
        now, channel, serialized_delta=sent, loss_delta=0,
        delivered_delta=sent, blocked=False,
    )


class TestValidation:
    def test_needs_a_channel(self):
        with pytest.raises(ValueError):
            HealthMonitor(0, CONFIG)

    def test_config_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            ResilienceConfig(loss_alpha=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(loss_alpha=1.5)


class TestLossEwma:
    def test_clean_traffic_keeps_loss_zero(self):
        monitor = HealthMonitor(1, CONFIG)
        for t in range(1, 6):
            sample = observe_clean(monitor, float(t))
        assert sample.loss == 0.0

    def test_total_loss_converges_up(self):
        monitor = HealthMonitor(1, CONFIG)
        losses = []
        for t in range(1, 5):
            sample = monitor.observe(
                float(t), 0, serialized_delta=10, loss_delta=10,
                delivered_delta=0, blocked=False,
            )
            losses.append(sample.loss)
        # alpha=0.5: 0.5, 0.75, 0.875, 0.9375 -- strictly climbing to 1.
        assert losses == sorted(losses)
        assert losses[0] == pytest.approx(0.5)
        assert losses[-1] == pytest.approx(0.9375)

    def test_no_traffic_keeps_previous_estimate(self):
        monitor = HealthMonitor(1, CONFIG)
        first = monitor.observe(1.0, 0, 10, 5, 5, blocked=False)
        second = monitor.observe(2.0, 0, 0, 0, 0, blocked=False)
        assert second.loss == first.loss


class TestSuspicion:
    def test_idle_channel_is_never_suspected(self):
        monitor = HealthMonitor(1, CONFIG)
        for t in range(1, 20):
            sample = monitor.observe(float(t), 0, 0, 0, 0, blocked=False)
        assert sample.suspicion == 0.0

    def test_silence_under_demand_grows_linearly(self):
        monitor = HealthMonitor(1, CONFIG)
        observe_clean(monitor, 1.0)  # evidence at t=1, gap_ewma = 1
        scores = []
        for t in range(2, 6):
            # Packets keep going out, nothing comes back.
            sample = monitor.observe(float(t), 0, 10, 0, 0, blocked=False)
            scores.append(sample.suspicion)
        assert scores == [pytest.approx(t - 1.0) for t in range(2, 6)]

    def test_delivery_evidence_resets_the_score(self):
        monitor = HealthMonitor(1, CONFIG)
        observe_clean(monitor, 1.0)
        monitor.observe(2.0, 0, 10, 0, 0, blocked=False)
        sample = observe_clean(monitor, 3.0)
        assert sample.suspicion == 0.0

    def test_reset_forgets_history(self):
        monitor = HealthMonitor(2, CONFIG)
        for t in range(1, 5):
            monitor.observe(float(t), 0, 10, 10, 0, blocked=False)
        monitor.reset(0, now=5.0)
        assert monitor.channel(0).loss_ewma == 0.0
        sample = monitor.observe(6.0, 0, 0, 0, 0, blocked=False)
        assert sample.suspicion == 0.0


class TestStuckReviews:
    def test_blocked_and_silent_accumulates(self):
        monitor = HealthMonitor(1, CONFIG)
        counts = [
            monitor.observe(float(t), 0, 0, 0, 0, blocked=True).stuck_reviews
            for t in range(1, 4)
        ]
        assert counts == [1, 2, 3]

    def test_any_serialization_clears_stuck(self):
        monitor = HealthMonitor(1, CONFIG)
        monitor.observe(1.0, 0, 0, 0, 0, blocked=True)
        # Still blocked, but packets moved: backpressure, not an outage.
        sample = monitor.observe(2.0, 0, 5, 0, 5, blocked=True)
        assert sample.stuck_reviews == 0

    def test_unblocked_idle_is_not_stuck(self):
        monitor = HealthMonitor(1, CONFIG)
        sample = monitor.observe(1.0, 0, 0, 0, 0, blocked=False)
        assert sample.stuck_reviews == 0

    def test_channels_are_independent(self):
        monitor = HealthMonitor(2, CONFIG)
        monitor.observe(1.0, 0, 0, 0, 0, blocked=True)
        sample = observe_clean(monitor, 1.0, channel=1)
        assert sample.stuck_reviews == 0
        assert monitor.channel(0).stuck_reviews == 1
