"""Channel overlap: the Sec. III-B disjointness argument, quantified."""

import networkx as nx
import numpy as np
import pytest

from repro.core.overlap import (
    are_edge_disjoint,
    build_channel_set,
    channel_from_path,
    edge_disjoint_channel_paths,
    independent_subset_risk,
    joint_subset_risk,
    max_disjoint_rate_scaling,
    overlap_privacy_penalty,
    path_edges,
    shared_edges,
)


def line_graph(*edges):
    graph = nx.Graph()
    for u, v, attrs in edges:
        graph.add_edge(u, v, **attrs)
    return graph


@pytest.fixture
def diamond():
    """s -> {a, b} -> t plus a direct shared trunk s - m - t."""
    attrs = {"risk": 0.1, "loss": 0.01, "delay": 1.0, "rate": 10.0}
    graph = nx.Graph()
    for u, v in [("s", "a"), ("a", "t"), ("s", "b"), ("b", "t"), ("s", "m"), ("m", "t")]:
        graph.add_edge(u, v, **dict(attrs))
    return graph


class TestPathComposition:
    def test_path_edges(self):
        assert path_edges(["s", "a", "t"]) == [("a", "s"), ("a", "t")]
        with pytest.raises(ValueError):
            path_edges(["s"])

    def test_channel_from_path_composes(self):
        graph = line_graph(
            ("s", "a", {"risk": 0.1, "loss": 0.1, "delay": 1.0, "rate": 10.0}),
            ("a", "t", {"risk": 0.2, "loss": 0.2, "delay": 2.0, "rate": 5.0}),
        )
        channel = channel_from_path(graph, ["s", "a", "t"])
        assert channel.risk == pytest.approx(1 - 0.9 * 0.8)
        assert channel.loss == pytest.approx(1 - 0.9 * 0.8)
        assert channel.delay == pytest.approx(3.0)
        assert channel.rate == pytest.approx(5.0)

    def test_missing_rate_attribute_raises(self):
        graph = line_graph(("s", "t", {"risk": 0.1}))
        with pytest.raises(KeyError):
            channel_from_path(graph, ["s", "t"])

    def test_build_channel_set(self, diamond):
        channels = build_channel_set(
            diamond, [["s", "a", "t"], ["s", "b", "t"], ["s", "m", "t"]]
        )
        assert channels.n == 3
        assert all(c.rate == 10.0 for c in channels)


class TestSharedEdges:
    def test_disjoint_paths(self, diamond):
        paths = [["s", "a", "t"], ["s", "b", "t"]]
        assert are_edge_disjoint(paths)
        assert shared_edges(paths) == {}

    def test_overlapping_paths(self, diamond):
        paths = [["s", "m", "t"], ["s", "m", "a", "t"]]
        diamond.add_edge("m", "a", risk=0.1, loss=0.01, delay=1.0, rate=10.0)
        sharing = shared_edges(paths)
        assert ("m", "s") in sharing
        assert sharing[("m", "s")] == frozenset({0, 1})
        assert not are_edge_disjoint(paths)


class TestJointRisk:
    def test_matches_independent_for_disjoint(self, diamond):
        paths = [["s", "a", "t"], ["s", "b", "t"], ["s", "m", "t"]]
        for k in (1, 2, 3):
            assert joint_subset_risk(diamond, paths, k) == pytest.approx(
                independent_subset_risk(diamond, paths, k)
            )
            assert overlap_privacy_penalty(diamond, paths, k) == pytest.approx(0.0)

    def test_shared_edge_increases_high_k_risk(self):
        """Two channels over one shared trunk: a single tap reveals both."""
        graph = nx.Graph()
        trunk = {"risk": 0.3, "loss": 0.0, "delay": 1.0, "rate": 10.0}
        clean = {"risk": 0.0, "loss": 0.0, "delay": 1.0, "rate": 10.0}
        graph.add_edge("s", "m", **trunk)
        graph.add_edge("m", "a", **dict(clean))
        graph.add_edge("m", "b", **dict(clean))
        graph.add_edge("a", "t", **dict(clean))
        graph.add_edge("b", "t", **dict(clean))
        paths = [["s", "m", "a", "t"], ["s", "m", "b", "t"]]
        # Both channels have risk 0.3; independently, P(both observed) = 0.09.
        # In reality one tap on the trunk observes both: 0.3.
        assert independent_subset_risk(graph, paths, 2) == pytest.approx(0.09)
        assert joint_subset_risk(graph, paths, 2) == pytest.approx(0.3)
        assert overlap_privacy_penalty(graph, paths, 2) == pytest.approx(0.21)

    def test_exact_against_monte_carlo(self, rng):
        graph = nx.Graph()
        rngs = np.random.default_rng(0)
        nodes = ["s", "x", "y", "t"]
        graph.add_edge("s", "x", risk=0.2, rate=1.0)
        graph.add_edge("x", "t", risk=0.4, rate=1.0)
        graph.add_edge("s", "y", risk=0.3, rate=1.0)
        graph.add_edge("y", "t", risk=0.1, rate=1.0)
        graph.add_edge("x", "y", risk=0.25, rate=1.0)
        paths = [["s", "x", "t"], ["s", "y", "t"], ["s", "x", "y", "t"]]
        k = 2
        exact = joint_subset_risk(graph, paths, k)
        # Monte Carlo over edge taps.
        edges = list({e for p in paths for e in path_edges(p)})
        risks = np.array([graph.edges[e]["risk"] for e in edges])
        trials = 200_000
        taps = rng.random((trials, len(edges))) < risks
        edge_index = {e: i for i, e in enumerate(edges)}
        observed = np.zeros(trials)
        for path in paths:
            idx = [edge_index[e] for e in path_edges(path)]
            observed += taps[:, idx].any(axis=1)
        assert exact == pytest.approx(float((observed >= k).mean()), abs=0.005)

    def test_invalid_k(self, diamond):
        with pytest.raises(ValueError):
            joint_subset_risk(diamond, [["s", "a", "t"]], 2)


class TestRateScaling:
    def test_disjoint_paths_scale_one(self, diamond):
        paths = [["s", "a", "t"], ["s", "b", "t"]]
        assert max_disjoint_rate_scaling(diamond, paths) == pytest.approx(1.0)

    def test_shared_bottleneck_halves(self):
        graph = nx.Graph()
        shared = {"risk": 0.0, "loss": 0.0, "delay": 0.0, "rate": 10.0}
        graph.add_edge("s", "m", **shared)
        graph.add_edge("m", "a", **dict(shared))
        graph.add_edge("m", "b", **dict(shared))
        graph.add_edge("a", "t", **dict(shared))
        graph.add_edge("b", "t", **dict(shared))
        paths = [["s", "m", "a", "t"], ["s", "m", "b", "t"]]
        # Both want 10 through the s-m trunk of capacity 10.
        assert max_disjoint_rate_scaling(graph, paths) == pytest.approx(0.5)


class TestDisjointExtraction:
    def test_finds_three_disjoint_paths(self, diamond):
        paths = edge_disjoint_channel_paths(diamond, "s", "t")
        assert len(paths) == 3
        assert are_edge_disjoint(paths)
        assert all(path[0] == "s" and path[-1] == "t" for path in paths)

    def test_max_paths_cap(self, diamond):
        paths = edge_disjoint_channel_paths(diamond, "s", "t", max_paths=2)
        assert len(paths) == 2

    def test_disconnected_raises(self):
        graph = nx.Graph()
        graph.add_node("s")
        graph.add_node("t")
        with pytest.raises(ValueError):
            edge_disjoint_channel_paths(graph, "s", "t")

    def test_missing_node_raises(self, diamond):
        with pytest.raises(ValueError):
            edge_disjoint_channel_paths(diamond, "s", "zz")
