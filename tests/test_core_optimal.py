"""Fully-optimised extremes Z_C, L_C, D_C (Sec. IV-B)."""

import numpy as np
import pytest

from repro.core.channel import ChannelSet
from repro.core.optimal import max_privacy_risk, min_delay, min_loss
from repro.core.properties import subset_delay


class TestMaxPrivacy:
    def test_value_is_product_of_risks(self, five_channels):
        value, schedule = max_privacy_risk(five_channels)
        assert value == pytest.approx(float(np.prod(five_channels.risks)))
        assert schedule.kappa == five_channels.n
        assert schedule.mu == five_channels.n

    def test_schedule_attains_value(self, five_channels):
        value, schedule = max_privacy_risk(five_channels)
        assert schedule.privacy_risk() == pytest.approx(value)

    def test_one_safe_channel_gives_zero_risk(self):
        channels = ChannelSet.from_vectors(
            risks=[0.9, 0.0], losses=[0.0, 0.0], delays=[0.0, 0.0], rates=[1.0, 1.0]
        )
        value, _ = max_privacy_risk(channels)
        assert value == 0.0


class TestMinLoss:
    def test_value_is_product_of_losses(self, five_channels):
        value, schedule = min_loss(five_channels)
        assert value == pytest.approx(float(np.prod(five_channels.losses)))
        assert schedule.kappa == 1.0
        assert schedule.mu == five_channels.n

    def test_schedule_attains_value(self, five_channels):
        value, schedule = min_loss(five_channels)
        assert schedule.loss() == pytest.approx(value)

    def test_one_lossless_channel_gives_zero_loss(self):
        channels = ChannelSet.from_vectors(
            risks=[0.0, 0.0], losses=[0.5, 0.0], delays=[0.0, 0.0], rates=[1.0, 1.0]
        )
        value, _ = min_loss(channels)
        assert value == 0.0


class TestMinDelay:
    def test_lossless_collapses_to_min(self, lossless_channels):
        value, _ = min_delay(lossless_channels)
        assert value == pytest.approx(2.0)

    def test_equals_subset_delay_of_full_broadcast(self, five_channels):
        # D_C is exactly d(1, C): the closed form is a rewriting of the
        # subset-delay sum for k = 1.
        value, schedule = min_delay(five_channels)
        assert value == pytest.approx(subset_delay(five_channels, 1, range(5)))
        assert schedule.delay() == pytest.approx(value)

    def test_hand_computed_two_channels(self):
        channels = ChannelSet.from_vectors(
            risks=[0.0, 0.0],
            losses=[0.5, 0.5],
            delays=[1.0, 3.0],
            rates=[1.0, 1.0],
        )
        # P(fast arrives) = .5 -> delay 1; else P(slow arrives) = .25 -> 3;
        # conditioned on delivery (.75).
        expected = (0.5 * 1.0 + 0.25 * 3.0) / 0.75
        value, _ = min_delay(channels)
        assert value == pytest.approx(expected)

    def test_delay_order_with_ties(self):
        channels = ChannelSet.from_vectors(
            risks=[0.0] * 3,
            losses=[0.2, 0.2, 0.2],
            delays=[5.0, 5.0, 5.0],
            rates=[1.0] * 3,
        )
        value, _ = min_delay(channels)
        assert value == pytest.approx(5.0)

    def test_min_delay_bracketed_by_channel_delays(self, five_channels):
        # With loss, D_C is at least the fastest channel's delay (a lost
        # fast share forces waiting on a slower one) and at most the
        # slowest channel's.
        value, _ = min_delay(five_channels)
        assert five_channels.delays.min() - 1e-9 <= value <= five_channels.delays.max() + 1e-9
