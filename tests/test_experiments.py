"""Shape checks on the figure-reproduction drivers (coarse grids).

These assert the *qualitative* claims of each paper figure -- the
reproduction's acceptance criteria -- using grids small enough for CI.
"""

import numpy as np
import pytest

from repro.experiments.fig2 import run_fig2

from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig67 import run_fig6, run_fig7, saturation_point


class TestFig2:
    def test_packing_matches_theorem4(self):
        rows = run_fig2()
        assert [row["symbols_packed"] for row in rows] == [15, 7, 3]
        assert all(row["symbols_packed"] == row["optimal_floor"] for row in rows)

    def test_full_utilization_cutoff(self):
        # Theorem 2 limit for (3, 4, 8) is 15/8 = 1.875: only mu = 1 can
        # fully utilise every channel.
        rows = run_fig2()
        assert rows[0]["fully_utilized"]
        assert not rows[1]["fully_utilized"]
        assert not rows[2]["fully_utilized"]
        assert rows[0]["theorem2_allows_full_use"]
        assert not rows[1]["theorem2_allows_full_use"]

    def test_columns_use_distinct_channels(self):
        rows = run_fig2()
        for row in rows:
            for column in row["columns"]:
                assert len(column) == row["mu"]


@pytest.mark.slow
class TestFig3:
    def test_identical_within_three_percent(self):
        rows = run_fig3(
            setup="identical", kappas=(1.0, 3.0), mu_step=1.0,
            duration=8.0, warmup=2.0,
        )
        for row in rows:
            assert row["ratio"] > 0.97
            assert row["ratio"] <= 1.0 + 1e-9

    def test_diverse_within_four_percent(self):
        rows = run_fig3(
            setup="diverse", kappas=(1.0, 2.0), mu_step=1.0,
            duration=8.0, warmup=2.0,
        )
        for row in rows:
            assert row["ratio"] > 0.96

    def test_rate_decreases_with_mu(self):
        rows = run_fig3(
            setup="diverse", kappas=(1.0,), mu_step=1.0, duration=6.0, warmup=2.0
        )
        achieved = [row["achieved_rate"] for row in rows]
        assert all(a >= b - 1.0 for a, b in zip(achieved, achieved[1:]))

    def test_unknown_setup_rejected(self):
        with pytest.raises(ValueError):
            run_fig3(setup="bogus")


@pytest.mark.slow
class TestFig4:
    def test_actual_delay_at_least_optimal(self):
        rows = run_fig4(kappas=(1.0, 3.0), mu_step=1.0, duration=6.0, warmup=2.0)
        for row in rows:
            assert row["actual_delay_ms"] >= row["optimal_delay_ms"] - 0.5

    def test_optimal_delay_increases_with_kappa(self):
        rows = run_fig4(kappas=(1.0, 5.0), mu_step=5.0, duration=4.0, warmup=1.0)
        by_kappa = {row["kappa"]: row["optimal_delay_ms"] for row in rows if row["mu"] == 5.0}
        assert by_kappa[5.0] > by_kappa[1.0]


@pytest.mark.slow
class TestFig5:
    def test_loss_tracks_optimal(self):
        rows = run_fig5(kappas=(2.0,), mu_step=1.0, duration=15.0, warmup=3.0)
        for row in rows:
            # Actual is never meaningfully below optimal, and tracks it
            # within a couple of points on this setup (paper: "extremely
            # close" for kappa = 2).
            assert row["actual_loss_pct"] >= row["optimal_loss_pct"] - 1.0
            assert row["actual_loss_pct"] <= row["optimal_loss_pct"] + 3.0

    def test_redundancy_drives_loss_down(self):
        rows = run_fig5(kappas=(1.0,), mu_step=2.0, duration=10.0, warmup=2.0)
        first, last = rows[0], rows[-1]
        assert last["actual_loss_pct"] < first["actual_loss_pct"]


@pytest.mark.slow
class TestFig67:
    def test_fig6_levels_off(self):
        rows = run_fig6(sweep_mbps=(100.0, 200.0, 400.0, 800.0), duration=5.0, warmup=1.0)
        # Achieved tracks optimal at low rate, then plateaus ~750 Mbps.
        assert rows[0]["achieved_mbps"] == pytest.approx(rows[0]["optimal_mbps"], rel=0.05)
        plateau = [row["achieved_mbps"] for row in rows[1:]]
        assert max(plateau) < 800.0
        assert np.ptp(plateau) < 50.0

    def test_fig7_large_kappa_departs_sooner(self):
        rows = run_fig7(
            sweep_mbps=(100.0, 150.0, 200.0, 300.0, 400.0),
            kappas=(1.0, 5.0),
            duration=5.0,
            warmup=1.0,
        )
        k1 = [row for row in rows if row["kappa"] == 1.0]
        k5 = [row for row in rows if row["kappa"] == 5.0]
        assert saturation_point(k5) <= saturation_point(k1)

    def test_fig7_plateau_ordering(self):
        rows = run_fig7(
            sweep_mbps=(400.0,), kappas=(1.0, 3.0, 5.0), duration=5.0, warmup=1.0
        )
        plateaus = {row["kappa"]: row["achieved_mbps"] for row in rows}
        assert plateaus[1.0] > plateaus[3.0] > plateaus[5.0]
