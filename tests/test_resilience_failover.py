"""Schedule failover: LP re-solve over survivors, privacy floor held."""

import math

import pytest

from repro.core.planner import Requirements, plan_max_rate
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork
from repro.protocol.resilience import FailoverController
from repro.protocol.resilience.failover import (
    sampler_kappa_floor,
    schedule_min_threshold,
)
from repro.protocol.scheduler import DynamicParameterSampler, ExplicitScheduler
from repro.workloads.setups import diverse_setup

REQUIREMENTS = Requirements(max_risk=0.02)


def build(schedule=None, kappa=2.0, mu=3.0, seed=3):
    channels = diverse_setup()
    registry = RngRegistry(seed)
    network = PointToPointNetwork(channels, 100, registry)
    config = ProtocolConfig(kappa=kappa, mu=mu, symbol_size=100, share_synthetic=True)
    node_a, _ = network.node_pair(config, registry, schedule=schedule)
    return channels, registry, node_a


def build_explicit(requirements=REQUIREMENTS, seed=3):
    channels = diverse_setup()
    plan = plan_max_rate(channels, requirements)
    channels, registry, node = build(schedule=plan.schedule, seed=seed)
    controller = FailoverController(
        node, channels, registry.stream("failover"), requirements=requirements
    )
    return plan, node, controller


class TestKappaFloor:
    def test_explicit_floor_is_min_support_threshold(self):
        plan, _, controller = build_explicit()
        floor = min(k for (k, _m), _p in plan.schedule.support())
        assert sampler_kappa_floor(ExplicitScheduler(plan.schedule, None)) == floor
        assert controller.kappa_floor == floor

    def test_dynamic_floor_is_floor_of_kappa(self):
        channels, registry, node = build(kappa=2.5, mu=3.0)
        assert sampler_kappa_floor(node.sampler) == 2.0

    def test_floor_above_sampler_floor_rejected(self):
        channels, registry, node = build(kappa=2.0, mu=3.0)
        with pytest.raises(ValueError):
            FailoverController(
                node, channels, registry.stream("failover"), kappa_floor=5.0
            )


class TestMinKappaPlanning:
    def test_rejects_floor_below_one(self):
        with pytest.raises(ValueError):
            plan_max_rate(diverse_setup(), Requirements(), min_kappa=0.5)

    def test_floor_restricts_the_threshold_grid(self):
        channels = diverse_setup()
        free = plan_max_rate(channels, Requirements())
        floored = plan_max_rate(channels, Requirements(), min_kappa=2.0)
        assert schedule_min_threshold(floored.schedule) >= 2
        assert floored.kappa >= 2.0
        # A constrained search can only do worse (or equal) on rate.
        assert floored.rate <= free.rate + 1e-9


class TestReplanned:
    def test_survivor_plan_respects_the_floor_and_avoids_quarantine(self):
        plan, node, controller = build_explicit()
        record = controller.apply(1.0, frozenset({4}))
        assert record.mode == "replanned"
        assert record.plan is not None
        schedule = node.sampler.schedule
        assert schedule_min_threshold(schedule) >= math.floor(controller.kappa_floor)
        for (_k, members), prob in schedule.support():
            assert 4 not in members
        assert node.sender.selector.excluded == frozenset({4})
        assert node.sender.sampler is node.sampler
        # Availability degrades: the survivor plan is no faster.
        assert record.plan.rate <= plan.rate + 1e-9

    def test_empty_quarantine_restores_the_base_sampler(self):
        plan, node, controller = build_explicit()
        base = node.sampler
        controller.apply(1.0, frozenset({4}))
        assert node.sampler is not base
        record = controller.apply(2.0, frozenset())
        assert record.mode == "restored"
        assert node.sampler is base
        assert node.sender.selector.excluded == frozenset()

    def test_infeasible_survivors_degrade_and_pause_admission(self):
        # Demand more rate than the four slow channels can carry, so the
        # loss of channel 4 (100 Mbps) makes the LP infeasible.
        requirements = Requirements(max_risk=0.02, min_rate=120.0)
        plan, node, controller = build_explicit(requirements=requirements)
        record = controller.apply(1.0, frozenset({4}))
        assert record.mode == "degraded"
        assert record.error is not None
        assert controller.degraded
        assert node.sender.admission_paused
        # The heal lifts the pause and restores the plan.
        record = controller.apply(2.0, frozenset())
        assert record.mode == "restored"
        assert not controller.degraded
        assert not node.sender.admission_paused

    def test_all_channels_quarantined_degrades(self):
        _, node, controller = build_explicit()
        record = controller.apply(1.0, frozenset(range(5)))
        assert record.mode == "degraded"
        assert node.sender.admission_paused


class TestMasked:
    def test_dynamic_sampler_is_kept_and_selector_masked(self):
        channels, registry, node = build(kappa=2.0, mu=3.0)
        controller = FailoverController(node, channels, registry.stream("failover"))
        base = node.sampler
        record = controller.apply(1.0, frozenset({0}))
        assert record.mode == "masked"
        assert node.sampler is base  # thresholds untouched: kappa preserved
        assert isinstance(node.sampler, DynamicParameterSampler)
        assert node.sender.selector.excluded == frozenset({0})

    def test_too_few_survivors_degrade(self):
        channels, registry, node = build(kappa=2.0, mu=3.0)
        controller = FailoverController(node, channels, registry.stream("failover"))
        # ceil(mu)=3 shares cannot fit on 2 surviving channels.
        record = controller.apply(1.0, frozenset({0, 1, 2}))
        assert record.mode == "degraded"
        assert node.sender.admission_paused

    def test_records_accumulate_in_order(self):
        channels, registry, node = build(kappa=2.0, mu=3.0)
        controller = FailoverController(node, channels, registry.stream("failover"))
        controller.apply(1.0, frozenset({0}))
        controller.apply(2.0, frozenset())
        assert [r.mode for r in controller.records] == ["masked", "restored"]
        assert [r.time for r in controller.records] == [1.0, 2.0]
