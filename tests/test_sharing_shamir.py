"""Shamir threshold sharing: correctness, secrecy, and error handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharing.base import ReconstructionError, Share
from repro.sharing.shamir import ShamirScheme

scheme = ShamirScheme()


def split(secret, k, m, seed=0):
    return scheme.split(secret, k, m, np.random.default_rng(seed))


class TestRoundtrip:
    def test_basic(self):
        secret = b"attack at dawn"
        shares = split(secret, 3, 5)
        assert scheme.reconstruct(shares[:3]) == secret

    def test_any_k_subset_reconstructs(self):
        secret = bytes(range(64))
        shares = split(secret, 3, 5)
        from itertools import combinations

        for subset in combinations(shares, 3):
            assert scheme.reconstruct(list(subset)) == secret

    def test_more_than_k_shares_ok(self):
        secret = b"x" * 100
        shares = split(secret, 2, 5)
        assert scheme.reconstruct(shares) == secret

    def test_k_equals_one_broadcast(self):
        secret = b"public-ish"
        shares = split(secret, 1, 4)
        # k=1: every share IS the secret (degree-0 polynomial).
        for share in shares:
            assert scheme.reconstruct([share]) == secret

    def test_k_equals_m(self):
        secret = b"need all of them"
        shares = split(secret, 4, 4)
        assert scheme.reconstruct(shares) == secret

    def test_empty_secret(self):
        shares = split(b"", 2, 3)
        assert all(share.data == b"" for share in shares)
        assert scheme.reconstruct(shares[:2]) == b""

    def test_single_byte(self):
        shares = split(b"\xff", 2, 2)
        assert scheme.reconstruct(shares) == b"\xff"

    def test_share_size_equals_secret_size(self):
        # The model's H(Y) = H(X) optimal-case assumption.
        secret = bytes(1250)
        for share in split(secret, 3, 5):
            assert len(share.data) == len(secret)

    @given(
        secret=st.binary(min_size=0, max_size=200),
        k=st.integers(min_value=1, max_value=6),
        extra=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, secret, k, extra, seed):
        m = k + extra
        shares = scheme.split(secret, k, m, np.random.default_rng(seed))
        assert len(shares) == m
        assert scheme.reconstruct(shares[extra:]) == secret


class TestSecrecy:
    def test_fewer_than_k_shares_reveal_nothing_statistically(self):
        """With k-1 shares, a share byte is uniform whatever the secret.

        We share the one-byte secrets 0x00 and 0xFF many times and check
        that the observed distribution of the first share's byte is close
        to uniform for both (any dependence on the secret would skew it).
        """
        rng = np.random.default_rng(7)
        trials = 4000
        for secret_byte in (0, 255):
            samples = np.array(
                [
                    scheme.split(bytes([secret_byte]), 2, 2, rng)[0].data[0]
                    for _ in range(trials)
                ]
            )
            mean = samples.mean()
            # Uniform over 0..255 has mean 127.5, sd ~73.9; the sample mean
            # sd is ~1.2 at 4000 trials, so a +/-6 band is ~5 sigma.
            assert abs(mean - 127.5) < 6.0
            # All byte values should appear possible: a wide spread.
            assert samples.min() < 16 and samples.max() > 239

    def test_share_of_different_secrets_differ(self):
        rng = np.random.default_rng(3)
        a = scheme.split(b"secret-A", 2, 3, rng)
        b = scheme.split(b"secret-B", 2, 3, rng)
        assert a[0].data != b[0].data or a[1].data != b[1].data

    def test_k_minus_one_shares_cannot_reconstruct(self):
        shares = split(b"super secret", 3, 5)
        with pytest.raises(ReconstructionError):
            scheme.reconstruct(shares[:2])


class TestValidation:
    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            scheme.split(b"x", 0, 3, rng)
        with pytest.raises(ValueError):
            scheme.split(b"x", 4, 3, rng)
        with pytest.raises(ValueError):
            scheme.split(b"x", 1, 256, rng)

    def test_supports(self):
        assert scheme.supports(3, 5)
        assert scheme.supports(1, 255)
        assert not scheme.supports(1, 256)
        assert not scheme.supports(0, 1)
        assert not scheme.supports(5, 3)

    def test_duplicate_indices_rejected(self):
        shares = split(b"dup", 2, 3)
        with pytest.raises(ReconstructionError):
            scheme.reconstruct([shares[0], shares[0]])

    def test_inconsistent_parameters_rejected(self):
        a = split(b"one", 2, 3)[0]
        b = Share(index=2, data=a.data, k=3, m=4)
        with pytest.raises(ReconstructionError):
            scheme.reconstruct([a, b])

    def test_inconsistent_lengths_rejected(self):
        a = split(b"abcd", 2, 3)
        bad = Share(index=a[1].index, data=a[1].data[:-1], k=2, m=3)
        with pytest.raises(ReconstructionError):
            scheme.reconstruct([a[0], bad])

    def test_no_shares_rejected(self):
        with pytest.raises(ReconstructionError):
            scheme.reconstruct([])

    def test_corrupted_share_changes_result(self):
        secret = b"integrity matters here"
        shares = split(secret, 2, 3)
        corrupted = Share(
            index=shares[0].index,
            data=bytes([shares[0].data[0] ^ 1]) + shares[0].data[1:],
            k=2,
            m=3,
        )
        assert scheme.reconstruct([corrupted, shares[1]]) != secret


class TestDeterminism:
    def test_same_seed_same_shares(self):
        a = split(b"repeat", 2, 4, seed=9)
        b = split(b"repeat", 2, 4, seed=9)
        assert [s.data for s in a] == [s.data for s in b]

    def test_different_seed_different_shares(self):
        a = split(b"repeat", 2, 4, seed=9)
        b = split(b"repeat", 2, 4, seed=10)
        assert [s.data for s in a] != [s.data for s in b]
