"""End-to-end tests for the ``repro-model taint`` command line.

Mirrors tests/test_lint_cli.py: temporary trees with planted leaks for
the exit-code/format/baseline contract, plus the live-tree meta-test --
the shipped repository must analyze clean with an *empty* baseline, so
every secret flow in ``src/repro`` is either sanitized, declassified
with a justification, or genuinely absent.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.taint import TaintEngine, taint_paths
from repro.analysis.taint.cli import main as taint_main
from repro.cli import main as repro_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LEAKY = """\
def deliver(secret):
    print(secret)
"""

CLEAN = """\
def deliver(count):
    return count + 1
"""


def build_tree(tmp_path, files):
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return tmp_path


@pytest.fixture
def leaky_tree(tmp_path):
    return build_tree(
        tmp_path,
        {
            "src/repro/demo/leaky.py": LEAKY,
            "src/repro/demo/clean.py": CLEAN,
        },
    )


@pytest.fixture
def clean_tree(tmp_path):
    return build_tree(tmp_path, {"src/repro/demo/clean.py": CLEAN})


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        assert taint_main(["--root", str(clean_tree), "src"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_leaky_tree_exits_one(self, leaky_tree, capsys):
        assert taint_main(["--root", str(leaky_tree), "src"]) == 1
        out = capsys.readouterr().out
        assert "taint-print" in out
        assert "src/repro/demo/leaky.py:2:4:" in out

    def test_missing_path_exits_two(self, clean_tree, capsys):
        assert taint_main(["--root", str(clean_tree), "nonexistent"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_default_paths_cover_src(self, leaky_tree):
        # No positional paths: defaults to src/ under the root.
        assert taint_main(["--root", str(leaky_tree)]) == 1


class TestJsonFormat:
    def test_schema(self, leaky_tree, capsys):
        assert taint_main(["--root", str(leaky_tree), "--format", "json", "src"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["ok"] is False
        assert payload["files_scanned"] == 2
        assert payload["counts"] == {"taint-print": 1}
        (finding,) = payload["findings"]
        assert finding["file"] == "src/repro/demo/leaky.py"
        assert finding["rule"] == "taint-print"
        assert sorted(finding) == ["column", "file", "line", "message", "rule"]

    def test_same_schema_as_lint(self, leaky_tree, capsys):
        """The shared framework keeps lint and taint JSON key-compatible."""
        taint_main(["--root", str(leaky_tree), "--format", "json", "src"])
        taint_payload = json.loads(capsys.readouterr().out)
        from repro.lint.cli import main as lint_main

        lint_main(["--root", str(leaky_tree), "--format", "json", "src"])
        lint_payload = json.loads(capsys.readouterr().out)
        assert sorted(taint_payload) == sorted(lint_payload)


class TestBaseline:
    def test_update_then_gate(self, leaky_tree, capsys):
        assert taint_main(["--root", str(leaky_tree), "--update-baseline", "src"]) == 0
        assert (leaky_tree / "taint-baseline.json").exists()
        capsys.readouterr()
        # Grandfathered finding no longer fails the gate...
        assert taint_main(["--root", str(leaky_tree), "src"]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ...but --no-baseline still sees it.
        assert taint_main(["--root", str(leaky_tree), "--no-baseline", "src"]) == 1

    def test_new_finding_fails_despite_baseline(self, leaky_tree, capsys):
        taint_main(["--root", str(leaky_tree), "--update-baseline", "src"])
        (leaky_tree / "src/repro/demo/clean.py").write_text(
            "def deliver(secret):\n    return str(secret)\n"
        )
        capsys.readouterr()
        assert taint_main(["--root", str(leaky_tree), "src"]) == 1
        assert "taint-format" in capsys.readouterr().out

    def test_explicit_baseline_path(self, leaky_tree, tmp_path, capsys):
        custom = tmp_path / "custom-baseline.json"
        taint_main(
            ["--root", str(leaky_tree), "--update-baseline", "--baseline", str(custom), "src"]
        )
        assert custom.exists()
        capsys.readouterr()
        assert (
            taint_main(["--root", str(leaky_tree), "--baseline", str(custom), "src"]) == 0
        )


class TestCatalogue:
    def test_list_sinks(self, capsys):
        assert taint_main(["--list-sinks"]) == 0
        out = capsys.readouterr().out
        assert "sinks:" in out
        assert "sources:" in out
        assert "sanitizers:" in out
        for rule in (
            "taint-print",
            "taint-log",
            "taint-trace",
            "taint-metrics",
            "taint-persist",
            "taint-format",
        ):
            assert rule in out


class TestMetrics:
    def test_metrics_out_exports_taint_counters(self, leaky_tree, tmp_path, capsys):
        metrics = tmp_path / "taint.jsonl"
        assert (
            taint_main(["--root", str(leaky_tree), "--metrics-out", str(metrics), "src"])
            == 1
        )
        names = {
            json.loads(line)["name"] for line in metrics.read_text().splitlines()
        }
        assert "taint_files_scanned_total" in names
        assert "taint_findings_total" in names
        assert not any(name.startswith("lint_") for name in names)


class TestReproCli:
    def test_taint_subcommand(self, leaky_tree, capsys):
        assert repro_main(["taint", "--root", str(leaky_tree), "src"]) == 1
        assert "taint-print" in capsys.readouterr().out

    def test_module_entry_point(self, clean_tree):
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.taint", "--root", str(clean_tree), "src"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr


class TestLiveTree:
    """The repository's own sources must be taint-clean -- the satellite
    acceptance criterion (`live-tree-taints-clean`)."""

    def test_shipped_baseline_is_empty(self):
        path = os.path.join(REPO_ROOT, "taint-baseline.json")
        assert os.path.exists(path)
        payload = json.loads(open(path).read())
        assert payload == {"findings": [], "version": 1}

    def test_src_tree_is_clean(self):
        report = taint_paths(REPO_ROOT, ["src"])
        assert report.findings == [], [f.render() for f in report.findings]
        assert report.ok
        assert report.files_scanned > 100

    def test_cli_on_live_tree_exits_zero(self, capsys):
        assert taint_main(["--root", REPO_ROOT]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_live_tree_fixpoint_is_stable(self):
        """A second engine run over the same sources reports identically
        (determinism: sorted discovery + bounded fixpoint)."""
        files = []
        for relpath in TaintEngine.discover(REPO_ROOT, ["src/repro/sharing"]):
            with open(os.path.join(REPO_ROOT, relpath), encoding="utf-8") as handle:
                files.append((relpath, handle.read()))
        first = TaintEngine().analyze_sources(files)
        second = TaintEngine().analyze_sources(files)
        assert first.findings == second.findings
        assert first.to_dict() == second.to_dict()
