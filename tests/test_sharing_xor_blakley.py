"""The XOR perfect scheme and the Blakley hyperplane scheme."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharing.base import ReconstructionError, Share
from repro.sharing.blakley import BlakleyScheme, solve_mod_p
from repro.sharing.xor import XorScheme

xor = XorScheme()


class TestXorScheme:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        secret = b"one time pad family"
        shares = xor.split(secret, 4, 4, rng)
        assert xor.reconstruct(shares) == secret

    def test_order_independent(self):
        rng = np.random.default_rng(1)
        secret = b"order should not matter"
        shares = xor.split(secret, 3, 3, rng)
        assert xor.reconstruct(shares[::-1]) == secret

    def test_single_share_is_the_secret(self):
        rng = np.random.default_rng(2)
        shares = xor.split(b"degenerate", 1, 1, rng)
        assert shares[0].data == b"degenerate"
        assert xor.reconstruct(shares) == b"degenerate"

    def test_requires_k_equals_m(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            xor.split(b"x", 2, 3, rng)

    def test_supports(self):
        assert xor.supports(3, 3)
        assert not xor.supports(2, 3)
        assert not xor.supports(0, 0)

    def test_missing_share_fails(self):
        rng = np.random.default_rng(3)
        shares = xor.split(b"all required", 3, 3, rng)
        with pytest.raises(ReconstructionError):
            xor.reconstruct(shares[:2])

    def test_missing_share_gives_no_information(self):
        """Any m-1 shares XOR to a value independent of the secret mean."""
        rng = np.random.default_rng(4)
        partials = []
        for _ in range(2000):
            shares = xor.split(b"\x00", 2, 2, rng)
            partials.append(shares[0].data[0])
        assert abs(np.mean(partials) - 127.5) < 8.0

    def test_inconsistent_lengths_rejected(self):
        rng = np.random.default_rng(5)
        shares = xor.split(b"abcd", 2, 2, rng)
        bad = Share(index=shares[1].index, data=shares[1].data[:-1], k=2, m=2)
        with pytest.raises(ReconstructionError):
            xor.reconstruct([shares[0], bad])

    def test_empty_secret(self):
        rng = np.random.default_rng(6)
        shares = xor.split(b"", 2, 2, rng)
        assert xor.reconstruct(shares) == b""

    @given(secret=st.binary(max_size=100), m=st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, secret, m):
        rng = np.random.default_rng(99)
        assert xor.reconstruct(xor.split(secret, m, m, rng)) == secret


class TestSolveModP:
    def test_identity_system(self):
        assert solve_mod_p([[1, 0], [0, 1]], [4, 9], 11) == [4, 9]

    def test_known_system(self):
        # x + 2y = 5, 3x + 4y = 6 mod 7 -> x = 3, y = 1
        x, y = solve_mod_p([[1, 2], [3, 4]], [5, 6], 7)
        assert (x + 2 * y) % 7 == 5
        assert (3 * x + 4 * y) % 7 == 6

    def test_singular_rejected(self):
        with pytest.raises(ReconstructionError):
            solve_mod_p([[1, 2], [2, 4]], [1, 2], 7)

    def test_needs_pivot_reordering(self):
        # First pivot is zero; elimination must swap rows.
        solution = solve_mod_p([[0, 1], [1, 0]], [3, 4], 11)
        assert solution == [4, 3]


class TestBlakleyScheme:
    scheme = BlakleyScheme(max_secret_len=16)

    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        shares = self.scheme.split(b"hyperplanes!", 3, 5, rng)
        assert self.scheme.reconstruct(shares[:3]) == b"hyperplanes!"

    def test_any_k_subset(self):
        from itertools import combinations

        rng = np.random.default_rng(1)
        secret = b"general position"
        shares = self.scheme.split(secret, 2, 4, rng)
        for subset in combinations(shares, 2):
            assert self.scheme.reconstruct(list(subset)) == secret

    def test_empty_and_short_secrets(self):
        rng = np.random.default_rng(2)
        for secret in (b"", b"a", b"ab"):
            shares = self.scheme.split(secret, 2, 3, rng)
            assert self.scheme.reconstruct(shares[1:]) == secret

    def test_max_length_secret(self):
        rng = np.random.default_rng(3)
        secret = bytes(range(16))
        shares = self.scheme.split(secret, 2, 2, rng)
        assert self.scheme.reconstruct(shares) == secret

    def test_secret_too_long_rejected(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            self.scheme.split(b"x" * 17, 2, 3, rng)

    def test_share_larger_than_secret(self):
        """Blakley shares carry a normal vector: not rate-optimal."""
        rng = np.random.default_rng(5)
        shares = self.scheme.split(b"short", 3, 3, rng)
        assert all(len(s.data) > 5 for s in shares)

    def test_fewer_than_k_rejected(self):
        rng = np.random.default_rng(6)
        shares = self.scheme.split(b"secret", 3, 4, rng)
        with pytest.raises(ReconstructionError):
            self.scheme.reconstruct(shares[:2])

    def test_truncated_share_rejected(self):
        rng = np.random.default_rng(7)
        shares = self.scheme.split(b"secret", 2, 2, rng)
        bad = Share(index=1, data=shares[0].data[:-2], k=2, m=2)
        with pytest.raises(ReconstructionError):
            self.scheme.reconstruct([bad, shares[1]])

    def test_k_equals_one(self):
        rng = np.random.default_rng(8)
        shares = self.scheme.split(b"broadcast", 1, 3, rng)
        for share in shares:
            assert self.scheme.reconstruct([share]) == b"broadcast"

    @given(
        secret=st.binary(max_size=16),
        k=st.integers(min_value=1, max_value=4),
        extra=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, secret, k, extra):
        rng = np.random.default_rng(11)
        shares = self.scheme.split(secret, k, k + extra, rng)
        assert self.scheme.reconstruct(shares[extra:]) == secret
