"""Fault injection: plans, the injector, burst loss, and seeded chaos runs."""

import json

import numpy as np
import pytest

from repro.netsim.engine import Engine
from repro.netsim.faults import (
    CANONICAL_SCENARIOS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    GilbertElliott,
    canonical_plan,
)
from repro.netsim.link import DuplexChannel
from repro.netsim.packet import Datagram
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork
from repro.workloads.setups import identical_setup


class TestGilbertElliott:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_bad=1.5, p_good=0.5)
        with pytest.raises(ValueError):
            GilbertElliott(p_bad=0.5, p_good=-0.1)
        with pytest.raises(ValueError):
            GilbertElliott(0.1, 0.1, loss_good=1.0)
        with pytest.raises(ValueError):
            GilbertElliott(0.1, 0.1, loss_bad=1.1)

    def test_never_drops_while_good(self):
        model = GilbertElliott(p_bad=0.0, p_good=1.0, loss_good=0.0, loss_bad=1.0)
        rng = np.random.default_rng(0)
        assert not any(model.sample(rng) for _ in range(1000))

    def test_bad_state_drops_everything(self):
        model = GilbertElliott(p_bad=1.0, p_good=0.0, loss_good=0.0, loss_bad=1.0)
        rng = np.random.default_rng(0)
        first = model.sample(rng)  # drawn in the good state, then flips
        assert first is False
        assert all(model.sample(rng) for _ in range(100))

    def test_long_run_loss_matches_occupancy(self):
        # Bad-state occupancy is p_bad / (p_bad + p_good); with loss_bad=1
        # and loss_good=0 the long-run loss equals the occupancy.
        model = GilbertElliott(p_bad=0.05, p_good=0.2, loss_good=0.0, loss_bad=1.0)
        rng = np.random.default_rng(7)
        n = 40_000
        drops = sum(model.sample(rng) for _ in range(n))
        assert drops / n == pytest.approx(0.05 / 0.25, abs=0.02)

    def test_losses_are_bursty(self):
        # Mean burst length is 1/p_good packets -- far longer than iid runs.
        model = GilbertElliott(p_bad=0.02, p_good=0.1, loss_good=0.0, loss_bad=1.0)
        rng = np.random.default_rng(3)
        outcomes = [model.sample(rng) for _ in range(40_000)]
        bursts = []
        run = 0
        for lost in outcomes:
            if lost:
                run += 1
            elif run:
                bursts.append(run)
                run = 0
        assert np.mean(bursts) == pytest.approx(1 / 0.1, rel=0.25)

    def test_same_seed_same_pattern(self):
        model_a, model_b = GilbertElliott(0.1, 0.3, 0.01, 0.9), GilbertElliott(0.1, 0.3, 0.01, 0.9)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        assert [model_a.sample(rng_a) for _ in range(500)] == [
            model_b.sample(rng_b) for _ in range(500)
        ]


class TestFaultEventValidation:
    def test_unknown_action(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "explode")

    def test_bad_direction_and_time(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "link_down", direction="sideways")
        with pytest.raises(ValueError):
            FaultEvent(-1.0, "link_down")
        with pytest.raises(ValueError):
            FaultEvent(1.0, "link_down", channel=-2)

    def test_missing_and_unknown_params(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "set_loss")  # missing loss
        with pytest.raises(ValueError):
            FaultEvent(1.0, "link_down", params={"loss": 0.1})  # takes none
        with pytest.raises(ValueError):
            FaultEvent(1.0, "set_rate")  # needs byte_rate xor scale
        with pytest.raises(ValueError):
            FaultEvent(1.0, "set_rate", params={"byte_rate": 1.0, "scale": 0.5})
        with pytest.raises(ValueError):
            FaultEvent(1.0, "burst_start", params={"p_bad": 0.1})  # missing p_good


class TestFaultPlan:
    def test_builders_and_ordering(self):
        plan = (
            FaultPlan()
            .link_up(9.0, channel=1)
            .link_down(5.0, channel=1)
            .set_loss(7.0, 0.2)
            .partition(20.0)
            .heal(21.0)
        )
        assert len(plan) == 5
        times = [e.time for e in plan.sorted_events()]
        assert times == sorted(times)
        assert plan.end_time() == 21.0

    def test_flap_generates_alternating_pairs_ending_up(self):
        plan = FaultPlan().flap(0, period=4.0, down_for=2.0, start=5.0, stop=15.0)
        actions = [e.action for e in plan.sorted_events()]
        assert actions == ["link_down", "link_up"] * 3
        assert plan.sorted_events()[-1].action == "link_up"
        with pytest.raises(ValueError):
            FaultPlan().flap(0, period=1.0, down_for=2.0, start=0.0, stop=5.0)

    def test_spec_roundtrip(self):
        plan = (
            FaultPlan()
            .link_down(5.0, channel=0, direction="fwd")
            .burst(6.0, p_bad=0.1, p_good=0.5, loss_bad=0.8, channel=2)
            .set_rate(7.0, scale=0.25, channel=1)
            .heal(9.0)
        )
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt.to_spec() == plan.to_spec()
        assert [e.action for e in rebuilt] == [e.action for e in plan]

    def test_from_spec_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec([{"time": 1.0, "action": "set_loss", "loss": 2.0}])

    def test_json_roundtrip_covers_every_action_kind(self):
        """Satellite: every event kind survives to_json -> from_json with
        its parameters intact, so persisted chaos plans replay exactly."""
        from repro.netsim.faults import ACTIONS, FaultEvent

        events = [
            FaultEvent(1.0, "link_down", channel=0, direction="fwd"),
            FaultEvent(2.0, "link_up", channel=0, direction="fwd"),
            FaultEvent(3.0, "set_loss", channel=1, params={"loss": 0.25}),
            FaultEvent(4.0, "set_delay", channel=1, params={"delay": 0.5}),
            FaultEvent(5.0, "set_jitter", channel=2, params={"jitter": 0.1}),
            FaultEvent(6.0, "set_rate", channel=2, params={"scale": 0.5}),
            FaultEvent(
                7.0, "burst_start", channel=3,
                params={"p_bad": 0.1, "p_good": 0.5, "loss_bad": 0.9},
            ),
            FaultEvent(8.0, "burst_stop", channel=3),
            FaultEvent(9.0, "partition", channel=None),
            FaultEvent(10.0, "heal", channel=None),
        ]
        assert sorted(e.action for e in events) == sorted(ACTIONS)
        plan = FaultPlan(events)
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt.to_spec() == plan.to_spec()
        for original, copy in zip(plan.sorted_events(), rebuilt.sorted_events()):
            assert (copy.time, copy.action, copy.channel) == (
                original.time, original.action, original.channel,
            )
            assert copy.direction == original.direction
            assert copy.params == original.params

    def test_from_json_rejects_unknown_kind(self):
        text = '[{"time": 1.0, "action": "meteor_strike"}]'
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultPlan.from_json(text)

    def test_canonical_registry(self):
        assert set(CANONICAL_SCENARIOS) == {
            "flap", "burst", "delay_spike", "rate_cut", "partition_heal",
        }
        for name in CANONICAL_SCENARIOS:
            plan = canonical_plan(name, 5.0, 15.0)
            assert len(plan) >= 2
            assert all(5.0 <= e.time <= 15.0 for e in plan)
        with pytest.raises(ValueError):
            canonical_plan("meteor_strike", 0.0, 1.0)


def _two_channel_network():
    engine = Engine()
    channels = [
        DuplexChannel(
            engine, byte_rate=100.0, loss=0.0, delay=0.1,
            forward_rng=np.random.default_rng(2 * i),
            reverse_rng=np.random.default_rng(2 * i + 1),
            name=f"ch{i}",
        )
        for i in range(2)
    ]
    return engine, channels


class TestFaultInjector:
    def test_rejects_out_of_range_channel(self):
        engine, channels = _two_channel_network()
        with pytest.raises(ValueError):
            FaultInjector(engine, channels, FaultPlan().link_down(1.0, channel=5))

    def test_arm_twice_raises(self):
        engine, channels = _two_channel_network()
        injector = FaultInjector(engine, channels, FaultPlan().link_down(1.0, channel=0))
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()

    def test_down_up_affects_requested_direction_only(self):
        engine, channels = _two_channel_network()
        plan = FaultPlan().link_down(1.0, channel=0, direction="fwd")
        FaultInjector(engine, channels, plan).arm()
        engine.run_until(2.0)
        assert not channels[0].forward.up
        assert channels[0].reverse.up
        assert channels[1].forward.up

    def test_partition_and_heal_hit_every_link_both_directions(self):
        engine, channels = _two_channel_network()
        plan = FaultPlan().partition(1.0).heal(3.0)
        injector = FaultInjector(engine, channels, plan).arm()
        engine.run_until(2.0)
        assert all(not link.up for d in channels for link in d.links)
        engine.run_until(4.0)
        assert all(link.up for d in channels for link in d.links)
        assert injector.summary()["by_action"] == {"partition": 1, "heal": 1}

    def test_parameter_overrides_apply(self):
        engine, channels = _two_channel_network()
        plan = (
            FaultPlan()
            .set_loss(1.0, 0.25, channel=0)
            .set_delay(1.0, 2.5, channel=0, direction="fwd")
            .set_jitter(1.0, 0.5, channel=1)
            .set_rate(1.0, byte_rate=10.0, channel=1, direction="rev")
            .set_rate(2.0, scale=0.5, channel=1, direction="rev")
        )
        FaultInjector(engine, channels, plan).arm()
        engine.run_until(3.0)
        assert channels[0].forward.loss == 0.25
        assert channels[0].reverse.loss == 0.25
        assert channels[0].forward.delay == 2.5
        assert channels[0].reverse.delay == 0.1  # untouched
        assert channels[1].forward.jitter == 0.5
        assert channels[1].reverse.byte_rate == pytest.approx(5.0)  # 10 then halved
        assert channels[1].forward.byte_rate == 100.0

    def test_burst_installs_independent_models_and_stops(self):
        engine, channels = _two_channel_network()
        plan = FaultPlan().burst(1.0, p_bad=0.2, p_good=0.4, channel=0).end_burst(2.0, channel=0)
        FaultInjector(engine, channels, plan).arm()
        engine.run_until(1.5)
        fwd_model = channels[0].forward.loss_model
        rev_model = channels[0].reverse.loss_model
        assert isinstance(fwd_model, GilbertElliott)
        assert isinstance(rev_model, GilbertElliott)
        assert fwd_model is not rev_model  # independent state walks
        assert channels[1].forward.loss_model is None
        engine.run_until(2.5)
        assert channels[0].forward.loss_model is None

    def test_log_records_every_applied_event_in_time_order(self):
        engine, channels = _two_channel_network()
        plan = FaultPlan().link_down(2.0, channel=0).link_up(4.0, channel=0).set_loss(3.0, 0.1)
        injector = FaultInjector(engine, channels, plan).arm()
        engine.run_until(10.0)
        applied_at = [t for t, _ in injector.log]
        assert applied_at == [2.0, 3.0, 4.0]
        assert [e.action for _, e in injector.log] == ["link_down", "set_loss", "link_up"]
        summary = injector.summary()
        assert summary["applied"] == 3
        assert summary["first_at"] == 2.0 and summary["last_at"] == 4.0

    def test_downed_link_drops_traffic_until_healed(self):
        engine, channels = _two_channel_network()
        delivered = []
        channels[0].forward.set_receiver(lambda dg: delivered.append(engine.now))
        plan = FaultPlan().link_down(1.0, channel=0, direction="fwd").link_up(3.0, channel=0, direction="fwd")
        FaultInjector(engine, channels, plan).arm()
        for i in range(50):
            engine.schedule_at(i * 0.1, channels[0].forward.send, Datagram(size=10))
        engine.run()
        assert delivered  # traffic before and after the outage
        outage = [t for t in delivered if 1.0 < t <= 3.0]
        assert outage == []
        assert max(delivered) > 3.0  # resumed after heal
        assert channels[0].forward.stats.down_drops > 0


def run_faulted_stream(
    plan,
    seed=1,
    n=5,
    mbps=10.0,
    symbols=600,
    rate=20.0,
    symbol_size=64,
    drain=30.0,
    kappa=2.0,
    mu=3.0,
):
    """Drive ReMICSS over a faulted n-channel testbed; return run artifacts."""
    channels = identical_setup(mbps=mbps, n=n)
    config = ProtocolConfig(kappa=kappa, mu=mu, symbol_size=symbol_size)
    registry = RngRegistry(seed)
    network = PointToPointNetwork(channels, config.symbol_size, registry)
    injector = network.apply_faults(plan)
    node_a, node_b = network.node_pair(config, registry)
    delivered = []  # (seq, time) in delivery order
    payloads = {}
    node_b.on_deliver(
        lambda seq, payload, delay: (
            delivered.append((seq, network.engine.now)),
            payloads.__setitem__(seq, payload),
        )
    )
    payload_rng = registry.stream("payloads")
    sent = []

    def offer():
        payload = payload_rng.bytes(config.symbol_size)
        if node_a.send(payload):
            sent.append(payload)

    engine = network.engine
    for i in range(symbols):
        engine.schedule_at(i / rate, offer)
    engine.run_until(symbols / rate + drain)
    engine.run()  # drain every pending eviction/delivery event
    return {
        "delivered": delivered,
        "payloads": payloads,
        "sent": sent,
        "receiver": node_b.receiver,
        "injector": injector,
        "network": network,
    }


FAULT_MATRIX = {
    "flap": FaultPlan().flap(0, period=4.0, down_for=2.0, start=5.0, stop=20.0),
    "burst_loss": FaultPlan().burst(5.0, p_bad=0.1, p_good=0.25, loss_bad=0.9, channel=1).end_burst(20.0, channel=1),
    "delay_spike": FaultPlan().set_delay(5.0, 8.0, channel=2).set_delay(20.0, 0.0, channel=2),
    "rate_cut": FaultPlan().set_rate(5.0, scale=0.05, channel=3).set_rate(20.0, scale=20.0, channel=3),
    "partition_heal": FaultPlan().partition(12.0).heal(16.0),
}


class TestFaultMatrix:
    """ReMICSS keeps delivering under each canonical fault, and recovers."""

    @pytest.mark.parametrize("scenario", sorted(FAULT_MATRIX))
    def test_protocol_survives(self, scenario):
        run = run_faulted_stream(FAULT_MATRIX[scenario], seed=3)
        delivered = run["delivered"]
        assert len(delivered) > 0
        # Delivery resumes after the last fault event heals (t=20 or 16).
        last_fault = max(t for t, _ in run["injector"].log)
        assert max(t for _, t in delivered) > last_fault
        assert len(delivered) > len(run["sent"]) // 2
        # Every delivered symbol is intact: faults lose symbols, never
        # corrupt them.
        for seq, _ in delivered:
            assert run["payloads"][seq] == run["sent"][seq]
        # The reassembly buffer evicted every timed-out group: no leaks.
        assert run["receiver"].pending == 0
        assert run["injector"].summary()["applied"] == len(run["injector"].plan)

    def test_partition_blocks_then_heals(self):
        run = run_faulted_stream(FAULT_MATRIX["partition_heal"], seed=5)
        times = [t for _, t in run["delivered"]]
        # Nothing is reconstructed while every channel is down (shares
        # launched before the cut die with the wire)…
        assert not [t for t in times if 12.5 < t <= 16.0]
        # …and reconstruction resumes after the heal.
        assert [t for t in times if t > 16.0]


class TestSeededChaos:
    """The acceptance scenario: flapping + burst loss on a 5-channel testbed."""

    CHAOS = (
        FaultPlan()
        .flap(0, period=5.0, down_for=2.0, start=5.0, stop=22.0)
        .flap(1, period=7.0, down_for=3.0, start=6.0, stop=22.0)
        .burst(5.0, p_bad=0.08, p_good=0.2, loss_bad=0.95, channel=2)
        .end_burst(22.0, channel=2)
        .partition(24.0)
        .heal(26.0)
    )

    def _run(self, seed):
        return run_faulted_stream(self.CHAOS, seed=seed, symbols=700, rate=25.0)

    def test_delivers_in_every_post_heal_epoch(self):
        run = self._run(seed=11)
        delivered_times = [t for _, t in run["delivered"]]
        assert len(delivered_times) > 0
        # Every link_up/heal opens a post-heal epoch; the protocol must
        # reconstruct at least one symbol in each (2.5 unit) epoch that
        # still has offered traffic (offers stop at t=28).
        heal_times = [
            t for t, e in run["injector"].log if e.action in ("link_up", "heal")
        ]
        assert heal_times  # the plan heals repeatedly
        for heal_at in heal_times:
            epoch = [t for t in delivered_times if heal_at < t <= heal_at + 2.5]
            assert len(epoch) >= 1, f"no delivery in post-heal epoch at t={heal_at}"
        # The run completed: the chaos never wedged the protocol.
        assert run["receiver"].pending == 0

    def test_same_seed_runs_are_identical(self):
        first = self._run(seed=42)
        second = self._run(seed=42)
        # Byte-identical delivered-sequence traces (seq, time) in order.
        assert repr(first["delivered"]).encode() == repr(second["delivered"]).encode()
        assert first["payloads"] == second["payloads"]
        assert [
            (t, e.to_spec()) for t, e in first["injector"].log
        ] == [(t, e.to_spec()) for t, e in second["injector"].log]

    def test_different_seeds_diverge(self):
        first = self._run(seed=1)
        second = self._run(seed=2)
        assert first["delivered"] != second["delivered"]


class TestFaultSpecJsonFile:
    def test_cli_style_json_plan(self, tmp_path):
        spec = [
            {"time": 5.0, "action": "link_down", "channel": 0},
            {"time": 8.0, "action": "link_up", "channel": 0},
            {"time": 10.0, "action": "set_loss", "channel": 1, "loss": 0.3},
            {"time": 12.0, "action": "burst_start", "channel": 2, "p_bad": 0.1, "p_good": 0.4},
            {"time": 15.0, "action": "burst_stop", "channel": 2},
            {"time": 18.0, "action": "heal"},
        ]
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(spec))
        plan = FaultPlan.from_json(path.read_text())
        assert len(plan) == 6
        run = run_faulted_stream(plan, seed=9, symbols=300)
        assert len(run["delivered"]) > 0
