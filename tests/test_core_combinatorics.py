"""Poisson-binomial machinery cross-checked against brute force."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combinatorics import (
    exact_received_probability,
    poisson_binomial_cdf_below,
    poisson_binomial_pmf,
    poisson_binomial_tail,
    subsets_of,
)


def brute_force_tail(probs, k):
    """P(at least k successes) by summing over all outcome subsets."""
    total = 0.0
    n = len(probs)
    for size in range(k, n + 1):
        for successes in combinations(range(n), size):
            p = 1.0
            for i in range(n):
                p *= probs[i] if i in successes else 1.0 - probs[i]
            total += p
    return total


class TestSubsetsOf:
    def test_all_subsets(self):
        subsets = list(subsets_of([0, 1, 2]))
        assert len(subsets) == 8
        assert frozenset() in subsets
        assert frozenset({0, 1, 2}) in subsets

    def test_min_size(self):
        subsets = list(subsets_of([0, 1, 2], min_size=2))
        assert len(subsets) == 4
        assert all(len(s) >= 2 for s in subsets)

    def test_yields_increasing_size(self):
        sizes = [len(s) for s in subsets_of(range(4))]
        assert sizes == sorted(sizes)


class TestPmf:
    def test_empty(self):
        np.testing.assert_allclose(poisson_binomial_pmf([]), [1.0])

    def test_single_trial(self):
        np.testing.assert_allclose(poisson_binomial_pmf([0.3]), [0.7, 0.3])

    def test_binomial_special_case(self):
        from scipy.stats import binom

        pmf = poisson_binomial_pmf([0.3] * 6)
        np.testing.assert_allclose(pmf, binom.pmf(range(7), 6, 0.3), atol=1e-12)

    def test_sums_to_one(self):
        pmf = poisson_binomial_pmf([0.1, 0.5, 0.9, 0.33])
        assert pmf.sum() == pytest.approx(1.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf([0.5, 1.5])


class TestTail:
    def test_k_zero_is_one(self):
        assert poisson_binomial_tail([0.5, 0.5], 0) == 1.0

    def test_k_above_n_is_zero(self):
        assert poisson_binomial_tail([0.5, 0.5], 3) == 0.0

    def test_all_certain(self):
        assert poisson_binomial_tail([1.0, 1.0], 2) == pytest.approx(1.0)

    def test_all_impossible(self):
        assert poisson_binomial_tail([0.0, 0.0], 1) == pytest.approx(0.0)

    @given(
        probs=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=7
        ),
        k=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, probs, k):
        assert poisson_binomial_tail(probs, k) == pytest.approx(
            brute_force_tail(probs, min(k, len(probs) + 1)) if k <= len(probs) else 0.0,
            abs=1e-10,
        )

    @given(
        probs=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=7
        ),
        k=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_tail_plus_cdf_below_is_one(self, probs, k):
        total = poisson_binomial_tail(probs, k) + poisson_binomial_cdf_below(probs, k)
        assert total == pytest.approx(1.0)

    def test_tail_monotone_in_k(self):
        probs = [0.2, 0.7, 0.4, 0.9]
        tails = [poisson_binomial_tail(probs, k) for k in range(6)]
        assert all(a >= b - 1e-12 for a, b in zip(tails, tails[1:]))


class TestExactReceivedProbability:
    def test_sums_to_one_over_all_subsets(self):
        losses = [0.1, 0.3, 0.5]
        members = [0, 1, 2]
        total = sum(
            exact_received_probability(losses, received, members)
            for received in subsets_of(members)
        )
        assert total == pytest.approx(1.0)

    def test_specific_value(self):
        losses = [0.1, 0.3]
        # Channel 0 delivers, channel 1 loses: 0.9 * 0.3.
        p = exact_received_probability(losses, frozenset({0}), [0, 1])
        assert p == pytest.approx(0.27)
