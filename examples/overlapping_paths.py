"""Overlapping channels: why the model assumes disjoint paths.

Sec. III-B argues that overlapping channels are strictly worse on every
axis: a shared edge lets one tap observe several shares at once, and a
shared bottleneck caps combined throughput.  This example builds a small
ISP-like topology with networkx, compares a lazy channel choice (shortest
paths, which share a trunk) against the max-flow edge-disjoint choice, and
quantifies exactly how much the disjointness assumption is worth.

Run:  python examples/overlapping_paths.py
"""

import networkx as nx

from repro.core.overlap import (
    are_edge_disjoint,
    build_channel_set,
    edge_disjoint_channel_paths,
    independent_subset_risk,
    joint_subset_risk,
    max_disjoint_rate_scaling,
)

# --- Topology: client s, server t, two regional POPs, one shared trunk. --------
graph = nx.Graph()
edges = [
    # (u, v, risk of a tap on this edge, loss, delay, rate)
    ("s", "pop1", 0.05, 0.002, 0.5, 80.0),
    ("s", "pop2", 0.05, 0.002, 0.7, 60.0),
    ("pop1", "trunk", 0.20, 0.001, 1.0, 100.0),
    ("pop2", "trunk", 0.20, 0.001, 1.2, 100.0),
    ("trunk", "t", 0.30, 0.001, 1.0, 90.0),  # the juicy shared trunk
    ("pop1", "t", 0.10, 0.010, 3.0, 40.0),  # slower private detours
    ("pop2", "t", 0.10, 0.010, 3.5, 30.0),
    ("s", "lte", 0.15, 0.020, 2.0, 25.0),
    ("lte", "t", 0.15, 0.020, 2.0, 25.0),
]
for u, v, risk, loss, delay, rate in edges:
    graph.add_edge(u, v, risk=risk, loss=loss, delay=delay, rate=rate)

# --- Choice A: the two "fast" paths, both crossing the trunk. -------------------
fast_paths = [["s", "pop1", "trunk", "t"], ["s", "pop2", "trunk", "t"]]
print("Choice A: two fast paths sharing the trunk edge")
print(f"  edge-disjoint: {are_edge_disjoint(fast_paths)}")
independent = independent_subset_risk(graph, fast_paths, 2)
true_risk = joint_subset_risk(graph, fast_paths, 2)
print(f"  k=2 risk assuming independence: {independent:.4f}")
print(f"  k=2 risk with correlated taps:  {true_risk:.4f} "
      f"({true_risk / independent:.1f}x the naive estimate)")
scaling = max_disjoint_rate_scaling(graph, fast_paths)
print(f"  rate: only {100 * scaling:.0f}% of the per-path bottleneck rates fit "
      f"through the shared trunk simultaneously")

# --- Choice B: a maximum set of edge-disjoint paths (max-flow). -----------------
disjoint = edge_disjoint_channel_paths(graph, "s", "t")
print(f"\nChoice B: max-flow finds {len(disjoint)} edge-disjoint paths")
for path in disjoint:
    print("   ", " -> ".join(path))
channels = build_channel_set(graph, disjoint)
print("  composed channel properties (risk / loss / delay / rate):")
for channel in channels:
    print(
        f"    {channel.name:>24}: {channel.risk:.3f} / {channel.loss:.4f} / "
        f"{channel.delay:.1f} / {channel.rate:.0f}"
    )
k = min(2, channels.n)
print(f"  k={k} risk with correlated taps:  "
      f"{joint_subset_risk(graph, disjoint, k):.4f}")
print(f"  k={k} risk assuming independence: "
      f"{independent_subset_risk(graph, disjoint, k):.4f}  (identical: no overlap)")
print(f"  rate scaling: {max_disjoint_rate_scaling(graph, disjoint):.2f} "
      f"(full per-path rates fit)")

print(
    "\nOn this topology the lazy choice understates the adversary's power by"
    f"\n{true_risk / independent:.1f}x and wastes half the trunk capacity; the"
    "\nedge-disjoint choice makes the paper's model exact -- which is why the"
    "\nmodel takes disjointness as its operating assumption."
)
