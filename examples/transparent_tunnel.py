"""Transparent tunnelling: carrying arbitrary traffic through ReMICSS.

The real ReMICSS intercepts IP packets below the transport layer (via the
DIBS bump-in-the-stack), so applications need no changes and any IP-based
protocol -- not only TCP -- can be protected.  This example reproduces that
experience with the :class:`~repro.protocol.dibs.DibsInterceptor` shim: a
mock application exchanges variable-size "HTTP-ish" messages while every
byte actually crosses the network as threshold-shared symbols over three
channels, one of them quite lossy.

Run:  python examples/transparent_tunnel.py
"""

from repro.core import ChannelSet
from repro.netsim import RngRegistry
from repro.protocol import DibsInterceptor, PointToPointNetwork, ProtocolConfig

channels = ChannelSet.from_vectors(
    risks=[0.3, 0.3, 0.3],
    losses=[0.01, 0.002, 0.05],
    delays=[0.02, 0.05, 0.01],
    rates=[80.0, 50.0, 70.0],
    names=["fiber", "dsl", "wifi"],
)

registry = RngRegistry(7)
network = PointToPointNetwork(channels, symbol_size=256, rng_registry=registry)
# κ = 2 of µ = 3: an adversary needs two channels; one lost share per
# symbol is tolerated without retransmission.
config = ProtocolConfig(kappa=2.0, mu=3.0, symbol_size=256, reassembly_timeout=20.0)
client_node, server_node = network.node_pair(config, registry)

# Wire the interceptors: whatever goes in one side comes out the other.
server_log = []
server_rx = DibsInterceptor(server_node, on_datagram=server_log.append)
client_tx = DibsInterceptor(client_node)

requests = [
    b"GET /manifesto.txt HTTP/1.1\r\nHost: example.org\r\n\r\n",
    b"POST /plans HTTP/1.1\r\nContent-Length: 600\r\n\r\n" + bytes(range(256)) * 2 + b"x" * 88,
    b"GET /small HTTP/1.1\r\n\r\n",
    b"PUT /big HTTP/1.1\r\nContent-Length: 2000\r\n\r\n" + b"A" * 2000,
]

for request in requests:
    client_tx.intercept(request)
client_tx.flush()

network.engine.run_until(60.0)

print("=== Transparent tunnel over 3 shared channels (κ=2, µ=3) ===\n")
for i, (sent, got) in enumerate(zip(requests, server_log)):
    status = "OK" if sent == got else "CORRUPTED"
    first_line = got.split(b"\r\n", 1)[0].decode(errors="replace")
    print(f"  message {i}: {len(got):>5} bytes  [{status}]  {first_line}")

print(f"\n  datagrams sent: {client_tx.datagrams_sent}")
print(f"  datagrams delivered intact: {server_rx.datagrams_delivered}")
print(f"  protocol symbols delivered: {server_node.receiver.stats.symbols_delivered}")
print(f"  symbols lost to channel loss: {server_node.receiver.stats.evicted_symbols}")
print(
    "\nThe application above never mentioned shares, channels or thresholds --"
    "\nthe interception shim segments, shares, transmits, reassembles and"
    "\nreorders everything, which is the transport-agnostic design point of"
    "\nSec. V (DIBS instead of TCP interception)."
)
