"""Tradeoff explorer: the paper's motivating scenarios, quantified.

The introduction contrasts two uses of the same network: streaming music
(performance matters, modest privacy suffices) and organising a protest
under an oppressive regime (privacy outweighs everything).  This example
sweeps the (κ, µ) plane over one diverse channel set and shows how to pick
a configuration for each scenario from the resulting frontier.

Run:  python examples/tradeoff_explorer.py
"""

from repro.core import ChannelSet, Objective
from repro.core.tradeoff import sweep_tradeoffs
from repro.experiments.reporting import format_table

# A realistic mixed bag of channels: different providers, different
# exposure.  Risk comes from a network risk assessment (Sec. III-A cites
# HMM-based and adversarial risk analysis); here we just posit values.
channels = ChannelSet.from_vectors(
    risks=[0.50, 0.35, 0.20, 0.15, 0.45],
    losses=[0.020, 0.010, 0.005, 0.010, 0.030],
    delays=[0.10, 0.25, 0.60, 0.45, 0.05],
    rates=[100.0, 65.0, 60.0, 20.0, 5.0],
    names=["cable", "dsl", "lte", "sat", "mesh"],
)

print("Sweeping the (κ, µ) plane at maximum rate (Sec. IV-D programs)...\n")
points = list(
    sweep_tradeoffs(
        channels,
        kappas=[1.0, 2.0, 3.0, 4.0, 5.0],
        step=0.5,
        at_max_rate=True,
        objectives=[Objective.PRIVACY, Objective.LOSS, Objective.DELAY],
    )
)

rows = [
    (
        point.kappa,
        point.mu,
        point.rate,
        point.privacy_risk,
        100.0 * point.loss,
        point.delay,
    )
    for point in points
]
print(
    format_table(
        ["kappa", "mu", "rate (sym/unit)", "risk Z(p)", "loss %", "delay"],
        rows,
        precision=4,
    )
)

# --- Scenario picks ------------------------------------------------------------


def pick(points, predicate, key):
    candidates = [p for p in points if predicate(p) and p.privacy_risk is not None]
    return min(candidates, key=key) if candidates else None


print("\n=== Scenario 1: streaming music ===")
print("Constraint: at least 80% of the maximum rate; then minimise risk.")
total = channels.total_rate
streaming = pick(
    points,
    predicate=lambda p: p.rate >= 0.8 * total,
    key=lambda p: p.privacy_risk,
)
print(
    f"  pick κ = {streaming.kappa}, µ = {streaming.mu}: rate {streaming.rate:.0f}, "
    f"risk {streaming.privacy_risk:.4f}, loss {100 * streaming.loss:.3f}%"
)

print("\n=== Scenario 2: organising a protest ===")
print("Constraint: risk below 5e-3 per symbol; then maximise rate.")
protest = pick(
    points,
    predicate=lambda p: p.privacy_risk is not None and p.privacy_risk < 5e-3,
    key=lambda p: -p.rate,
)
if protest is None:
    raise SystemExit("no configuration meets the risk bound on this network")
print(
    f"  pick κ = {protest.kappa}, µ = {protest.mu}: rate {protest.rate:.0f}, "
    f"risk {protest.privacy_risk:.2e}, loss {100 * protest.loss:.3f}%"
)

ratio = streaming.rate / protest.rate
print(
    f"\nThe privacy of scenario 2 costs a {ratio:.1f}x rate reduction on this "
    f"network -- the quantified version of the paper's opening tradeoff."
)
