"""Quickstart: model a multichannel setup, optimise it, and run the protocol.

This walks the library's three layers end to end:

1. describe your channels as (risk, loss, delay, rate) quadruples;
2. use the model to compute the optimal privacy/loss/delay/rate envelope
   and an LP-optimal share schedule for your chosen (κ, µ);
3. run the ReMICSS reference protocol over a simulated network with that
   configuration and compare measurement to prediction.

Run:  python examples/quickstart.py
"""

from repro.core import (
    ChannelSet,
    Objective,
    max_privacy_risk,
    max_rate,
    min_delay,
    min_loss,
    optimal_rate,
    optimal_schedule,
)
from repro.protocol import ProtocolConfig
from repro.workloads import run_iperf
from repro.workloads.iperf import practical_max_rate

# --- 1. Describe the channels -------------------------------------------------
# Three paths between two hosts: a cheap-but-risky commodity link, a slower
# leased line, and a modest wireless backup.  Rates are in symbols (1250-byte
# datagrams) per unit time, delays in unit times, risk/loss as probabilities.
channels = ChannelSet.from_vectors(
    risks=[0.40, 0.05, 0.20],
    losses=[0.010, 0.002, 0.030],
    delays=[0.20, 0.50, 0.35],
    rates=[100.0, 40.0, 60.0],
    names=["commodity", "leased", "wireless"],
)

print("=== The channel set ===")
for channel in channels:
    print(
        f"  {channel.name:>10}: risk {channel.risk:.2f}, loss {channel.loss:.3f}, "
        f"delay {channel.delay:.2f}, rate {channel.rate:.0f}"
    )

# --- 2. What does the model promise? -----------------------------------------
print("\n=== Global extremes (Sec. IV-B/IV-C of the paper) ===")
risk, _ = max_privacy_risk(channels)
loss, _ = min_loss(channels)
delay, _ = min_delay(channels)
print(f"  best privacy:    adversary learns a symbol w.p. {risk:.4f} (κ = µ = n)")
print(f"  best loss:       symbol lost w.p. {loss:.2e} (κ = 1, µ = n)")
print(f"  best delay:      {delay:.3f} unit times (κ = 1, µ = n)")
print(f"  best rate:       {max_rate(channels):.0f} symbols/unit (κ = µ = 1)")

# --- 3. Pick a tradeoff and compute its optimal schedule ----------------------
kappa, mu = 2.0, 2.5
rate = optimal_rate(channels, mu)
schedule = optimal_schedule(
    channels, Objective.PRIVACY, kappa=kappa, mu=mu, at_max_rate=True
)
print(f"\n=== LP-optimal schedule for κ = {kappa}, µ = {mu} at max rate ===")
print(f"  achievable rate:  {rate:.1f} symbols/unit (Theorem 4)")
print(f"  schedule risk:    Z(p) = {schedule.privacy_risk():.4f}")
print(f"  schedule loss:    L(p) = {schedule.loss():.2e}")
print(f"  schedule delay:   D(p) = {schedule.delay():.3f}")
print("  schedule atoms:")
for (k, members), probability in schedule.support():
    names = ", ".join(channels[i].name for i in sorted(members))
    print(f"    p(k={k}, M={{{names}}}) = {probability:.3f}")

# --- 4. Run the reference protocol and compare --------------------------------
config = ProtocolConfig(kappa=kappa, mu=mu, share_synthetic=True)
offered = practical_max_rate(channels, mu, config.symbol_size)
result = run_iperf(channels, config, offered_rate=offered, duration=30.0, warmup=5.0)
print("\n=== ReMICSS measured over the simulated network ===")
print(f"  offered rate:     {offered:.1f} symbols/unit")
print(f"  achieved rate:    {result.achieved_rate:.1f} symbols/unit "
      f"({100 * result.achieved_rate / rate:.1f}% of the Theorem-4 optimum)")
print(f"  measured loss:    {result.loss_percent:.3f}%")
print("\nThe paper's headline claim -- a practical protocol transmitting within")
print("3-4% of the model's optimal rate -- should be visible directly above.")
