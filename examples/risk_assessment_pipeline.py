"""Risk-assessment pipeline: from IDS alerts to protocol parameters.

The model takes the risk vector z as an input, "estimated using network
risk assessment techniques" (Sec. III-A).  This example runs that whole
pipeline: simulate ground-truth channel compromises and the noisy IDS
alerts they produce, filter the alerts through the HMM risk estimator,
rebuild the channel set with the estimated risks, and let the linear
program re-derive the privacy-optimal share schedule as the threat picture
changes.

Run:  python examples/risk_assessment_pipeline.py
"""

import numpy as np

from repro.adversary import (
    HmmRiskEstimator,
    HmmRiskModel,
    simulate_channel_history,
)
from repro.core import ChannelSet, Objective, optimal_schedule

rng = np.random.default_rng(21)

# Three channels with distinct monitoring characteristics.
MODELS = [
    HmmRiskModel(p_compromise=0.002, p_recover=0.02, p_false_alert=0.02, p_true_alert=0.6),
    HmmRiskModel(p_compromise=0.010, p_recover=0.05, p_false_alert=0.05, p_true_alert=0.7),
    HmmRiskModel(p_compromise=0.030, p_recover=0.03, p_false_alert=0.08, p_true_alert=0.8),
]
NAMES = ["backbone", "metro", "wireless"]
EPOCHS = 300
REVIEW_EVERY = 100  # re-derive the schedule after this many epochs

# Ground truth + alert streams.
histories = [simulate_channel_history(model, EPOCHS, rng) for model in MODELS]
estimators = [HmmRiskEstimator(model) for model in MODELS]

print("Filtering IDS alert streams into per-channel risk (HMM forward pass)\n")
print(f"{'epoch':>6}  " + "  ".join(f"{name:>10}" for name in NAMES) + "   schedule response")
print("-" * 78)

for epoch in range(EPOCHS):
    for estimator, (_, alerts) in zip(estimators, histories):
        estimator.update(alerts[epoch])
    if (epoch + 1) % REVIEW_EVERY:
        continue

    # Rebuild the channel set with current risk estimates and re-optimise.
    channels = ChannelSet.from_vectors(
        risks=[e.risk for e in estimators],
        losses=[0.01, 0.01, 0.02],
        delays=[0.3, 0.2, 0.1],
        rates=[100.0, 60.0, 40.0],
        names=NAMES,
    )
    schedule = optimal_schedule(
        channels, Objective.PRIVACY, kappa=2.0, mu=2.5, at_max_rate=True
    )
    risk_cells = "  ".join(f"{e.risk:>10.3f}" for e in estimators)
    print(f"{epoch + 1:>6}  {risk_cells}   Z(p) = {schedule.privacy_risk():.4f}")
    heavy = max(
        schedule.support(),
        key=lambda item: item[1],
    )
    (k, members), probability = heavy
    names = ",".join(NAMES[i] for i in sorted(members))
    print(f"{'':>6}  heaviest atom: p(k={k}, M={{{names}}}) = {probability:.2f}")

truth = ["COMPROMISED" if states[-1] else "safe" for states, _ in histories]
print("\nGround truth at the end of the run: " + ", ".join(
    f"{name}={state}" for name, state in zip(NAMES, truth)
))
print(
    "\nAs estimated risk shifts between channels, the LP shifts schedule mass"
    "\naway from channels it believes are tapped -- closing the loop from raw"
    "\nmonitoring data to concrete protocol behaviour."
)
