"""Adversary simulation: validate the privacy model against a real attacker.

The model says an adversary observing channel i with probability z_i learns
a symbol exactly when it captures k or more of its shares, so the per-symbol
compromise probability is the Poisson-binomial tail z(k, M) (Sec. IV-A).
This example doesn't take that on faith: it attaches a wire-tapping
eavesdropper to the simulated links, lets it *actually reconstruct* secrets
from captured Shamir shares, and compares the empirical compromise rate to
the model across the threshold range.

Run:  python examples/adversary_simulation.py
"""

from repro.adversary import Eavesdropper
from repro.core import ChannelSet, subset_risk
from repro.netsim import RngRegistry
from repro.protocol import PointToPointNetwork, ProtocolConfig
from repro.sharing import ShamirScheme

RISKS = [0.45, 0.30, 0.25, 0.40]
SYMBOLS = 4000
SYMBOL_SIZE = 64

channels = ChannelSet.from_vectors(
    risks=RISKS,
    losses=[0.0] * 4,
    delays=[0.001] * 4,
    rates=[100.0] * 4,
)

print(f"Channels tapped with probabilities {RISKS}; {SYMBOLS} secrets per run.\n")
header = f"{'k':>3}  {'predicted z(k, C)':>18}  {'empirical':>10}  {'reconstructed':>13}"
print(header)
print("-" * len(header))

for k in range(1, 5):
    registry = RngRegistry(1000 + k)
    network = PointToPointNetwork(channels, SYMBOL_SIZE, registry)
    config = ProtocolConfig(kappa=float(k), mu=4.0, symbol_size=SYMBOL_SIZE)
    node_a, node_b = network.node_pair(config, registry)
    adversary = Eavesdropper(
        links=[duplex.forward for duplex in network.duplex],
        risks=RISKS,
        rng=registry.stream("adversary"),
        scheme=ShamirScheme(),
    )

    originals = {}
    payload_rng = registry.stream("secrets")
    counter = {"sent": 0}

    def offer():
        payload = payload_rng.bytes(SYMBOL_SIZE)
        if node_a.send(payload):
            originals[counter["sent"]] = payload
            counter["sent"] += 1

    engine = network.engine
    t = 0.0
    for _ in range(SYMBOLS):
        engine.schedule_at(t, offer)
        t += 0.02
    engine.run_until(t + 5.0)

    predicted = subset_risk(channels, k, range(4))
    empirical = adversary.compromise_rate(node_a.sender.stats.symbols_sent)
    verified = adversary.verify_plaintexts(originals)
    print(
        f"{k:>3}  {predicted:>18.4f}  {empirical:>10.4f}  "
        f"{'all correct' if verified else 'MISMATCH':>13}"
    )

print(
    "\nEvery reconstruction the adversary performed was checked against the"
    "\ntrue plaintext: the compromise counts above are ground truth, not an"
    "\nassumption about Shamir's scheme.  Raising k from 1 to n drives the"
    "\nadversary's success rate from the per-channel risk level down to the"
    "\nproduct of all risks -- the paper's privacy knob, measured."
)
