"""Byzantine channels: correcting tampered shares, not just lost ones.

The paper's model tolerates share *loss* (m − k per symbol); the perfectly
secure message transmission literature it builds on also demands tolerance
to share *modification* by an adversary controlling a channel.  Shamir
shares are Reed-Solomon codewords, so with 2e extra shares the receiver can
correct e corruptions and even name the guilty channel.

This example runs the protocol across four channels, one of which tampers
with half the shares it carries, and compares plain k-of-m reconstruction
against Byzantine-tolerant operation (``byzantine_tolerance=1``).

Run:  python examples/byzantine_channels.py
"""

from repro.core import ChannelSet
from repro.netsim import RngRegistry
from repro.protocol import PointToPointNetwork, ProtocolConfig

TAMPER_CHANNEL = 0
TAMPER_PROBABILITY = 0.5
SYMBOLS = 400


def run(byzantine_tolerance: int):
    channels = ChannelSet.from_vectors(
        risks=[0.0] * 4,
        losses=[0.0] * 4,
        delays=[0.01] * 4,
        rates=[100.0] * 4,
        names=["evil-isp", "dsl", "lte", "sat"],
    )
    registry = RngRegistry(17)
    network = PointToPointNetwork(channels, symbol_size=256, rng_registry=registry)
    network.duplex[TAMPER_CHANNEL].forward.corruption = TAMPER_PROBABILITY
    config = ProtocolConfig(
        kappa=2.0,
        mu=4.0,
        symbol_size=256,
        byzantine_tolerance=byzantine_tolerance,
    )
    node_a, node_b = network.node_pair(config, registry)
    delivered = {}
    node_b.on_deliver(lambda seq, payload, delay: delivered.__setitem__(seq, payload))
    payload_rng = registry.stream("payloads")
    sent = []

    def offer():
        payload = payload_rng.bytes(256)
        if node_a.send(payload):
            sent.append(payload)

    for i in range(SYMBOLS):
        network.engine.schedule_at(i * 0.05, offer)
    network.engine.run_until(SYMBOLS * 0.05 + 10.0)

    intact = sum(1 for seq, payload in delivered.items() if payload == sent[seq])
    return {
        "delivered": len(delivered),
        "intact": intact,
        "detected": node_b.receiver.stats.corrupt_shares_detected,
        "by_channel": dict(node_b.receiver.corrupt_by_channel),
    }


print(f"Channel {TAMPER_CHANNEL} ('evil-isp') tampers with "
      f"{int(100 * TAMPER_PROBABILITY)}% of the shares it carries.\n")

plain = run(byzantine_tolerance=0)
print("=== Plain operation (complete at k = 2 shares) ===")
print(f"  delivered: {plain['delivered']}  intact: {plain['intact']}  "
      f"garbled: {plain['delivered'] - plain['intact']}")
print("  The receiver trusts the first k shares; tampered ones silently")
print("  reconstruct to garbage.\n")

robust = run(byzantine_tolerance=1)
print("=== Byzantine-tolerant operation (wait for k + 2e = 4 shares) ===")
print(f"  delivered: {robust['delivered']}  intact: {robust['intact']}  "
      f"garbled: {robust['delivered'] - robust['intact']}")
print(f"  corrupt shares detected and corrected: {robust['detected']}")
print(f"  attribution by channel index: {robust['by_channel']}")
print(
    "\nEvery corruption was corrected AND pinned on the tampering channel --"
    "\nthat attribution can feed the risk estimator, closing the loop between"
    "\nintegrity monitoring and the share schedule."
)
