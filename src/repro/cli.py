"""Command-line interface to the model, planner and simulator.

Examples::

    # Optimal rate and full-utilisation bound for a channel set
    python -m repro.cli rate --channel 0.2,0.01,0.25,5 \\
                             --channel 0.1,0.005,0.025,20 --mu 1.5

    # A privacy-optimal schedule at maximum rate
    python -m repro.cli optimize --channels channels.json \\
                                 --kappa 2 --mu 3 --objective privacy

    # The fastest plan meeting requirements
    python -m repro.cli plan --channels channels.json --max-risk 0.01

    # Measure the reference protocol on the simulated testbed
    python -m repro.cli simulate --channels channels.json --kappa 2 --mu 3

Channels are given either inline (``--channel z,loss,delay,rate``, repeat
per channel) or as a JSON file: a list of ``[z, loss, delay, rate]`` rows
or of ``{"risk": ..., "loss": ..., "delay": ..., "rate": ...}`` objects.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.core.channel import ChannelSet
from repro.core.optimal import max_privacy_risk, min_delay, min_loss
from repro.core.planner import (
    NoFeasiblePlanError,
    Requirements,
    plan_max_rate,
)
from repro.core.program import Objective, optimal_schedule
from repro.core.rate import (
    full_utilization_mu_limit,
    max_rate,
    optimal_rate,
)
from repro.lp import InfeasibleError


def _parse_inline_channel(spec: str) -> List[float]:
    parts = spec.split(",")
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            f"expected 'risk,loss,delay,rate', got {spec!r}"
        )
    try:
        return [float(p) for p in parts]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def load_channels(
    json_path: Optional[str], inline: Optional[Sequence[List[float]]]
) -> ChannelSet:
    """Build a ChannelSet from a JSON file or inline specs.

    Raises:
        SystemExit: via argparse-style error when neither/both given or
            the JSON is malformed.
    """
    if json_path and inline:
        raise ValueError("give either --channels or --channel, not both")
    rows: List[List[float]]
    if json_path:
        with open(json_path) as handle:
            data = json.load(handle)
        rows = []
        for entry in data:
            if isinstance(entry, dict):
                rows.append(
                    [entry["risk"], entry["loss"], entry["delay"], entry["rate"]]
                )
            else:
                rows.append([float(v) for v in entry])
    elif inline:
        rows = [list(spec) for spec in inline]
    else:
        raise ValueError("no channels given; use --channels FILE or --channel z,l,d,r")
    return ChannelSet.from_vectors(
        risks=[r[0] for r in rows],
        losses=[r[1] for r in rows],
        delays=[r[2] for r in rows],
        rates=[r[3] for r in rows],
    )


def _print_schedule(schedule) -> None:
    print(f"kappa = {schedule.kappa:.4f}, mu = {schedule.mu:.4f}")
    print(f"Z(p) = {schedule.privacy_risk():.6f}")
    print(f"L(p) = {schedule.loss():.6f}")
    print(f"D(p) = {schedule.delay():.6f}")
    print(f"sustainable rate = {schedule.max_symbol_rate():.4f} symbols/unit")
    print("atoms:")
    for (k, members), probability in schedule.support():
        print(f"  p(k={k}, M={{{','.join(map(str, sorted(members)))}}}) = {probability:.4f}")


def cmd_rate(args: argparse.Namespace) -> int:
    channels = load_channels(args.channels, args.channel)
    print(f"n = {channels.n} channels, total rate = {max_rate(channels):.4f}")
    print(f"full-utilisation bound (Theorem 2): mu <= {full_utilization_mu_limit(channels):.4f}")
    if args.mu is not None:
        print(f"optimal rate at mu = {args.mu}: {optimal_rate(channels, args.mu):.4f} (Theorem 4)")
    risk, _ = max_privacy_risk(channels)
    loss, _ = min_loss(channels)
    delay, _ = min_delay(channels)
    print(f"extremes: Z_C = {risk:.6f}, L_C = {loss:.3e}, D_C = {delay:.6f}")
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    channels = load_channels(args.channels, args.channel)
    try:
        schedule = optimal_schedule(
            channels,
            Objective(args.objective),
            kappa=args.kappa,
            mu=args.mu,
            at_max_rate=not args.free,
            limited=args.limited,
        )
    except InfeasibleError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 1
    _print_schedule(schedule)
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    channels = load_channels(args.channels, args.channel)
    requirements = Requirements(
        max_risk=args.max_risk,
        max_loss=args.max_loss,
        max_delay=args.max_delay,
        min_rate=args.min_rate,
    )
    try:
        plan = plan_max_rate(channels, requirements)
    except NoFeasiblePlanError as exc:
        print(f"no feasible plan: {exc}", file=sys.stderr)
        return 1
    print(
        f"plan: kappa = {plan.kappa}, mu = {plan.mu}, "
        f"rate = {plan.rate:.4f} symbols/unit"
    )
    print(f"risk = {plan.risk:.6f}, loss = {plan.loss:.6f}, delay = {plan.delay:.6f}")
    _print_schedule(plan.schedule)
    return 0


def load_fault_plan(spec: Optional[str], duration: float, warmup: float):
    """Resolve a ``--faults`` value into a FaultPlan (or None).

    The value is either the name of a canonical scenario (``flap``,
    ``burst``, ``delay_spike``, ``rate_cut``, ``partition_heal``) -- placed
    in the middle of the measurement window -- or the path of a JSON file
    holding a list of fault-event objects (see docs/FAULTS.md).
    """
    if not spec:
        return None
    import os

    from repro.netsim.faults import CANONICAL_SCENARIOS, FaultPlan, canonical_plan

    if spec in CANONICAL_SCENARIOS:
        start = warmup + 0.25 * duration
        stop = warmup + 0.75 * duration
        return canonical_plan(spec, start, stop)
    if os.path.exists(spec):
        with open(spec) as handle:
            return FaultPlan.from_json(handle.read())
    raise ValueError(
        f"--faults expects a scenario name ({', '.join(sorted(CANONICAL_SCENARIOS))}) "
        f"or a JSON file path, got {spec!r}"
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run one figure's parameter sweep through the sweep orchestrator.

    ``--jobs N`` fans points out over N worker processes with results
    identical to a serial run (per-point seeds derive from point identity,
    not worker order); ``--resume`` serves already-computed points from
    the content-addressed cache under ``--cache-dir``.  See docs/SWEEPS.md.
    """
    from repro.experiments import fig3, fig4, fig5, fig67
    from repro.experiments.reporting import rows_to_table
    from repro.obs import Observability
    from repro.sweep import ResultCache, SweepRunner

    spec_kwargs = {}
    if args.kappa:
        spec_kwargs["kappas"] = tuple(args.kappa)
    if args.mu_step is not None:
        spec_kwargs["mu_step"] = args.mu_step
    if args.duration is not None:
        spec_kwargs["duration"] = args.duration
    if args.warmup is not None:
        spec_kwargs["warmup"] = args.warmup
    if args.seed is not None:
        spec_kwargs["seed"] = args.seed
    spec_kwargs["quick"] = args.quick

    if args.figure == "fig3":
        spec = fig3.fig3_spec(setup=args.setup, **spec_kwargs)
        point_fn = fig3.fig3_point
    elif args.figure == "fig4":
        spec = fig4.fig4_spec(**spec_kwargs)
        point_fn = fig4.fig4_point
    elif args.figure == "fig5":
        spec = fig5.fig5_spec(**spec_kwargs)
        point_fn = fig5.fig5_point
    elif args.figure in ("fig6", "fig7"):
        spec_kwargs.pop("mu_step", None)
        if args.figure == "fig6":
            spec_kwargs.pop("kappas", None)
            spec = fig67.fig6_spec(**spec_kwargs)
        else:
            spec = fig67.fig7_spec(**spec_kwargs)
        point_fn = fig67.fig67_point
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown figure {args.figure!r}")

    cache = None
    if args.resume or args.cache_dir is not None:
        cache = ResultCache(args.cache_dir or "results/cache")
    obs = Observability.create()
    runner = SweepRunner(jobs=args.jobs, retries=args.retries, cache=cache, obs=obs)
    results = runner.run(spec, point_fn)

    rows = [r.value for r in results if r.ok and r.value is not None]
    if rows:
        # Sorted columns so cold runs and cache-served re-runs print the
        # same table (cached rows round-trip through sorted-key JSON).
        print(rows_to_table(rows, sorted(rows[0].keys()), precision=4))
    for result in results:
        if not result.ok:
            print(
                f"point {result.point.index} {result.point.params} failed "
                f"after {result.attempts} attempts:\n{result.error}",
                file=sys.stderr,
            )
    print(runner.stats.summary())
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(rows, handle, sort_keys=True, indent=1)
            handle.write("\n")
        print(f"rows           = {len(rows)} -> {args.out}")
    return 1 if runner.stats.failures else 0


def cmd_attack(args: argparse.Namespace) -> int:
    """Run the canonical active-adversary scenarios as a seeded sweep.

    Each selected scenario runs the under-attack harness across the κ grid
    through the same orchestrator as ``repro sweep`` (``--jobs`` fan-out,
    resumable cache, per-point seeds derived from point identity), so two
    same-seed invocations produce byte-identical ``--out`` files.  See
    docs/ADVERSARY.md.
    """
    from repro.adversary.active.scenarios import CANONICAL_ATTACKS
    from repro.experiments import attack
    from repro.experiments.reporting import rows_to_table
    from repro.obs import Observability
    from repro.sweep import ResultCache, SweepRunner

    scenarios = (
        tuple(sorted(CANONICAL_ATTACKS))
        if args.scenario in (None, "all")
        else (args.scenario,)
    )
    spec_kwargs = {
        "scenarios": scenarios,
        "resilience": args.resilience,
        "auth": args.auth,
    }
    if args.kappa:
        spec_kwargs["kappas"] = tuple(args.kappa)
    if args.duration is not None:
        spec_kwargs["duration"] = args.duration
    if args.warmup is not None:
        spec_kwargs["warmup"] = args.warmup
    if args.seed is not None:
        spec_kwargs["seed"] = args.seed
    spec_kwargs["quick"] = args.quick
    spec = attack.attack_spec(**spec_kwargs)

    cache = None
    if args.resume or args.cache_dir is not None:
        cache = ResultCache(args.cache_dir or "results/cache")
    obs = Observability.create()
    runner = SweepRunner(jobs=args.jobs, retries=args.retries, cache=cache, obs=obs)
    results = runner.run(spec, attack.attack_point)

    rows = [r.value for r in results if r.ok and r.value is not None]
    if rows:
        print(rows_to_table(rows, sorted(rows[0].keys()), precision=4))
    for result in results:
        if not result.ok:
            print(
                f"point {result.point.index} {result.point.params} failed "
                f"after {result.attempts} attempts:\n{result.error}",
                file=sys.stderr,
            )
    print(runner.stats.summary())
    silent = sum(row["wrong_payloads"] for row in rows)
    if silent:
        print(f"SILENT CORRUPTION: {silent} wrong payloads delivered", file=sys.stderr)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(rows, handle, sort_keys=True, indent=1)
            handle.write("\n")
        print(f"rows           = {len(rows)} -> {args.out}")
    return 1 if runner.stats.failures or silent else 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.obs import Observability, write_metrics, write_trace
    from repro.protocol.config import ProtocolConfig
    from repro.workloads.iperf import practical_max_rate, run_iperf

    channels = load_channels(args.channels, args.channel)
    config = ProtocolConfig(kappa=args.kappa, mu=args.mu, share_synthetic=True)
    offered = args.offered_rate or practical_max_rate(
        channels, args.mu, config.symbol_size
    )
    fault_plan = load_fault_plan(args.faults, args.duration, args.warmup)
    resilience = None
    if args.resilience:
        from repro.protocol.resilience import ResilienceConfig

        resilience = ResilienceConfig()
    obs = None
    if args.metrics_out or args.trace_out:
        obs = Observability.create(tracing=bool(args.trace_out))
    result = run_iperf(
        channels,
        config,
        offered_rate=offered,
        duration=args.duration,
        warmup=args.warmup,
        seed=args.seed,
        fault_plan=fault_plan,
        obs=obs,
        resilience=resilience,
    )
    optimum = optimal_rate(channels, args.mu)
    print(f"offered rate   = {offered:.4f} symbols/unit")
    print(f"achieved rate  = {result.achieved_rate:.4f} symbols/unit")
    print(f"optimal rate   = {optimum:.4f} symbols/unit (Theorem 4)")
    print(f"achieved/optimal = {result.achieved_rate / optimum:.4f}")
    print(f"loss           = {result.loss_percent:.4f}%")
    print(f"mean delay     = {result.mean_delay_ms:.4f} ms")
    if result.fault_summary is not None:
        print(f"faults applied = {json.dumps(result.fault_summary, sort_keys=True)}")
    if result.resilience_summary is not None:
        summary = result.resilience_summary
        print(
            "resilience     = "
            f"quarantines={summary['quarantines']} "
            f"reinstatements={summary['reinstatements']} "
            f"failovers={summary['failovers']} "
            f"nacks={summary['nacks_received']} "
            f"repair_shares={summary['repair_shares_sent']}"
        )
    if obs is not None:
        snapshot = obs.registry.snapshot()
        if args.metrics_out:
            fmt = write_metrics(args.metrics_out, snapshot, fmt=args.metrics_format)
            print(f"metrics        = {len(snapshot)} series -> {args.metrics_out} ({fmt})")
        if args.trace_out:
            write_trace(args.trace_out, obs.tracer.events)
            dropped = f", {obs.tracer.dropped} dropped" if obs.tracer.dropped else ""
            print(
                f"trace          = {len(obs.tracer.events)} events -> "
                f"{args.trace_out}{dropped}"
            )
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run a fleet-scale multi-tenant workload (see docs/FLEET.md).

    ``--shards J`` executes cells on J worker processes; the merged
    report (every per-flow delivery digest included) is byte-identical
    to a serial run.  ``--parity-check`` proves it by re-running the
    fleet with ``--shards 1`` and comparing fingerprints.
    """
    from repro.obs import Observability
    from repro.workloads.fleet import run_fleet

    obs = Observability.create(tracing=False)
    kwargs = dict(
        flows=args.flows,
        flows_per_cell=args.flows_per_cell,
        symbols_per_flow=args.symbols,
        symbol_size=args.symbol_size,
        channels=args.channels,
        # Authenticated shares need real payloads (a tag over a synthetic
        # share authenticates nothing), so --auth implies --real.
        synthetic=not (args.real or args.auth),
        sender_batch_limit=args.batch_limit,
        batch_reconstruct=not args.no_batch_reconstruct,
        auth=args.auth,
    )
    report = run_fleet(shards=args.shards, obs=obs, **kwargs)
    print(
        f"fleet: flows={report.flows_total} admitted={report.admitted} "
        f"cells={report.cells} shards={report.shards} "
        f"delivered={report.delivered_total} mux_drops={report.mux_drops_total} "
        f"wall={report.wall_time:.2f}s flows_per_sec={report.flows_per_sec:.1f}"
    )
    for name, summary in report.tenants.items():
        print(
            f"tenant {name}: flows={summary['flows']} "
            f"delivered={summary['delivered']} min_kappa={summary['min_kappa']} "
            f"compliant={summary['compliant']}"
        )
    print(f"fleet digest: {report.fleet_digest}")
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.as_dict(), handle, sort_keys=True, indent=1)
            handle.write("\n")
        print(f"report -> {args.out}")
    if args.parity_check:
        serial = run_fleet(shards=1, **kwargs)
        if serial.fleet_digest != report.fleet_digest:
            print(
                f"fleet parity: MISMATCH (serial {serial.fleet_digest})",
                file=sys.stderr,
            )
            return 1
        print("fleet parity: ok")
    if not all(summary["compliant"] for summary in report.tenants.values()):
        return 1
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the AST-based determinism linter (see docs/LINTING.md)."""
    from repro.lint.cli import run_lint

    return run_lint(args)


def cmd_taint(args: argparse.Namespace) -> int:
    """Run the secret-taint static analysis (see docs/TAINT.md)."""
    from repro.analysis.taint.cli import run_taint

    return run_taint(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_channel_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--channels", help="JSON file describing the channels")
        p.add_argument(
            "--channel",
            action="append",
            type=_parse_inline_channel,
            help="inline channel as 'risk,loss,delay,rate' (repeatable)",
        )

    rate = sub.add_parser("rate", help="rate theorems and global extremes")
    add_channel_args(rate)
    rate.add_argument("--mu", type=float, help="evaluate Theorem 4 at this mu")
    rate.set_defaults(func=cmd_rate)

    optimize = sub.add_parser("optimize", help="LP-optimal share schedule")
    add_channel_args(optimize)
    optimize.add_argument("--kappa", type=float, required=True)
    optimize.add_argument("--mu", type=float, required=True)
    optimize.add_argument(
        "--objective", choices=[o.value for o in Objective], default="privacy"
    )
    optimize.add_argument(
        "--free", action="store_true",
        help="drop the maximum-rate constraint (Sec. IV-B instead of IV-D)",
    )
    optimize.add_argument(
        "--limited", action="store_true",
        help="restrict to the M' schedules of Sec. IV-E",
    )
    optimize.set_defaults(func=cmd_optimize)

    plan = sub.add_parser("plan", help="fastest plan meeting requirements")
    add_channel_args(plan)
    plan.add_argument("--max-risk", type=float)
    plan.add_argument("--max-loss", type=float)
    plan.add_argument("--max-delay", type=float)
    plan.add_argument("--min-rate", type=float)
    plan.set_defaults(func=cmd_plan)

    simulate = sub.add_parser("simulate", help="measure ReMICSS on the simulator")
    add_channel_args(simulate)
    simulate.add_argument("--kappa", type=float, required=True)
    simulate.add_argument("--mu", type=float, required=True)
    simulate.add_argument("--offered-rate", type=float)
    simulate.add_argument("--duration", type=float, default=30.0)
    simulate.add_argument("--warmup", type=float, default=5.0)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument(
        "--faults",
        help="fault injection: a canonical scenario name (flap, burst, "
        "delay_spike, rate_cut, partition_heal) or a JSON fault-plan file",
    )
    simulate.add_argument(
        "--resilience",
        action="store_true",
        help="enable the resilience layer (quarantine, failover, repair; "
        "see docs/RESILIENCE.md)",
    )
    simulate.add_argument(
        "--metrics-out",
        help="write a metrics dump to this path after the run (format "
        "inferred from the suffix: .jsonl/.json, .csv, .prom/.txt; see "
        "docs/OBSERVABILITY.md)",
    )
    simulate.add_argument(
        "--metrics-format",
        choices=["jsonl", "csv", "prometheus"],
        help="force the metrics dump format regardless of suffix",
    )
    simulate.add_argument(
        "--trace-out",
        help="also record a structured event trace and write it to this "
        "path as JSON-lines",
    )
    simulate.set_defaults(func=cmd_simulate)

    sweep = sub.add_parser(
        "sweep",
        help="run a figure sweep in parallel with a resumable result cache",
        description="Run one figure's (κ, µ)/capacity sweep through the "
        "sweep orchestrator (repro.sweep).  --jobs N computes points on N "
        "worker processes with results identical to --jobs 1; --resume "
        "serves finished points from the content-addressed cache so an "
        "interrupted sweep completes incrementally.  See docs/SWEEPS.md.",
    )
    sweep.add_argument(
        "--figure",
        required=True,
        choices=["fig3", "fig4", "fig5", "fig6", "fig7"],
        help="which figure's sweep to run",
    )
    sweep.add_argument(
        "--setup",
        choices=["identical", "diverse"],
        default="identical",
        help="channel setup (fig3 only)",
    )
    sweep.add_argument(
        "--kappa",
        action="append",
        type=float,
        metavar="K",
        help="κ value to sweep (repeatable; default: the figure's grid)",
    )
    sweep.add_argument("--mu-step", type=float, help="µ grid step")
    sweep.add_argument("--duration", type=float, help="measurement window per point")
    sweep.add_argument("--warmup", type=float, help="settling time per point")
    sweep.add_argument("--seed", type=int, help="root seed (per-point seeds derive from it)")
    sweep.add_argument("--quick", action="store_true", help="coarse grid and short windows")
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = serial; N>1 gives identical results, faster)",
    )
    sweep.add_argument(
        "--retries", type=int, default=0, help="extra attempts per failing point"
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="reuse and extend the on-disk result cache (resume after interrupt)",
    )
    sweep.add_argument(
        "--cache-dir",
        help="cache location (default results/cache; implies caching when given)",
    )
    sweep.add_argument("--out", help="also write the result rows to this JSON file")
    sweep.set_defaults(func=cmd_sweep)

    attack = sub.add_parser(
        "attack",
        help="run the canonical active-adversary scenarios as a sweep",
        description="Run the under-attack scenario suite (corruption "
        "storm, forged injection, replay flood, targeted corruption, "
        "targeted partition) across a κ grid.  Points run through the "
        "sweep orchestrator, so --jobs fan-out and cache-served re-runs "
        "are byte-identical to a serial cold run.  Exits non-zero if any "
        "point fails or any scenario delivers a silently corrupted "
        "payload.  See docs/ADVERSARY.md.",
    )
    attack.add_argument(
        "--scenario",
        choices=["all", "corruption_storm", "forged_injection", "replay_flood",
                 "targeted_corruption", "targeted_partition"],
        default="all",
        help="which canonical attack to run (default: all)",
    )
    attack.add_argument(
        "--kappa",
        action="append",
        type=float,
        metavar="K",
        help="κ value to sweep (repeatable; default 1, 2, 3)",
    )
    attack.add_argument("--duration", type=float, help="offer window per point")
    attack.add_argument("--warmup", type=float, help="settling time per point")
    attack.add_argument("--seed", type=int, help="root seed (per-point seeds derive from it)")
    attack.add_argument("--quick", action="store_true", help="short windows, two κ values")
    attack.add_argument(
        "--resilience",
        action="store_true",
        help="arm the quarantine/failover/repair layer during the attacks",
    )
    attack.add_argument(
        "--auth",
        action="store_true",
        help="arm authenticated shares (keyed MACs + erasure decoding; "
        "see docs/AUTH.md)",
    )
    attack.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = serial; N>1 gives identical results, faster)",
    )
    attack.add_argument(
        "--retries", type=int, default=0, help="extra attempts per failing point"
    )
    attack.add_argument(
        "--resume",
        action="store_true",
        help="reuse and extend the on-disk result cache (resume after interrupt)",
    )
    attack.add_argument(
        "--cache-dir",
        help="cache location (default results/cache; implies caching when given)",
    )
    attack.add_argument("--out", help="also write the result rows to this JSON file")
    attack.set_defaults(func=cmd_attack)

    fleet = sub.add_parser(
        "fleet",
        help="run a fleet-scale multi-tenant workload with sharded execution",
        description="Synthesize a deterministic multi-tenant fleet and run "
        "it through the flow-sharded executor (repro.fleet).  --shards J "
        "computes cells on J worker processes with a report byte-identical "
        "to --shards 1; --parity-check re-runs serially and compares the "
        "fleet delivery fingerprint.  See docs/FLEET.md.",
    )
    fleet.add_argument("--flows", type=int, default=256, help="fleet size")
    fleet.add_argument(
        "--shards", type=int, default=1, metavar="J",
        help="worker processes (default 1 = serial; any J gives identical results)",
    )
    fleet.add_argument(
        "--flows-per-cell", type=int, default=32,
        help="flows sharing one simulated channel set (default 32)",
    )
    fleet.add_argument(
        "--symbols", type=int, default=4, help="source symbols per flow (default 4)"
    )
    fleet.add_argument(
        "--symbol-size", type=int, default=64, help="payload bytes per symbol"
    )
    fleet.add_argument(
        "--channels", type=int, default=4, help="channels per cell (default 4)"
    )
    fleet.add_argument(
        "--real", action="store_true",
        help="split and reconstruct real secrets (default: synthetic sizes only)",
    )
    fleet.add_argument(
        "--auth", action="store_true",
        help="arm authenticated shares per cell with tenant-isolated flow "
        "keys (implies --real; see docs/AUTH.md)",
    )
    fleet.add_argument(
        "--batch-limit", type=int, default=8,
        help="symbols per split_many call on the send hot path (default 8)",
    )
    fleet.add_argument(
        "--no-batch-reconstruct", action="store_true",
        help="reconstruct per symbol instead of coalescing same-instant completions",
    )
    fleet.add_argument(
        "--parity-check", action="store_true",
        help="re-run serially and verify the fleet digest matches",
    )
    fleet.add_argument("--out", help="write the merged report to this JSON file")
    fleet.set_defaults(func=cmd_fleet)

    lint = sub.add_parser(
        "lint",
        help="statically check the tree for reproducibility hazards",
        description="AST-based determinism linter: proves wall-clock reads, "
        "unseeded RNG use, unordered iteration, environment reads, mutable "
        "defaults and exact float comparisons absent from the simulation "
        "tree.  Exits 0 on a clean tree, 1 on findings.  See docs/LINTING.md.",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    taint = sub.add_parser(
        "taint",
        help="statically prove no secret bytes reach logs, metrics or disk",
        description="Secret-flow (source/sink/sanitizer) static analysis: "
        "tracks plaintext payloads, reconstruction outputs and Shamir "
        "coefficients through assignments and call summaries, and reports "
        "any path into traces, metric labels, logging, exception messages, "
        "persistence or repr/f-string formatting.  Exits 0 on a clean "
        "tree, 1 on findings.  See docs/TAINT.md.",
    )
    from repro.analysis.taint.cli import add_taint_arguments

    add_taint_arguments(taint)
    taint.set_defaults(func=cmd_taint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
