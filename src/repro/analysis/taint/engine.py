"""The whole-program taint engine.

Runs in three stages over the discovered tree:

1. **Parse** every file once (shared framework: sorted discovery,
   ``# taint:`` directive parsing, ``parse-error`` findings for broken
   files).
2. **Summary fixpoint**: repeat summary-only module passes until no
   function summary or attribute-taint entry changes (bounded by
   ``max_passes``); this is what lets taint introduced in
   ``protocol.dibs`` surface at a sink reached through ``sender`` ->
   ``netsim`` -> ``obs`` call chains.
3. **Collection**: one final pass emits findings, which then flow
   through the exact suppression/baseline/report pipeline the
   determinism linter uses -- same JSON schema, same exit-code
   contract, ``taint_*`` obs counters instead of ``lint_*``.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis import framework
from repro.analysis.framework import (
    BAD_DIRECTIVE,
    PARSE_ERROR,
    AnalysisReport,
    Baseline,
    Finding,
    collect_aliases,
    parse_suppressions,
    split_suppressed,
)
from repro.analysis.taint.policy import TaintPolicy, default_policy
from repro.analysis.taint.propagation import ModuleAnalyzer, ModuleInfo, module_name
from repro.analysis.taint.summaries import SummaryTable

__all__ = ["TaintEngine", "TaintReport", "taint_paths", "ANNOTATION_KINDS"]

#: The ``# taint:`` annotation directive keywords (see docs/TAINT.md).
ANNOTATION_KINDS = ("source", "sink", "declassified")


class TaintReport(AnalysisReport):
    """The outcome of one taint run (the shared report shape)."""


class TaintEngine:
    """Source/sink/sanitizer dataflow analysis over a file tree.

    Args:
        policy: the source/sink/sanitizer catalogue; defaults to the
            repository threat model (:func:`default_policy`).
        baseline: grandfathered findings (``taint-baseline.json`` ships
            empty; the mechanism exists for future policy additions).
        obs: optional :class:`repro.obs.Observability`; emits
            ``taint_files_scanned_total``, ``taint_findings_total{rule=...}``,
            ``taint_suppressed_total{rule=...}`` and ``taint_baselined_total``.
        max_passes: cross-module summary fixpoint bound.
    """

    def __init__(
        self,
        policy: Optional[TaintPolicy] = None,
        baseline: Optional[Baseline] = None,
        obs=None,
        max_passes: int = 5,
    ):
        self.policy = policy if policy is not None else default_policy()
        self.baseline = baseline
        self.obs = obs
        self.max_passes = max_passes

    def known_rules(self) -> List[str]:
        return self.policy.rule_ids() + [PARSE_ERROR]

    # -- discovery --------------------------------------------------------------

    @staticmethod
    def discover(root: str, paths: Sequence[str]) -> List[str]:
        return framework.discover(root, paths, label="taint")

    # -- analysis ---------------------------------------------------------------

    def analyze_sources(
        self, files: Sequence[Tuple[str, str]], root: str = ""
    ) -> TaintReport:
        """Analyze ``(relpath, source)`` pairs (filesystem-free entry point)."""
        report = TaintReport(root=root)
        report.files_scanned = len(files)
        known = self.known_rules()

        modules: List[ModuleInfo] = []
        per_file: Dict[str, List[Finding]] = {}
        suppressions_by_file = {}
        for relpath, source in files:
            source_lines = source.splitlines()
            suppressions = parse_suppressions(
                source_lines, known, tool="taint", annotation_kinds=ANNOTATION_KINDS
            )
            suppressions_by_file[relpath] = suppressions
            findings = per_file.setdefault(relpath, [])
            for line, column, message in suppressions.bad_directives:
                findings.append(
                    Finding(
                        file=relpath, line=line, column=column,
                        rule=BAD_DIRECTIVE, message=message,
                    )
                )
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        file=relpath,
                        line=exc.lineno or 1,
                        column=(exc.offset or 1) - 1,
                        rule=PARSE_ERROR,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                continue
            modules.append(
                ModuleInfo(
                    relpath=relpath,
                    module=module_name(relpath),
                    tree=tree,
                    aliases=collect_aliases(tree),
                    suppressions=suppressions,
                )
            )

        table = SummaryTable()
        for _ in range(self.max_passes):
            before = table.fingerprint()
            for info in modules:
                ModuleAnalyzer(info, self.policy, table, collect=False).run()
            if table.fingerprint() == before:
                break

        for info in modules:
            found = ModuleAnalyzer(info, self.policy, table, collect=True).run()
            per_file.setdefault(info.relpath, []).extend(found)

        raw: List[Finding] = []
        for relpath in sorted(per_file):
            findings = sorted(per_file[relpath])
            live, suppressed = split_suppressed(findings, suppressions_by_file[relpath])
            raw.extend(live)
            report.suppressed.extend(suppressed)
        raw.sort()
        if self.baseline is not None:
            report.findings, report.baselined = self.baseline.partition(raw)
        else:
            report.findings = raw
        framework.emit_counters(report, self.obs, "taint")
        return report

    # -- whole-run entry point --------------------------------------------------

    def run(self, root: str, paths: Sequence[str]) -> TaintReport:
        """Analyze every ``.py`` file under ``paths`` (relative to ``root``)."""
        files: List[Tuple[str, str]] = []
        for relpath in self.discover(root, paths):
            with open(os.path.join(root, relpath), encoding="utf-8") as handle:
                files.append((relpath, handle.read()))
        return self.analyze_sources(files, root=root)


def taint_paths(
    root: str,
    paths: Iterable[str],
    policy: Optional[TaintPolicy] = None,
    baseline: Optional[Baseline] = None,
    obs=None,
) -> TaintReport:
    """Convenience wrapper: build an engine and run it once."""
    return TaintEngine(policy=policy, baseline=baseline, obs=obs).run(root, list(paths))
