"""Function summaries and the cross-module summary table.

Whole-program taint needs to see through calls without inlining them.
Each function gets a compact summary computed during the same pass that
finds leaks: because every parameter starts with a *hypothetical*
origin (``param:<name>``) alongside any real ones, one analysis of the
body simultaneously answers "does a real secret hit a sink here?"
(findings) and "would a tainted argument hit a sink here?"
(``param_sinks``, reported at call sites as ``taint-call``).

Summaries are keyed by dotted qualname (``repro.protocol.sender.
ShareSender.offer``) with a per-module bare-name index for local
resolution.  Dataclasses with no explicit ``__init__`` get a
*synthesised* constructor summary mapping each field parameter to an
attribute write, so ``Share(index, data, ...)`` propagates field taint
exactly like a hand-written ``__init__``.

Attribute taint is deliberately **module-scoped**: ``self.x = secret``
taints reads of ``.x`` within the defining module only.  That is the
precision/recall trade documented in docs/TAINT.md -- a global attribute
map would let one module's ``payload`` field taint every other module's
unrelated ``payload``, burying real leaks in noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

__all__ = ["FunctionSummary", "SummaryTable"]


@dataclass
class FunctionSummary:
    """What a caller needs to know about one function."""

    qualname: str
    module: str
    name: str
    #: binding order, leading ``self``/``cls`` already stripped
    params: Tuple[str, ...] = ()
    is_method: bool = False
    is_constructor: bool = False
    #: real origins the return value always carries
    taints_return: FrozenSet[str] = frozenset()
    #: params whose taint flows through to the return value
    return_params: FrozenSet[str] = frozenset()
    #: ``(param, sink_rule, detail)``: a tainted argument bound to
    #: ``param`` reaches a ``sink_rule`` sink inside the body
    param_sinks: Tuple[Tuple[str, str, str], ...] = ()
    #: constructor only: attribute name -> params written into it
    attr_writes: Tuple[Tuple[str, FrozenSet[str]], ...] = ()

    def fingerprint(self) -> tuple:
        return (
            self.qualname,
            tuple(sorted(self.taints_return)),
            tuple(sorted(self.return_params)),
            tuple(sorted(self.param_sinks)),
            tuple(sorted((a, tuple(sorted(ps))) for a, ps in self.attr_writes)),
        )


class SummaryTable:
    """All function summaries plus the module-scoped attribute taint."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionSummary] = {}
        #: module -> bare name -> qualnames defining it
        self.by_module: Dict[str, Dict[str, List[str]]] = {}
        #: class qualname -> constructor summary qualname
        self.classes: Dict[str, str] = {}
        #: (module, attribute) -> real origins written into it
        self.attr_taint: Dict[Tuple[str, str], FrozenSet[str]] = {}

    # -- population -------------------------------------------------------------

    def add(self, summary: FunctionSummary) -> None:
        self.functions[summary.qualname] = summary
        names = self.by_module.setdefault(summary.module, {})
        slot = names.setdefault(summary.name, [])
        if summary.qualname not in slot:
            slot.append(summary.qualname)

    def add_class(self, class_qualname: str, init_summary: FunctionSummary) -> None:
        init_summary.is_constructor = True
        self.add(init_summary)
        self.classes[class_qualname] = init_summary.qualname
        # the bare class name also resolves locally (``Share(...)``)
        module, _, bare = class_qualname.rpartition(".")
        slot = self.by_module.setdefault(module, {}).setdefault(bare, [])
        if init_summary.qualname not in slot:
            slot.append(init_summary.qualname)

    def record_attr(self, module: str, attr: str, origins: FrozenSet[str]) -> None:
        if not origins:
            return
        key = (module, attr)
        self.attr_taint[key] = self.attr_taint.get(key, frozenset()) | origins

    # -- lookup -----------------------------------------------------------------

    def attr_origins(self, module: str, attr: str) -> FrozenSet[str]:
        return self.attr_taint.get((module, attr), frozenset())

    def constructor_for(self, class_qualname: str) -> Optional[FunctionSummary]:
        qualname = self.classes.get(class_qualname)
        return self.functions.get(qualname) if qualname else None

    def resolve(self, qualname: str) -> Optional[FunctionSummary]:
        """An exact qualname: a function directly, or a class's constructor."""
        if qualname in self.functions:
            return self.functions[qualname]
        return self.constructor_for(qualname)

    def resolve_local(self, module: str, bare_name: str) -> Optional[FunctionSummary]:
        """A bare name resolved within ``module``, only when unambiguous."""
        qualnames = self.by_module.get(module, {}).get(bare_name, [])
        if len(qualnames) == 1:
            return self.functions.get(qualnames[0])
        return None

    # -- fixpoint ---------------------------------------------------------------

    def fingerprint(self) -> tuple:
        """A stable digest of everything call sites can observe; the
        cross-module pass repeats until this stops changing."""
        return (
            tuple(s.fingerprint() for _, s in sorted(self.functions.items())),
            tuple(sorted((k, tuple(sorted(v))) for k, v in self.attr_taint.items())),
        )
