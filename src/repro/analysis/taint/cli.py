"""Command-line front end for the secret-taint analysis.

Reached three ways, all sharing this module:

* ``repro-model taint ...`` (the installed console script),
* ``python -m repro.cli taint ...``,
* ``python -m repro.analysis.taint ...``.

Exit status mirrors the determinism linter exactly: 0 when the tree is
clean (after suppressions and the baseline), 1 when live findings
remain, 2 on usage errors -- CI gates on the exit code alone.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.analysis.framework import Baseline, print_report
from repro.analysis.taint.engine import TaintEngine
from repro.analysis.taint.policy import default_policy

__all__ = ["add_taint_arguments", "main", "run_taint"]

#: Default analysis target, relative to the root.  Unlike the linter,
#: the default scope is the shipped package only: tests and benchmarks
#: legitimately print and persist secret-adjacent fixtures.
DEFAULT_PATHS = ("src",)

#: Default baseline location, relative to the root.
DEFAULT_BASELINE = "taint-baseline.json"


def add_taint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the taint options to ``parser`` (shared with repro.cli)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (text: file:line:col lines; json: stable schema)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=f"baseline file of grandfathered findings (default: "
        f"{DEFAULT_BASELINE} next to --root when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-sinks",
        action="store_true",
        help="print the source/sink/sanitizer catalogue and exit",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="also emit the taint rule-hit counters through repro.obs to "
        "this path (format inferred from the suffix; see docs/OBSERVABILITY.md)",
    )


def _print_catalogue() -> None:
    policy = default_policy()
    print("sinks:")
    for rule_id, description in policy.sink_catalogue():
        print(f"  {rule_id:18s} {description}")
    print("sources:")
    for sp in policy.source_params:
        scope = ", ".join(sp.includes) if sp.includes else "everywhere"
        print(f"  param {', '.join(sp.names)}  [scope: {scope}]")
    for sc in policy.source_calls:
        names = ", ".join(sc.qualnames + sc.methods)
        print(f"  call {names}  [{sc.label}]")
    print("sanitizers:")
    for sanitizer in policy.sanitizers:
        names = ", ".join(
            sanitizer.qualnames
            + tuple(f"{p}*" for p in sanitizer.prefixes)
            + tuple(f".{m}()" for m in sanitizer.methods)
        )
        print(f"  {names}")


def run_taint(args: argparse.Namespace) -> int:
    """Execute a parsed taint invocation; returns the process exit code."""
    if args.list_sinks:
        _print_catalogue()
        return 0

    root = os.path.abspath(args.root)
    paths = list(args.paths)
    if not paths:
        paths = [p for p in DEFAULT_PATHS if os.path.exists(os.path.join(root, p))]
        if not paths:
            print(f"error: no default taint paths exist under {root}", file=sys.stderr)
            return 2

    baseline_path = args.baseline or os.path.join(root, DEFAULT_BASELINE)
    baseline: Optional[Baseline] = None
    if not args.no_baseline and not args.update_baseline and os.path.exists(baseline_path):
        baseline = Baseline.load(baseline_path)

    obs = None
    if args.metrics_out:
        from repro.obs import Observability

        obs = Observability.create()

    engine = TaintEngine(baseline=baseline, obs=obs)
    try:
        report = engine.run(root, paths)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        Baseline.from_findings(report.findings).write(baseline_path)
        print(f"baseline: {len(report.findings)} finding(s) -> {baseline_path}")
        return 0

    print_report(report, args.format)

    if obs is not None:
        from repro.obs import write_metrics

        write_metrics(args.metrics_out, obs.registry.snapshot())

    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-taint",
        description="secret-flow (source/sink/sanitizer) static analysis "
        "for the repro tree (see docs/TAINT.md)",
    )
    add_taint_arguments(parser)
    return run_taint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
