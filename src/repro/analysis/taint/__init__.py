"""Secret-taint static analysis: no secret bytes reach logs, metrics,
traces, exceptions, or persistence.

The paper's privacy guarantee is information-theoretic -- below the
threshold, shares reveal *nothing* (H(Y) = H(X)) -- but one
``tracer.event(payload=...)`` voids it outside the model.  This package
proves the implementation honours the model: a source/sink/sanitizer
dataflow analysis (policy in :mod:`~repro.analysis.taint.policy`,
propagation in :mod:`~repro.analysis.taint.propagation`) built on the
same framework, report format, suppressions and baseline machinery as
the determinism linter.  ``repro-model taint`` is the CLI; docs/TAINT.md
is the threat model in prose.
"""

from repro.analysis.taint.engine import (
    ANNOTATION_KINDS,
    TaintEngine,
    TaintReport,
    taint_paths,
)
from repro.analysis.taint.policy import (
    Sanitizer,
    Sink,
    SourceCall,
    SourceParam,
    TaintPolicy,
    default_policy,
)
from repro.analysis.taint.summaries import FunctionSummary, SummaryTable

__all__ = [
    "ANNOTATION_KINDS",
    "FunctionSummary",
    "Sanitizer",
    "Sink",
    "SourceCall",
    "SourceParam",
    "SummaryTable",
    "TaintEngine",
    "TaintPolicy",
    "TaintReport",
    "default_policy",
    "taint_paths",
]
