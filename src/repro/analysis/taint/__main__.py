"""``python -m repro.analysis.taint`` entry point."""

import sys

from repro.analysis.taint.cli import main

if __name__ == "__main__":
    sys.exit(main())
