"""Assignment-graph taint propagation over one module.

The propagation model, in one paragraph: taint is a set of *origin*
strings attached to dotted value paths (``x``, ``self._outbuf``,
``symbol.payload``).  Real origins (``source:param payload``,
``source:call reconstructed secret``, ``source:annotated ...``) mean a
secret provably flows here; every function parameter additionally
starts with a *hypothetical* origin (``param:<name>``), so the same
walk that reports real leaks also derives the function's summary --
"param p would reach sink r" -- without a second pass.  Call sites then
replay summaries against actual argument taint, which is how flows
cross module boundaries (``taint-call`` findings).

Statements execute in source order with a bounded per-function fixpoint
(the body re-runs until the environment stabilises, so loop-carried
flows like ``buf += datagram`` converge).  Assignments to names are
strong updates -- ``x = len(x)`` genuinely declassifies ``x`` -- while
container and attribute updates are weak (unions), the standard
may-alias compromise.  Branches are walked in order without joins;
docs/TAINT.md lists the resulting blind spots.

Deliberate asymmetry: a tainted *field* does not taint its object
(``symbol.payload`` secret does not make ``symbol.seq`` secret), but a
tainted *object* taints every field read from it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.resolve import qualified_name
from repro.analysis.suppressions import FileSuppressions
from repro.analysis.taint.policy import TaintPolicy
from repro.analysis.taint.summaries import FunctionSummary, SummaryTable

__all__ = ["ModuleAnalyzer", "ModuleInfo", "module_name"]

_EMPTY: FrozenSet[str] = frozenset()

#: Real-origin / hypothetical-origin prefixes (see module docstring).
_REAL = "source:"
_HYP = "param:"


def module_name(relpath: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/protocol/sender.py`` -> ``repro.protocol.sender``;
    a leading ``src/`` layout component and trailing ``__init__`` are
    dropped.
    """
    path = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _real(origins: FrozenSet[str]) -> FrozenSet[str]:
    return frozenset(o for o in origins if o.startswith(_REAL))


def _hyp_params(origins: FrozenSet[str]) -> FrozenSet[str]:
    return frozenset(o[len(_HYP):] for o in origins if o.startswith(_HYP))


def _origin_labels(origins: FrozenSet[str]) -> str:
    return ", ".join(sorted(o[len(_REAL):] for o in origins))


def _path_of(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ModuleInfo:
    """One parsed file, ready for analysis."""

    relpath: str
    module: str
    tree: ast.Module
    aliases: Dict[str, str]
    suppressions: FileSuppressions


@dataclass
class _Acc:
    """Mutable per-function summary accumulator."""

    qualname: str = ""
    taints_return: Set[str] = field(default_factory=set)
    return_params: Set[str] = field(default_factory=set)
    param_sinks: Set[Tuple[str, str, str]] = field(default_factory=set)
    attr_writes: Dict[str, Set[str]] = field(default_factory=dict)

    def fingerprint(self) -> tuple:
        return (
            tuple(sorted(self.taints_return)),
            tuple(sorted(self.return_params)),
            tuple(sorted(self.param_sinks)),
            tuple(sorted((a, tuple(sorted(p))) for a, p in self.attr_writes.items())),
        )


class ModuleAnalyzer:
    """Runs the propagation pass over one module.

    With ``collect=False`` only summaries and attribute taint are
    recorded (the cross-module fixpoint passes); with ``collect=True``
    findings are also emitted (the final pass).
    """

    #: per-function fixpoint bound; flows needing more iterations than
    #: this through a single body are beyond the model anyway
    MAX_BODY_PASSES = 8

    def __init__(
        self,
        info: ModuleInfo,
        policy: TaintPolicy,
        table: SummaryTable,
        collect: bool = True,
    ):
        self.info = info
        self.policy = policy
        self.table = table
        self.collect = collect
        self._findings: Dict[tuple, Finding] = {}
        self._class_name: Optional[str] = None
        self._format_quiet = 0

    # -- entry points ------------------------------------------------------------

    def run(self) -> List[Finding]:
        env: Dict[str, FrozenSet[str]] = {}
        module_acc = _Acc(qualname=self.info.module)
        for stmt in self.info.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._analyze_function(stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._analyze_class(stmt)
            else:
                self._exec(stmt, env, module_acc)
        return sorted(self._findings.values())

    def _analyze_class(self, node: ast.ClassDef) -> None:
        methods = [
            s for s in node.body if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        if not any(m.name == "__init__" for m in methods):
            self._synthesize_constructor(node)
        for method in methods:
            self._analyze_function(method, class_name=node.name)

    def _synthesize_constructor(self, node: ast.ClassDef) -> None:
        """Dataclass-style classes: each annotated field is a constructor
        parameter written verbatim to the same-named attribute."""
        fields: List[str] = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                fields.append(stmt.target.id)
        if not fields:
            return
        qualname = f"{self.info.module}.{node.name}.__init__"
        summary = FunctionSummary(
            qualname=qualname,
            module=self.info.module,
            name=node.name,
            params=tuple(fields),
            is_method=True,
            attr_writes=tuple((f, frozenset({f})) for f in fields),
        )
        self.table.add_class(f"{self.info.module}.{node.name}", summary)

    def _analyze_function(
        self,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        class_name: Optional[str],
        register: bool = True,
    ) -> None:
        args = func.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg is not None:
            params.append(args.vararg.arg)
        if args.kwarg is not None:
            params.append(args.kwarg.arg)
        is_method = bool(params) and params[0] in ("self", "cls")

        prefix = f"{self.info.module}." + (f"{class_name}." if class_name else "")
        acc = _Acc(qualname=prefix + func.name)

        # `# taint: source=<param>` on the def line; bare `source` marks
        # every parameter.
        annotated = self.info.suppressions.annotations_on(func.lineno, "source")
        env: Dict[str, FrozenSet[str]] = {}
        for p in params:
            origins: Set[str] = set()
            if p not in ("self", "cls"):
                origins.add(_HYP + p)
                if (
                    self.policy.param_source(p, self.info.relpath)
                    or p in annotated
                    or "" in annotated
                ):
                    origins.add(f"{_REAL}param {p}")
            env[p] = frozenset(origins)

        outer_class, self._class_name = self._class_name, class_name
        try:
            self._fixpoint(func.body, env, acc)
        finally:
            self._class_name = outer_class

        if not register:
            return
        summary = FunctionSummary(
            qualname=acc.qualname,
            module=self.info.module,
            name=func.name,
            params=tuple(p for p in params if p not in ("self", "cls")),
            is_method=is_method,
            taints_return=frozenset(acc.taints_return),
            return_params=frozenset(acc.return_params),
            param_sinks=tuple(sorted(acc.param_sinks)),
            attr_writes=tuple(
                sorted((a, frozenset(ps)) for a, ps in acc.attr_writes.items())
            ),
        )
        if func.name == "__init__" and class_name is not None:
            self.table.add_class(f"{self.info.module}.{class_name}", summary)
        else:
            self.table.add(summary)

    def _fixpoint(self, body: List[ast.stmt], env: Dict[str, FrozenSet[str]], acc: _Acc) -> None:
        for _ in range(self.MAX_BODY_PASSES):
            before_env = dict(env)
            before_acc = acc.fingerprint()
            for stmt in body:
                self._exec(stmt, env, acc)
            if env == before_env and acc.fingerprint() == before_acc:
                break

    # -- statements --------------------------------------------------------------

    def _exec(self, stmt: ast.stmt, env: Dict[str, FrozenSet[str]], acc: _Acc) -> None:
        if isinstance(stmt, ast.Assign):
            v = self._value_taint(stmt, stmt.value, env, acc)
            for target in stmt.targets:
                self._bind(target, v, stmt.value, env, acc)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                v = self._value_taint(stmt, stmt.value, env, acc)
                self._bind(stmt.target, v, stmt.value, env, acc)
        elif isinstance(stmt, ast.AugAssign):
            v = self._value_taint(stmt, stmt.value, env, acc)
            path = _path_of(stmt.target)
            if path is not None:
                env[path] = env.get(path, _EMPTY) | v
            if isinstance(stmt.target, ast.Attribute):
                self._record_attr_write(stmt.target, env.get(path or "", _EMPTY) | v, acc)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                v = self._value_taint(stmt, stmt.value, env, acc)
                acc.taints_return |= _real(v)
                acc.return_params |= _hyp_params(v)
        elif isinstance(stmt, ast.Raise):
            self._exec_raise(stmt, env, acc)
        elif isinstance(stmt, ast.Expr):
            self._value_taint(stmt, stmt.value, env, acc)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test, env, acc)
            for s in stmt.body:
                self._exec(s, env, acc)
            for s in stmt.orelse:
                self._exec(s, env, acc)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            v = self._eval(stmt.iter, env, acc)
            # `for i, x in enumerate(tainted)`: the counter is clean
            if (
                isinstance(stmt.iter, ast.Call)
                and isinstance(stmt.iter.func, ast.Name)
                and stmt.iter.func.id == "enumerate"
                and isinstance(stmt.target, ast.Tuple)
                and len(stmt.target.elts) == 2
            ):
                self._bind_weak(stmt.target.elts[1], v, env)
            else:
                self._bind_weak(stmt.target, v, env)
            for s in stmt.body:
                self._exec(s, env, acc)
            for s in stmt.orelse:
                self._exec(s, env, acc)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                v = self._eval(item.context_expr, env, acc)
                if item.optional_vars is not None:
                    self._bind_weak(item.optional_vars, v, env)
            for s in stmt.body:
                self._exec(s, env, acc)
        elif isinstance(stmt, ast.Try):
            for s in stmt.body:
                self._exec(s, env, acc)
            for handler in stmt.handlers:
                if handler.name is not None:
                    env[handler.name] = _EMPTY
                for s in handler.body:
                    self._exec(s, env, acc)
            for s in stmt.orelse:
                self._exec(s, env, acc)
            for s in stmt.finalbody:
                self._exec(s, env, acc)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # nested defs: analyzed for findings, never summarised --
            # they are not addressable from other modules
            self._analyze_function(stmt, class_name=None, register=False)
        elif isinstance(stmt, ast.ClassDef):
            for s in stmt.body:
                if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._analyze_function(s, class_name=None, register=False)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env, acc)
            if stmt.msg is not None:
                v = self._eval(stmt.msg, env, acc)
                self._report(stmt.msg, "taint-exception", "assert message", v, acc)
        # Import/Pass/Break/Continue/Delete/Global/Nonlocal: no flow

    def _exec_raise(self, stmt: ast.Raise, env: Dict[str, FrozenSet[str]], acc: _Acc) -> None:
        if stmt.exc is None:
            return
        # the f-string/str() format sink stays quiet inside the raise:
        # one `taint-exception` finding describes the leak, not two
        self._format_quiet += 1
        try:
            if isinstance(stmt.exc, ast.Call):
                v: FrozenSet[str] = _EMPTY
                for arg in stmt.exc.args:
                    node = arg.value if isinstance(arg, ast.Starred) else arg
                    v = v | self._eval(node, env, acc)
                for kw in stmt.exc.keywords:
                    v = v | self._eval(kw.value, env, acc)
                # still evaluate the call itself for non-format sinks
                self._eval(stmt.exc, env, acc)
            else:
                v = self._eval(stmt.exc, env, acc)
        finally:
            self._format_quiet -= 1
        self._report(stmt, "taint-exception", "exception message", v, acc)

    # -- binding -----------------------------------------------------------------

    def _value_taint(
        self, stmt: ast.stmt, value: ast.expr, env: Dict[str, FrozenSet[str]], acc: _Acc
    ) -> FrozenSet[str]:
        """Evaluate ``value`` and apply the statement line's annotations."""
        v = self._eval(value, env, acc)
        supp = self.info.suppressions
        if supp.has_annotation(stmt.lineno, "declassified"):
            return _EMPTY
        for label in supp.annotations_on(stmt.lineno, "source"):
            v = v | {f"{_REAL}annotated {label or 'secret'}"}
        return v

    def _bind(
        self,
        target: ast.expr,
        v: FrozenSet[str],
        value_node: Optional[ast.expr],
        env: Dict[str, FrozenSet[str]],
        acc: _Acc,
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = v
        elif isinstance(target, ast.Attribute):
            path = _path_of(target)
            if path is not None:
                env[path] = v
            self._record_attr_write(target, v, acc)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: List[Optional[ast.expr]]
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(value_node.elts) == len(
                target.elts
            ):
                elements = list(value_node.elts)
            else:
                elements = [None] * len(target.elts)
            for sub_target, sub_value in zip(target.elts, elements):
                if isinstance(sub_target, ast.Starred):
                    sub_target = sub_target.value
                sub_taint = self._eval(sub_value, env, acc) if sub_value is not None else v
                self._bind(sub_target, sub_taint, sub_value, env, acc)
        elif isinstance(target, ast.Subscript):
            base = _path_of(target.value)
            if base is not None:
                env[base] = env.get(base, _EMPTY) | v
            if isinstance(target.value, ast.Attribute):
                self._record_attr_write(target.value, v, acc)

    def _bind_weak(self, target: ast.expr, v: FrozenSet[str], env: Dict[str, FrozenSet[str]]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = env.get(target.id, _EMPTY) | v
        elif isinstance(target, (ast.Tuple, ast.List)):
            for sub in target.elts:
                if isinstance(sub, ast.Starred):
                    sub = sub.value
                self._bind_weak(sub, v, env)
        elif isinstance(target, ast.Attribute):
            path = _path_of(target)
            if path is not None:
                env[path] = env.get(path, _EMPTY) | v

    def _record_attr_write(self, target: ast.Attribute, v: FrozenSet[str], acc: _Acc) -> None:
        real = _real(v)
        if real:
            self.table.record_attr(self.info.module, target.attr, real)
        base = _path_of(target.value)
        if base is not None and (base == "self" or base.startswith("self.")):
            for p in _hyp_params(v):
                acc.attr_writes.setdefault(target.attr, set()).add(p)

    # -- expressions -------------------------------------------------------------

    def _eval(self, node: ast.expr, env: Dict[str, FrozenSet[str]], acc: _Acc) -> FrozenSet[str]:
        if isinstance(node, ast.Constant):
            return _EMPTY
        if isinstance(node, ast.Name):
            return env.get(node.id, _EMPTY)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env, acc)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env, acc)
        if isinstance(node, ast.Subscript):
            return self._eval(node.value, env, acc) | self._eval(node.slice, env, acc)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left, env, acc) | self._eval(node.right, env, acc)
        if isinstance(node, ast.BoolOp):
            out: FrozenSet[str] = _EMPTY
            for value in node.values:
                out = out | self._eval(value, env, acc)
            return out
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env, acc)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env, acc)
            return self._eval(node.body, env, acc) | self._eval(node.orelse, env, acc)
        if isinstance(node, ast.Compare):
            # a boolean fact about a secret is a declassified statistic
            self._eval(node.left, env, acc)
            for comparator in node.comparators:
                self._eval(comparator, env, acc)
            return _EMPTY
        if isinstance(node, ast.JoinedStr):
            return self._eval_fstring(node, env, acc)
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value, env, acc)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = _EMPTY
            for elt in node.elts:
                if isinstance(elt, ast.Starred):
                    elt = elt.value
                out = out | self._eval(elt, env, acc)
            return out
        if isinstance(node, ast.Dict):
            out = _EMPTY
            for key in node.keys:
                if key is not None:
                    out = out | self._eval(key, env, acc)
            for value in node.values:
                out = out | self._eval(value, env, acc)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._bind_comprehension(node.generators, env, acc)
            return self._eval(node.elt, env, acc)
        if isinstance(node, ast.DictComp):
            self._bind_comprehension(node.generators, env, acc)
            return self._eval(node.key, env, acc) | self._eval(node.value, env, acc)
        if isinstance(node, ast.NamedExpr):
            v = self._eval(node.value, env, acc)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = v
            return v
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env, acc)
        if isinstance(node, ast.Await):
            return self._eval(node.value, env, acc)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                v = self._eval(node.value, env, acc)
                acc.taints_return |= _real(v)
                acc.return_params |= _hyp_params(v)
            return _EMPTY
        if isinstance(node, ast.Lambda):
            return _EMPTY
        if isinstance(node, ast.Slice):
            out = _EMPTY
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    out = out | self._eval(part, env, acc)
            return out
        return _EMPTY

    def _bind_comprehension(
        self, generators: List[ast.comprehension], env: Dict[str, FrozenSet[str]], acc: _Acc
    ) -> None:
        for gen in generators:
            v = self._eval(gen.iter, env, acc)
            self._bind_weak(gen.target, v, env)
            for condition in gen.ifs:
                self._eval(condition, env, acc)

    def _eval_attribute(
        self, node: ast.Attribute, env: Dict[str, FrozenSet[str]], acc: _Acc
    ) -> FrozenSet[str]:
        taints: Set[str] = set()
        path = _path_of(node)
        if path is not None:
            parts = path.split(".")
            for i in range(len(parts), 0, -1):
                taints |= env.get(".".join(parts[:i]), _EMPTY)
        else:
            taints |= self._eval(node.value, env, acc)
        taints |= self.table.attr_origins(self.info.module, node.attr)
        return frozenset(taints)

    def _eval_fstring(
        self, node: ast.JoinedStr, env: Dict[str, FrozenSet[str]], acc: _Acc
    ) -> FrozenSet[str]:
        out: FrozenSet[str] = _EMPTY
        for value in node.values:
            if isinstance(value, ast.FormattedValue):
                out = out | self._eval(value.value, env, acc)
        if out and not self._format_quiet:
            self._report(node, "taint-format", "f-string", out, acc)
        return out

    # -- calls -------------------------------------------------------------------

    def _eval_call(self, node: ast.Call, env: Dict[str, FrozenSet[str]], acc: _Acc) -> FrozenSet[str]:
        func = node.func
        qualname = qualified_name(func, self.info.aliases)
        if qualname is not None and qualname.startswith("."):
            qualname = self._resolve_relative(qualname)
        receiver = method = None
        if isinstance(func, ast.Attribute):
            method = func.attr
            base_path = _path_of(func.value)
            receiver = base_path.split(".")[-1] if base_path else None

        positional: List[FrozenSet[str]] = []
        for arg in node.args:
            inner = arg.value if isinstance(arg, ast.Starred) else arg
            positional.append(self._eval(inner, env, acc))
        keywords: List[Tuple[Optional[str], FrozenSet[str]]] = []
        for kw in node.keywords:
            keywords.append((kw.arg, self._eval(kw.value, env, acc)))

        all_args: FrozenSet[str] = _EMPTY
        for t in positional:
            all_args = all_args | t
        for _, t in keywords:
            all_args = all_args | t
        kwarg_taint: FrozenSet[str] = _EMPTY
        for _, t in keywords:
            kwarg_taint = kwarg_taint | t

        line_sinks = self.info.suppressions.annotations_on(node.lineno, "sink")

        if not line_sinks and self.policy.is_sanitizer(qualname, receiver, method):
            return _EMPTY

        for sink in self.policy.matching_sinks(qualname, receiver, method):
            checked = kwarg_taint if sink.kwargs_only else all_args
            self._report(node, sink.rule_id, sink.display(qualname, receiver, method), checked, acc)
        for label in line_sinks:
            self._report(node, "taint-sink", label or "annotated sink", all_args, acc)

        source_label = self.policy.call_source(qualname, receiver, method, self.info.relpath)
        if source_label is not None:
            return frozenset({f"{_REAL}call {source_label}"})

        summary = self._resolve_summary(qualname, func, method)
        if summary is not None:
            return self._apply_summary(node, summary, positional, keywords, acc)

        flow: FrozenSet[str] = all_args
        if isinstance(func, ast.Attribute):
            flow = flow | self._eval(func.value, env, acc)
        return flow

    def _resolve_relative(self, qualname: str) -> str:
        dots = len(qualname) - len(qualname.lstrip("."))
        rest = qualname[dots:]
        parts = self.info.module.split(".")
        if dots > len(parts):
            return rest
        # one leading dot = current package, each further dot one level up
        base = parts[: len(parts) - dots]
        return ".".join(base + ([rest] if rest else [])).strip(".")

    def _resolve_summary(
        self, qualname: Optional[str], func: ast.expr, method: Optional[str]
    ) -> Optional[FunctionSummary]:
        module = self.info.module
        if qualname:
            found = self.table.resolve(qualname)
            if found is not None:
                return found
            if qualname.startswith("self.") and self._class_name and qualname.count(".") == 1:
                found = self.table.resolve(f"{module}.{self._class_name}.{qualname[5:]}")
                if found is not None:
                    return found
            if "." not in qualname:
                found = self.table.resolve(f"{module}.{qualname}")
                if found is not None:
                    return found
                return self.table.resolve_local(module, qualname)
            return None
        if method is not None:
            return self.table.resolve_local(module, method)
        return None

    def _apply_summary(
        self,
        node: ast.Call,
        summary: FunctionSummary,
        positional: List[FrozenSet[str]],
        keywords: List[Tuple[Optional[str], FrozenSet[str]]],
        acc: _Acc,
    ) -> FrozenSet[str]:
        bind: Dict[str, FrozenSet[str]] = {}
        overflow: FrozenSet[str] = _EMPTY
        for i, taint in enumerate(positional):
            if i < len(summary.params):
                name = summary.params[i]
                bind[name] = bind.get(name, _EMPTY) | taint
            else:
                overflow = overflow | taint
        for name, taint in keywords:
            if name is not None and name in summary.params:
                bind[name] = bind.get(name, _EMPTY) | taint
            else:
                overflow = overflow | taint

        for param, rule, detail in summary.param_sinks:
            taint = bind.get(param, _EMPTY) | overflow
            real = _real(taint)
            if real and self.collect and not (rule == "taint-format" and self._format_quiet):
                self._add_finding(
                    node,
                    "taint-call",
                    f"tainted argument '{param}' to {summary.name}() reaches "
                    f"{rule} sink ({detail}) (origins: {_origin_labels(real)})",
                )
            for p in sorted(_hyp_params(taint)):
                acc.param_sinks.add((p, rule, f"via {summary.name}: {detail}"))

        if summary.is_constructor:
            for attr, params in summary.attr_writes:
                taint = overflow
                for p in params:
                    taint = taint | bind.get(p, _EMPTY)
                self.table.record_attr(summary.module, attr, _real(taint))
                base_acc_params = _hyp_params(taint)
                if base_acc_params:
                    # a caller storing its own param into a field keeps
                    # the hypothesis alive through the constructor
                    for p in base_acc_params:
                        acc.attr_writes.setdefault(attr, set()).add(p)
            return _EMPTY

        out: Set[str] = set(summary.taints_return)
        for p in summary.return_params:
            out |= bind.get(p, _EMPTY)
        return frozenset(out)

    # -- findings ----------------------------------------------------------------

    def _report(
        self, node: ast.AST, rule: str, display: str, origins: FrozenSet[str], acc: _Acc
    ) -> None:
        real = _real(origins)
        if real and self.collect and not (rule == "taint-format" and self._format_quiet):
            if rule in ("taint-exception", "taint-sink", "taint-format"):
                message = (
                    f"tainted value reaches {display} (origins: {_origin_labels(real)})"
                )
            else:
                message = (
                    f"tainted value flows into {display} (origins: {_origin_labels(real)})"
                )
            self._add_finding(node, rule, message)
        for p in sorted(_hyp_params(origins)):
            acc.param_sinks.add((p, rule, display))

    def _add_finding(self, node: ast.AST, rule: str, message: str) -> None:
        finding = Finding(
            file=self.info.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )
        self._findings.setdefault(
            (finding.file, finding.line, finding.column, finding.rule, finding.message),
            finding,
        )
