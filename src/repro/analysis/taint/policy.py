"""The source/sink/sanitizer policy of the secret-taint analysis.

The policy is the threat model made executable (docs/TAINT.md is the
prose form):

* **Sources** introduce secret material: plaintext application payloads
  entering the protocol (``datagram`` in ``protocol.dibs``, ``payload``
  in ``protocol.sender``), ``secret``/``plaintext`` parameters anywhere,
  reconstruction outputs (``scheme.reconstruct*``, ``robust_reconstruct``
  -- the inverse of sharing re-creates the secret), and polynomial
  coefficient draws in the sharing/GF layer (a Shamir coefficient is
  exactly as secret as the secret it masks).
* **Sanitizers** cross the information-theoretic boundary: ``split``/
  ``split_many`` output is share material an individual channel may see
  (the paper's guarantee *is* that it leaks nothing below the
  threshold); lengths, counts, digests and boolean facts are
  declassified aggregate statistics.
* **Sinks** are everywhere bytes escape the process or the abstraction:
  trace events, metric labels, log records, stdout, exception messages,
  persisted files/JSON, and ``repr``/``str``/f-string formatting.

Policy entries are matched syntactically (qualified names through the
import-alias map; method calls by trailing receiver name), mirroring
the determinism linter's deliberate trade: a false positive is one
``# taint:`` directive away, full type inference would dwarf the
subsystem it polices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Sanitizer",
    "Sink",
    "SourceCall",
    "SourceParam",
    "TaintPolicy",
    "default_policy",
    "STRUCTURAL_RULES",
]

#: Rules emitted by the propagation engine itself rather than a
#: :class:`Sink` entry: ``taint-exception`` (tainted exception message),
#: ``taint-format`` (tainted f-string; also used by the str/repr sink),
#: ``taint-sink`` (``# taint: sink`` annotated line) and ``taint-call``
#: (tainted argument reaching a sink through a summarised callee).
STRUCTURAL_RULES: Dict[str, str] = {
    "taint-exception": "exception message constructed from tainted value",
    "taint-format": "f-string / str() / repr() formatting of tainted value",
    "taint-sink": "tainted value on a '# taint: sink' annotated line",
    "taint-call": "tainted argument flows to a sink inside the callee",
}


def _path_matches(relpath: str, includes: Tuple[str, ...]) -> bool:
    """True when ``relpath`` is inside the include set (empty = everywhere)."""
    if not includes:
        return True
    for prefix in includes:
        if relpath == prefix or relpath.startswith(prefix.rstrip("/") + "/"):
            return True
    return False


@dataclass(frozen=True)
class SourceParam:
    """Function parameters whose *names* declare secret inputs."""

    names: Tuple[str, ...]
    includes: Tuple[str, ...] = ()

    def matches(self, name: str, relpath: str) -> bool:
        return name in self.names and _path_matches(relpath, self.includes)


@dataclass(frozen=True)
class SourceCall:
    """Calls whose return value *is* secret material."""

    label: str
    qualnames: Tuple[str, ...] = ()
    methods: Tuple[str, ...] = ()
    receivers: Tuple[str, ...] = ()
    includes: Tuple[str, ...] = ()

    def matches(
        self, qualname: Optional[str], receiver: Optional[str], method: Optional[str],
        relpath: str,
    ) -> bool:
        if not _path_matches(relpath, self.includes):
            return False
        if qualname is not None and qualname in self.qualnames:
            return True
        if method is not None and method in self.methods:
            return not self.receivers or (receiver is not None and receiver in self.receivers)
        return False


@dataclass(frozen=True)
class Sanitizer:
    """Calls whose return value is declassified regardless of inputs."""

    qualnames: Tuple[str, ...] = ()
    prefixes: Tuple[str, ...] = ()
    methods: Tuple[str, ...] = ()
    receivers: Tuple[str, ...] = ()

    def matches(
        self, qualname: Optional[str], receiver: Optional[str], method: Optional[str]
    ) -> bool:
        if qualname is not None:
            if qualname in self.qualnames:
                return True
            if any(qualname.startswith(p) for p in self.prefixes):
                return True
        if method is not None and method in self.methods:
            return not self.receivers or (receiver is not None and receiver in self.receivers)
        return False


@dataclass(frozen=True)
class Sink:
    """Calls whose arguments must never carry secret taint."""

    rule_id: str
    description: str
    qualnames: Tuple[str, ...] = ()
    methods: Tuple[str, ...] = ()
    receivers: Tuple[str, ...] = ()
    #: check only keyword-argument values (metric *label values* leak;
    #: the positional metric name is policed by its own literal-ness)
    kwargs_only: bool = False

    def matches(
        self, qualname: Optional[str], receiver: Optional[str], method: Optional[str]
    ) -> bool:
        if qualname is not None and qualname in self.qualnames:
            return True
        if method is not None and method in self.methods:
            return not self.receivers or (receiver is not None and receiver in self.receivers)
        return False

    def display(self, qualname: Optional[str], receiver: Optional[str], method: Optional[str]) -> str:
        if method is not None and (qualname is None or qualname not in self.qualnames):
            return f"{receiver or '<expr>'}.{method}()"
        return f"{qualname}()"


@dataclass
class TaintPolicy:
    """The full source/sink/sanitizer catalogue driving one analysis."""

    source_params: List[SourceParam] = field(default_factory=list)
    source_calls: List[SourceCall] = field(default_factory=list)
    sanitizers: List[Sanitizer] = field(default_factory=list)
    sinks: List[Sink] = field(default_factory=list)

    def rule_ids(self) -> List[str]:
        """Every rule id this policy can emit, sorted and de-duplicated."""
        ids = {sink.rule_id for sink in self.sinks}
        ids.update(STRUCTURAL_RULES)
        return sorted(ids)

    def sink_catalogue(self) -> List[Tuple[str, str]]:
        """``(rule_id, description)`` pairs for ``--list-sinks``."""
        seen: Dict[str, str] = {}
        for sink in self.sinks:
            seen.setdefault(sink.rule_id, sink.description)
        for rule_id, description in STRUCTURAL_RULES.items():
            seen.setdefault(rule_id, description)
        return sorted(seen.items())

    # -- matching ---------------------------------------------------------------

    def param_source(self, name: str, relpath: str) -> bool:
        return any(sp.matches(name, relpath) for sp in self.source_params)

    def call_source(
        self, qualname: Optional[str], receiver: Optional[str], method: Optional[str],
        relpath: str,
    ) -> Optional[str]:
        for source in self.source_calls:
            if source.matches(qualname, receiver, method, relpath):
                return source.label
        return None

    def is_sanitizer(
        self, qualname: Optional[str], receiver: Optional[str], method: Optional[str]
    ) -> bool:
        return any(s.matches(qualname, receiver, method) for s in self.sanitizers)

    def matching_sinks(
        self, qualname: Optional[str], receiver: Optional[str], method: Optional[str]
    ) -> List[Sink]:
        return [s for s in self.sinks if s.matches(qualname, receiver, method)]


def default_policy() -> TaintPolicy:
    """The repository's threat model (catalogued in docs/TAINT.md)."""
    return TaintPolicy(
        source_params=[
            # Conventional secret names are secret wherever they appear.
            SourceParam(names=("secret", "secrets", "plaintext", "plaintexts")),
            # MAC key material (docs/AUTH.md): a leaked share-MAC key turns
            # "forgery is detected unconditionally" back into silent
            # acceptance, so keys are secret wherever they flow.
            SourceParam(names=("root_key", "mac_key", "auth_key")),
            # Application payloads are secret exactly where they enter the
            # protocol; downstream `payload` variables (wire datagrams,
            # share buffers) are *share* material and must not be blanket
            # tainted, so the scope is the two ingress modules.  Other
            # ingress points (fleet mux, RE-MICSS facade) declare theirs
            # with `# taint: source=` annotations.
            SourceParam(names=("datagram",), includes=("src/repro/protocol/dibs.py",)),
            SourceParam(
                names=("payload", "payloads"),
                includes=("src/repro/protocol/dibs.py", "src/repro/protocol/sender.py"),
            ),
        ],
        source_calls=[
            # Reconstruction re-creates the secret from shares.
            SourceCall(
                label="reconstructed secret",
                methods=("reconstruct", "reconstruct_many"),
                receivers=("scheme",),
            ),
            SourceCall(
                label="robust reconstruction",
                qualnames=(
                    "repro.sharing.robust.robust_reconstruct",
                    "robust_reconstruct",
                ),
            ),
            # Shamir masking coefficients are one-time pads for the
            # secret; a leaked coefficient voids the threshold.  Scoped
            # to the sharing/GF layer where `rng` draws *are* coefficients.
            SourceCall(
                label="polynomial coefficients",
                methods=("integers", "bytes"),
                receivers=("rng", "_rng"),
                includes=("src/repro/sharing", "src/repro/gf"),
            ),
        ],
        sanitizers=[
            # Aggregate statistics carry no per-byte information we police.
            Sanitizer(qualnames=("len", "hash", "bool", "type", "id", "isinstance")),
            # Digests are the sanctioned way to *name* a buffer in
            # diagnostics (docs/TAINT.md "how to declassify").
            Sanitizer(prefixes=("hashlib.",)),
            Sanitizer(methods=("hexdigest", "digest")),
            # Keyed-MAC outputs cross the authentication boundary: a
            # BLAKE2b/HMAC tag reveals nothing about the key (PRF
            # assumption), and compare_digest returns a boolean fact.
            Sanitizer(prefixes=("hmac.",)),
            Sanitizer(
                qualnames=(
                    "repro.protocol.auth.mac.compute_tag",
                    "compute_tag",
                )
            ),
            Sanitizer(
                qualnames=(
                    "repro.redact.redact_bytes",
                    "redact_bytes",
                    "repro.redact.describe_bytes",
                    "describe_bytes",
                )
            ),
            # The sharing boundary itself: split output is share material,
            # private below the threshold by the paper's Theorem 1.
            Sanitizer(methods=("split", "split_many"), receivers=("scheme",)),
        ],
        sinks=[
            Sink(
                rule_id="taint-trace",
                description="trace span/event fields (obs.tracing exporters persist them)",
                methods=("event", "span", "annotate"),
                receivers=("tracer", "span"),
            ),
            Sink(
                rule_id="taint-metrics",
                description="metric label values (obs.metrics exporters persist them)",
                methods=("counter", "gauge", "histogram"),
                receivers=("registry", "metrics", "_metrics"),
                kwargs_only=True,
            ),
            Sink(
                rule_id="taint-log",
                description="log records / warnings",
                qualnames=(
                    "logging.debug", "logging.info", "logging.warning",
                    "logging.error", "logging.exception", "logging.critical",
                    "logging.log", "warnings.warn",
                ),
                methods=(
                    "debug", "info", "warning", "error", "exception",
                    "critical", "log",
                ),
                receivers=("logger", "log", "_logger", "_log"),
            ),
            Sink(
                rule_id="taint-print",
                description="stdout/stderr",
                qualnames=("print",),
            ),
            Sink(
                rule_id="taint-persist",
                description="file/JSON/pickle persistence",
                qualnames=(
                    "json.dump", "json.dumps",
                    "pickle.dump", "pickle.dumps",
                ),
                methods=("write", "writelines", "writerow", "writerows"),
            ),
            Sink(
                rule_id="taint-persist",
                description="result-cache persistence",
                methods=("put", "set"),
                receivers=("cache", "_cache"),
            ),
            Sink(
                rule_id="taint-format",
                description="str()/repr()/format() of a secret buffer",
                qualnames=("str", "repr", "format", "ascii"),
                methods=("format",),
            ),
        ],
    )
