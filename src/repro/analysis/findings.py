"""The :class:`Finding` record and its stable JSON round-trip.

A finding pinpoints one reproducibility hazard: which file, which line
and column, which rule fired and a human-readable message.  Findings
sort by ``(file, line, column, rule)`` so reports are deterministic, and
serialise to plain sorted-key JSON so the ``--format json`` output and
the baseline file are stable across runs and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule hit at one source location.

    Attributes:
        file: path of the offending file, relative to the lint root,
            always with forward slashes (stable across platforms).
        line: 1-based line of the offending node.
        column: 0-based column of the offending node (``ast`` convention).
        rule: id of the rule that fired (e.g. ``"wall-clock"``).
        message: human-readable description of the hazard.
    """

    file: str
    line: int
    column: int
    rule: str
    message: str

    def identity(self) -> Tuple[str, str, str]:
        """The location-independent identity used for baseline matching.

        Line and column are deliberately excluded: unrelated edits move
        findings around, and a baseline that pinned line numbers would
        churn on every refactor.  Two findings with the same file, rule
        and message are interchangeable for grandfathering purposes.
        """
        return (self.file, self.rule, self.message)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON output (keys sorted by the dumper)."""
        return {
            "file": self.file,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict`; raises ``KeyError`` on missing keys."""
        return cls(
            file=str(data["file"]),
            line=int(data["line"]),
            column=int(data["column"]),
            rule=str(data["rule"]),
            message=str(data["message"]),
        )

    def render(self) -> str:
        """The one-line text form: ``file:line:col: rule: message``."""
        return f"{self.file}:{self.line}:{self.column}: {self.rule}: {self.message}"
