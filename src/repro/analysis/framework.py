"""Shared static-analysis framework.

PR 4's determinism linter and the secret-taint analysis are different
*policies* over the same mechanical substrate: deterministic file
discovery, one ``ast.parse`` per file, ``# tool:`` directive parsing,
a sorted findings list partitioned into live / suppressed / baselined,
a stable JSON report schema, and rule-hit counters through
:mod:`repro.obs`.  This module owns that substrate; ``repro.lint`` and
``repro.analysis.taint`` both build on it, so the two tools stay
byte-compatible in their report formats and CLI behaviour (pinned by
``tests/test_lint_regression.py``).

The primitive types -- :class:`~repro.lint.findings.Finding`,
:class:`~repro.lint.baseline.Baseline`, the suppression parser and the
import-alias resolver -- are re-exported here so analysis packages have
a single import surface.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.resolve import collect_aliases, qualified_name
from repro.analysis.suppressions import (
    BAD_DIRECTIVE,
    FileSuppressions,
    parse_suppressions,
)

__all__ = [
    "AnalysisReport",
    "BAD_DIRECTIVE",
    "Baseline",
    "FileSuppressions",
    "Finding",
    "PARSE_ERROR",
    "SKIP_DIRS",
    "collect_aliases",
    "discover",
    "emit_counters",
    "parse_suppressions",
    "print_report",
    "qualified_name",
    "split_suppressed",
]

#: Rule id under which unparseable files are reported (shared by tools
#: so a broken file fails every gate identically).
PARSE_ERROR = "parse-error"

#: Directory names never descended into during discovery.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".pytest_cache"})


@dataclass
class AnalysisReport:
    """The outcome of one analysis run.

    ``findings`` are the live (non-suppressed, non-baselined) hazards;
    ``ok`` is the CI gate.  ``findings`` + ``suppressed`` + ``baselined``
    partitions the raw finding set, so a report always accounts for
    every hazard the analysis saw.
    """

    root: str
    files_scanned: int = 0
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def rule_counts(self) -> Dict[str, int]:
        """Live findings per rule id, sorted by rule id."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        """The ``--format json`` schema (documented in docs/LINTING.md)."""
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "ok": self.ok,
            "counts": self.rule_counts(),
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
        }

    def summary(self) -> str:
        """One-line human summary for the end of text output."""
        return (
            f"{len(self.findings)} finding(s) "
            f"({len(self.suppressed)} suppressed, {len(self.baselined)} baselined) "
            f"in {self.files_scanned} file(s)"
        )


def discover(root: str, paths: Sequence[str], label: str = "lint") -> List[str]:
    """Resolve files/directories to a sorted list of ``.py`` files.

    Directories are walked with sorted listings (an analysis must not
    itself depend on filesystem order); ``__pycache__`` and VCS/tool
    cache directories are skipped.  Paths are returned relative to
    ``root`` with forward slashes.  ``label`` names the tool in the
    missing-path error message.
    """
    found: List[str] = []
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(absolute):
            found.append(os.path.relpath(absolute, root))
            continue
        if not os.path.isdir(absolute):
            raise FileNotFoundError(f"{label} path does not exist: {path!r}")
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(dict.fromkeys(p.replace(os.sep, "/") for p in found))


def split_suppressed(
    findings: Sequence[Finding], suppressions: FileSuppressions
) -> Tuple[List[Finding], List[Finding]]:
    """Partition one file's raw findings into ``(live, suppressed)``."""
    live = [f for f in findings if not suppressions.is_suppressed(f.rule, f.line)]
    dead = [f for f in findings if suppressions.is_suppressed(f.rule, f.line)]
    return live, dead


def emit_counters(report: AnalysisReport, obs, prefix: str) -> None:
    """Rule-hit counters through repro.obs (no-op without obs).

    Emits ``{prefix}_files_scanned_total``,
    ``{prefix}_findings_total{rule=...}``,
    ``{prefix}_suppressed_total{rule=...}`` and
    ``{prefix}_baselined_total``.
    """
    if obs is None:
        return
    registry = obs.registry
    registry.counter(f"{prefix}_files_scanned_total").inc(report.files_scanned)
    for rule_id, count in report.rule_counts().items():
        registry.counter(f"{prefix}_findings_total", rule=rule_id).inc(count)
    suppressed_counts: Dict[str, int] = {}
    for finding in report.suppressed:
        suppressed_counts[finding.rule] = suppressed_counts.get(finding.rule, 0) + 1
    for rule_id, count in sorted(suppressed_counts.items()):
        registry.counter(f"{prefix}_suppressed_total", rule=rule_id).inc(count)
    registry.counter(f"{prefix}_baselined_total").inc(len(report.baselined))


def print_report(report: AnalysisReport, fmt: str) -> None:
    """Write a report to stdout in the shared text or JSON form."""
    if fmt == "json":
        json.dump(report.to_dict(), sys.stdout, indent=1, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for finding in report.findings:
            print(finding.render())
        print(report.summary())
