"""Exact perfect-secrecy verification for Shamir's scheme.

Shamir's claim -- any k−1 shares reveal *nothing*, any k reveal
*everything* -- is an exact statement about a finite probability space: a
uniform secret, uniform random coefficients, and deterministic share
evaluation.  For a small field that space can be enumerated outright
(|F|^k outcomes), giving the joint distribution of
``(secret, observed share values)`` with no sampling error.  From it:

* ``I(secret ; shares) = 0``        for any observation of < k shares,
* ``I(secret ; shares) = log2 |F|`` for any observation of ≥ k shares,
* every share marginal is uniform.

These are checked bit-exactly in the test suite (up to floating-point
entropy arithmetic), which is a far stronger statement than the byte-level
statistical tests on the production GF(2^8) implementation -- and the two
implementations share the same algebra (:mod:`repro.gf.poly`), so the
small-field verification vouches for the construction itself.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple


from repro.gf.field import Field
from repro.gf.poly import evaluate

#: A joint distribution: (secret, observed-share-tuple) -> probability.
Joint = Dict[Tuple[int, Tuple[int, ...]], float]


def joint_distribution(
    field: Field,
    k: int,
    observed_xs: Sequence[int],
) -> Joint:
    """Enumerate the exact joint distribution of secret and observed shares.

    The secret is uniform over the field; the k−1 higher coefficients are
    uniform and independent; share at x is the polynomial evaluation.

    Args:
        field: a small field (the enumeration is |F|^k).
        k: the threshold (polynomial degree k−1).
        observed_xs: the share x-coordinates the adversary sees (nonzero,
            distinct).

    Raises:
        ValueError: for invalid thresholds or observation points.
    """
    if k < 1:
        raise ValueError(f"threshold must be at least 1, got {k}")
    xs = list(observed_xs)
    if len(set(xs)) != len(xs):
        raise ValueError("observation points must be distinct")
    if any(x == 0 or x not in field for x in xs):
        raise ValueError("observation points must be nonzero field elements")
    if field.order**k > 2_000_000:
        raise ValueError(
            f"enumeration of |F|^k = {field.order ** k} outcomes is too large; "
            "use a smaller field or threshold"
        )
    outcome_probability = 1.0 / (field.order**k)
    joint: Joint = {}
    elements = range(field.order)
    for secret in elements:
        for coeffs in itertools.product(elements, repeat=k - 1):
            poly = [secret, *coeffs]
            observed = tuple(evaluate(field, poly, x) for x in xs)
            key = (secret, observed)
            joint[key] = joint.get(key, 0.0) + outcome_probability
    return joint


def entropy(probabilities: Sequence[float]) -> float:
    """Shannon entropy in bits of a probability vector."""
    total = 0.0
    for p in probabilities:
        if p < 0:
            raise ValueError(f"negative probability {p}")
        if p > 0:
            total -= p * math.log2(p)
    return total


def mutual_information(joint: Joint) -> float:
    """``I(secret ; shares)`` in bits, from the exact joint distribution."""
    secret_marginal: Dict[int, float] = {}
    share_marginal: Dict[Tuple[int, ...], float] = {}
    for (secret, shares), p in joint.items():
        secret_marginal[secret] = secret_marginal.get(secret, 0.0) + p
        share_marginal[shares] = share_marginal.get(shares, 0.0) + p
    information = 0.0
    for (secret, shares), p in joint.items():
        if p > 0:
            information += p * math.log2(
                p / (secret_marginal[secret] * share_marginal[shares])
            )
    # Clamp float noise around zero.
    return max(0.0, information)


@dataclass(frozen=True)
class SecrecyReport:
    """Outcome of a full perfect-secrecy verification.

    Attributes:
        field_order: |F| used for the enumeration.
        k: threshold verified.
        m: multiplicity (observation subsets range over 1..m shares).
        secret_entropy: H(secret) = log2 |F|.
        leakage_below_threshold: the largest I(secret; shares) over every
            observation of fewer than k shares (0 for perfect secrecy).
        information_at_threshold: the smallest I(secret; shares) over
            every observation of at least k shares (= H(secret) when any
            k shares determine the secret).
        uniform_marginals: whether every single-share marginal was uniform.
    """

    field_order: int
    k: int
    m: int
    secret_entropy: float
    leakage_below_threshold: float
    information_at_threshold: float
    uniform_marginals: bool

    @property
    def perfectly_secret(self) -> bool:
        """The paper's Sec. II-B property, verified exactly."""
        return (
            self.leakage_below_threshold < 1e-9
            and abs(self.information_at_threshold - self.secret_entropy) < 1e-9
        )


def verify_perfect_secrecy(field: Field, k: int, m: int) -> SecrecyReport:
    """Verify Shamir's secrecy over every observation subset of 1..m shares.

    Args:
        field: a small prime field (enumeration is |F|^k per subset).
        k: threshold.
        m: multiplicity; share points are 1..m.
    """
    if not 1 <= k <= m < field.order:
        raise ValueError(
            f"need 1 <= k <= m < |F|, got k={k}, m={m}, |F|={field.order}"
        )
    secret_entropy = math.log2(field.order)
    worst_leakage = 0.0
    least_information = math.inf
    uniform = True
    for size in range(1, m + 1):
        for xs in itertools.combinations(range(1, m + 1), size):
            joint = joint_distribution(field, k, xs)
            information = mutual_information(joint)
            if size < k:
                worst_leakage = max(worst_leakage, information)
            else:
                least_information = min(least_information, information)
            if size == 1:
                marginal: Dict[Tuple[int, ...], float] = {}
                for (_, shares), p in joint.items():
                    marginal[shares] = marginal.get(shares, 0.0) + p
                expected = 1.0 / field.order
                if any(abs(p - expected) > 1e-9 for p in marginal.values()):
                    uniform = False
    if least_information is math.inf:
        least_information = secret_entropy  # k > m never happens (validated)
    return SecrecyReport(
        field_order=field.order,
        k=k,
        m=m,
        secret_entropy=secret_entropy,
        leakage_below_threshold=worst_leakage,
        information_at_threshold=least_information,
        uniform_marginals=uniform,
    )
