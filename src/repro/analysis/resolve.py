"""Import-alias collection and dotted-name resolution.

The determinism rules match *fully qualified* names -- ``time.time``,
``numpy.random.seed``, ``os.environ`` -- but source code refers to them
through whatever aliases its imports created (``import numpy as np``,
``from time import perf_counter as tick``).  This module bridges the
two: :func:`collect_aliases` reads a module's imports into a flat
``local name -> qualified prefix`` map, and :func:`qualified_name`
resolves an ``ast`` expression (a ``Name`` or a chain of
``Attribute`` accesses) against that map.

Resolution is deliberately syntactic: a name that was never imported
resolves to itself, so builtins (``set``, ``frozenset``) match without
bookkeeping, at the cost of a local variable that shadows a module name
being resolved as if it were the module.  That trade is right for a
lint pass -- a false positive is one ``# lint: disable=`` comment away,
while full scope analysis would triple the size of this subsystem.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

__all__ = ["collect_aliases", "qualified_name"]


def collect_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map each locally bound import name to its qualified origin.

    * ``import time``                 -> ``{"time": "time"}``
    * ``import numpy as np``          -> ``{"np": "numpy"}``
    * ``import numpy.random``         -> ``{"numpy": "numpy"}`` (binds the root)
    * ``import numpy.random as npr``  -> ``{"npr": "numpy.random"}``
    * ``from time import perf_counter as tick`` -> ``{"tick": "time.perf_counter"}``
    * ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``

    Relative imports (``from .foo import bar``) are recorded with their
    leading dots; they can never collide with the absolute stdlib and
    numpy names the rules match, which is exactly the point.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    # `import a.b.c` binds only the root name `a`.
                    root = alias.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{module}.{alias.name}" if module else alias.name
    return aliases


def qualified_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a ``Name``/``Attribute`` chain to a dotted qualified name.

    Returns ``None`` for anything that is not a plain dotted chain ending
    in a name -- calls on intermediate results, subscripts, literals --
    because such expressions have no static qualified name to match.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))
