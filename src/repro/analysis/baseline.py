"""JSON baseline of grandfathered findings.

A baseline lets the linter be adopted on a tree that is not yet clean:
existing findings are recorded once and stop failing the build, while
*new* findings still do.  This repository's baseline
(``lint-baseline.json``) ships **empty** -- every finding on the seed
tree was fixed or suppressed with a justification -- so the mechanism
exists for future rule additions, not as a debt register.

Matching is by :meth:`Finding.identity` -- ``(file, rule, message)``
with an occurrence count -- deliberately excluding line numbers so
unrelated edits do not churn the baseline.  The file is sorted-key,
sorted-entry JSON: regenerating it on an unchanged tree is a no-op.
"""

from __future__ import annotations

import collections
import json
from typing import Dict, Iterable, List, Tuple

from repro.analysis.findings import Finding

__all__ = ["Baseline"]

_VERSION = 1


class Baseline:
    """An occurrence-counted set of grandfathered finding identities."""

    def __init__(self, counts: "Dict[Tuple[str, str, str], int] | None" = None):
        self.counts: Dict[Tuple[str, str, str], int] = dict(counts or {})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts = collections.Counter(finding.identity() for finding in findings)
        return cls(dict(counts))

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; raises ``ValueError`` on a bad schema."""
        with open(path) as handle:
            data = json.load(handle)
        if not isinstance(data, dict) or data.get("version") != _VERSION:
            raise ValueError(
                f"baseline {path!r}: expected an object with version={_VERSION}"
            )
        entries = data.get("findings")
        if not isinstance(entries, list):
            raise ValueError(f"baseline {path!r}: 'findings' must be a list")
        counts: Dict[Tuple[str, str, str], int] = {}
        for entry in entries:
            try:
                key = (str(entry["file"]), str(entry["rule"]), str(entry["message"]))
                count = int(entry.get("count", 1))
            except (TypeError, KeyError) as exc:
                raise ValueError(f"baseline {path!r}: malformed entry {entry!r}") from exc
            if count < 1:
                raise ValueError(f"baseline {path!r}: count must be >= 1 in {entry!r}")
            counts[key] = counts.get(key, 0) + count
        return cls(counts)

    def write(self, path: str) -> None:
        """Write the canonical (sorted, stable) JSON form."""
        entries = [
            {"file": file, "rule": rule, "message": message, "count": count}
            for (file, rule, message), count in sorted(self.counts.items())
        ]
        with open(path, "w") as handle:
            json.dump({"version": _VERSION, "findings": entries}, handle, indent=1, sort_keys=True)
            handle.write("\n")

    def partition(
        self, findings: Iterable[Finding]
    ) -> "Tuple[List[Finding], List[Finding]]":
        """Split findings into ``(new, baselined)``.

        Each baseline entry absorbs up to ``count`` occurrences of its
        identity; the first findings in report order are absorbed first
        (report order is deterministic, so the split is too).
        """
        remaining = dict(self.counts)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            key = finding.identity()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    def __len__(self) -> int:
        return sum(self.counts.values())
