"""Information-theoretic analysis of the sharing substrate.

The paper grounds its privacy measure in Shannon's perfect secrecy
(Sec. II-B): below the threshold, shares carry *zero* information about
the secret.  :mod:`repro.analysis.secrecy` verifies that claim exactly --
not statistically -- by enumerating the full joint distribution of
(secret, observed shares) over small prime fields and computing entropies
and mutual information in closed form.
"""

from repro.analysis.secrecy import (
    SecrecyReport,
    entropy,
    joint_distribution,
    mutual_information,
    verify_perfect_secrecy,
)

__all__ = [
    "entropy",
    "mutual_information",
    "joint_distribution",
    "verify_perfect_secrecy",
    "SecrecyReport",
]
