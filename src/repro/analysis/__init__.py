"""Analyses of the sharing substrate: information-theoretic and static.

Two complementary verification layers live here:

* :mod:`repro.analysis.secrecy` verifies the paper's perfect-secrecy
  claim (Sec. II-B) *exactly* -- not statistically -- by enumerating
  the full joint distribution of (secret, observed shares) over small
  prime fields and computing entropies and mutual information in
  closed form.
* :mod:`repro.analysis.framework` is the static-analysis substrate
  (discovery, reports, suppressions, baselines) shared by the
  determinism linter (``repro.lint``) and the secret-taint analysis
  (:mod:`repro.analysis.taint`), which proves the *implementation*
  honours that secrecy by tracking where raw secret bytes flow.
"""

from repro.analysis.framework import (
    PARSE_ERROR,
    AnalysisReport,
    discover,
    emit_counters,
    print_report,
    split_suppressed,
)
from repro.analysis.secrecy import (
    SecrecyReport,
    entropy,
    joint_distribution,
    mutual_information,
    verify_perfect_secrecy,
)

__all__ = [
    "entropy",
    "mutual_information",
    "joint_distribution",
    "verify_perfect_secrecy",
    "SecrecyReport",
    "AnalysisReport",
    "PARSE_ERROR",
    "discover",
    "emit_counters",
    "print_report",
    "split_suppressed",
]
