"""``# lint: disable=...`` / ``# taint: ...`` directive parsing.

Two directive forms, modelled on the usual linter conventions:

* ``# lint: disable=rule-a,rule-b`` suppresses those rules on the line
  the comment sits on (put it on the first line of a multi-line
  statement -- findings anchor to the statement's first line).
* ``# lint: file-disable=rule-a`` anywhere in a file (conventionally in
  the module docstring block at the top) suppresses the rule for the
  whole file.

The same machinery serves every analysis tool: the directive prefix is
the ``tool`` argument (``lint:`` for the determinism linter, ``taint:``
for the secret-flow analysis), and a tool may additionally declare
*annotation* kinds -- ``# taint: source=payload``, ``# taint: sink``,
``# taint: declassified`` -- which are recorded per line rather than
suppressing anything (see docs/TAINT.md for their semantics).

Every suppression is expected to carry a human justification in an
adjacent comment -- the linter cannot check prose, but reviews can; see
docs/LINTING.md.  Directives naming a rule that does not exist are
themselves reported under the ``bad-directive`` pseudo-rule, so typos
cannot silently disable nothing.  Only genuine ``#`` comments count:
the source is tokenised, so directive *examples* inside docstrings and
string literals are inert.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["FileSuppressions", "parse_suppressions", "BAD_DIRECTIVE"]

#: Pseudo-rule id under which malformed/unknown directives are reported.
BAD_DIRECTIVE = "bad-directive"


def _directive_re(tool: str) -> "re.Pattern[str]":
    return re.compile(
        r"#\s*" + re.escape(tool)
        + r":\s*(?P<scope>file-disable|disable)\s*=\s*(?P<rules>[A-Za-z0-9_,\- ]+)"
    )


def _annotation_re(tool: str, kinds: Sequence[str]) -> "re.Pattern[str]":
    alternation = "|".join(re.escape(kind) for kind in kinds)
    return re.compile(
        r"#\s*" + re.escape(tool)
        + r":\s*(?P<kind>" + alternation + r")\b"
        + r"\s*(?:=\s*(?P<value>[A-Za-z0-9_.,\- ]+))?"
    )


class FileSuppressions:
    """The parsed suppression/annotation state of one source file."""

    def __init__(self) -> None:
        #: rules disabled for the entire file
        self.file_rules: Set[str] = set()
        #: line number -> rules disabled on that line
        self.line_rules: Dict[int, Set[str]] = {}
        #: (line, column, message) triples for malformed directives
        self.bad_directives: List[Tuple[int, int, str]] = []
        #: line number -> ``(kind, value)`` annotation directives on that
        #: line (``value`` is ``""`` for bare ``# taint: declassified``)
        self.annotations: Dict[int, List[Tuple[str, str]]] = {}

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True if ``rule`` is disabled on ``line`` (or file-wide)."""
        return rule in self.file_rules or rule in self.line_rules.get(line, ())

    def annotations_on(self, line: int, kind: str) -> List[str]:
        """The values of every ``kind`` annotation on ``line``."""
        return [v for k, v in self.annotations.get(line, ()) if k == kind]

    def has_annotation(self, line: int, kind: str) -> bool:
        """True if ``line`` carries at least one ``kind`` annotation."""
        return any(k == kind for k, _ in self.annotations.get(line, ()))


def _comments(source_lines: Sequence[str]) -> "List[Tuple[int, int, str]]":
    """All ``#`` comment tokens as ``(line, column, text)`` triples.

    Tokenising (rather than scanning lines) keeps directive examples in
    docstrings and string literals inert.  A file that fails to tokenise
    yields no comments -- it will not parse either, and the engine
    reports that as ``parse-error``.
    """
    reader = io.StringIO("\n".join(source_lines) + "\n").readline
    comments: List[Tuple[int, int, str]] = []
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def parse_suppressions(
    source_lines: Sequence[str],
    known_rules: Iterable[str],
    tool: str = "lint",
    annotation_kinds: Sequence[str] = (),
) -> FileSuppressions:
    """Extract the ``tool``'s directives from a file's source lines.

    Args:
        source_lines: the file's lines (1-based indexing is applied here;
            pass ``source.splitlines()``).
        known_rules: valid rule ids; directives naming anything else are
            recorded in :attr:`FileSuppressions.bad_directives`.
        tool: the directive prefix (``"lint"`` or ``"taint"``); each
            tool only sees its own directives.
        annotation_kinds: extra directive keywords recorded per line in
            :attr:`FileSuppressions.annotations` instead of suppressing.
    """
    known = set(known_rules) | {BAD_DIRECTIVE}
    directive = _directive_re(tool)
    annotation = _annotation_re(tool, annotation_kinds) if annotation_kinds else None
    suppressions = FileSuppressions()
    for lineno, column, text in _comments(source_lines):
        if f"{tool}:" not in text:
            continue
        match = directive.search(text)
        if match is None:
            if annotation is not None:
                note = annotation.search(text)
                if note is not None:
                    value = (note.group("value") or "").strip()
                    suppressions.annotations.setdefault(lineno, []).append(
                        (note.group("kind"), value)
                    )
                    continue
            # A comment that clearly tried to be a directive but is not
            # well-formed must fail loudly, or a typo silently disables
            # nothing; prose merely mentioning "lint:" stays exempt via
            # the directive-shaped prefix check.
            if re.match(r"#\s*" + re.escape(tool) + r":\s*\S+\s*=", text):
                suppressions.bad_directives.append(
                    (lineno, column, f"malformed {tool} directive (expected "
                     f"'# {tool}: disable=<rule>[,<rule>]' or '# {tool}: file-disable=<rule>')")
                )
            continue
        names = [name.strip() for name in match.group("rules").split(",")]
        names = [name for name in names if name]
        unknown = sorted(name for name in names if name not in known)
        if unknown:
            suppressions.bad_directives.append(
                (lineno, column, f"unknown rule(s) in {tool} directive: {', '.join(unknown)}")
            )
        valid = {name for name in names if name in known}
        if not valid:
            continue
        if match.group("scope") == "file-disable":
            suppressions.file_rules.update(valid)
        else:
            suppressions.line_rules.setdefault(lineno, set()).update(valid)
    return suppressions
