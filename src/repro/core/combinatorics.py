"""Combinatorial helpers: subset enumeration and Poisson-binomial tails.

The subset risk and loss formulas of Sec. IV-A are tail probabilities of
Poisson binomial distributions (sums of independent, non-identical
Bernoulli trials).  For the small m the protocol uses, exact subset
enumeration is affordable, but the O(m^2) dynamic-programming recurrence
here is both faster and numerically cleaner; tests cross-check the two.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, Iterator, Sequence

import numpy as np


def subsets_of(items: Iterable[int], min_size: int = 0) -> Iterator[FrozenSet[int]]:
    """Yield every subset of ``items`` with at least ``min_size`` elements.

    Subsets are yielded in order of increasing size, each as a frozenset.
    """
    pool = sorted(items)
    for size in range(min_size, len(pool) + 1):
        yield from map(frozenset, combinations(pool, size))


def poisson_binomial_pmf(probs: Sequence[float]) -> np.ndarray:
    """Exact pmf of the number of successes among independent Bernoulli trials.

    Args:
        probs: success probability of each trial.

    Returns:
        Array ``pmf`` of length ``len(probs) + 1`` with
        ``pmf[j] = P(exactly j successes)``.
    """
    pmf = np.zeros(len(probs) + 1)
    pmf[0] = 1.0
    for idx, p in enumerate(probs):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability out of range: {p}")
        # Convolve with the two-point distribution of trial idx.
        pmf[1 : idx + 2] = pmf[1 : idx + 2] * (1.0 - p) + pmf[: idx + 1] * p
        pmf[0] *= 1.0 - p
    return pmf


def poisson_binomial_tail(probs: Sequence[float], k: int) -> float:
    """Return ``P(at least k successes)`` for independent Bernoulli trials.

    This is the paper's subset-risk shape: the probability that an
    adversary observes at least k of the shares, with per-share
    probabilities ``probs``.
    """
    if k <= 0:
        return 1.0
    if k > len(probs):
        return 0.0
    pmf = poisson_binomial_pmf(probs)
    return float(pmf[k:].sum())


def poisson_binomial_cdf_below(probs: Sequence[float], k: int) -> float:
    """Return ``P(fewer than k successes)`` for independent Bernoulli trials.

    This is the subset-loss shape: the probability that fewer than k shares
    survive, with per-share *survival* probabilities ``probs``.
    """
    if k <= 0:
        return 0.0
    if k > len(probs):
        return 1.0
    pmf = poisson_binomial_pmf(probs)
    return float(pmf[:k].sum())


def exact_received_probability(
    losses: Sequence[float],
    received: FrozenSet[int],
    members: Sequence[int],
) -> float:
    """Probability that ``received`` is exactly the surviving subset of M.

    Args:
        losses: loss probability per channel, indexed globally.
        received: indices of channels whose share arrived.
        members: all indices of M.
    """
    prob = 1.0
    for i in members:
        prob *= (1.0 - losses[i]) if i in received else losses[i]
    return prob
