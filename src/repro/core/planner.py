"""Requirement-driven planning: inverting the model.

The paper's results answer "given (κ, µ), what is optimal?".  A deployer
asks the reverse: *"I need risk below 1e-3 and loss below 0.5% -- what is
the fastest configuration that delivers it?"*  This module answers that by
searching the (κ, µ) grid from the highest-rate corner and solving, at each
point, a linear program whose inequality rows encode the requirements:

    minimise  Z(p)              (or another chosen objective)
    s.t.      the Sec. IV-B/IV-D equality constraints for (κ, µ)
              L(p) <= max_loss        (if required)
              D(p) <= max_delay      (if required)
              Z(p) <= max_risk        (if required)

Because the optimal rate is a function of µ alone (Theorem 4), scanning µ
upward enumerates configurations in strictly non-increasing rate order, so
the first feasible point is the rate-optimal plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.channel import ChannelSet
from repro.core.program import Objective, build_program
from repro.core.properties import subset_delay, subset_loss, subset_risk
from repro.core.rate import optimal_rate
from repro.core.schedule import ShareSchedule
from repro.lp import InfeasibleError, LinearProgram, solve


class NoFeasiblePlanError(Exception):
    """No (κ, µ, schedule) combination satisfies the requirements."""


@dataclass(frozen=True)
class Requirements:
    """Bounds a deployment must satisfy (None = unconstrained).

    Attributes:
        max_risk: upper bound on the schedule risk Z(p).
        max_loss: upper bound on the schedule loss L(p).
        max_delay: upper bound on the schedule delay D(p).
        min_rate: lower bound on the sustained symbol rate.
    """

    max_risk: Optional[float] = None
    max_loss: Optional[float] = None
    max_delay: Optional[float] = None
    min_rate: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("max_risk", "max_loss"):
            value = getattr(self, name)
            if value is not None and not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.max_delay is not None and self.max_delay < 0:
            raise ValueError(f"max_delay must be nonnegative, got {self.max_delay}")
        if self.min_rate is not None and self.min_rate <= 0:
            raise ValueError(f"min_rate must be positive, got {self.min_rate}")

    def any_bound(self) -> bool:
        return any(
            value is not None
            for value in (self.max_risk, self.max_loss, self.max_delay)
        )


@dataclass(frozen=True)
class Plan:
    """A concrete deployable configuration."""

    kappa: float
    mu: float
    rate: float
    schedule: ShareSchedule
    risk: float
    loss: float
    delay: float

    def meets(self, requirements: Requirements, tolerance: float = 1e-7) -> bool:
        """Whether this plan satisfies every bound in ``requirements``."""
        checks = [
            (requirements.max_risk, self.risk),
            (requirements.max_loss, self.loss),
            (requirements.max_delay, self.delay),
        ]
        if any(bound is not None and value > bound + tolerance for bound, value in checks):
            return False
        if requirements.min_rate is not None and self.rate < requirements.min_rate - tolerance:
            return False
        return True


_PROPERTY_FORMULA = {
    "risk": subset_risk,
    "loss": subset_loss,
    "delay": subset_delay,
}


def constrained_schedule(
    channels: ChannelSet,
    kappa: float,
    mu: float,
    requirements: Requirements,
    objective: Objective = Objective.PRIVACY,
    at_max_rate: bool = True,
    backend: str = "auto",
) -> ShareSchedule:
    """The objective-optimal schedule at (κ, µ) satisfying the requirements.

    Raises:
        repro.lp.InfeasibleError: if no schedule at this (κ, µ) satisfies
            the property bounds.
    """
    program, pairs = build_program(
        channels, objective, kappa, mu, at_max_rate=at_max_rate
    )
    ub_rows: List[np.ndarray] = []
    ub_rhs: List[float] = []
    for bound, formula in (
        (requirements.max_risk, subset_risk),
        (requirements.max_loss, subset_loss),
        (requirements.max_delay, subset_delay),
    ):
        if bound is None:
            continue
        ub_rows.append(
            np.array([formula(channels, k, members) for k, members in pairs])
        )
        ub_rhs.append(float(bound))
    if ub_rows:
        program = LinearProgram(
            c=program.c,
            a_eq=program.a_eq,
            b_eq=program.b_eq,
            a_ub=np.vstack(ub_rows),
            b_ub=np.array(ub_rhs),
            names=program.names,
        )
    solution = solve(program, backend=backend)
    return ShareSchedule.from_arrays(channels, pairs, solution.x)


def _plan_from_schedule(
    channels: ChannelSet, kappa: float, mu: float, schedule: ShareSchedule
) -> Plan:
    return Plan(
        kappa=kappa,
        mu=mu,
        rate=optimal_rate(channels, mu),
        schedule=schedule,
        risk=schedule.privacy_risk(),
        loss=schedule.loss(),
        delay=schedule.delay(),
    )


def plan_max_rate(
    channels: ChannelSet,
    requirements: Requirements,
    kappa_step: float = 0.5,
    mu_step: float = 0.25,
    objective: Objective = Objective.PRIVACY,
    backend: str = "auto",
    min_kappa: float = 1.0,
) -> Plan:
    """The fastest configuration meeting the requirements.

    Scans µ upward (rate downward, by Theorem 4); at each µ, scans κ from
    high to low privacy and accepts the first requirement-satisfying
    schedule.  The returned plan therefore has the maximum achievable rate,
    with ``objective`` optimised among schedules at the accepted (κ, µ).

    ``min_kappa`` restricts the search to κ >= min_kappa: the resilience
    layer's failover uses it as the privacy floor, so a degraded-channel
    re-plan can trade rate but never threshold (docs/RESILIENCE.md).

    Raises:
        NoFeasiblePlanError: if no grid point satisfies the requirements.
        ValueError: on a non-positive grid step or ``min_kappa < 1``.
    """
    if kappa_step <= 0 or mu_step <= 0:
        raise ValueError("grid steps must be positive")
    if min_kappa < 1.0:
        raise ValueError(f"min_kappa must be >= 1, got {min_kappa}")
    n = channels.n
    mu_values = [round(1.0 + i * mu_step, 10) for i in range(int((n - 1) / mu_step) + 1)]
    if mu_values[-1] < n:
        mu_values.append(float(n))
    tolerance = 1e-9
    for mu in mu_values:
        if mu < min_kappa - tolerance:
            continue  # κ <= µ always; no room for the floor at this µ
        rate = optimal_rate(channels, mu)
        if requirements.min_rate is not None and rate < requirements.min_rate:
            break  # rate only falls from here on
        kappa_values = [
            round(1.0 + i * kappa_step, 10)
            for i in range(int((mu - 1.0) / kappa_step) + 1)
        ]
        if kappa_values[-1] < mu:
            kappa_values.append(mu)
        # µ >= min_kappa here and µ itself is always on the grid, so the
        # filtered list is never empty.
        kappa_values = [k for k in kappa_values if k >= min_kappa - tolerance]
        # Prefer high κ (better privacy) among equal-rate plans.
        for kappa in reversed(kappa_values):
            try:
                schedule = constrained_schedule(
                    channels, kappa, mu, requirements,
                    objective=objective, backend=backend,
                )
            except InfeasibleError:
                continue
            plan = _plan_from_schedule(channels, kappa, mu, schedule)
            if plan.meets(requirements):
                return plan
    raise NoFeasiblePlanError(
        f"no (κ, µ) grid point over n={n} channels satisfies {requirements}"
    )
