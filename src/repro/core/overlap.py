"""Non-disjoint channels: quantifying the paper's Sec. III-B assumption.

The model assumes the channels in C are *disjoint*: "If two channels
overlap, the bottleneck may reduce their combined throughput... an attacker
who is able to eavesdrop at a shared edge or vertex obtains data from
multiple channels with the same effort... The optimal case for all four
channel properties, therefore, is when the channels are completely
disjoint."  This module makes that argument computable:

* channels are **paths** through a network graph whose edges carry their
  own (risk, loss, delay, rate) attributes;
* per-channel properties compose along the path (risk and loss as
  complements of survival products, delay as a sum, rate as the bottleneck
  minimum);
* the adversary taps *edges* (independently, with the edge's risk), so
  shares on channels sharing a tapped edge are observed **together** --
  the joint observation distribution is computed exactly over tap
  configurations of the involved edges, and the resulting
  :func:`joint_subset_risk` can be compared with the independent-channel
  formula to measure the privacy cost of overlap;
* shared edges also cap combined throughput:
  :func:`max_disjoint_rate_scaling` finds how much of the per-channel rate
  vector is simultaneously sustainable;
* :func:`edge_disjoint_channel_paths` extracts a maximum set of
  edge-disjoint paths (via max-flow), i.e. the configuration under which
  the paper's model is exact.

Edge attributes used: ``risk``, ``loss``, ``delay``, ``rate``.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Hashable, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.channel import Channel, ChannelSet
from repro.core.combinatorics import poisson_binomial_tail

#: An undirected edge, canonically ordered.
Edge = Tuple[Hashable, Hashable]


def _canonical_edge(u: Hashable, v: Hashable) -> Edge:
    return (u, v) if repr(u) <= repr(v) else (v, u)


def path_edges(path: Sequence[Hashable]) -> List[Edge]:
    """The canonical edge list of a node path."""
    if len(path) < 2:
        raise ValueError("a channel path needs at least two nodes")
    return [_canonical_edge(u, v) for u, v in zip(path, path[1:])]


def _edge_attr(graph: nx.Graph, edge: Edge, name: str, default: float = None) -> float:
    data = graph.edges[edge]
    if name in data:
        return float(data[name])
    if default is None:
        raise KeyError(f"edge {edge} is missing attribute {name!r}")
    return default


def channel_from_path(graph: nx.Graph, path: Sequence[Hashable], name: str = "") -> Channel:
    """Compose a path's edge attributes into one model channel.

    * risk: share observed iff any edge is tapped -> ``1 - prod(1 - z_e)``;
    * loss: share survives iff it survives every hop -> ``1 - prod(1 - l_e)``;
    * delay: hop delays add;
    * rate: the bottleneck edge caps the path.
    """
    edges = path_edges(path)
    survive_tap = 1.0
    survive_loss = 1.0
    delay = 0.0
    rate = np.inf
    for edge in edges:
        survive_tap *= 1.0 - _edge_attr(graph, edge, "risk", 0.0)
        survive_loss *= 1.0 - _edge_attr(graph, edge, "loss", 0.0)
        delay += _edge_attr(graph, edge, "delay", 0.0)
        rate = min(rate, _edge_attr(graph, edge, "rate"))
    return Channel(
        risk=1.0 - survive_tap,
        loss=1.0 - survive_loss,
        delay=delay,
        rate=float(rate),
        name=name or "->".join(str(node) for node in path),
    )


def build_channel_set(graph: nx.Graph, paths: Sequence[Sequence[Hashable]]) -> ChannelSet:
    """Build the model's ChannelSet from a set of paths.

    Note: the resulting set is only faithful to the model when the paths
    are edge-disjoint; use :func:`joint_subset_risk` to quantify the error
    otherwise.
    """
    return ChannelSet(
        channel_from_path(graph, path, name=f"path{i}") for i, path in enumerate(paths)
    )


def shared_edges(paths: Sequence[Sequence[Hashable]]) -> Dict[Edge, FrozenSet[int]]:
    """Map each edge used by more than one path to the set of path indices."""
    usage: Dict[Edge, set] = {}
    for index, path in enumerate(paths):
        for edge in path_edges(path):
            usage.setdefault(edge, set()).add(index)
    return {
        edge: frozenset(users) for edge, users in usage.items() if len(users) > 1
    }


def are_edge_disjoint(paths: Sequence[Sequence[Hashable]]) -> bool:
    """Whether no two paths share an edge (the model's assumption)."""
    return not shared_edges(paths)


def joint_subset_risk(
    graph: nx.Graph,
    paths: Sequence[Sequence[Hashable]],
    k: int,
) -> float:
    """P(adversary observes >= k shares) under the edge-tap threat model.

    One share of a symbol travels each path; the adversary taps each edge
    independently with the edge's ``risk``, and observes a share iff any
    edge of its path is tapped.  Overlapping paths make observations
    positively correlated, which this exact computation captures (the
    independent-channel Poisson-binomial formula does not).

    The sum is exact over tap configurations of *shared* edges only
    (private edges fold into per-path conditional probabilities), so the
    cost is ``2 ** (#shared edges)`` -- small for realistic topologies.
    """
    if not 1 <= k <= len(paths):
        raise ValueError(f"k={k} invalid for {len(paths)} paths")
    sharing = shared_edges(paths)
    shared = list(sharing.keys())
    # Per-path probability of being observed via a *private* edge.
    private_risk = []
    for path in paths:
        survive = 1.0
        for edge in path_edges(path):
            if edge not in sharing:
                survive *= 1.0 - _edge_attr(graph, edge, "risk", 0.0)
        private_risk.append(1.0 - survive)

    total = 0.0
    for taps in product((False, True), repeat=len(shared)):
        weight = 1.0
        for edge, tapped in zip(shared, taps):
            z = _edge_attr(graph, edge, "risk", 0.0)
            weight *= z if tapped else 1.0 - z
        # Exact-zero sentinel: the weight is a product of z / (1 - z)
        # factors and is exactly 0.0 iff some factor is exactly zero
        # (impossible tap combination); skipping it is an optimisation,
        # not a tolerance decision.
        if weight == 0.0:  # lint: disable=float-eq
            continue
        tapped_edges = {edge for edge, tapped in zip(shared, taps) if tapped}
        # Conditioned on the shared-edge taps, the paths observe
        # independently via their private edges.
        conditional = []
        for index, path in enumerate(paths):
            if any(edge in tapped_edges for edge in path_edges(path)):
                conditional.append(1.0)
            else:
                conditional.append(private_risk[index])
        total += weight * poisson_binomial_tail(conditional, k)
    return total


def independent_subset_risk(
    graph: nx.Graph,
    paths: Sequence[Sequence[Hashable]],
    k: int,
) -> float:
    """The disjoint-assumption risk for the same paths (for comparison)."""
    risks = [channel_from_path(graph, path).risk for path in paths]
    return poisson_binomial_tail(risks, k)


def overlap_privacy_penalty(
    graph: nx.Graph,
    paths: Sequence[Sequence[Hashable]],
    k: int,
) -> float:
    """How much the true risk exceeds the disjoint-model risk (>= 0-ish).

    Zero for edge-disjoint paths; positive when sharing lets the adversary
    hit several shares with one tap.
    """
    return joint_subset_risk(graph, paths, k) - independent_subset_risk(graph, paths, k)


def max_disjoint_rate_scaling(
    graph: nx.Graph,
    paths: Sequence[Sequence[Hashable]],
) -> float:
    """The largest α such that α · (every path's bottleneck rate) fits.

    Each path would like to carry its own bottleneck rate; edges shared by
    several paths must carry the sum.  Returns the max feasible uniform
    scaling -- exactly 1.0 for edge-disjoint paths, less when overlap
    creates a bottleneck ("the bottleneck may reduce their combined
    throughput", Sec. III-B).
    """
    rates = [channel_from_path(graph, path).rate for path in paths]
    load: Dict[Edge, float] = {}
    for rate, path in zip(rates, paths):
        for edge in path_edges(path):
            load[edge] = load.get(edge, 0.0) + rate
    alpha = 1.0
    for edge, demanded in load.items():
        capacity = _edge_attr(graph, edge, "rate")
        alpha = min(alpha, capacity / demanded)
    return alpha


def edge_disjoint_channel_paths(
    graph: nx.Graph,
    source: Hashable,
    sink: Hashable,
    max_paths: int = None,
) -> List[List[Hashable]]:
    """A maximum set of edge-disjoint source-sink paths (max-flow).

    These are the channel sets for which the paper's disjointness
    assumption holds exactly.

    Raises:
        ValueError: if source and sink are not connected.
    """
    if source not in graph or sink not in graph:
        raise ValueError("source and sink must be graph nodes")
    try:
        paths = [list(p) for p in nx.edge_disjoint_paths(graph, source, sink)]
    except nx.NetworkXNoPath as exc:
        raise ValueError(f"no path between {source!r} and {sink!r}") from exc
    paths.sort(key=len)
    if max_paths is not None:
        paths = paths[:max_paths]
    return paths
