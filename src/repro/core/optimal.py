"""Fully-optimised privacy, loss and delay (Sec. IV-B of the paper).

When κ and µ may be chosen freely, each property can be driven to its
global extreme over the channel set C:

* privacy: κ = µ = n forces the adversary to observe every channel, so the
  overall risk is ``Z_C = Π z_i``;
* loss: κ = 1, µ = n adds maximal redundancy, so ``L_C = Π l_i``;
* delay: κ = 1, µ = n, and the expected delay is the loss-weighted
  first-arrival average over channels ordered by delay.

Each function returns both the extreme value and (where useful) the
schedule that attains it, so the experiments can feed these directly into
the protocol.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.channel import ChannelSet
from repro.core.schedule import ShareSchedule


def max_privacy_risk(channels: ChannelSet) -> Tuple[float, ShareSchedule]:
    """The minimum achievable overall risk ``Z_C`` and its schedule.

    Maximum privacy (minimum risk) is attained by ``p(n, C) = 1``:
    ``Z_C = Π_i z_i``.
    """
    risk = float(np.prod(channels.risks))
    schedule = ShareSchedule.singleton(channels, channels.n, channels.indices)
    return risk, schedule


def min_loss(channels: ChannelSet) -> Tuple[float, ShareSchedule]:
    """The minimum achievable overall loss ``L_C`` and its schedule.

    Maximum redundancy is attained by ``p(1, C) = 1``: ``L_C = Π_i l_i``.
    """
    loss = float(np.prod(channels.losses))
    schedule = ShareSchedule.singleton(channels, 1, channels.indices)
    return loss, schedule


def min_delay(channels: ChannelSet) -> Tuple[float, ShareSchedule]:
    """The minimum achievable overall delay ``D_C`` and its schedule.

    With κ = 1 and µ = n, the symbol arrives with the first surviving
    share.  Ordering channels by delay (δ ascending, λ the matching loss
    probabilities), the paper's expression is

        D_C = (1 / (1 - Π l_i)) Σ_a (1 - λ(a)) δ(a) Π_{b<a} λ(b),

    i.e. each channel's delay weighted by the probability that its share
    arrives and every faster share is lost.  With zero loss this collapses
    to ``min_i d_i``.
    """
    order = np.argsort(channels.delays, kind="stable")
    delays = channels.delays[order]
    losses = channels.losses[order]
    all_lost = float(np.prod(losses))
    total = 0.0
    faster_all_lost = 1.0
    for delta, lam in zip(delays, losses):
        total += (1.0 - lam) * delta * faster_all_lost
        faster_all_lost *= lam
    delay = total / (1.0 - all_lost)
    schedule = ShareSchedule.singleton(channels, 1, channels.indices)
    return delay, schedule
