"""Subset privacy, loss and delay formulas (Sec. IV-A of the paper).

These are the per-symbol expectations for a *fixed* choice of threshold k
and channel subset M:

* ``z(k, M)`` -- probability the adversary observes at least k shares
  (the cdf tail of a Poisson binomial over the per-channel risks);
* ``l(k, M)`` -- probability fewer than k shares arrive;
* ``d(k, M)`` -- expected time until the k-th share arrives, conditioned on
  the symbol not being lost (a loss-weighted average of k-th order
  statistics of the channel delays).

Risk and loss use the O(m^2) Poisson-binomial recurrence; delay requires
enumerating surviving subsets, which is exact and affordable for the small
m (<= n) the protocol model permits.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.core.channel import ChannelSet
from repro.core.combinatorics import (
    exact_received_probability,
    poisson_binomial_cdf_below,
    poisson_binomial_tail,
    subsets_of,
)


def _validated(channels: ChannelSet, k: int, subset: Iterable[int]) -> FrozenSet[int]:
    members = channels.validate_subset(subset)
    if not 1 <= k <= len(members):
        raise ValueError(f"threshold k={k} invalid for |M|={len(members)}")
    return members


def subset_risk(channels: ChannelSet, k: int, subset: Iterable[int]) -> float:
    """The subset risk ``z(k, M)``.

    Probability that an adversary, observing each channel ``i`` in M
    independently with probability ``z_i``, sees at least ``k`` of the
    shares of one symbol -- and can therefore reconstruct it.
    """
    members = _validated(channels, k, subset)
    risks = [channels[i].risk for i in sorted(members)]
    return poisson_binomial_tail(risks, k)


def subset_loss(channels: ChannelSet, k: int, subset: Iterable[int]) -> float:
    """The subset loss ``l(k, M)``.

    Probability that fewer than ``k`` of the shares of one symbol survive
    transit, so the symbol cannot be reconstructed.
    """
    members = _validated(channels, k, subset)
    survive = [1.0 - channels[i].loss for i in sorted(members)]
    return poisson_binomial_cdf_below(survive, k)


def kth_smallest_delay(channels: ChannelSet, subset: Iterable[int], k: int) -> float:
    """The order statistic ``delta_S(k)``: k-th smallest delay within S."""
    delays = sorted(channels[i].delay for i in subset)
    if not 1 <= k <= len(delays):
        raise ValueError(f"order statistic k={k} invalid for |S|={len(delays)}")
    return delays[k - 1]


def subset_delay(channels: ChannelSet, k: int, subset: Iterable[int]) -> float:
    """The subset delay ``d(k, M)``.

    Expected time from transmission to reconstruction of one symbol sent on
    M with threshold k, conditioned on the symbol not being lost.  This is
    the loss-probability-weighted average of ``delta_K(k)`` over every
    surviving subset K of M with ``|K| >= k`` (Sec. IV-A), normalised by
    ``1 - l(k, M)``.  With zero loss it collapses to ``delta_M(k)``.
    """
    members = _validated(channels, k, subset)
    ordered = sorted(members)
    losses = channels.losses
    if all(losses[i] == 0.0 for i in ordered):
        return kth_smallest_delay(channels, members, k)
    loss_prob = subset_loss(channels, k, members)
    total = 0.0
    for received in subsets_of(ordered, min_size=k):
        weight = exact_received_probability(losses, received, ordered)
        if weight == 0.0:
            continue
        total += kth_smallest_delay(channels, received, k) * weight
    return total / (1.0 - loss_prob)
