"""The paper's analytical model of multichannel secret sharing protocols.

This package is the primary contribution of the reproduced paper
("Modeling Privacy and Tradeoffs in Multichannel Secret Sharing Protocols",
DSN 2016), Sections III and IV:

* :mod:`repro.core.channel` -- channels as (z, l, d, r) quadruples and the
  channel set C (Sec. III-B);
* :mod:`repro.core.properties` -- the subset privacy/loss/delay formulas
  z(k, M), l(k, M), d(k, M) (Sec. IV-A);
* :mod:`repro.core.schedule` -- share schedules p(k, M) with their averages
  κ and µ and schedule-level Z(p), L(p), D(p) (Sec. III-C, IV-A);
* :mod:`repro.core.optimal` -- the fully-optimised extremes Z_C, L_C, D_C
  (Sec. IV-B);
* :mod:`repro.core.rate` -- the rate theorems 1-4, the fully-utilised set,
  and the Fig. 2 packing construction (Sec. IV-C);
* :mod:`repro.core.program` -- the linear programs of Sec. IV-B (optimal
  property for given κ, µ) and Sec. IV-D (optimal property at maximum
  rate), plus the limited schedules M' of Sec. IV-E and the Theorem 5
  construction;
* :mod:`repro.core.tradeoff` -- frontier sweeps over (κ, µ) used by the
  experiments and examples.
"""

from repro.core.channel import Channel, ChannelSet
from repro.core.optimal import (
    max_privacy_risk,
    min_delay,
    min_loss,
)
from repro.core.planner import (
    NoFeasiblePlanError,
    Plan,
    Requirements,
    constrained_schedule,
    plan_max_rate,
)
from repro.core.program import (
    Objective,
    build_program,
    limited_pairs,
    optimal_schedule,
    schedule_pairs,
    theorem5_schedule,
)
from repro.core.properties import subset_delay, subset_loss, subset_risk
from repro.core.rate import (
    full_utilization_mu_limit,
    fully_utilized_set,
    max_rate,
    mu_for_target_rate,
    optimal_rate,
    pack_schedule,
    rate_maximizing_schedule,
)
from repro.core.schedule import ShareSchedule
from repro.core.tradeoff import TradeoffPoint, sweep_tradeoffs

__all__ = [
    "Channel",
    "ChannelSet",
    "ShareSchedule",
    "subset_risk",
    "subset_loss",
    "subset_delay",
    "max_privacy_risk",
    "min_loss",
    "min_delay",
    "max_rate",
    "optimal_rate",
    "mu_for_target_rate",
    "full_utilization_mu_limit",
    "fully_utilized_set",
    "rate_maximizing_schedule",
    "pack_schedule",
    "Objective",
    "schedule_pairs",
    "limited_pairs",
    "build_program",
    "optimal_schedule",
    "theorem5_schedule",
    "TradeoffPoint",
    "sweep_tradeoffs",
    "Requirements",
    "Plan",
    "NoFeasiblePlanError",
    "constrained_schedule",
    "plan_max_rate",
]
