"""Share schedules (Sec. III-C) and their network properties (Sec. IV-A).

A *share schedule* is a categorical distribution ``p(k, M)`` over the
acceptable parameter pairs

    M = {(k, M) in N x P(C) : 1 <= k <= |M|},

giving the proportion of source symbols sent with threshold ``k`` over the
channel subset ``M``.  Its averages are the real-valued protocol parameters

    κ = E[k]    and    µ = E[|M|],

and the schedule-level privacy/loss/delay are expectation of the subset
formulas under p: ``Z(p) = E[z(k, M)]`` and so on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

import numpy as np

from repro.core.channel import ChannelSet
from repro.core.properties import subset_delay, subset_loss, subset_risk

#: A schedule atom: (threshold k, channel subset M as a frozenset of indices).
Pair = Tuple[int, FrozenSet[int]]

#: Probabilities this far below zero / away from one are validation errors;
#: anything smaller is attributed to LP solver floating-point noise.
PROBABILITY_TOLERANCE = 1e-7


def canonical_pair_order(pair: Pair) -> Tuple[int, int, Tuple[int, ...]]:
    """Sort key giving schedules a deterministic iteration order."""
    k, members = pair
    return (len(members), k, tuple(sorted(members)))


class ShareSchedule:
    """An immutable share schedule over a fixed channel set.

    Probabilities are validated (nonnegative, summing to one, each pair
    satisfying ``1 <= k <= |M|``) and then renormalised exactly, so solver
    round-off in the inputs does not propagate into the model's averages.
    """

    def __init__(self, channels: ChannelSet, probs: Mapping[Pair, float]):
        self._channels = channels
        cleaned: Dict[Pair, float] = {}
        for (k, members), prob in probs.items():
            canonical = channels.validate_subset(members)
            if not 1 <= k <= len(canonical):
                raise ValueError(f"invalid pair (k={k}, |M|={len(canonical)})")
            if prob < -PROBABILITY_TOLERANCE:
                raise ValueError(f"negative probability {prob} for (k={k}, M={sorted(canonical)})")
            if prob <= 0.0:
                continue
            key = (int(k), canonical)
            cleaned[key] = cleaned.get(key, 0.0) + float(prob)
        if not cleaned:
            raise ValueError("a share schedule must have at least one pair with p > 0")
        total = sum(cleaned.values())
        if abs(total - 1.0) > PROBABILITY_TOLERANCE:
            raise ValueError(f"schedule probabilities sum to {total}, expected 1")
        self._probs: Dict[Pair, float] = {
            pair: prob / total
            for pair, prob in sorted(cleaned.items(), key=lambda kv: canonical_pair_order(kv[0]))
        }

    # -- constructors --------------------------------------------------------

    @classmethod
    def singleton(cls, channels: ChannelSet, k: int, subset: Iterable[int]) -> "ShareSchedule":
        """The degenerate schedule that always uses ``(k, M)``."""
        return cls(channels, {(k, frozenset(subset)): 1.0})

    @classmethod
    def from_arrays(
        cls,
        channels: ChannelSet,
        pairs: Iterable[Pair],
        probabilities: Iterable[float],
    ) -> "ShareSchedule":
        """Build a schedule from parallel pair/probability sequences.

        This is the natural constructor for LP solutions, where the solver
        returns a dense probability vector over an enumerated pair list.
        """
        return cls(channels, dict(zip(pairs, probabilities)))

    # -- basic accessors -----------------------------------------------------

    @property
    def channels(self) -> ChannelSet:
        return self._channels

    def probability(self, k: int, subset: Iterable[int]) -> float:
        """Return ``p(k, M)`` (zero for pairs outside the support)."""
        return self._probs.get((k, frozenset(subset)), 0.0)

    def support(self) -> Iterator[Tuple[Pair, float]]:
        """Iterate ``((k, M), p)`` over pairs with positive probability."""
        return iter(self._probs.items())

    def __len__(self) -> int:
        return len(self._probs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShareSchedule):
            return NotImplemented
        if other._channels != self._channels or set(other._probs) != set(self._probs):
            return False
        return all(abs(other._probs[pair] - p) <= 1e-12 for pair, p in self._probs.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        atoms = ", ".join(
            f"(k={k}, M={sorted(members)}): {p:.4f}"
            for (k, members), p in self._probs.items()
        )
        return f"ShareSchedule({{{atoms}}})"

    # -- model quantities (Sec. III-C / IV-A) --------------------------------

    @property
    def kappa(self) -> float:
        """Average threshold κ = Σ p(k, M) · k."""
        return sum(p * k for (k, _), p in self._probs.items())

    @property
    def mu(self) -> float:
        """Average multiplicity µ = Σ p(k, M) · |M|."""
        return sum(p * len(members) for (_, members), p in self._probs.items())

    def privacy_risk(self) -> float:
        """Schedule privacy risk ``Z(p) = Σ p(k, M) z(k, M)``."""
        return sum(
            p * subset_risk(self._channels, k, members)
            for (k, members), p in self._probs.items()
        )

    def loss(self) -> float:
        """Schedule loss ``L(p) = Σ p(k, M) l(k, M)``."""
        return sum(
            p * subset_loss(self._channels, k, members)
            for (k, members), p in self._probs.items()
        )

    def delay(self) -> float:
        """Schedule delay ``D(p) = Σ p(k, M) d(k, M)``."""
        return sum(
            p * subset_delay(self._channels, k, members)
            for (k, members), p in self._probs.items()
        )

    # -- rate-related quantities (Sec. IV-C / IV-D) ---------------------------

    def channel_usage(self) -> np.ndarray:
        """Per-channel usage: the proportion of symbols whose M contains i.

        This is the left-hand side of the maximum-rate constraint in the
        Sec. IV-D linear program.
        """
        usage = np.zeros(self._channels.n)
        for (_, members), p in self._probs.items():
            for i in members:
                usage[i] += p
        return usage

    def max_symbol_rate(self) -> float:
        """The highest source-symbol rate this schedule can sustain.

        Sending symbols at rate R puts load ``R * usage_i`` shares per unit
        time on channel i, which must not exceed ``r_i``; the binding
        channel determines the achievable rate.
        """
        usage = self.channel_usage()
        rates = self._channels.rates
        bounds = [rates[i] / usage[i] for i in range(self._channels.n) if usage[i] > 0.0]
        return min(bounds)

    # -- sampling (used by the protocol's explicit scheduler) ----------------

    def sample(self, rng: np.random.Generator) -> Pair:
        """Draw one ``(k, M)`` pair according to the schedule."""
        pairs = list(self._probs.keys())
        probs = np.fromiter(self._probs.values(), dtype=float, count=len(pairs))
        choice = rng.choice(len(pairs), p=probs / probs.sum())
        return pairs[int(choice)]

    def sample_many(self, rng: np.random.Generator, count: int) -> "list[Pair]":
        """Draw ``count`` iid pairs (vectorised for the traffic generators)."""
        pairs = list(self._probs.keys())
        probs = np.fromiter(self._probs.values(), dtype=float, count=len(pairs))
        draws = rng.choice(len(pairs), size=count, p=probs / probs.sum())
        return [pairs[int(i)] for i in draws]
