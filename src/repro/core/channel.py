"""Channels and channel sets (Sec. III-B of the paper).

A channel is a quadruple ``(z, l, d, r)``:

* ``z`` in [0, 1] -- risk: probability an adversary observes a share sent
  on the channel;
* ``l`` in [0, 1) -- lossiness: probability a share fails to arrive
  (strictly below 1: a channel that never delivers is excluded from C);
* ``d`` in [0, inf) -- expected one-way delay of a share, given delivery;
* ``r`` in (0, inf) -- maximum share rate, in symbols per unit time
  (strictly positive, same exclusion rule).

The model assumes channels are *disjoint* (Sec. III-B): observations and
losses on different channels are independent events.  All formulas in
:mod:`repro.core.properties` and :mod:`repro.core.rate` inherit that
assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from typing import FrozenSet, Iterable, Iterator, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Channel:
    """One disjoint channel between the two endpoints.

    Attributes:
        risk: probability ``z`` that an adversary observes a share.
        loss: probability ``l`` that a share is lost in transit.
        delay: expected one-way delay ``d`` (unit time), given delivery.
        rate: maximum share rate ``r`` (symbols per unit time).
        name: optional human-readable label for reports.
    """

    risk: float
    loss: float
    delay: float
    rate: float
    name: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.risk <= 1.0:
            raise ValueError(f"risk must be in [0, 1], got {self.risk}")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if not (0.0 <= self.delay and math.isfinite(self.delay)):
            raise ValueError(f"delay must be finite and >= 0, got {self.delay}")
        if not (self.rate > 0.0 and math.isfinite(self.rate)):
            raise ValueError(f"rate must be finite and > 0, got {self.rate}")


class ChannelSet:
    """An ordered set C of disjoint channels, indexed ``0..n-1``.

    The paper writes channels as an unordered set; we fix an order so that
    subsets M can be represented compactly as frozensets of indices and so
    that vectors (z, l, d, r) line up across the model, the simulator and
    the experiment reports.
    """

    def __init__(self, channels: Iterable[Channel]):
        self._channels: Tuple[Channel, ...] = tuple(channels)
        if not self._channels:
            raise ValueError("a channel set must contain at least one channel")

    @classmethod
    def from_vectors(
        cls,
        risks: Sequence[float],
        losses: Sequence[float],
        delays: Sequence[float],
        rates: Sequence[float],
        names: Sequence[str] = (),
    ) -> "ChannelSet":
        """Build a channel set from parallel property vectors.

        All vectors must have the same length; ``names`` may be empty.
        """
        lengths = {len(risks), len(losses), len(delays), len(rates)}
        if len(lengths) != 1:
            raise ValueError(f"property vectors have inconsistent lengths: {lengths}")
        if names and len(names) != len(risks):
            raise ValueError("names must match the number of channels")
        labels = names or [f"ch{i}" for i in range(len(risks))]
        return cls(
            Channel(risk=z, loss=l, delay=d, rate=r, name=label)
            for z, l, d, r, label in zip(risks, losses, delays, rates, labels)
        )

    def __len__(self) -> int:
        return len(self._channels)

    def __iter__(self) -> Iterator[Channel]:
        return iter(self._channels)

    def __getitem__(self, index: int) -> Channel:
        return self._channels[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ChannelSet) and other._channels == self._channels

    def __hash__(self) -> int:
        return hash(self._channels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{c.name}(z={c.risk}, l={c.loss}, d={c.delay}, r={c.rate})"
            for c in self._channels
        )
        return f"ChannelSet([{inner}])"

    @property
    def n(self) -> int:
        """Number of channels, ``n = |C|``."""
        return len(self._channels)

    @property
    def indices(self) -> FrozenSet[int]:
        """The full index set ``{0, ..., n-1}``."""
        return frozenset(range(self.n))

    # -- property vectors ---------------------------------------------------

    @property
    def risks(self) -> np.ndarray:
        """The risk vector z as a numpy array."""
        return np.array([c.risk for c in self._channels])

    @property
    def losses(self) -> np.ndarray:
        """The lossiness vector l as a numpy array."""
        return np.array([c.loss for c in self._channels])

    @property
    def delays(self) -> np.ndarray:
        """The delay vector d as a numpy array."""
        return np.array([c.delay for c in self._channels])

    @property
    def rates(self) -> np.ndarray:
        """The rate vector r as a numpy array."""
        return np.array([c.rate for c in self._channels])

    @property
    def total_rate(self) -> float:
        """Sum of all channel rates (the κ = µ = 1 maximum rate R_C)."""
        return float(self.rates.sum())

    def subset(self, indices: Iterable[int]) -> Tuple[Channel, ...]:
        """Return the channels selected by ``indices`` (validated)."""
        members = tuple(self._channels[self._check_index(i)] for i in indices)
        return members

    def _check_index(self, i: int) -> int:
        if not 0 <= i < self.n:
            raise IndexError(f"channel index {i} out of range for n={self.n}")
        return i

    def validate_subset(self, subset: Iterable[int]) -> FrozenSet[int]:
        """Validate and canonicalise a channel subset M.

        Raises:
            ValueError: if the subset is empty.
            IndexError: if an index is out of range.
        """
        canonical = frozenset(self._check_index(i) for i in subset)
        if not canonical:
            raise ValueError("channel subset M must be nonempty")
        return canonical
