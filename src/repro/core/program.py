"""Linear programs over share schedules (Sec. IV-B, IV-D, IV-E).

Given κ and µ, the paper finds property-optimal share schedules by linear
programming over the probabilities ``p(k, M)``:

* the **free** program (Sec. IV-B) constrains only normalisation and the
  two averages κ and µ;
* the **maximum-rate** program (Sec. IV-D) replaces the µ constraint with
  one per-channel utilisation equality
  ``Σ_{M ∋ i} p(k, M) = min(r_i / R_C, 1)``, which forces the schedule to
  sustain the Theorem-4 optimal rate while optimising the chosen property;
* the **limited** variant (Sec. IV-E) restricts the support to
  ``M' = {(k, M) : k >= ⌊κ⌋, |M| >= ⌊µ⌋}`` so that *every* symbol tolerates
  ⌊κ⌋−1 interceptions, matching the MICSS/courier threat model.  Theorem 5
  (existence of limited schedules for any valid κ, µ) is realised
  constructively in :func:`theorem5_schedule`.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.channel import ChannelSet
from repro.core.combinatorics import subsets_of
from repro.core.properties import subset_delay, subset_loss, subset_risk
from repro.core.rate import optimal_channel_usage
from repro.core.schedule import Pair, ShareSchedule, canonical_pair_order
from repro.lp import LinearProgram, solve


class Objective(enum.Enum):
    """Which network property the program minimises."""

    PRIVACY = "privacy"  # minimise Z(p)
    LOSS = "loss"  # minimise L(p)
    DELAY = "delay"  # minimise D(p)


_SUBSET_FORMULA: "Dict[Objective, Callable[[ChannelSet, int, frozenset], float]]" = {
    Objective.PRIVACY: subset_risk,
    Objective.LOSS: subset_loss,
    Objective.DELAY: subset_delay,
}


def schedule_pairs(channels: ChannelSet) -> List[Pair]:
    """Enumerate the acceptable pairs ``M = {(k, M) : 1 <= k <= |M|}``.

    Deterministically ordered (by subset size, then k, then members) so LP
    variable indices are stable across runs.
    """
    pairs = [
        (k, members)
        for members in subsets_of(range(channels.n), min_size=1)
        for k in range(1, len(members) + 1)
    ]
    pairs.sort(key=canonical_pair_order)
    return pairs


def limited_pairs(channels: ChannelSet, kappa: float, mu: float) -> List[Pair]:
    """The limited pair set M' of Sec. IV-E for parameters κ and µ.

    Every retained pair has ``k >= ⌊κ⌋`` and ``|M| >= ⌊µ⌋``, guaranteeing
    that an adversary must compromise at least ⌊κ⌋ channels to learn any
    symbol (the MICSS/courier threat model).
    """
    _validate_kappa_mu(channels, kappa, mu)
    k_floor = math.floor(kappa)
    m_floor = math.floor(mu)
    return [
        (k, members)
        for (k, members) in schedule_pairs(channels)
        if k >= k_floor and len(members) >= m_floor
    ]


def _validate_kappa_mu(channels: ChannelSet, kappa: float, mu: float) -> None:
    if not 1.0 <= kappa <= mu <= channels.n + 1e-12:
        raise ValueError(
            f"parameters must satisfy 1 <= κ <= µ <= n={channels.n}, "
            f"got κ={kappa}, µ={mu}"
        )


def build_program(
    channels: ChannelSet,
    objective: Objective,
    kappa: float,
    mu: float,
    at_max_rate: bool = False,
    limited: bool = False,
) -> Tuple[LinearProgram, List[Pair]]:
    """Build the Sec. IV-B (or IV-D) linear program.

    Args:
        channels: the channel set C.
        objective: which property to minimise.
        kappa: target average threshold κ.
        mu: target average multiplicity µ.
        at_max_rate: when True, add the per-channel utilisation equalities
            of Sec. IV-D so the schedule sustains the optimal rate R_C(µ)
            (the explicit µ constraint is then implied and omitted, exactly
            as in the paper's program).
        limited: when True, restrict the support to the M' pairs of
            Sec. IV-E.

    Returns:
        The standard-form LP and the pair list indexing its variables.
    """
    _validate_kappa_mu(channels, kappa, mu)
    pairs = limited_pairs(channels, kappa, mu) if limited else schedule_pairs(channels)
    formula = _SUBSET_FORMULA[objective]
    cost = np.array([formula(channels, k, members) for k, members in pairs])

    rows: List[np.ndarray] = []
    rhs: List[float] = []
    # Normalisation: Σ p = 1.
    rows.append(np.ones(len(pairs)))
    rhs.append(1.0)
    # Average threshold: Σ p k = κ.
    rows.append(np.array([float(k) for k, _ in pairs]))
    rhs.append(kappa)
    if at_max_rate:
        # Per-channel utilisation at the optimal rate (Sec. IV-D); these
        # equalities sum to the µ constraint by Theorem 3.
        usage = optimal_channel_usage(channels, mu)
        for i in range(channels.n):
            rows.append(np.array([1.0 if i in members else 0.0 for _, members in pairs]))
            rhs.append(float(usage[i]))
    else:
        # Average multiplicity: Σ p |M| = µ.
        rows.append(np.array([float(len(members)) for _, members in pairs]))
        rhs.append(mu)

    names = tuple(f"p(k={k},M={{{','.join(map(str, sorted(m)))}}})" for k, m in pairs)
    program = LinearProgram(c=cost, a_eq=np.vstack(rows), b_eq=np.array(rhs), names=names)
    return program, pairs


def optimal_schedule(
    channels: ChannelSet,
    objective: Objective,
    kappa: float,
    mu: float,
    at_max_rate: bool = False,
    limited: bool = False,
    backend: str = "auto",
) -> ShareSchedule:
    """Solve the Sec. IV-B / IV-D program and return the optimal schedule.

    Raises:
        repro.lp.InfeasibleError: if no schedule satisfies the constraints
            (possible for limited + at_max_rate combinations).
    """
    program, pairs = build_program(
        channels, objective, kappa, mu, at_max_rate=at_max_rate, limited=limited
    )
    solution = solve(program, backend=backend)
    return ShareSchedule.from_arrays(channels, pairs, solution.x)


def optimal_property_value(
    channels: ChannelSet,
    objective: Objective,
    kappa: float,
    mu: float,
    at_max_rate: bool = False,
    limited: bool = False,
    backend: str = "auto",
) -> float:
    """The optimal Z(p), L(p) or D(p) value for the given constraints."""
    program, _ = build_program(
        channels, objective, kappa, mu, at_max_rate=at_max_rate, limited=limited
    )
    return solve(program, backend=backend).objective


def fractional_atoms(kappa: float, mu: float) -> List[Tuple[Tuple[int, int], float]]:
    """Mix integer (k, m) pairs so that E[k] = κ and E[m] = µ exactly.

    This is the combinatorial core of Theorem 5 (and of the protocol's
    per-symbol parameter sampling): at most four atoms with k in
    {⌊κ⌋, ⌈κ⌉} and m in {⌊µ⌋, ⌈µ⌉}, every atom satisfying ``k <= m`` and
    ``k >= ⌊κ⌋``, ``m >= ⌊µ⌋`` (so every atom lies in the limited set M').

    Returns:
        List of ``((k, m), probability)`` with positive probabilities
        summing to one.
    """
    if not 1.0 <= kappa <= mu:
        raise ValueError(f"parameters must satisfy 1 <= κ <= µ, got κ={kappa}, µ={mu}")
    k_floor, k_frac = math.floor(kappa), kappa - math.floor(kappa)
    m_floor, m_frac = math.floor(mu), mu - math.floor(mu)
    k_ceil = k_floor if k_frac == 0 else k_floor + 1
    m_ceil = m_floor if m_frac == 0 else m_floor + 1

    atoms: Dict[Tuple[int, int], float] = {}

    def add(k: int, m: int, p: float) -> None:
        if p > 0.0:
            atoms[(k, m)] = atoms.get((k, m), 0.0) + p

    if k_ceil <= m_floor:
        # Independent mixing across the two coordinates.
        for k, pk in ((k_floor, 1.0 - k_frac), (k_ceil, k_frac)):
            for m, pm in ((m_floor, 1.0 - m_frac), (m_ceil, m_frac)):
                add(k, m, pk * pm)
    else:
        # κ and µ lie in the same unit cell: ⌊κ⌋ = ⌊µ⌋ and κ <= µ implies
        # k_frac <= m_frac, so this three-atom mixture is a valid
        # distribution with the exact averages (the corner (⌈κ⌉, ⌊µ⌋)
        # would violate k <= m and is pinned out of the support).
        add(k_floor, m_floor, 1.0 - m_frac)
        add(k_floor, m_ceil, m_frac - k_frac)
        add(k_ceil, m_ceil, k_frac)
    return sorted(atoms.items())


def theorem5_schedule(
    channels: ChannelSet,
    kappa: float,
    mu: float,
    subset_chooser: "Callable[[int], Sequence[int]]" = None,
) -> ShareSchedule:
    """The constructive proof of Theorem 5: a limited schedule hitting (κ, µ).

    Mixes at most four atoms with k in {⌊κ⌋, ⌈κ⌉} and |M| in {⌊µ⌋, ⌈µ⌉},
    every one of which lies in M', with weights chosen so the averages are
    exactly κ and µ.  When ⌈κ⌉ <= ⌊µ⌋ the two coordinates mix
    independently; otherwise κ and µ share a unit cell and a three-atom
    mixture is used (the ``k <= |M|`` ordering then pins the corner
    (⌈κ⌉, ⌊µ⌋) out of the support).

    Args:
        channels: the channel set.
        kappa: target average threshold.
        mu: target average multiplicity.
        subset_chooser: maps a subset size to the channel indices to use
            (defaults to the lowest-index channels of that size).
    """
    _validate_kappa_mu(channels, kappa, mu)
    if subset_chooser is None:
        subset_chooser = lambda size: range(size)  # noqa: E731 - tiny default

    probs: Dict[Pair, float] = {}
    for (k, size), p in fractional_atoms(kappa, mu):
        members = frozenset(subset_chooser(size))
        if len(members) != size:
            raise ValueError(f"subset chooser returned {len(members)} channels, wanted {size}")
        key = (k, members)
        probs[key] = probs.get(key, 0.0) + p
    return ShareSchedule(channels, probs)
