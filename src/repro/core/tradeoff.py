"""Tradeoff frontier sweeps over the (κ, µ) parameter plane.

The experiments (and the tradeoff-exploration example) repeatedly ask the
same question: *for each parameter point, what are the optimal privacy,
loss, delay and rate?*  This module packages that sweep so the figure
drivers and examples share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.core.channel import ChannelSet
from repro.core.program import Objective, optimal_property_value
from repro.core.rate import optimal_rate
from repro.lp import InfeasibleError


@dataclass(frozen=True)
class TradeoffPoint:
    """Optimal property values at one (κ, µ) parameter point.

    ``None`` for a property means the corresponding program was infeasible
    (possible only for limited schedules at maximum rate).
    """

    kappa: float
    mu: float
    rate: float
    privacy_risk: Optional[float]
    loss: Optional[float]
    delay: Optional[float]


def mu_grid(kappa: float, n: int, step: float = 0.1) -> List[float]:
    """The paper's sweep grid: µ from κ to n in the given step (Sec. VI-A).

    The grid always ends exactly at n, even when the step does not divide
    the range evenly.
    """
    values: List[float] = []
    i = 0
    while True:
        value = round(kappa + i * step, 10)
        if value >= n - 1e-12:
            break
        values.append(value)
        i += 1
    values.append(float(n))
    return values


def sweep_tradeoffs(
    channels: ChannelSet,
    kappas: Sequence[float],
    step: float = 0.1,
    at_max_rate: bool = True,
    limited: bool = False,
    objectives: Sequence[Objective] = (Objective.PRIVACY, Objective.LOSS, Objective.DELAY),
    backend: str = "auto",
) -> Iterator[TradeoffPoint]:
    """Yield the optimal tradeoff surface over the (κ, µ) grid.

    For each κ in ``kappas`` and each µ from κ to n (step ``step``),
    computes the Theorem-4 optimal rate and the LP-optimal value of each
    requested property.  Infeasible points yield ``None`` for the affected
    property rather than aborting the sweep.
    """
    for kappa in kappas:
        for mu in mu_grid(kappa, channels.n, step):
            values = {}
            for objective in objectives:
                try:
                    values[objective] = optimal_property_value(
                        channels,
                        objective,
                        kappa,
                        mu,
                        at_max_rate=at_max_rate,
                        limited=limited,
                        backend=backend,
                    )
                except InfeasibleError:
                    values[objective] = None
            yield TradeoffPoint(
                kappa=kappa,
                mu=mu,
                rate=optimal_rate(channels, mu),
                privacy_risk=values.get(Objective.PRIVACY),
                loss=values.get(Objective.LOSS),
                delay=values.get(Objective.DELAY),
            )


def frontier_matrix(
    points: Sequence[TradeoffPoint],
    attribute: str,
) -> np.ndarray:
    """Arrange sweep results as a dense (kappa, mu, value) array for reports.

    Args:
        points: output of :func:`sweep_tradeoffs` (materialised).
        attribute: one of "rate", "privacy_risk", "loss", "delay".

    Returns:
        Array of shape (len(points), 3): columns are κ, µ and the value
        (NaN where the program was infeasible).
    """
    rows = []
    for point in points:
        value = getattr(point, attribute)
        rows.append((point.kappa, point.mu, np.nan if value is None else value))
    return np.array(rows)
