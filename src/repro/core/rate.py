"""Optimal multichannel rate: Theorems 1-4 and Corollaries (Sec. IV-C).

The protocol sends one share per channel of M for each symbol, so channel
i can serve at most ``r_i`` symbols per unit time and no symbol may use a
channel twice.  These constraints give the paper's central rate results:

* Theorem 1: ``R_C`` is at least the ⌈µ⌉-th highest individual rate.
* Theorem 2: all channels can be fully utilised iff
  ``µ <= Σ r_i / max r_j``.
* Theorem 3: ``µ = Σ min(r_i / R_C, 1)`` at the optimum.
* Theorem 4: ``R_C = min over S ⊆ C, |S| > n − µ of Σ_{i∈S} r_i / (µ − n + |S|)``.

This module implements each of them, plus the greedy share-packing
construction of Figure 2, which realises the optimum with an explicit
assignment of shares to unit-time slots.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.core.channel import ChannelSet
from repro.core.combinatorics import subsets_of
from repro.core.schedule import ShareSchedule


def _validate_mu(channels: ChannelSet, mu: float) -> None:
    if not 1.0 <= mu <= channels.n + 1e-12:
        raise ValueError(f"µ must be within [1, n]={channels.n}, got {mu}")


def max_rate(channels: ChannelSet) -> float:
    """The unconstrained maximum rate (κ = µ = 1): ``R_C = Σ r_i``."""
    return channels.total_rate


def rate_maximizing_schedule(channels: ChannelSet) -> ShareSchedule:
    """The κ = µ = 1 schedule achieving ``R_C = Σ r_i`` (Sec. IV-C).

    Each symbol is sent as a single share on one channel, chosen with
    probability proportional to that channel's rate -- the MPTCP-like
    throughput-maximising behaviour.
    """
    total = channels.total_rate
    probs = {
        (1, frozenset({i})): channels[i].rate / total for i in range(channels.n)
    }
    return ShareSchedule(channels, probs)


def theorem1_lower_bound(channels: ChannelSet, mu: float) -> float:
    """Theorem 1: the rate of the ⌈µ⌉-th highest-rate channel."""
    _validate_mu(channels, mu)
    descending = np.sort(channels.rates)[::-1]
    return float(descending[int(np.ceil(mu - 1e-12)) - 1])


def full_utilization_mu_limit(channels: ChannelSet) -> float:
    """Theorem 2: the largest µ at which every channel can be fully used.

    ``µ <= Σ r_i / max r_j``; for identical channels this is n
    (Corollary 1), so any valid µ fully utilises the set.
    """
    rates = channels.rates
    return float(rates.sum() / rates.max())


def optimal_rate(channels: ChannelSet, mu: float) -> float:
    """Theorem 4: the optimal multichannel rate for average multiplicity µ.

    Evaluated efficiently: for each admissible subset size s, the
    minimising subset is the s lowest-rate channels, so only n candidates
    need to be examined (the brute-force subset minimisation is kept in
    :func:`optimal_rate_bruteforce` as a test oracle).
    """
    _validate_mu(channels, mu)
    n = channels.n
    ascending = np.sort(channels.rates)
    prefix = np.concatenate(([0.0], np.cumsum(ascending)))
    best = np.inf
    for size in range(1, n + 1):
        if size <= n - mu:
            continue
        candidate = prefix[size] / (mu - n + size)
        best = min(best, candidate)
    return float(best)


def optimal_rate_bruteforce(channels: ChannelSet, mu: float) -> float:
    """Theorem 4 evaluated literally over every subset (test oracle)."""
    _validate_mu(channels, mu)
    n = channels.n
    rates = channels.rates
    best = np.inf
    for subset in subsets_of(range(n), min_size=1):
        if len(subset) <= n - mu:
            continue
        candidate = sum(rates[i] for i in subset) / (mu - n + len(subset))
        best = min(best, candidate)
    return float(best)


def mu_for_target_rate(channels: ChannelSet, target_rate: float) -> float:
    """Theorem 3 applied in reverse: the largest µ sustaining ``target_rate``.

    ``µ = Σ min(r_i / R_C, 1)`` is decreasing in ``R_C``, so evaluating it
    at the target rate gives the highest µ for which the overall rate is at
    least the target (Sec. IV-C discussion).
    """
    if target_rate <= 0:
        raise ValueError(f"target rate must be positive, got {target_rate}")
    rates = channels.rates
    return float(np.minimum(rates / target_rate, 1.0).sum())


def fully_utilized_set(channels: ChannelSet, mu: float) -> FrozenSet[int]:
    """Definition 1: the set ``A = {i : r_i <= R_C}`` of fully-used channels.

    By Corollary 2, ``|A| > n − µ``.
    """
    rate = optimal_rate(channels, mu)
    return frozenset(
        i for i in range(channels.n) if channels[i].rate <= rate + 1e-9
    )


def optimal_channel_usage(channels: ChannelSet, mu: float) -> np.ndarray:
    """Per-channel usage ``min(r_i / R_C, 1)`` at the optimal rate.

    This is the right-hand side of the maximum-rate constraints in the
    Sec. IV-D linear program: the proportion of symbols whose subset M
    must contain channel i for the schedule to achieve ``R_C``.
    """
    rate = optimal_rate(channels, mu)
    return np.minimum(channels.rates / rate, 1.0)


def pack_schedule(
    rates: Sequence[int],
    multiplicity: int,
) -> Tuple[List[FrozenSet[int]], List[int]]:
    """The Figure 2 greedy packing of shares into one unit time.

    Given integer channel capacities and a fixed multiplicity m, repeatedly
    choose the m channels with the most remaining capacity (ties broken by
    lower index) and spend one share on each, until fewer than m channels
    have capacity left.  This water-filling strategy realises the optimal
    symbol count ``⌊R_C⌋`` from Theorem 4 for integer inputs.

    Args:
        rates: integer capacity of each channel over one unit time.
        multiplicity: shares per symbol (the paper's m; 1 <= m <= n).

    Returns:
        ``(columns, used)`` where ``columns[t]`` is the channel subset used
        for the t-th symbol and ``used[i]`` is the total number of shares
        sent on channel i.
    """
    if any(r < 0 for r in rates):
        raise ValueError("rates must be nonnegative integers")
    if not 1 <= multiplicity <= len(rates):
        raise ValueError(
            f"multiplicity must be within [1, {len(rates)}], got {multiplicity}"
        )
    remaining = list(rates)
    columns: List[FrozenSet[int]] = []
    while True:
        available = [i for i, cap in enumerate(remaining) if cap >= 1]
        if len(available) < multiplicity:
            break
        # Most remaining capacity first; ties by channel index.
        available.sort(key=lambda i: (-remaining[i], i))
        chosen = frozenset(available[:multiplicity])
        for i in chosen:
            remaining[i] -= 1
        columns.append(chosen)
    used = [original - left for original, left in zip(rates, remaining)]
    return columns, used
