"""Deterministic metrics: counters, gauges and fixed-bucket histograms.

Design constraints, in order:

1. **Determinism.**  Metrics only ever observe simulated quantities
   (sim-time latencies, event counts, queue depths).  Nothing here reads a
   wall clock or iterates an unordered container when exporting, so two
   runs with the same seed dump byte-identical snapshots.
2. **Near-zero cost when off.**  :class:`NullRegistry` hands out shared
   no-op instruments; an uninstrumented hot path pays one attribute check
   or an empty method call at most.
3. **Prometheus-compatible naming.**  Metric names are
   ``snake_case`` with a ``sim_`` prefix and conventional suffixes
   (``_total`` for counters, ``_bytes``/``_seconds``-style units spelled
   in simulator unit times).  Labels are plain str -> str pairs.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default histogram buckets for sim-time latencies (unit times; with the
#: paper's 10 ms unit this spans 1 ms .. 1 s).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

#: Default buckets for queue-depth style small-integer distributions.
DEFAULT_DEPTH_BUCKETS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128)

_NAME_ALLOWED = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def _validate_name(name: str) -> str:
    if not name or set(name) - _NAME_ALLOWED or name[0].isdigit():
        raise ValueError(
            f"metric name must be snake_case [a-z0-9_], not starting with a "
            f"digit; got {name!r}"
        )
    return name


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (events, bytes, drops)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be nonnegative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount

    def as_sample(self) -> dict:
        return {"type": "counter", "name": self.name, "labels": dict(self.labels), "value": self.value}


class Gauge:
    """An instantaneous level (queue depth, buffer occupancy)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_sample(self) -> dict:
        return {"type": "gauge", "name": self.name, "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket histogram of sim-time observations.

    Buckets are cumulative-upper-bound style (Prometheus ``le``): an
    observation lands in every bucket whose bound is >= the value, plus
    the implicit ``+Inf`` bucket.  Bucket bounds are fixed at creation so
    two runs aggregate identically.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum", "minimum", "maximum")

    def __init__(self, name: str, labels: Dict[str, str], buckets: Sequence[float]):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = [float(b) for b in buckets]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing, got {buckets}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)  # non-cumulative per-bucket counts
        self.count = 0
        self.sum = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self.bounds, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1
        self.count += 1
        self.sum += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ending with ``(inf, count)``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    def as_sample(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "buckets": [
                ["+Inf" if math.isinf(le) else le, cumulative]
                for le, cumulative in self.cumulative_buckets()
            ],
        }


class MetricsRegistry:
    """The process-wide (per-run) home of every instrument.

    Instruments are created lazily and cached by ``(name, labels)``, so
    hot paths can call ``registry.counter("sim_x_total", channel="3")``
    repeatedly, though caching the returned instrument is faster.

    *Collectors* are callables invoked (in registration order) at
    :meth:`snapshot` time; pull-style instrumentation registers one to
    copy already-kept component stats (e.g. :class:`~repro.netsim.link.LinkStats`)
    into the registry without touching the per-packet fast path.
    """

    #: Distinguishes a live registry from :class:`NullRegistry` without
    #: isinstance checks on hot paths.
    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, str, Tuple[Tuple[str, str], ...]], object] = {}
        self._collectors: List = []

    # -- instrument factories ---------------------------------------------------

    def _get(self, kind: str, name: str, labels: Dict[str, str], factory):
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            _validate_name(name)
            instrument = factory()
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter ``name{labels}``."""
        labels = {k: str(v) for k, v in labels.items()}
        return self._get("counter", name, labels, lambda: Counter(name, labels))

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        labels = {k: str(v) for k, v in labels.items()}
        return self._get("gauge", name, labels, lambda: Gauge(name, labels))

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: str
    ) -> Histogram:
        """Get or create the histogram ``name{labels}`` with fixed ``buckets``."""
        labels = {k: str(v) for k, v in labels.items()}
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        return self._get("histogram", name, labels, lambda: Histogram(name, labels, bounds))

    # -- collection -------------------------------------------------------------

    def register_collector(self, collector) -> None:
        """Register a zero-argument callable run before every snapshot."""
        self._collectors.append(collector)

    def snapshot(self) -> List[dict]:
        """All samples, deterministically ordered by (name, labels, type).

        Runs every registered collector first so pull-style metrics are
        current, then renders each instrument with :meth:`as_sample`.
        """
        for collector in self._collectors:
            collector()
        samples = [
            instrument.as_sample() for instrument in self._instruments.values()
        ]
        samples.sort(key=lambda s: (s["name"], _label_key(s["labels"]), s["type"]))
        return samples


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """A registry that records nothing (observability disabled).

    Every factory returns one shared no-op instrument and collectors are
    discarded, so instrumented code runs with effectively zero overhead
    and :meth:`snapshot` is always empty.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None, **labels: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def register_collector(self, collector) -> None:
        pass

    def snapshot(self) -> List[dict]:
        return []


def merge_counters(samples: Iterable[dict], name: str) -> float:
    """Sum a counter/gauge across label sets (snapshot post-processing)."""
    return sum(s["value"] for s in samples if s["name"] == name and "value" in s)
