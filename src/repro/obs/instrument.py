"""Wiring: attach a metrics registry and tracer to a running simulation.

Instrumentation comes in two flavours, chosen per metric by cost:

* **push** -- the component updates an instrument on its own fast path
  (engine dispatch counters, the receiver's reconstruct-latency
  histogram, trace spans).  Push sites hold a direct instrument
  reference, so the disabled case costs one ``None`` check.
* **pull** -- the component already keeps cheap plain-int counters
  (:class:`~repro.netsim.link.LinkStats`,
  :class:`~repro.protocol.sender.SenderStats`, ...); a *collector*
  registered on the registry copies them into instruments only when a
  snapshot is taken.  Pull sites cost nothing while the simulation runs.

The full metric catalogue and naming convention live in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import (
    DEFAULT_DEPTH_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracing import DEFAULT_CAPACITY, NullTracer, Tracer


class Observability:
    """A registry + tracer bundle handed through the simulation stack.

    Build one with :meth:`create` (live) or :meth:`disabled` (no-op), then
    wire it with :func:`instrument_network` / :func:`instrument_node`.
    ``obs.enabled`` distinguishes the two without isinstance checks.
    """

    def __init__(self, registry: MetricsRegistry, tracer: Tracer):
        self.registry = registry
        self.tracer = tracer

    @classmethod
    def create(cls, tracing: bool = True, trace_capacity: int = DEFAULT_CAPACITY) -> "Observability":
        """A live bundle.  The tracer's clock is bound to the engine by
        :func:`instrument_network` (until then it stamps time 0)."""
        tracer: Tracer = Tracer(clock=lambda: 0.0, capacity=trace_capacity) if tracing else NullTracer()
        return cls(MetricsRegistry(), tracer)

    @classmethod
    def disabled(cls) -> "Observability":
        """A bundle whose every instrument is a no-op."""
        return cls(NullRegistry(), NullTracer())

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def snapshot(self):
        """Shorthand for ``registry.snapshot()``."""
        return self.registry.snapshot()


# -- engine -----------------------------------------------------------------------


class _EngineObserver:
    """Per-dispatch hook: handler-labelled event counts + queue depth.

    This runs once per simulated event, so it does the absolute minimum
    inline -- three plain-dict/int operations -- and leaves instrument
    materialisation to the snapshot-time collector.
    """

    __slots__ = ("counts", "depth", "max_depth")

    def __init__(self) -> None:
        # Keyed on the underlying function object (identity hash), not its
        # qualname (string hash through the bound-method proxy): ~2x
        # cheaper per event.  Collectors resolve names at snapshot time.
        self.counts: Dict[object, int] = {}
        self.depth = 0
        self.max_depth = 0

    def __call__(self, event, queue_depth: int) -> None:
        callback = event.callback
        key = getattr(callback, "__func__", callback)
        counts = self.counts
        if key in counts:
            counts[key] += 1
        else:
            counts[key] = 1
        self.depth = queue_depth
        if queue_depth > self.max_depth:
            self.max_depth = queue_depth

    def named_counts(self) -> Dict[str, int]:
        """Handler qualname -> dispatch count (merging same-named keys)."""
        named: Dict[str, int] = {}
        for key, count in self.counts.items():
            name = getattr(key, "__qualname__", repr(key))
            named[name] = named.get(name, 0) + count
        return named


def instrument_engine(obs: Observability, engine) -> None:
    """Attach dispatch counting and queue-depth gauges to an engine."""
    if not obs.enabled:
        return
    observer = _EngineObserver()
    engine.set_dispatch_hook(observer)

    registry = obs.registry
    processed = registry.counter("sim_engine_events_processed_total")
    pending = registry.gauge("sim_engine_pending_events")
    now_gauge = registry.gauge("sim_engine_time")
    depth_gauge = registry.gauge("sim_engine_queue_depth")
    depth_max_gauge = registry.gauge("sim_engine_queue_depth_max")

    def collect() -> None:
        for handler, count in observer.named_counts().items():
            registry.counter("sim_engine_events_total", handler=handler).value = float(count)
        depth_gauge.set(observer.depth)
        depth_max_gauge.set(observer.max_depth)
        processed.value = float(engine.events_processed)
        pending.set(engine.pending())
        now_gauge.set(engine.now)

    registry.register_collector(collect)


# -- links and faults -------------------------------------------------------------

#: LinkStats field -> exported counter name.
_LINK_COUNTERS = {
    "offered": "sim_link_offered_total",
    "queue_drops": "sim_link_queue_drops_total",
    "serialized": "sim_link_serialized_total",
    "loss_drops": "sim_link_loss_drops_total",
    "delivered": "sim_link_delivered_total",
    "corruptions": "sim_link_corruptions_total",
    "bytes_offered": "sim_link_tx_bytes_total",
    "bytes_delivered": "sim_link_rx_bytes_total",
    "down_drops": "sim_link_down_drops_total",
    "down_losses": "sim_link_down_losses_total",
    "downs": "sim_link_downs_total",
    "ups": "sim_link_ups_total",
}


def _link_collector(registry: MetricsRegistry, link, channel: int, direction: str):
    labels = {"channel": str(channel), "direction": direction}
    counters = {
        field: registry.counter(name, **labels) for field, name in _LINK_COUNTERS.items()
    }
    up_gauge = registry.gauge("sim_link_up", **labels)
    depth_gauge = registry.gauge("sim_link_queue_depth", **labels)

    def collect() -> None:
        stats = link.stats
        for field, counter in counters.items():
            counter.value = float(getattr(stats, field))
        up_gauge.set(1.0 if link.up else 0.0)
        depth_gauge.set(link.queue_depth)

    return collect


def instrument_network(obs: Observability, network) -> None:
    """Wire a :class:`~repro.protocol.remicss.PointToPointNetwork`.

    Binds the tracer clock to the network's engine, attaches the engine
    dispatch hook, registers pull collectors for every link, and -- if a
    fault injector is (or later becomes) armed -- exports its applied-event
    counts and traces each applied fault.
    """
    if not obs.enabled:
        return
    obs.tracer.clock = lambda: network.engine.now
    instrument_engine(obs, network.engine)
    registry = obs.registry
    for channel, duplex in enumerate(network.duplex):
        registry.register_collector(
            _link_collector(registry, duplex.forward, channel, "fwd")
        )
        registry.register_collector(
            _link_collector(registry, duplex.reverse, channel, "rev")
        )

    if network.fault_injector is not None:
        network.fault_injector.tracer = obs.tracer

    def collect_faults() -> None:
        injector = network.fault_injector
        if injector is None:
            return
        summary = injector.summary()
        for action, count in summary["by_action"].items():
            registry.counter("sim_fault_events_total", action=action).value = float(count)
        registry.gauge("sim_fault_plan_events").set(len(injector.plan))

    registry.register_collector(collect_faults)


# -- protocol nodes ---------------------------------------------------------------

#: SenderStats field -> exported counter name (labelled by node).
_SENDER_COUNTERS = {
    "symbols_offered": "sim_sender_symbols_offered_total",
    "symbols_sent": "sim_sender_symbols_sent_total",
    "source_drops": "sim_sender_source_drops_total",
    "shares_sent": "sim_sender_shares_total",
    "share_send_failures": "sim_sender_share_send_failures_total",
    "readiness_stalls": "sim_sender_readiness_stalls_total",
    "auth_tagged_shares": "sim_sender_auth_tagged_total",
}

#: ReceiverStats field -> exported counter name (labelled by node).
_RECEIVER_COUNTERS = {
    "shares_received": "sim_receiver_shares_total",
    "symbols_delivered": "sim_receiver_symbols_delivered_total",
    "late_shares": "sim_receiver_late_shares_total",
    "duplicate_shares": "sim_receiver_duplicate_shares_total",
    "evicted_symbols": "sim_receiver_timeout_evictions_total",
    "evicted_shares": "sim_receiver_evicted_shares_total",
    "decode_errors": "sim_receiver_decode_errors_total",
    "reconstruction_errors": "sim_receiver_reconstruction_errors_total",
    "cpu_rejected_shares": "sim_receiver_cpu_rejected_total",
    "corrupt_shares_detected": "sim_receiver_corrupt_shares_total",
    "replayed_shares_dropped": "sim_receiver_replayed_shares_total",
    "repair_extensions": "sim_receiver_repair_extensions_total",
    "repair_recovered": "sim_receiver_repair_recovered_total",
    "auth_verified_shares": "sim_receiver_auth_verified_total",
    "auth_failed_shares": "sim_receiver_auth_failed_total",
    "auth_missing_shares": "sim_receiver_auth_missing_total",
}


def instrument_node(obs: Observability, node, role: Optional[str] = None) -> None:
    """Wire one :class:`~repro.protocol.remicss.RemicssNode`.

    Registers pull collectors for the sender and receiver counter blocks
    (per-channel share counts, schedule picks, queue/backlog gauges) and
    attaches the push-side reconstruct-latency histogram and trace hooks.
    """
    if not obs.enabled:
        return
    registry = obs.registry
    name = role or node.name
    sender, receiver = node.sender, node.receiver

    sender_counters = {
        field: registry.counter(metric, node=name)
        for field, metric in _SENDER_COUNTERS.items()
    }
    backlog_gauge = registry.gauge("sim_sender_backlog", node=name)
    receiver_counters = {
        field: registry.counter(metric, node=name)
        for field, metric in _RECEIVER_COUNTERS.items()
    }
    pending_gauge = registry.gauge("sim_receiver_pending", node=name)
    pending_max_gauge = registry.gauge("sim_receiver_pending_max", node=name)

    def collect() -> None:
        sender_stats = sender.stats
        for field, counter in sender_counters.items():
            counter.value = float(getattr(sender_stats, field))
        backlog_gauge.set(sender.backlog)
        for channel, shares in enumerate(sender.shares_per_channel):
            registry.counter(
                "sim_sender_channel_shares_total", node=name, channel=str(channel)
            ).value = float(shares)
        for (k, m), picks in sorted(sender.schedule_picks.items()):
            registry.counter(
                "sim_sender_schedule_picks_total", node=name, k=str(k), m=str(m)
            ).value = float(picks)
        receiver_stats = receiver.stats
        for field, counter in receiver_counters.items():
            counter.value = float(getattr(receiver_stats, field))
        pending_gauge.set(receiver.pending)
        pending_max_gauge.set(receiver.max_pending)
        for channel, fails in sorted(receiver.auth_fail_by_channel.items()):
            registry.counter(
                "sim_receiver_auth_fail_channel_total", node=name, channel=str(channel)
            ).value = float(fails)

    registry.register_collector(collect)

    # Push side: reconstruct latency lands straight in a histogram, and the
    # sender's transmit path emits share_tx spans when tracing is on.
    receiver.latency_histogram = registry.histogram(
        "sim_receiver_reconstruct_latency", buckets=DEFAULT_LATENCY_BUCKETS, node=name
    )
    receiver.occupancy_histogram = registry.histogram(
        "sim_receiver_occupancy", buckets=DEFAULT_DEPTH_BUCKETS, node=name
    )
    if obs.tracer.enabled:
        sender.tracer = obs.tracer
        receiver.tracer = obs.tracer


# -- active adversary -------------------------------------------------------------

#: AttackStats field -> exported counter name (docs/ADVERSARY.md).
_ATTACK_COUNTERS = {
    "shares_corrupted": "adv_shares_corrupted_total",
    "control_corrupted": "adv_control_corrupted_total",
    "shares_forged": "adv_shares_forged_total",
    "packets_replayed": "adv_packets_replayed_total",
    "packets_captured": "adv_packets_captured_total",
    "packets_held": "adv_packets_held_total",
    "packets_released": "adv_packets_released_total",
    "jams": "adv_jams_total",
    "unjams": "adv_unjams_total",
    "adaptive_jams": "adv_adaptive_jams_total",
    "targeted_symbols": "adv_targeted_symbols_total",
    "targeted_corruptions": "adv_targeted_corruptions_total",
    "injected_dropped": "adv_injected_dropped_total",
}


def instrument_attack(obs: Observability, injector) -> None:
    """Wire an :class:`~repro.adversary.active.engine.AttackInjector`.

    Registers a pull collector exporting the adversary's stat ledger as
    ``adv_*`` counters, the applied-event counts labelled by action, and
    the plan size; attaches the tracer so every applied event emits an
    ``attack_applied`` trace.
    """
    if not obs.enabled:
        return
    registry = obs.registry
    counters = {
        field: registry.counter(metric) for field, metric in _ATTACK_COUNTERS.items()
    }
    plan_gauge = registry.gauge("adv_plan_events")
    injector.tracer = obs.tracer

    def collect() -> None:
        stats = injector.stats
        for field, counter in counters.items():
            counter.value = float(getattr(stats, field))
        summary = injector.summary()
        for action, count in sorted(summary["by_action"].items()):
            registry.counter("adv_events_applied_total", action=action).value = float(count)
        plan_gauge.set(len(injector.plan))

    registry.register_collector(collect)


# -- resilience -------------------------------------------------------------------

#: ResilienceStats field -> exported counter name (docs/RESILIENCE.md).
_RESILIENCE_COUNTERS = {
    "quarantines": "sim_resilience_quarantines_total",
    "reinstatements": "sim_resilience_reinstatements_total",
    "failovers": "sim_resilience_failovers_total",
    "restores": "sim_resilience_restores_total",
    "degraded_entries": "sim_resilience_degraded_total",
    "probes_sent": "sim_resilience_probes_sent_total",
    "probe_acks_sent": "sim_resilience_probe_acks_sent_total",
    "probe_acks_received": "sim_resilience_probe_acks_received_total",
    "nacks_sent": "sim_repair_nacks_total",
    "nacks_received": "sim_repair_nacks_received_total",
    "repair_shares_sent": "sim_repair_shares_sent_total",
    "repair_shares_dropped": "sim_repair_shares_dropped_total",
    "control_decode_errors": "sim_resilience_control_decode_errors_total",
}


def instrument_resilience(obs: Observability, manager) -> None:
    """Wire a :class:`~repro.protocol.resilience.ResilienceManager`.

    Registers a pull collector for the manager's counter block plus
    per-channel gauges: the quarantine state (0 = healthy, 1 = suspect,
    2 = quarantined, 3 = probing) and the detector's EWMA loss estimate.
    """
    if not obs.enabled:
        return
    # Local import: repro.protocol.resilience pulls in the planner stack,
    # which this low-level wiring module must not depend on at import time.
    from repro.protocol.resilience.manager import STATE_ORDINALS

    registry = obs.registry
    counters = {
        field: registry.counter(metric)
        for field, metric in _RESILIENCE_COUNTERS.items()
    }
    state_gauges = [
        registry.gauge("sim_resilience_channel_state", channel=str(channel))
        for channel in range(len(manager.guards))
    ]
    loss_gauges = [
        registry.gauge("sim_resilience_channel_loss_ewma", channel=str(channel))
        for channel in range(len(manager.guards))
    ]

    def collect() -> None:
        stats = manager.stats
        for field, counter in counters.items():
            counter.value = float(getattr(stats, field))
        for channel, guard in enumerate(manager.guards):
            state_gauges[channel].set(float(STATE_ORDINALS[guard.state]))
            loss_gauges[channel].set(manager.health.channel(channel).loss_ewma)

    registry.register_collector(collect)
