"""Metric-snapshot and trace exporters: JSON-lines, CSV, Prometheus text.

All three formats render a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
(a deterministically ordered list of sample dicts) to text with no
environment-dependent content -- no timestamps, no hostnames, no float
formatting that varies across platforms -- so a seeded run exports
byte-identical dumps.  JSON-lines and CSV have matching parsers
(:func:`metrics_from_jsonl` / :func:`metrics_from_csv`) used by the
round-trip tests; Prometheus text is write-only (it is a scrape format).
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import Iterable, List, Optional, Sequence

from repro.obs.tracing import TraceEvent

#: File suffix -> format name for :func:`write_metrics`.
_SUFFIX_FORMATS = {
    ".jsonl": "jsonl",
    ".json": "jsonl",
    ".csv": "csv",
    ".prom": "prometheus",
    ".txt": "prometheus",
}

_CSV_HEADER = ("name", "type", "labels", "field", "value")


def _fmt_number(value: float) -> str:
    """Render a number compactly and deterministically (ints without '.0')."""
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _encode_labels(labels: dict) -> str:
    """``k=v`` pairs joined with ';', sorted (CSV cell encoding)."""
    return ";".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _decode_labels(cell: str) -> dict:
    if not cell:
        return {}
    labels = {}
    for pair in cell.split(";"):
        key, _, value = pair.partition("=")
        labels[key] = value
    return labels


# -- JSON-lines -------------------------------------------------------------------


def metrics_to_jsonl(samples: Sequence[dict]) -> str:
    """One JSON object per line, keys sorted (the canonical dump format)."""
    return "\n".join(json.dumps(sample, sort_keys=True) for sample in samples) + (
        "\n" if samples else ""
    )


def metrics_from_jsonl(text: str) -> List[dict]:
    """Parse :func:`metrics_to_jsonl` output back into sample dicts."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


# -- CSV --------------------------------------------------------------------------


def metrics_to_csv(samples: Sequence[dict]) -> str:
    """Flat CSV: one row per scalar, histograms exploded into field rows.

    Columns are ``name,type,labels,field,value``; counters and gauges use
    field ``value``, histograms emit ``count``/``sum``/``min``/``max``
    plus one ``bucket:<le>`` row per cumulative bucket.
    """
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(_CSV_HEADER)
    for sample in samples:
        base = (sample["name"], sample["type"], _encode_labels(sample["labels"]))
        if sample["type"] == "histogram":
            writer.writerow((*base, "count", _fmt_number(sample["count"])))
            writer.writerow((*base, "sum", _fmt_number(sample["sum"])))
            for bound in ("min", "max"):
                value = sample[bound]
                writer.writerow((*base, bound, "" if value is None else _fmt_number(value)))
            for le, cumulative in sample["buckets"]:
                writer.writerow((*base, f"bucket:{le}", _fmt_number(cumulative)))
        else:
            writer.writerow((*base, "value", _fmt_number(sample["value"])))
    return out.getvalue()


def metrics_from_csv(text: str) -> List[dict]:
    """Parse :func:`metrics_to_csv` output back into sample dicts."""
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header is not None and tuple(header) != _CSV_HEADER:
        raise ValueError(f"unexpected CSV header {header!r}; expected {_CSV_HEADER}")
    samples: List[dict] = []
    current: Optional[dict] = None
    for row in reader:
        if not row:
            continue
        name, kind, labels_cell, field_name, value_cell = row
        labels = _decode_labels(labels_cell)
        if kind == "histogram":
            if (
                current is None
                or current["name"] != name
                or current["labels"] != labels
                or current["type"] != "histogram"
            ):
                current = {
                    "name": name, "type": "histogram", "labels": labels,
                    "count": 0, "sum": 0.0, "min": None, "max": None, "buckets": [],
                }
                samples.append(current)
            if field_name == "count":
                current["count"] = int(float(value_cell))
            elif field_name == "sum":
                current["sum"] = float(value_cell)
            elif field_name in ("min", "max"):
                current[field_name] = float(value_cell) if value_cell else None
            elif field_name.startswith("bucket:"):
                bound_text = field_name[len("bucket:"):]
                bound = bound_text if bound_text == "+Inf" else float(bound_text)
                current["buckets"].append([bound, int(float(value_cell))])
            else:
                raise ValueError(f"unknown histogram field {field_name!r}")
        else:
            current = None
            samples.append(
                {"name": name, "type": kind, "labels": labels, "value": float(value_cell)}
            )
    return samples


# -- Prometheus text format -------------------------------------------------------


def _prom_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(sorted(labels.items()))
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in merged.items())
    return "{" + inner + "}"


def _escape_label_value(value) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def metrics_to_prometheus(samples: Sequence[dict]) -> str:
    """Prometheus exposition text (``# TYPE`` headers, cumulative buckets)."""
    lines: List[str] = []
    typed: set = set()
    for sample in samples:
        name, kind, labels = sample["name"], sample["type"], sample["labels"]
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)
        if kind == "histogram":
            for le, cumulative in sample["buckets"]:
                le_text = le if le == "+Inf" else _fmt_number(float(le))
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, {'le': le_text})} "
                    f"{_fmt_number(cumulative)}"
                )
            lines.append(f"{name}_sum{_prom_labels(labels)} {_fmt_number(sample['sum'])}")
            lines.append(f"{name}_count{_prom_labels(labels)} {_fmt_number(sample['count'])}")
        else:
            lines.append(f"{name}{_prom_labels(labels)} {_fmt_number(sample['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- traces -----------------------------------------------------------------------


def trace_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """One JSON object per trace event, keys sorted."""
    lines = [json.dumps(event.as_dict(), sort_keys=True) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


# -- file helpers -----------------------------------------------------------------


def format_for_path(path: str, fmt: Optional[str] = None) -> str:
    """Resolve an explicit or suffix-inferred metrics format name."""
    if fmt is not None:
        if fmt not in ("jsonl", "csv", "prometheus"):
            raise ValueError(f"unknown metrics format {fmt!r}")
        return fmt
    suffix = path[path.rfind("."):].lower() if "." in path else ""
    return _SUFFIX_FORMATS.get(suffix, "jsonl")


def write_metrics(path: str, samples: Sequence[dict], fmt: Optional[str] = None) -> str:
    """Write a snapshot to ``path`` in ``fmt`` (default: inferred from suffix).

    Returns the format actually used.
    """
    fmt = format_for_path(path, fmt)
    if fmt == "jsonl":
        text = metrics_to_jsonl(samples)
    elif fmt == "csv":
        text = metrics_to_csv(samples)
    else:
        text = metrics_to_prometheus(samples)
    with open(path, "w") as handle:
        handle.write(text)
    return fmt


def write_trace(path: str, events: Iterable[TraceEvent]) -> None:
    """Write trace events to ``path`` as JSON-lines."""
    with open(path, "w") as handle:
        handle.write(trace_to_jsonl(events))


def histogram_quantile(sample: dict, q: float) -> float:
    """Estimate quantile ``q`` from a histogram sample's cumulative buckets.

    Linear interpolation inside the winning bucket, Prometheus-style; the
    +Inf bucket clamps to the largest finite bound (or the observed max
    when present).  Returns ``nan`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sample["count"]
    if not total:
        return math.nan
    target = q * total
    lower_bound = 0.0
    lower_count = 0
    for le, cumulative in sample["buckets"]:
        bound = math.inf if le == "+Inf" else float(le)
        if cumulative >= target:
            if math.isinf(bound):
                return sample["max"] if sample.get("max") is not None else lower_bound
            if cumulative == lower_count:
                return bound
            fraction = (target - lower_count) / (cumulative - lower_count)
            return lower_bound + fraction * (bound - lower_bound)
        lower_bound, lower_count = bound, cumulative
    return lower_bound
