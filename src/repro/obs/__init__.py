"""Simulation-wide observability: metrics, structured tracing, exporters.

The evaluation of the paper is entirely about *measured* rate, loss and
delay; this package makes those measurements first-class across the whole
simulator instead of scattered ad-hoc counters:

* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms.  Everything is keyed to simulated
  time (no wall clock anywhere), so a seeded run produces a byte-identical
  metrics dump every time.
* :mod:`repro.obs.tracing` -- a structured event :class:`Tracer` with
  spans (``with tracer.span("share_tx", channel=i): ...``) backed by a
  bounded ring buffer.
* :mod:`repro.obs.export` -- exporters to JSON-lines, CSV and Prometheus
  text format, plus parsers for round-trip testing.
* :mod:`repro.obs.instrument` -- :class:`Observability`, the bundle that
  wires a registry and tracer into a :class:`~repro.protocol.remicss.PointToPointNetwork`
  and its protocol nodes.

Disabled observability (:meth:`Observability.disabled`, backed by
:class:`NullRegistry` / :class:`NullTracer`) is a no-op on every hot path,
so uninstrumented runs pay ~nothing.  See ``docs/OBSERVABILITY.md`` for
the metric catalogue and naming convention.
"""

from repro.obs.export import (
    metrics_from_csv,
    metrics_from_jsonl,
    metrics_to_csv,
    metrics_to_jsonl,
    metrics_to_prometheus,
    trace_to_jsonl,
    write_metrics,
    write_trace,
)
from repro.obs.instrument import Observability, instrument_network, instrument_node
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracing import NullTracer, Span, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "Tracer",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Observability",
    "instrument_network",
    "instrument_node",
    "metrics_to_jsonl",
    "metrics_to_csv",
    "metrics_to_prometheus",
    "metrics_from_jsonl",
    "metrics_from_csv",
    "trace_to_jsonl",
    "write_metrics",
    "write_trace",
]
