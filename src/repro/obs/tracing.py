"""Structured event tracing with sim-time spans and a bounded ring buffer.

A :class:`Tracer` records :class:`TraceEvent` tuples -- point events and
begin/end span pairs -- stamped with *simulated* time from the clock
callable it is constructed with (typically ``lambda: engine.now``).  The
buffer is a ring: once ``capacity`` events have been recorded the oldest
are overwritten, so tracing a long run has bounded memory; the number of
events dropped that way is kept so exports can say so.

Nothing here reads a wall clock, so traces from seeded runs are
byte-identical across repetitions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional

#: Default ring-buffer capacity (events).
DEFAULT_CAPACITY = 65536


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    Attributes:
        time: simulated time of the record.
        kind: "event" for point events, "span" for completed spans.
        name: the event/span name (snake_case by convention).
        fields: structured payload (JSON-friendly scalars).
        duration: sim-time length for spans, ``None`` for point events.
    """

    time: float
    kind: str
    name: str
    fields: Dict[str, object] = field(default_factory=dict)
    duration: Optional[float] = None

    def as_dict(self) -> dict:
        record: dict = {"time": self.time, "kind": self.kind, "name": self.name}
        if self.duration is not None:
            record["duration"] = self.duration
        if self.fields:
            record["fields"] = dict(self.fields)
        return record


class Span:
    """An open span; close it (or use it as a context manager) to record.

    The recorded :class:`TraceEvent` carries the span's *start* time and
    its sim-time ``duration`` (end - start).  Extra fields can be attached
    while the span is open via :meth:`annotate`.
    """

    __slots__ = ("_tracer", "name", "fields", "start", "_closed")

    def __init__(self, tracer: "Tracer", name: str, fields: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.fields = fields
        self.start = tracer.clock()
        self._closed = False

    def annotate(self, **fields: object) -> "Span":
        """Attach extra structured fields to the span."""
        self.fields.update(fields)
        return self

    def close(self) -> None:
        """Record the span (idempotent)."""
        if self._closed:
            return
        self._closed = True
        end = self._tracer.clock()
        self._tracer._record(
            TraceEvent(self.start, "span", self.name, self.fields, duration=end - self.start)
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Tracer:
    """Bounded structured-event recorder.

    Args:
        clock: zero-argument callable returning current simulated time.
        capacity: ring-buffer size in events (oldest evicted first).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float], capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.clock = clock
        self.capacity = capacity
        self.dropped = 0
        self._buffer: Deque[TraceEvent] = deque()

    def _record(self, event: TraceEvent) -> None:
        if len(self._buffer) >= self.capacity:
            self._buffer.popleft()
            self.dropped += 1
        self._buffer.append(event)

    def event(self, name: str, **fields: object) -> None:
        """Record a point event at the current simulated time."""
        self._record(TraceEvent(self.clock(), "event", name, fields))

    def span(self, name: str, **fields: object) -> Span:
        """Open a span; use as ``with tracer.span("share_tx", channel=i):``."""
        return Span(self, name, fields)

    @property
    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buffer)

    def clear(self) -> None:
        """Empty the buffer and reset the dropped-event count."""
        self._buffer.clear()
        self.dropped = 0


class _NullSpan:
    """Shared no-op span."""

    __slots__ = ()

    def annotate(self, **fields: object) -> "_NullSpan":
        return self

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """A tracer that records nothing (tracing disabled)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0, capacity=1)

    def event(self, name: str, **fields: object) -> None:
        pass

    def span(self, name: str, **fields: object):  # type: ignore[override]
        return _NULL_SPAN
