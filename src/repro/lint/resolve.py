"""Back-compat shim: alias resolution moved to :mod:`repro.analysis.resolve`.

Import-alias collection and dotted-name resolution are shared by every
analysis tool; this module keeps the original import path working.
"""

from repro.analysis.resolve import collect_aliases, qualified_name

__all__ = ["collect_aliases", "qualified_name"]
