"""Back-compat shim: :class:`Finding` moved to :mod:`repro.analysis.findings`.

The record is shared by every analysis tool (the determinism linter and
the secret-taint analysis report the same schema); this module keeps
the original ``repro.lint.findings`` import path working.
"""

from repro.analysis.findings import Finding

__all__ = ["Finding"]
