"""Determinism linter: static enforcement of reproducibility invariants.

Every result this reproduction publishes -- the Fig. 3-7 comparisons
against the closed-form optima, the fault-injection chaos tests, the
sweep cache's content-addressed hits -- rests on one invariant: a
``(seed, config)`` pair produces byte-identical output.  The dynamic
same-seed trace tests check that invariant *after* a hazard lands; this
package proves a class of hazards absent at lint time, in the spirit of
the paper's own methodology (guarantees derived statically from the
model rather than observed empirically).

The subsystem is a small AST-based static-analysis framework:

* :mod:`repro.lint.findings` -- the :class:`Finding` record (file, line,
  column, rule id, message) with a stable JSON round-trip.
* :mod:`repro.lint.rules` -- the :class:`Rule` base class and registry.
* :mod:`repro.lint.resolve` -- import-alias collection and dotted-name
  resolution (``np.random.seed`` -> ``numpy.random.seed``).
* :mod:`repro.lint.checks` -- the determinism rule catalogue
  (``wall-clock``, ``unseeded-rng``, ``unordered-iteration``,
  ``env-read``, ``mutable-default``, ``float-eq``).
* :mod:`repro.lint.suppressions` -- ``# lint: disable=<rule>`` (per
  line) and ``# lint: file-disable=<rule>`` (per file) directives.
* :mod:`repro.lint.baseline` -- a JSON baseline of grandfathered
  findings (ships empty; see docs/LINTING.md).
* :mod:`repro.lint.engine` -- the single-pass visitor that walks the
  tree once per file and dispatches every node to the interested rules.
* :mod:`repro.lint.cli` -- the ``repro-model lint`` entry point.

The linter is itself deterministic: files are discovered in sorted
order, nodes are visited in AST order and findings are reported sorted
by ``(file, line, column, rule)``, so two runs over the same tree emit
byte-identical output.  CI gates on ``repro-model lint`` exiting zero
(see ``.github/workflows/ci.yml`` and docs/LINTING.md).
"""

from repro.lint.baseline import Baseline
from repro.lint.checks import default_rules
from repro.lint.engine import LintEngine, LintReport, lint_paths
from repro.lint.findings import Finding
from repro.lint.rules import Rule, all_rules, get_rule, register
from repro.lint.suppressions import FileSuppressions

__all__ = [
    "Baseline",
    "FileSuppressions",
    "Finding",
    "LintEngine",
    "LintReport",
    "Rule",
    "all_rules",
    "default_rules",
    "get_rule",
    "lint_paths",
    "register",
]
