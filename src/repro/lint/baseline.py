"""Back-compat shim: :class:`Baseline` moved to :mod:`repro.analysis.baseline`.

The grandfathering mechanism is shared by every analysis tool
(``lint-baseline.json`` and ``taint-baseline.json`` use the same
format); this module keeps the original import path working.
"""

from repro.analysis.baseline import Baseline

__all__ = ["Baseline"]
