"""Back-compat shim: directives moved to :mod:`repro.analysis.suppressions`.

The ``# lint:`` / ``# taint:`` directive machinery is shared by every
analysis tool; this module keeps the original import path working.
"""

from repro.analysis.suppressions import (
    BAD_DIRECTIVE,
    FileSuppressions,
    parse_suppressions,
)

__all__ = ["FileSuppressions", "parse_suppressions", "BAD_DIRECTIVE"]
