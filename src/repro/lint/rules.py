"""The :class:`Rule` base class, the registry, and the file context.

A rule is a small stateless object: it declares which ``ast`` node
types it wants (``node_types``), which part of the tree it polices
(``includes`` path prefixes, with an ``allowlist`` of exemptions), and
a ``visit`` hook that yields :class:`~repro.lint.findings.Finding`
records.  The engine parses each file once and dispatches every node to
every interested rule, so adding a rule never adds a parse or a walk.

Scoping policy lives on the rule classes in :mod:`repro.lint.checks`
(this is a repo-specific linter; the scope *is* the policy), but every
attribute can be overridden per instance for tests and one-off runs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Tuple, Type

from repro.lint.findings import Finding
from repro.lint.resolve import qualified_name
from repro.lint.suppressions import FileSuppressions

__all__ = ["FileContext", "Rule", "all_rules", "get_rule", "register"]


class FileContext:
    """Everything a rule may consult about the file being linted.

    Attributes:
        relpath: path relative to the lint root, forward slashes.
        source_lines: the file's source lines (for message snippets).
        aliases: import-alias map (see :mod:`repro.lint.resolve`).
        suppressions: parsed ``# lint:`` directives.
    """

    def __init__(
        self,
        relpath: str,
        source_lines: Sequence[str],
        aliases: Dict[str, str],
        suppressions: FileSuppressions,
    ):
        self.relpath = relpath
        self.source_lines = source_lines
        self.aliases = aliases
        self.suppressions = suppressions

    def qualname(self, node: ast.AST) -> str:
        """Resolve a Name/Attribute chain against this file's imports.

        Returns ``""`` (never matching any rule's qualified-name set)
        when the expression has no static dotted name.
        """
        return qualified_name(node, self.aliases) or ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(
            file=self.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule=rule.rule_id,
            message=message,
        )


class Rule:
    """Base class for determinism rules.

    Class attributes (overridable per instance via ``__init__`` kwargs):

    * ``rule_id``: stable kebab-case id used in reports, directives and
      the baseline.
    * ``description``: one-line summary for ``--list-rules``.
    * ``rationale``: why the hazard breaks ``(seed, config)``
      reproducibility (surfaced in docs/LINTING.md).
    * ``node_types``: the ``ast`` node classes this rule inspects.
    * ``includes``: path prefixes (relative to the lint root) the rule
      applies to; empty means everywhere.
    * ``allowlist``: path prefixes exempt from the rule even inside
      ``includes`` -- for *documented* exceptions only.
    """

    rule_id: str = ""
    description: str = ""
    rationale: str = ""
    node_types: Tuple[Type[ast.AST], ...] = ()
    includes: Tuple[str, ...] = ()
    allowlist: Tuple[str, ...] = ()

    def __init__(
        self,
        includes: Tuple[str, ...] = None,  # type: ignore[assignment]
        allowlist: Tuple[str, ...] = None,  # type: ignore[assignment]
    ):
        if includes is not None:
            self.includes = tuple(includes)
        if allowlist is not None:
            self.allowlist = tuple(allowlist)

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule polices ``relpath`` under the scoping policy."""
        if self.includes and not any(_under(relpath, p) for p in self.includes):
            return False
        return not any(_under(relpath, p) for p in self.allowlist)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for ``node``; called once per matching node."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.rule_id}>"


def _under(relpath: str, prefix: str) -> bool:
    """True if ``relpath`` is ``prefix`` itself or inside that directory."""
    return relpath == prefix or relpath.startswith(prefix.rstrip("/") + "/")


#: The global rule registry, in registration order.
_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id!r}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, default scoping."""
    return [cls() for cls in _REGISTRY.values()]


def get_rule(rule_id: str) -> Type[Rule]:
    """The registered rule class for ``rule_id`` (KeyError if unknown)."""
    return _REGISTRY[rule_id]
