"""The single-pass lint engine.

One ``ast.parse`` and one tree walk per file, however many rules are
registered: the engine precomputes a ``node type -> interested rules``
dispatch table and feeds every node to exactly the rules that declared
that type.  Suppressions and the baseline are applied afterwards, so a
report always accounts for every raw finding (``findings`` +
``suppressed`` + ``baselined`` partitions the raw set).

The mechanical substrate -- deterministic discovery, the report
dataclass, suppression splitting, obs counters -- lives in
:mod:`repro.analysis.framework`, shared with the secret-taint analysis;
this module keeps only the lint-specific rule dispatch.  Two runs over
the same tree produce byte-identical reports (pinned by
``tests/test_lint_regression.py``).
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.analysis import framework
from repro.analysis.framework import (
    PARSE_ERROR,
    AnalysisReport,
    collect_aliases,
    split_suppressed,
)
from repro.lint.baseline import Baseline
from repro.lint.checks import default_rules
from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule
from repro.lint.suppressions import BAD_DIRECTIVE, parse_suppressions

__all__ = ["LintEngine", "LintReport", "lint_paths", "PARSE_ERROR"]


class LintReport(AnalysisReport):
    """The outcome of one lint run (the shared report shape).

    ``findings`` are the live (non-suppressed, non-baselined) hazards;
    ``ok`` is the CI gate.
    """


class LintEngine:
    """Walks files once and dispatches AST nodes to the registered rules.

    Args:
        rules: rule instances to run; defaults to the full catalogue
            with repo-default scoping (:func:`repro.lint.checks.default_rules`).
        baseline: grandfathered findings; absorbed findings are reported
            separately and do not fail the run.
        obs: optional :class:`repro.obs.Observability`; when given, the
            engine emits ``lint_files_scanned_total``,
            ``lint_findings_total{rule=...}``, ``lint_suppressed_total{rule=...}``
            and ``lint_baselined_total`` counters.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        baseline: Optional[Baseline] = None,
        obs=None,
    ):
        self.rules: List[Rule] = list(rules) if rules is not None else default_rules()
        self.baseline = baseline
        self.obs = obs
        self._dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    # -- discovery --------------------------------------------------------------

    @staticmethod
    def discover(root: str, paths: Sequence[str]) -> List[str]:
        """Resolve files/directories to a sorted list of ``.py`` files.

        Delegates to :func:`repro.analysis.framework.discover`: sorted
        walk, cache/VCS directories skipped, forward-slash relpaths.
        """
        return framework.discover(root, paths, label="lint")

    # -- per-file pass ----------------------------------------------------------

    def lint_source(self, relpath: str, source: str) -> Tuple[List[Finding], List[Finding]]:
        """Lint one file's source text.

        Returns ``(raw_findings, suppressed)`` -- baseline handling is
        run-level, not file-level.
        """
        source_lines = source.splitlines()
        known = [rule.rule_id for rule in self.rules] + [PARSE_ERROR]
        suppressions = parse_suppressions(source_lines, known)
        findings: List[Finding] = []
        for line, column, message in suppressions.bad_directives:
            findings.append(
                Finding(file=relpath, line=line, column=column, rule=BAD_DIRECTIVE, message=message)
            )
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    file=relpath,
                    line=exc.lineno or 1,
                    column=(exc.offset or 1) - 1,
                    rule=PARSE_ERROR,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            return split_suppressed(findings, suppressions)

        applicable = [rule for rule in self.rules if rule.applies_to(relpath)]
        if applicable:
            context = FileContext(
                relpath=relpath,
                source_lines=source_lines,
                aliases=collect_aliases(tree),
                suppressions=suppressions,
            )
            dispatch: Dict[Type[ast.AST], List[Rule]] = {}
            for rule in applicable:
                for node_type in rule.node_types:
                    dispatch.setdefault(node_type, []).append(rule)
            for node in ast.walk(tree):
                for rule in dispatch.get(type(node), ()):
                    findings.extend(rule.visit(node, context))
        findings.sort()
        return split_suppressed(findings, suppressions)

    @staticmethod
    def _split_suppressed(findings, suppressions) -> Tuple[List[Finding], List[Finding]]:
        return split_suppressed(findings, suppressions)

    # -- whole-run entry point --------------------------------------------------

    def run(self, root: str, paths: Sequence[str]) -> LintReport:
        """Lint every ``.py`` file under ``paths`` (relative to ``root``)."""
        report = LintReport(root=root)
        raw: List[Finding] = []
        for relpath in self.discover(root, paths):
            with open(os.path.join(root, relpath), encoding="utf-8") as handle:
                source = handle.read()
            live, suppressed = self.lint_source(relpath, source)
            raw.extend(live)
            report.suppressed.extend(suppressed)
            report.files_scanned += 1
        raw.sort()
        if self.baseline is not None:
            report.findings, report.baselined = self.baseline.partition(raw)
        else:
            report.findings = raw
        framework.emit_counters(report, self.obs, "lint")
        return report


def lint_paths(
    root: str,
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    obs=None,
) -> LintReport:
    """Convenience wrapper: build an engine and run it once."""
    return LintEngine(rules=rules, baseline=baseline, obs=obs).run(root, list(paths))
