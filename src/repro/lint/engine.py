"""The single-pass lint engine.

One ``ast.parse`` and one tree walk per file, however many rules are
registered: the engine precomputes a ``node type -> interested rules``
dispatch table and feeds every node to exactly the rules that declared
that type.  Suppressions and the baseline are applied afterwards, so a
report always accounts for every raw finding (``findings`` +
``suppressed`` + ``baselined`` partitions the raw set).

The engine eats its own dogfood: file discovery sorts directory
listings, findings are sorted before reporting, and nothing here reads
a clock, the environment or unordered containers -- two runs over the
same tree produce byte-identical reports.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.lint.baseline import Baseline
from repro.lint.checks import default_rules
from repro.lint.findings import Finding
from repro.lint.resolve import collect_aliases
from repro.lint.rules import FileContext, Rule
from repro.lint.suppressions import BAD_DIRECTIVE, parse_suppressions

__all__ = ["LintEngine", "LintReport", "lint_paths"]

#: Rule id under which unparseable files are reported.
PARSE_ERROR = "parse-error"

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".pytest_cache"})


@dataclass
class LintReport:
    """The outcome of one lint run.

    ``findings`` are the live (non-suppressed, non-baselined) hazards;
    ``ok`` is the CI gate.
    """

    root: str
    files_scanned: int = 0
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def rule_counts(self) -> Dict[str, int]:
        """Live findings per rule id, sorted by rule id."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        """The ``--format json`` schema (documented in docs/LINTING.md)."""
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "ok": self.ok,
            "counts": self.rule_counts(),
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
        }

    def summary(self) -> str:
        """One-line human summary for the end of text output."""
        return (
            f"{len(self.findings)} finding(s) "
            f"({len(self.suppressed)} suppressed, {len(self.baselined)} baselined) "
            f"in {self.files_scanned} file(s)"
        )


class LintEngine:
    """Walks files once and dispatches AST nodes to the registered rules.

    Args:
        rules: rule instances to run; defaults to the full catalogue
            with repo-default scoping (:func:`repro.lint.checks.default_rules`).
        baseline: grandfathered findings; absorbed findings are reported
            separately and do not fail the run.
        obs: optional :class:`repro.obs.Observability`; when given, the
            engine emits ``lint_files_scanned_total``,
            ``lint_findings_total{rule=...}``, ``lint_suppressed_total{rule=...}``
            and ``lint_baselined_total`` counters.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        baseline: Optional[Baseline] = None,
        obs=None,
    ):
        self.rules: List[Rule] = list(rules) if rules is not None else default_rules()
        self.baseline = baseline
        self.obs = obs
        self._dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    # -- discovery --------------------------------------------------------------

    @staticmethod
    def discover(root: str, paths: Sequence[str]) -> List[str]:
        """Resolve files/directories to a sorted list of ``.py`` files.

        Directories are walked with sorted listings (the linter must not
        itself depend on filesystem order); ``__pycache__`` and VCS/tool
        cache directories are skipped.  Paths are returned relative to
        ``root`` with forward slashes.
        """
        found: List[str] = []
        for path in paths:
            absolute = path if os.path.isabs(path) else os.path.join(root, path)
            if os.path.isfile(absolute):
                found.append(os.path.relpath(absolute, root))
                continue
            if not os.path.isdir(absolute):
                raise FileNotFoundError(f"lint path does not exist: {path!r}")
            for dirpath, dirnames, filenames in os.walk(absolute):
                dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.relpath(os.path.join(dirpath, name), root))
        return sorted(dict.fromkeys(p.replace(os.sep, "/") for p in found))

    # -- per-file pass ----------------------------------------------------------

    def lint_source(self, relpath: str, source: str) -> Tuple[List[Finding], List[Finding]]:
        """Lint one file's source text.

        Returns ``(raw_findings, suppressed)`` -- baseline handling is
        run-level, not file-level.
        """
        source_lines = source.splitlines()
        known = [rule.rule_id for rule in self.rules] + [PARSE_ERROR]
        suppressions = parse_suppressions(source_lines, known)
        findings: List[Finding] = []
        for line, column, message in suppressions.bad_directives:
            findings.append(
                Finding(file=relpath, line=line, column=column, rule=BAD_DIRECTIVE, message=message)
            )
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    file=relpath,
                    line=exc.lineno or 1,
                    column=(exc.offset or 1) - 1,
                    rule=PARSE_ERROR,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            return self._split_suppressed(findings, suppressions)

        applicable = [rule for rule in self.rules if rule.applies_to(relpath)]
        if applicable:
            context = FileContext(
                relpath=relpath,
                source_lines=source_lines,
                aliases=collect_aliases(tree),
                suppressions=suppressions,
            )
            dispatch: Dict[Type[ast.AST], List[Rule]] = {}
            for rule in applicable:
                for node_type in rule.node_types:
                    dispatch.setdefault(node_type, []).append(rule)
            for node in ast.walk(tree):
                for rule in dispatch.get(type(node), ()):
                    findings.extend(rule.visit(node, context))
        findings.sort()
        return self._split_suppressed(findings, suppressions)

    @staticmethod
    def _split_suppressed(findings, suppressions) -> Tuple[List[Finding], List[Finding]]:
        live = [f for f in findings if not suppressions.is_suppressed(f.rule, f.line)]
        dead = [f for f in findings if suppressions.is_suppressed(f.rule, f.line)]
        return live, dead

    # -- whole-run entry point --------------------------------------------------

    def run(self, root: str, paths: Sequence[str]) -> LintReport:
        """Lint every ``.py`` file under ``paths`` (relative to ``root``)."""
        report = LintReport(root=root)
        raw: List[Finding] = []
        for relpath in self.discover(root, paths):
            with open(os.path.join(root, relpath), encoding="utf-8") as handle:
                source = handle.read()
            live, suppressed = self.lint_source(relpath, source)
            raw.extend(live)
            report.suppressed.extend(suppressed)
            report.files_scanned += 1
        raw.sort()
        if self.baseline is not None:
            report.findings, report.baselined = self.baseline.partition(raw)
        else:
            report.findings = raw
        self._emit_counters(report)
        return report

    def _emit_counters(self, report: LintReport) -> None:
        """Rule-hit counters through repro.obs (no-op without obs)."""
        if self.obs is None:
            return
        registry = self.obs.registry
        registry.counter("lint_files_scanned_total").inc(report.files_scanned)
        for rule_id, count in report.rule_counts().items():
            registry.counter("lint_findings_total", rule=rule_id).inc(count)
        suppressed_counts: Dict[str, int] = {}
        for finding in report.suppressed:
            suppressed_counts[finding.rule] = suppressed_counts.get(finding.rule, 0) + 1
        for rule_id, count in sorted(suppressed_counts.items()):
            registry.counter("lint_suppressed_total", rule=rule_id).inc(count)
        registry.counter("lint_baselined_total").inc(len(report.baselined))


def lint_paths(
    root: str,
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    obs=None,
) -> LintReport:
    """Convenience wrapper: build an engine and run it once."""
    return LintEngine(rules=rules, baseline=baseline, obs=obs).run(root, list(paths))
