"""The determinism rule catalogue.

Each rule here encodes one way a ``(seed, config)`` pair can stop
producing byte-identical output.  The scoping (``includes`` /
``allowlist``) is this repository's policy, chosen so the live tree
lints clean without weakening the invariant:

* wall-clock reads are banned in ``src/`` and ``tests/`` but not in
  ``benchmarks/`` (benchmarks measure wall time by definition) and not
  in ``src/repro/sweep/runner.py`` (whose wall-time fields are
  reporting-only and excluded from cached results);
* unordered iteration is policed in the three packages whose iteration
  order reaches simulation results (netsim, protocol, sweep);
* exact float comparison is allowed only in ``core/properties.py``,
  whose exact-zero sentinels are documented at the comparison sites.

See docs/LINTING.md for the catalogue with rationale and examples.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule, all_rules, register

__all__ = ["default_rules"]


#: Wall-clock entry points.  ``time.time`` and friends return a value
#: that differs on every call, so any influence on simulation state or
#: output makes two same-seed runs diverge.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``numpy.random`` attributes that are fine: explicit generator/seeding
#: machinery rather than the hidden global legacy RandomState.
NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: ``random`` attributes that are fine: classes one instantiates with an
#: explicit seed (SystemRandom is for key material, never simulation).
PY_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})

#: Environment reads.  ``os.environ`` content varies per machine/shell,
#: so a simulation path consulting it makes results non-portable.
ENV_READS = frozenset({"os.environ", "os.environb", "os.getenv"})

#: Call targets whose result has no defined iteration order.
UNORDERED_PRODUCERS = frozenset({"set", "frozenset", "os.listdir", "os.scandir"})

#: Call targets that build a fresh mutable object -- hazardous as a
#: default argument value exactly like the literal forms.
MUTABLE_FACTORY_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
        "collections.Counter",
    }
)


@register
class WallClockRule(Rule):
    """No wall-clock reads in simulation or test code."""

    rule_id = "wall-clock"
    description = "bans time.time/perf_counter/datetime.now outside reporting code"
    rationale = (
        "A wall-clock read returns a different value on every run; if it "
        "reaches simulation state, traces or cached results, the same "
        "(seed, config) pair stops producing byte-identical output.  Use "
        "the simulated clock (repro.netsim.engine) instead; wall-time "
        "*reporting* belongs in allowlisted or suppressed sites only."
    )
    node_types = (ast.Call,)
    includes = ("src", "tests")
    # SweepStats wall_time / SweepResult.duration are reporting-only and
    # never enter cached rows or result values (docs/SWEEPS.md).
    allowlist = ("src/repro/sweep/runner.py",)

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        qual = ctx.qualname(node.func)
        if qual in WALL_CLOCK_CALLS:
            yield ctx.finding(
                self,
                node,
                f"wall-clock read {qual}() is nondeterministic; use simulated "
                f"time, or suppress with a justification in reporting-only code",
            )


@register
class UnseededRngRule(Rule):
    """No module-level ``random.*`` / legacy ``numpy.random.*`` calls."""

    rule_id = "unseeded-rng"
    description = "bans the global random module and legacy numpy.random functions"
    rationale = (
        "Module-level random.* and numpy.random.* (legacy RandomState) "
        "calls draw from hidden global state that any import or library "
        "call can perturb, so results depend on execution order rather "
        "than the (seed, config) pair.  Pass an explicit random.Random or "
        "numpy.random.Generator instance derived from the run's seed."
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        qual = ctx.qualname(node.func)
        if not qual:
            return
        parts = qual.split(".")
        if parts[0] == "random" and len(parts) == 2 and parts[1] not in PY_RANDOM_ALLOWED:
            yield ctx.finding(
                self,
                node,
                f"{qual}() uses the shared global RNG; pass an explicit "
                f"random.Random/numpy Generator seeded from the run's seed",
            )
        elif (
            len(parts) == 3
            and parts[:2] == ["numpy", "random"]
            and parts[2] not in NUMPY_RANDOM_ALLOWED
        ):
            yield ctx.finding(
                self,
                node,
                f"legacy {qual}() draws from numpy's hidden global RandomState; "
                f"use an explicit numpy.random.Generator (default_rng(seed))",
            )


@register
class UnorderedIterationRule(Rule):
    """No iteration over sets or directory listings without ``sorted``."""

    rule_id = "unordered-iteration"
    description = "bans iterating set/frozenset/os.listdir results unsorted"
    rationale = (
        "set/frozenset iteration order depends on insertion history and "
        "hash randomisation, and os.listdir order on the filesystem; any "
        "of them feeding event scheduling, share placement or cache "
        "enumeration makes runs irreproducible.  Wrap the iterable in "
        "sorted(...) to pin a total order."
    )
    node_types = (ast.For, ast.AsyncFor, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
    # The three packages whose iteration order reaches simulation results.
    includes = ("src/repro/netsim", "src/repro/protocol", "src/repro/sweep")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters: List[ast.AST] = [node.iter]
        else:
            iters = [gen.iter for gen in node.generators]
        for iter_node in iters:
            reason = _unordered_reason(iter_node, ctx)
            if reason is not None:
                yield Finding(
                    file=ctx.relpath,
                    line=iter_node.lineno,
                    column=iter_node.col_offset,
                    rule=self.rule_id,
                    message=f"iteration over {reason} has no deterministic order; "
                    f"wrap it in sorted(...)",
                )


def _unordered_reason(node: ast.AST, ctx: FileContext) -> "str | None":
    """Why ``node`` evaluates to an unordered iterable, or None.

    Deliberately syntactic: set literals, set comprehensions, calls to
    set/frozenset/os.listdir/os.scandir, and set algebra over any of
    those.  Iterating a *variable* that merely holds a set needs type
    inference and is left to the dynamic same-seed tests.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal" if isinstance(node, ast.Set) else "a set comprehension"
    if isinstance(node, ast.Call):
        qual = ctx.qualname(node.func)
        if qual in UNORDERED_PRODUCERS:
            return f"{qual}(...)"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        for side in (node.left, node.right):
            reason = _unordered_reason(side, ctx)
            if reason is not None:
                return f"set algebra over {reason}"
    return None


@register
class EnvReadRule(Rule):
    """No ``os.environ`` / ``os.getenv`` access in simulation paths."""

    rule_id = "env-read"
    description = "bans os.environ/os.getenv reads inside src/"
    rationale = (
        "Environment content varies per machine, shell and CI runner; a "
        "simulation path that consults it produces results that cannot be "
        "reproduced from the (seed, config) pair alone.  Configuration "
        "must flow through explicit config objects and CLI flags."
    )
    node_types = (ast.Attribute, ast.Name)
    includes = ("src",)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Name) and node.id not in ctx.aliases:
            # A bare name only matters if an import actually bound it to
            # os.environ/os.getenv; unimported locals are not env reads.
            return
        # `os.environ.get(...)` contains the `os.environ` attribute node
        # exactly once (the outer `os.environ.get` chain resolves to a
        # different qualified name), so each textual occurrence yields
        # exactly one finding without deduplication bookkeeping.
        qual = ctx.qualname(node)
        if qual in ENV_READS:
            yield ctx.finding(
                self,
                node,
                f"{qual} read makes results depend on the process environment; "
                f"thread configuration through explicit parameters",
            )


@register
class MutableDefaultRule(Rule):
    """No mutable default argument values."""

    rule_id = "mutable-default"
    description = "bans list/dict/set (literal or constructor) default arguments"
    rationale = (
        "A mutable default is created once at definition time and shared "
        "across calls; state then leaks between runs of what should be "
        "independent simulations, an order-dependence bug that seeded RNG "
        "discipline cannot catch.  Default to None and construct inside."
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
            reason = None
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                reason = {ast.List: "list", ast.Dict: "dict", ast.Set: "set"}[type(default)]
                reason = f"a {reason} literal"
            elif isinstance(default, (ast.ListComp, ast.DictComp, ast.SetComp)):
                reason = "a comprehension"
            elif isinstance(default, ast.Call):
                qual = ctx.qualname(default.func)
                if qual in MUTABLE_FACTORY_CALLS:
                    reason = f"{qual}()"
            if reason is not None:
                yield Finding(
                    file=ctx.relpath,
                    line=default.lineno,
                    column=default.col_offset,
                    rule=self.rule_id,
                    message=f"mutable default argument ({reason}) is shared across "
                    f"calls; default to None and construct in the body",
                )


@register
class FloatEqRule(Rule):
    """No ``==`` / ``!=`` against float literals."""

    rule_id = "float-eq"
    description = "bans ==/!= comparisons with float literals outside documented sentinels"
    rationale = (
        "Float equality is representation-sensitive: a result that passes "
        "x == 0.3 on one platform/optimisation level fails on another, so "
        "branches guarded by it make behaviour machine-dependent.  Compare "
        "with a tolerance (math.isclose) -- or, for documented exact-zero/"
        "sentinel checks, suppress with a justification."
    )
    node_types = (ast.Compare,)
    includes = ("src",)
    # core/properties.py documents its exact-zero sentinel comparisons at
    # each site (loss-free channels, zero-weight atoms).
    allowlist = ("src/repro/core/properties.py",)

    def visit(self, node: ast.Compare, ctx: FileContext) -> Iterator[Finding]:
        values = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (values[index], values[index + 1]):
                if isinstance(side, ast.Constant) and isinstance(side.value, float):
                    yield ctx.finding(
                        self,
                        node,
                        f"exact float comparison with {side.value!r} is "
                        f"representation-sensitive; use math.isclose or suppress "
                        f"a documented sentinel check",
                    )
                    break


def default_rules() -> "list[Rule]":
    """Fresh default-scoped instances of the full catalogue."""
    return all_rules()
