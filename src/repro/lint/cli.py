"""Command-line front end for the determinism linter.

Reached three ways, all sharing this module:

* ``repro-model lint ...`` (the installed console script),
* ``python -m repro.cli lint ...``,
* ``python -m repro.lint ...``.

Exit status: 0 when the tree is clean (after suppressions and the
baseline), 1 when live findings remain, 2 on usage errors -- so CI can
gate on the exit code alone.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.checks import default_rules
from repro.lint.engine import LintEngine

__all__ = ["add_lint_arguments", "main", "run_lint"]

#: Default lint targets, relative to the root (missing ones are skipped).
DEFAULT_PATHS = ("src", "tests", "benchmarks")

#: Default baseline location, relative to the root.
DEFAULT_BASELINE = "lint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with repro.cli)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (text: file:line:col lines; json: stable schema)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=f"baseline file of grandfathered findings (default: "
        f"{DEFAULT_BASELINE} next to --root when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="also emit the lint rule-hit counters through repro.obs to "
        "this path (format inferred from the suffix; see docs/OBSERVABILITY.md)",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        for rule in default_rules():
            scope = ", ".join(rule.includes) if rule.includes else "everywhere"
            print(f"{rule.rule_id:22s} {rule.description}  [scope: {scope}]")
        return 0

    root = os.path.abspath(args.root)
    paths = list(args.paths)
    if not paths:
        paths = [p for p in DEFAULT_PATHS if os.path.exists(os.path.join(root, p))]
        if not paths:
            print(f"error: no default lint paths exist under {root}", file=sys.stderr)
            return 2

    baseline_path = args.baseline or os.path.join(root, DEFAULT_BASELINE)
    baseline: Optional[Baseline] = None
    if not args.no_baseline and not args.update_baseline and os.path.exists(baseline_path):
        baseline = Baseline.load(baseline_path)

    obs = None
    if args.metrics_out:
        from repro.obs import Observability

        obs = Observability.create()

    engine = LintEngine(baseline=baseline, obs=obs)
    try:
        report = engine.run(root, paths)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        Baseline.from_findings(report.findings).write(baseline_path)
        print(f"baseline: {len(report.findings)} finding(s) -> {baseline_path}")
        return 0

    if args.format == "json":
        json.dump(report.to_dict(), sys.stdout, indent=1, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for finding in report.findings:
            print(finding.render())
        print(report.summary())

    if obs is not None:
        from repro.obs import write_metrics

        write_metrics(args.metrics_out, obs.registry.snapshot())

    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism linter for the repro tree "
        "(see docs/LINTING.md)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
