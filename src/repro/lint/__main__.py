"""``python -m repro.lint`` runs the determinism linter."""

import sys

from repro.lint.cli import main

sys.exit(main())
