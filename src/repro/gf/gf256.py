"""The binary extension field GF(2^8).

This is the workhorse field for byte-oriented secret sharing: every byte of
a payload is treated as one field element and shared independently, so a
share of an N-byte symbol is itself N bytes -- satisfying the model's
``H(Y) = H(X)`` optimality assumption (Sec. III-C of the paper) exactly.

Multiplication uses log/antilog tables over a fixed generator, which makes
``split``/``reconstruct`` fast enough for the protocol simulator to share
millions of bytes per benchmark run.  The reduction polynomial is the AES
polynomial ``x^8 + x^4 + x^3 + x + 1`` (0x11b); any irreducible polynomial
would do, but using a well-known one simplifies cross-checking test vectors.

This scalar implementation doubles as the *reference oracle* for the
vectorized kernels in :mod:`repro.gf.batch`: the batch path must be
bit-identical to it (``tests/test_sharing_batch_equiv.py``), and the
bit-by-bit :func:`_carryless_mul` below is the independent oracle the
golden-vector suite (``tests/test_gf_vectors.py``) checks both against.
"""

from __future__ import annotations

from typing import List

from repro.gf.field import Field

#: AES reduction polynomial for GF(2^8).
REDUCTION_POLY = 0x11B

#: Generator element used to build the log/antilog tables.  3 (= x + 1) is
#: a primitive element of GF(2^8) under the AES polynomial.
GENERATOR = 0x03


def _carryless_mul(a: int, b: int) -> int:
    """Multiply two GF(2^8) elements bit-by-bit with polynomial reduction.

    Used only to build the tables (and by tests as an independent oracle).
    """
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= REDUCTION_POLY
        b >>= 1
    return result


def _build_tables() -> "tuple[List[int], List[int]]":
    """Build antilog (exp) and log tables for the generator element."""
    exp = [0] * 255
    log = [0] * 256
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value = _carryless_mul(value, GENERATOR)
    if value != 1:  # pragma: no cover - sanity check on constants
        raise AssertionError("generator does not have order 255")
    return exp, log


_EXP, _LOG = _build_tables()


class GF256(Field):
    """GF(2^8) with table-driven arithmetic.

    The field is stateless, so a module-level singleton
    (:data:`repro.gf.gf256.GF256_FIELD`) is provided and should normally be
    used instead of constructing new instances.
    """

    order = 256

    def add(self, a: int, b: int) -> int:
        return a ^ b

    def neg(self, a: int) -> int:
        # Characteristic 2: every element is its own additive inverse.
        return a

    def sub(self, a: int, b: int) -> int:
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return _EXP[(_LOG[a] + _LOG[b]) % 255]

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse in GF(256)")
        return _EXP[(255 - _LOG[a]) % 255]

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return _EXP[(_LOG[a] - _LOG[b]) % 255]


#: Shared singleton; GF(2^8) arithmetic is stateless.
GF256_FIELD = GF256()
