"""Vectorized GF(2^8) kernels for whole-batch secret sharing.

The scalar field in :mod:`repro.gf.gf256` and the generic polynomial code in
:mod:`repro.gf.poly` are the *reference oracle*: correct, simple, and slow.
This module re-expresses the two sharing primitives -- polynomial evaluation
and Lagrange interpolation -- as numpy table translations over ``uint8``
arrays so a whole datagram batch (every byte position x every share point)
moves through the field in a handful of vectorized passes, mirroring the
``BatchReconstruction`` idiom of batched-MPC systems.

Everything here is *exact* field arithmetic over the same AES-polynomial
log/antilog tables the scalar path builds, so batch results are bit-identical
to the scalar oracle byte for byte -- a property the test suite
(``tests/test_sharing_batch_equiv.py``) enforces, because the privacy model
(``H(Y) = H(X)``, Sec. III-C of the paper) assumes exact field semantics.

Table layout:

* ``EXP_TABLE`` is the antilog table doubled to length 510 so that
  ``EXP_TABLE[log a + log b]`` needs no ``% 255`` in products.
* ``LOG_TABLE`` is ``int16`` (sums of two logs stay in range) with the
  meaningless ``log 0`` entry pinned to 0; every kernel masks zero operands
  back to zero explicitly rather than trusting that sentinel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gf.gf256 import _EXP, _LOG

__all__ = [
    "EXP_TABLE",
    "LOG_TABLE",
    "gf_mul_vec",
    "gf_div_vec",
    "gf_inv_vec",
    "gf_pow_vec",
    "eval_poly_at_points",
    "lagrange_coeffs_at",
    "lagrange_interpolate",
]

#: Doubled antilog table: indices 0..508 cover any sum of two logs.
EXP_TABLE = np.array(_EXP + _EXP, dtype=np.uint8)

#: Log table with the (undefined) log of zero pinned to 0; zero inputs are
#: handled by explicit masks in every kernel.
LOG_TABLE = np.array([0] + _LOG[1:], dtype=np.int16)


def _as_u8(a) -> np.ndarray:
    arr = np.asarray(a)
    if arr.dtype != np.uint8:
        if arr.size and (arr.min() < 0 or arr.max() > 255):
            raise ValueError("GF(256) elements must be in 0..255")
        arr = arr.astype(np.uint8)
    return arr


def gf_mul_vec(a, b) -> np.ndarray:
    """Element-wise GF(2^8) product of two broadcastable uint8 arrays."""
    a = _as_u8(a)
    b = _as_u8(b)
    prod = EXP_TABLE[LOG_TABLE[a].astype(np.int32) + LOG_TABLE[b]]
    return np.where((a == 0) | (b == 0), np.uint8(0), prod)


def gf_inv_vec(a) -> np.ndarray:
    """Element-wise multiplicative inverse; raises on any zero element."""
    a = _as_u8(a)
    if np.any(a == 0):
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(256)")
    return EXP_TABLE[255 - LOG_TABLE[a]]


def gf_div_vec(a, b) -> np.ndarray:
    """Element-wise GF(2^8) quotient ``a / b``; raises if ``b`` has zeros."""
    a = _as_u8(a)
    b = _as_u8(b)
    if np.any(b == 0):
        raise ZeroDivisionError("division by zero in GF(256)")
    quot = EXP_TABLE[LOG_TABLE[a].astype(np.int32) - LOG_TABLE[b] + 255]
    return np.where(a == 0, np.uint8(0), quot)


def gf_pow_vec(base, exponent) -> np.ndarray:
    """Element-wise ``base ** exponent`` with non-negative integer exponents.

    Follows the usual field conventions: ``x ** 0 == 1`` for every ``x``
    (including 0) and ``0 ** e == 0`` for ``e > 0``.
    """
    base = _as_u8(base)
    exponent = np.asarray(exponent)
    if exponent.size and exponent.min() < 0:
        raise ValueError("exponents must be non-negative")
    log_pow = (LOG_TABLE[base].astype(np.int64) * exponent) % 255
    out = EXP_TABLE[log_pow]
    out = np.where((base == 0) & (exponent > 0), np.uint8(0), out)
    return np.where(exponent == 0, np.uint8(1), out)


def eval_poly_at_points(coeffs: np.ndarray, xs) -> np.ndarray:
    """Evaluate ``n`` byte-wise polynomials at ``m`` points in one pass.

    Args:
        coeffs: uint8 array of shape ``(k, n)``; column ``b`` holds the
            coefficients (constant term first) of the polynomial for byte
            position ``b``.  A 1-D ``(k,)`` array is a single polynomial
            and yields a ``(m,)`` result.
        xs: the ``m`` evaluation points (uint8).

    Returns:
        uint8 array of shape ``(m, n)`` (or ``(m,)`` for 1-D ``coeffs``)
        where row ``i`` is the evaluation of every byte polynomial at
        ``xs[i]`` -- i.e. share ``xs[i]`` of the whole batch, by Horner's
        rule vectorized over the full ``m x n`` grid.
    """
    coeffs = _as_u8(coeffs)
    squeeze = coeffs.ndim == 1
    if squeeze:
        coeffs = coeffs[:, None]
    if coeffs.ndim != 2 or coeffs.shape[0] == 0:
        raise ValueError("coeffs must be a non-empty (k, n) array")
    xs = np.atleast_1d(_as_u8(xs))
    k, n = coeffs.shape
    m = xs.shape[0]
    acc = np.broadcast_to(coeffs[-1], (m, n)).copy()
    if k > 1:
        log_x = LOG_TABLE[xs][:, None]
        zero_x = (xs == 0)[:, None]
        for j in range(k - 2, -1, -1):
            prod = EXP_TABLE[LOG_TABLE[acc] + log_x]
            np.bitwise_xor(
                np.where(zero_x | (acc == 0), np.uint8(0), prod),
                coeffs[j],
                out=acc,
            )
    return acc[:, 0] if squeeze else acc


def lagrange_coeffs_at(xs, x: int = 0) -> np.ndarray:
    """Lagrange basis coefficients ``l_i(x)`` for nodes ``xs``, vectorized.

    Returns the uint8 vector ``c`` with ``c[i] = prod_{j != i}
    (x - x_j) / (x_i - x_j)`` (subtraction is XOR in characteristic 2), so
    that the interpolating polynomial through ``(x_i, y_i)`` evaluates at
    ``x`` to ``xor_i c[i] * y_i``.

    Requires ``x`` to differ from every node (when ``x`` *is* a node the
    caller already holds the answer); nodes must be distinct.
    """
    xs = np.atleast_1d(_as_u8(xs))
    t = xs.shape[0]
    if len(set(xs.tolist())) != t:
        raise ValueError("interpolation points must have distinct x-coordinates")
    diff = np.bitwise_xor(xs, np.uint8(x))
    if np.any(diff == 0):
        raise ValueError("evaluation point coincides with an interpolation node")
    # All numerators and denominators are nonzero, so the product collapses
    # to sums of logs: log c_i = sum_{j != i} log(x ^ x_j)
    #                           - sum_{j != i} log(x_i ^ x_j)  (mod 255).
    log_diff = LOG_TABLE[diff].astype(np.int64)
    log_num = log_diff.sum() - log_diff
    # The pairwise table has zeros on the diagonal; LOG_TABLE[0] == 0 makes
    # the diagonal contribute nothing to the row sums.
    pairwise = np.bitwise_xor(xs[:, None], xs[None, :])
    log_den = LOG_TABLE[pairwise].astype(np.int64).sum(axis=1)
    return EXP_TABLE[(log_num - log_den) % 255]


def lagrange_interpolate(xs, ys: np.ndarray, x: int = 0) -> np.ndarray:
    """Interpolate a whole share batch and evaluate at ``x`` in one pass.

    Args:
        xs: the ``t`` distinct interpolation nodes (share indices).
        ys: uint8 array of shape ``(t, n)``; row ``i`` is share ``xs[i]``
            of an ``n``-byte batch.
        x: evaluation point; 0 recovers the Shamir secret.

    Returns:
        uint8 array of shape ``(n,)``: the unique degree-<t byte-wise
        polynomial through the shares, evaluated at ``x`` for every byte
        position at once.
    """
    xs = np.atleast_1d(_as_u8(xs))
    ys = _as_u8(ys)
    if ys.ndim != 2 or ys.shape[0] != xs.shape[0]:
        raise ValueError("ys must have shape (len(xs), n)")
    hit: Optional[int] = None
    for i, node in enumerate(xs.tolist()):
        if node == x:
            hit = i
            break
    if hit is not None:
        if len(set(xs.tolist())) != xs.shape[0]:
            raise ValueError("interpolation points must have distinct x-coordinates")
        return ys[hit].copy()
    coeffs = lagrange_coeffs_at(xs, x)
    terms = gf_mul_vec(ys, coeffs[:, None])
    return np.bitwise_xor.reduce(terms, axis=0)
