"""Abstract interface for finite fields.

Field elements are represented as plain Python ``int`` values in
``range(order)``; the field object itself carries the arithmetic.  This
keeps share material compact (ints and bytes, not wrapper objects) while
still letting the sharing schemes be generic over the field.
"""

from __future__ import annotations

import abc
from typing import Iterable, List


class Field(abc.ABC):
    """A finite field whose elements are the integers ``0..order-1``.

    Concrete subclasses define the four basic operations plus inversion.
    Subtraction and division are derived.  All operations must accept and
    return canonical representatives (ints in ``range(order)``).
    """

    #: Number of elements in the field.
    order: int

    @abc.abstractmethod
    def add(self, a: int, b: int) -> int:
        """Return ``a + b`` in the field."""

    @abc.abstractmethod
    def neg(self, a: int) -> int:
        """Return the additive inverse of ``a``."""

    @abc.abstractmethod
    def mul(self, a: int, b: int) -> int:
        """Return ``a * b`` in the field."""

    @abc.abstractmethod
    def inv(self, a: int) -> int:
        """Return the multiplicative inverse of ``a``.

        Raises:
            ZeroDivisionError: if ``a`` is the zero element.
        """

    def sub(self, a: int, b: int) -> int:
        """Return ``a - b`` in the field."""
        return self.add(a, self.neg(b))

    def div(self, a: int, b: int) -> int:
        """Return ``a / b`` in the field.

        Raises:
            ZeroDivisionError: if ``b`` is the zero element.
        """
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        """Return ``a ** e`` by square-and-multiply.

        Negative exponents are supported for nonzero ``a``.
        """
        if e < 0:
            a = self.inv(a)
            e = -e
        result = 1
        base = a
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result

    def sum(self, values: Iterable[int]) -> int:
        """Return the field sum of ``values`` (zero for an empty iterable)."""
        total = 0
        for v in values:
            total = self.add(total, v)
        return total

    def dot(self, xs: Iterable[int], ys: Iterable[int]) -> int:
        """Return the inner product of two element sequences."""
        return self.sum(self.mul(x, y) for x, y in zip(xs, ys))

    def validate(self, a: int) -> int:
        """Check that ``a`` is a canonical field element and return it.

        Raises:
            ValueError: if ``a`` is out of range.
        """
        if not isinstance(a, int) or not 0 <= a < self.order:
            raise ValueError(f"{a!r} is not an element of a field of order {self.order}")
        return a

    def elements(self) -> List[int]:
        """Return all field elements (only sensible for small fields)."""
        return list(range(self.order))

    def __contains__(self, a: object) -> bool:
        return isinstance(a, int) and 0 <= a < self.order

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(order={self.order})"
