"""Finite-field arithmetic substrate.

Secret sharing schemes (Shamir, Blakley) operate over finite fields.  This
package implements the two field families the reproduction needs, from
scratch and with no external dependencies:

* :class:`~repro.gf.gf256.GF256` -- the binary extension field GF(2^8) with
  table-driven multiplication, used for byte-oriented Shamir sharing (each
  byte of a datagram is shared independently).
* :class:`~repro.gf.gfp.PrimeField` -- prime fields GF(p), used by the
  Blakley hyperplane scheme and by property tests that cross-check Shamir
  over an independent field implementation.

Polynomial utilities (Horner evaluation, Lagrange interpolation) live in
:mod:`repro.gf.poly` and are generic over any field implementing the
:class:`~repro.gf.field.Field` interface.

The scalar GF(2^8) + polynomial path is the *reference oracle*; the hot
path used by the sharing schemes is :mod:`repro.gf.batch`, whose numpy
kernels evaluate and interpolate whole datagram batches at once and are
bit-identical to the scalar oracle by construction (and by test:
``tests/test_sharing_batch_equiv.py``).
"""

from repro.gf.batch import (
    eval_poly_at_points,
    gf_div_vec,
    gf_inv_vec,
    gf_mul_vec,
    gf_pow_vec,
    lagrange_coeffs_at,
)
from repro.gf.field import Field
from repro.gf.gf256 import GF256
from repro.gf.gfp import PrimeField
from repro.gf.poly import (
    Polynomial,
    lagrange_interpolate,
    lagrange_interpolate_at,
)

__all__ = [
    "Field",
    "GF256",
    "PrimeField",
    "Polynomial",
    "lagrange_interpolate",
    "lagrange_interpolate_at",
    "gf_mul_vec",
    "gf_div_vec",
    "gf_inv_vec",
    "gf_pow_vec",
    "eval_poly_at_points",
    "lagrange_coeffs_at",
]
