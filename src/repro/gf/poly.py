"""Polynomials over a generic finite field.

Shamir's scheme is "evaluate a random degree-(k-1) polynomial at m points;
interpolate any k of them".  This module provides exactly those two
operations, plus a small :class:`Polynomial` convenience wrapper used by
tests and examples to reason about the algebra directly.

This is the scalar *reference oracle*: the sharing hot path runs on the
numpy kernels in :mod:`repro.gf.batch`, and the equivalence suite asserts
the batch results match this module byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


from repro.gf.field import Field


@dataclass(frozen=True)
class Polynomial:
    """An immutable polynomial ``coeffs[0] + coeffs[1] x + ...`` over a field.

    Trailing zero coefficients are permitted (degree is computed over the
    trimmed form); the zero polynomial has ``degree == -1``.
    """

    field: Field
    coeffs: Tuple[int, ...]

    def __post_init__(self) -> None:
        for c in self.coeffs:
            self.field.validate(c)

    @property
    def degree(self) -> int:
        """Degree of the polynomial; -1 for the zero polynomial."""
        for i in range(len(self.coeffs) - 1, -1, -1):
            if self.coeffs[i] != 0:
                return i
        return -1

    def __call__(self, x: int) -> int:
        return evaluate(self.field, self.coeffs, x)

    def add(self, other: "Polynomial") -> "Polynomial":
        """Return the polynomial sum."""
        f = self.field
        n = max(len(self.coeffs), len(other.coeffs))
        a = list(self.coeffs) + [0] * (n - len(self.coeffs))
        b = list(other.coeffs) + [0] * (n - len(other.coeffs))
        return Polynomial(f, tuple(f.add(x, y) for x, y in zip(a, b)))

    def mul(self, other: "Polynomial") -> "Polynomial":
        """Return the polynomial product (schoolbook)."""
        f = self.field
        if self.degree < 0 or other.degree < 0:
            return Polynomial(f, (0,))
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] = f.add(out[i + j], f.mul(a, b))
        return Polynomial(f, tuple(out))

    def scale(self, c: int) -> "Polynomial":
        """Return the polynomial multiplied by the scalar ``c``."""
        f = self.field
        return Polynomial(f, tuple(f.mul(c, a) for a in self.coeffs))


def evaluate(field: Field, coeffs: Sequence[int], x: int) -> int:
    """Evaluate ``coeffs[0] + coeffs[1] x + ...`` at ``x`` by Horner's rule."""
    acc = 0
    for c in reversed(coeffs):
        acc = field.add(field.mul(acc, x), c)
    return acc


def lagrange_interpolate_at(
    field: Field,
    points: Sequence[Tuple[int, int]],
    x: int,
) -> int:
    """Evaluate, at ``x``, the unique polynomial through ``points``.

    ``points`` is a sequence of ``(x_i, y_i)`` pairs with distinct ``x_i``.
    This is the core of Shamir reconstruction: with ``x = 0`` it recovers
    the secret directly without materialising the whole polynomial.

    Raises:
        ValueError: if two points share an x-coordinate.
    """
    xs = [p[0] for p in points]
    if len(set(xs)) != len(xs):
        raise ValueError("interpolation points must have distinct x-coordinates")
    total = 0
    for i, (xi, yi) in enumerate(points):
        num = 1
        den = 1
        for j, (xj, _) in enumerate(points):
            if i == j:
                continue
            num = field.mul(num, field.sub(x, xj))
            den = field.mul(den, field.sub(xi, xj))
        total = field.add(total, field.mul(yi, field.div(num, den)))
    return total


def lagrange_interpolate(
    field: Field,
    points: Sequence[Tuple[int, int]],
) -> Polynomial:
    """Return the unique polynomial of degree < len(points) through ``points``.

    Used by tests and examples that need the full coefficient vector; the
    hot path for reconstruction is :func:`lagrange_interpolate_at`.
    """
    xs = [p[0] for p in points]
    if len(set(xs)) != len(xs):
        raise ValueError("interpolation points must have distinct x-coordinates")
    result = Polynomial(field, (0,))
    for i, (xi, yi) in enumerate(points):
        # Build the Lagrange basis polynomial l_i(x), scaled by y_i.
        basis = Polynomial(field, (1,))
        den = 1
        for j, (xj, _) in enumerate(points):
            if i == j:
                continue
            basis = basis.mul(Polynomial(field, (field.neg(xj), 1)))
            den = field.mul(den, field.sub(xi, xj))
        result = result.add(basis.scale(field.div(yi, den)))
    # Pad/trim to a canonical length for readability.
    return result
