"""Prime fields GF(p).

Used by the Blakley hyperplane scheme (which needs a field large enough to
hold a whole secret block as a single element) and by tests as an
independent field implementation against which the generic polynomial and
sharing code is cross-checked.
"""

from __future__ import annotations

from repro.gf.field import Field


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test, exact for n < 3.3e24.

    The witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} is known to
    be sufficient for all 64-bit (and somewhat larger) integers, which covers
    every modulus this library constructs.
    """
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in small_primes:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime >= n."""
    if n <= 2:
        return 2
    candidate = n | 1  # first odd >= n
    while not is_prime(candidate):
        candidate += 2
    return candidate


class PrimeField(Field):
    """The field of integers modulo a prime ``p``."""

    def __init__(self, p: int):
        if not is_prime(p):
            raise ValueError(f"{p} is not prime")
        self.p = p
        self.order = p

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def neg(self, a: int) -> int:
        return (-a) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        if a % self.p == 0:
            raise ZeroDivisionError(f"0 has no inverse modulo {self.p}")
        # Fermat's little theorem; pow() is fast C-level modular exponentiation.
        return pow(a, self.p - 2, self.p)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))
