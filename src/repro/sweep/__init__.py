"""Parallel experiment orchestration with a content-addressed result cache.

Every evaluation in the paper (Figures 2-7) and every Monte-Carlo
validation is a sweep over a parameter grid.  This package is the one
place that pattern lives:

* :mod:`repro.sweep.spec` -- :class:`SweepSpec` declares a grid
  (base params x axes) and enumerates picklable :class:`SweepPoint`
  descriptors, each with a deterministic seed derived by hashing
  ``(spec_id, params)`` -- never from worker order;
* :mod:`repro.sweep.runner` -- :class:`SweepRunner` executes points
  serially (the reference path) or on a process pool (``jobs=N``), with
  per-point failure isolation, bounded retry and structured
  :class:`SweepResult` outcomes;
* :mod:`repro.sweep.cache` -- :class:`ResultCache`, a content-addressed
  JSON store under ``results/cache/`` keyed on the point identity plus a
  code fingerprint, giving resume-after-interrupt and incremental re-runs
  for free.

Because seeds attach to point identity, ``jobs=1`` and ``jobs=N`` produce
*identical* results -- parallelism is purely a wall-time lever.  See
``docs/SWEEPS.md`` for the spec format, cache layout and resume semantics.
"""

from repro.sweep.cache import DEFAULT_CACHE_DIR, ResultCache, code_fingerprint
from repro.sweep.runner import SweepError, SweepResult, SweepRunner, SweepStats, values
from repro.sweep.spec import SweepPoint, SweepSpec, canonical_json, derive_seed

__all__ = [
    "SweepSpec",
    "SweepPoint",
    "SweepRunner",
    "SweepResult",
    "SweepStats",
    "SweepError",
    "ResultCache",
    "DEFAULT_CACHE_DIR",
    "code_fingerprint",
    "canonical_json",
    "derive_seed",
    "values",
]
