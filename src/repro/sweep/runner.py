"""Sweep execution: serial or process-pool, with isolation, retry, cache.

:class:`SweepRunner` takes a :class:`~repro.sweep.spec.SweepSpec` (or a
plain point list) and a module-level *point function* ``fn(params, seed)
-> JSON-serialisable value`` and executes every point, handing each its
deterministic derived seed:

* ``jobs=1`` (the default) runs in-process, in enumeration order -- the
  reference path, numerically identical to the nested loops it replaces;
* ``jobs>1`` fans points out to a ``ProcessPoolExecutor``.  Because each
  point's seed derives from its identity (never from worker order), the
  parallel results are *identical* to the serial ones, just faster.

Every point is failure-isolated: an exception inside ``fn`` is caught,
retried up to ``retries`` times, and finally recorded on that point's
:class:`SweepResult` -- one diverging point never takes down a 500-point
overnight sweep.  With a :class:`~repro.sweep.cache.ResultCache` attached,
finished points are persisted as they complete and are served from disk on
re-runs, which is what makes ``--resume`` work.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.sweep.cache import ResultCache
from repro.sweep.spec import SweepPoint, SweepSpec

__all__ = ["SweepResult", "SweepRunner", "SweepError", "values"]


class SweepError(RuntimeError):
    """Raised by :func:`values` when a sweep point failed permanently."""


@dataclass
class SweepResult:
    """The outcome of one sweep point.

    Exactly one of ``value``/``error`` is meaningful: ``error`` is None on
    success, otherwise the formatted traceback of the last attempt.
    ``duration`` is the wall time spent computing (0.0 for cache hits) and
    ``attempts`` how many times ``fn`` ran (0 for cache hits).
    """

    point: SweepPoint
    value: Any = None
    error: Optional[str] = None
    duration: float = 0.0
    attempts: int = 0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def values(results: Iterable[SweepResult]) -> List[Any]:
    """The value of every result, raising :class:`SweepError` on failures."""
    out = []
    for result in results:
        if not result.ok:
            raise SweepError(
                f"sweep point {result.point.index} "
                f"({result.point.params}) failed after {result.attempts} "
                f"attempts:\n{result.error}"
            )
        out.append(result.value)
    return out


def _execute_point(
    fn: Callable[[Dict[str, Any], int], Any], point: SweepPoint, retries: int
) -> SweepResult:
    """Run ``fn`` on one point with bounded retry and failure isolation.

    Module-level so it is picklable and runs identically in-process and in
    a pool worker.  ``fn`` receives the point's params and its derived
    seed -- the only randomness root a point function should use.
    """
    started = time.perf_counter()
    seed = point.seed
    error = None
    for attempt in range(1, retries + 2):
        try:
            value = fn(dict(point.params), seed)
        except Exception:
            error = traceback.format_exc()
        else:
            return SweepResult(
                point=point,
                value=value,
                duration=time.perf_counter() - started,
                attempts=attempt,
            )
    return SweepResult(
        point=point,
        error=error,
        duration=time.perf_counter() - started,
        attempts=retries + 1,
    )


@dataclass
class SweepStats:
    """Counters for the last :meth:`SweepRunner.run` call."""

    points: int = 0
    cache_hits: int = 0
    computed: int = 0
    retries: int = 0
    failures: int = 0
    wall_time: float = 0.0

    def summary(self) -> str:
        """One greppable line (used by the CLI and the CI smoke check)."""
        return (
            f"sweep: points={self.points} cache_hits={self.cache_hits} "
            f"computed={self.computed} retries={self.retries} "
            f"failures={self.failures} wall={self.wall_time:.2f}s"
        )


@dataclass
class SweepRunner:
    """Executes sweeps; see the module docstring for semantics.

    Args:
        jobs: worker processes; 1 (default) runs serially in-process.
        retries: extra attempts per point after the first failure.
        cache: optional :class:`ResultCache`; hits skip computation and
            misses are persisted on success (failures are never cached).
        obs: optional :class:`~repro.obs.instrument.Observability`; the
            runner counts ``sweep_points_total``, ``sweep_cache_hits_total``,
            ``sweep_retries_total`` and ``sweep_failures_total`` on its
            registry.
    """

    jobs: int = 1
    retries: int = 0
    cache: Optional[ResultCache] = None
    obs: Optional[Any] = None
    stats: SweepStats = field(default_factory=SweepStats)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")

    def run(
        self,
        spec: Union[SweepSpec, Iterable[SweepPoint]],
        fn: Callable[[Dict[str, Any], int], Any],
    ) -> List[SweepResult]:
        """Execute every point of ``spec`` through ``fn``.

        Returns one :class:`SweepResult` per point, in enumeration order
        regardless of completion order, and refreshes :attr:`stats`.
        """
        points = spec.points() if isinstance(spec, SweepSpec) else list(spec)
        started = time.perf_counter()
        self.stats = SweepStats(points=len(points))

        results: List[Optional[SweepResult]] = [None] * len(points)
        pending: List[int] = []
        for slot, point in enumerate(points):
            hit = self._from_cache(point)
            if hit is not None:
                results[slot] = hit
                self.stats.cache_hits += 1
            else:
                pending.append(slot)

        if pending:
            if self.jobs == 1:
                for slot in pending:
                    results[slot] = _execute_point(fn, points[slot], self.retries)
                    self._finish(results[slot])
            else:
                self._run_pool(points, pending, fn, results)

        self.stats.wall_time = time.perf_counter() - started
        self._count_metrics()
        return [result for result in results if result is not None]

    # -- internals --------------------------------------------------------------

    def _run_pool(
        self,
        points: List[SweepPoint],
        pending: List[int],
        fn: Callable[[Dict[str, Any], int], Any],
        results: List[Optional[SweepResult]],
    ) -> None:
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(_execute_point, fn, points[slot], self.retries): slot
                for slot in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    slot = futures[future]
                    try:
                        result = future.result()
                    except Exception:
                        # The worker process died (OOM, signal) before it
                        # could even report: isolate like any other failure.
                        result = SweepResult(
                            point=points[slot],
                            error=traceback.format_exc(),
                            attempts=self.retries + 1,
                        )
                    results[slot] = result
                    self._finish(result)

    def _from_cache(self, point: SweepPoint) -> Optional[SweepResult]:
        if self.cache is None:
            return None
        entry = self.cache.get(point)
        if entry is None:
            return None
        return SweepResult(point=point, value=entry["value"], cached=True)

    def _finish(self, result: SweepResult) -> None:
        """Bookkeeping for one computed (non-cached) result."""
        self.stats.computed += 1
        self.stats.retries += max(0, result.attempts - 1)
        if not result.ok:
            self.stats.failures += 1
        elif self.cache is not None:
            self.cache.put(
                result.point, result.value, result.duration, result.attempts
            )

    def _count_metrics(self) -> None:
        if self.obs is None:
            return
        registry = self.obs.registry
        registry.counter("sweep_points_total").inc(self.stats.points)
        registry.counter("sweep_cache_hits_total").inc(self.stats.cache_hits)
        registry.counter("sweep_retries_total").inc(self.stats.retries)
        registry.counter("sweep_failures_total").inc(self.stats.failures)
