"""Declarative sweep specifications with deterministic per-point seeds.

Every evaluation in the paper is a sweep -- over κ, µ, channel setups,
offered rates and seeds.  A :class:`SweepSpec` names such a grid once and
enumerates it as picklable :class:`SweepPoint` descriptors, so the same
definition drives the serial loop, the process pool and the result cache.

Two properties are load-bearing:

1. **Deterministic enumeration.**  Points are the cartesian product of the
   axes in declaration order, so a spec enumerates the same points in the
   same order in every process and on every run.
2. **Deterministic seeds.**  Each point's RNG seed is derived by hashing
   ``(spec_id, point params)`` -- never from worker identity, submission
   order or a shared counter -- so results are independent of how the
   sweep is scheduled, and distinct grid points can never collide the way
   ad-hoc arithmetic like ``seed + int(kappa * 1000) + int(mu * 10)`` can.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

__all__ = ["SweepPoint", "SweepSpec", "canonical_json", "derive_seed"]


def canonical_json(value: Any) -> str:
    """Render ``value`` as canonical JSON (sorted keys, compact, no NaN).

    The canonical form is the hashing substrate for seeds and cache keys,
    so it must be identical across processes, runs and platforms: floats
    serialise via ``repr`` (shortest round-trip form, stable for IEEE
    doubles), keys are sorted, and non-finite floats are rejected rather
    than emitted as non-standard tokens.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"), allow_nan=False)


def derive_seed(spec_id: str, params: Mapping[str, Any]) -> int:
    """The deterministic seed for the point ``(spec_id, params)``.

    A 63-bit integer from SHA-256 over the canonical JSON of the pair --
    collision-free in practice across any realistic grid, and depending
    only on the point's identity (the same point gets the same seed no
    matter which worker computes it, or in what order).
    """
    digest = hashlib.sha256(
        canonical_json({"spec_id": spec_id, "params": dict(params)}).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class SweepPoint:
    """One picklable point of a sweep: its identity plus its parameters.

    ``params`` holds everything the point function needs (JSON-serialisable
    scalars and lists only, so the point can be hashed and cached); the
    derived :attr:`seed` is the only randomness root a point function
    should use.
    """

    spec_id: str
    index: int
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze a private copy and verify the params are canonicalisable
        # now, so every later hash of this point is well-defined.
        object.__setattr__(self, "params", dict(self.params))
        canonical_json(self.params)

    @property
    def seed(self) -> int:
        """Deterministic per-point seed (see :func:`derive_seed`)."""
        return derive_seed(self.spec_id, self.params)

    def identity(self) -> str:
        """Canonical JSON of ``(spec_id, params)`` -- the cache-key substrate.

        ``index`` is deliberately excluded: a point's identity is *what* it
        computes, not where it sits in one particular enumeration.
        """
        return canonical_json({"spec_id": self.spec_id, "params": dict(self.params)})


@dataclass(frozen=True)
class SweepSpec:
    """A named parameter grid: fixed ``base`` params times variable ``axes``.

    Args:
        spec_id: stable name of the sweep (include anything that changes
            its meaning, e.g. ``"fig3/identical"``).  Two specs with the
            same id and params share seeds and cache entries -- that is
            the point.
        axes: ordered mapping of axis name to its values; the grid is the
            cartesian product in declaration order, last axis fastest
            (matching the nested ``for`` loops the spec replaces).
        base: parameters common to every point (durations, setup names,
            the root seed...).  An axis may not shadow a base key.
        grid: alternative to ``axes`` for *coupled* grids (e.g. the µ
            range that depends on κ): an explicit list of per-point param
            dicts, each merged over ``base``.  Mutually exclusive with
            ``axes``.
    """

    spec_id: str
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    base: Mapping[str, Any] = field(default_factory=dict)
    grid: Optional[Sequence[Mapping[str, Any]]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", {k: list(v) for k, v in self.axes.items()})
        object.__setattr__(self, "base", dict(self.base))
        if self.grid is not None:
            if self.axes:
                raise ValueError("give either axes or grid, not both")
            object.__setattr__(self, "grid", [dict(entry) for entry in self.grid])
            shadowed = set().union(*(set(entry) for entry in self.grid or [{}])) & set(self.base)
        else:
            shadowed = set(self.axes) & set(self.base)
        if shadowed:
            raise ValueError(f"variable params shadow base params: {sorted(shadowed)}")
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")

    def __len__(self) -> int:
        if self.grid is not None:
            return len(self.grid)
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def __iter__(self) -> Iterator[SweepPoint]:
        if self.grid is not None:
            combos: Iterable[Dict[str, Any]] = (dict(entry) for entry in self.grid)
        else:
            names = list(self.axes)
            combos = (
                dict(zip(names, combo))
                for combo in itertools.product(*self.axes.values())
            )
        for index, combo in enumerate(combos):
            params: Dict[str, Any] = dict(self.base)
            params.update(combo)
            yield SweepPoint(spec_id=self.spec_id, index=index, params=params)

    def points(self) -> List[SweepPoint]:
        """The full grid as a list, in deterministic enumeration order."""
        return list(self)
