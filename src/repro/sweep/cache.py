"""Content-addressed on-disk result cache for sweeps.

Every completed :class:`~repro.sweep.spec.SweepPoint` can be stored as one
small JSON file under ``results/cache/<spec_id>/<key>.json``.  The key is
a SHA-256 over the point's identity (spec id + params, canonical JSON)
*plus* a fingerprint of the code computing it, so:

* re-running an interrupted sweep recomputes only the missing points
  (resume-after-interrupt for free);
* editing the simulator or protocol invalidates every stale entry at once
  (the fingerprint changes, so every key changes);
* the cache never returns a wrong answer silently -- a corrupted or
  truncated entry is logged and treated as a miss, never raised.

Entries are written atomically (temp file + ``os.replace``) so a run
killed mid-write leaves either the old entry or none, never a torn file.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from functools import lru_cache
from typing import Any, Dict, Optional

from repro.sweep.spec import SweepPoint, canonical_json

__all__ = ["ResultCache", "code_fingerprint", "DEFAULT_CACHE_DIR"]

logger = logging.getLogger(__name__)

#: Default cache location, relative to the invoking working directory.
DEFAULT_CACHE_DIR = os.path.join("results", "cache")

#: Environment variable overriding the computed code fingerprint (useful
#: for tests and for pinning a fingerprint across a checkout's lifetime).
FINGERPRINT_ENV = "REPRO_SWEEP_FINGERPRINT"


@lru_cache(maxsize=1)
def _package_fingerprint() -> str:
    """SHA-256 over every ``.py`` source file of the ``repro`` package.

    Files are hashed as ``(relative path, content)`` pairs in sorted path
    order, so the digest is stable across machines and processes but
    changes whenever any code that could affect a result changes.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    sources = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                sources.append((os.path.relpath(path, root), path))
    for relpath, path in sources:
        digest.update(relpath.encode())
        digest.update(b"\x00")
        with open(path, "rb") as handle:
            digest.update(handle.read())
        digest.update(b"\x00")
    return digest.hexdigest()


def code_fingerprint() -> str:
    """The fingerprint mixed into every cache key.

    ``REPRO_SWEEP_FINGERPRINT`` in the environment wins; otherwise the
    hash of the installed ``repro`` sources (see
    :func:`_package_fingerprint`).
    """
    # Deliberate env read: an explicit operator/CI override of the cache
    # fingerprint, which never alters computed results -- only whether a
    # cache entry is considered valid (see docs/SWEEPS.md).
    override = os.environ.get(FINGERPRINT_ENV)  # lint: disable=env-read
    if override:
        return override
    return _package_fingerprint()


class ResultCache:
    """Content-addressed JSON store of sweep-point results.

    Args:
        root: cache directory (created lazily on first write).
        fingerprint: code/config fingerprint mixed into every key; defaults
            to :func:`code_fingerprint`.  Pass an explicit value to share a
            cache across code changes you know to be result-preserving, or
            to test invalidation.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR, fingerprint: Optional[str] = None):
        self.root = root
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()

    # -- keys and paths ---------------------------------------------------------

    def key(self, point: SweepPoint) -> str:
        """The content address of ``point`` under the active fingerprint."""
        material = canonical_json(
            {
                "identity": point.identity(),
                "fingerprint": self.fingerprint,
            }
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def path(self, point: SweepPoint) -> str:
        """Where ``point``'s entry lives (``<root>/<spec_id>/<key>.json``)."""
        spec_dir = point.spec_id.replace(os.sep, "_").replace("/", "_")
        return os.path.join(self.root, spec_dir, self.key(point) + ".json")

    # -- access -----------------------------------------------------------------

    def get(self, point: SweepPoint) -> Optional[Dict[str, Any]]:
        """The stored entry for ``point``, or None on miss.

        A corrupted entry (unreadable, invalid JSON, or missing required
        fields) is logged, removed, and reported as a miss: the point is
        simply recomputed, the sweep never crashes on a bad cache file.
        """
        path = self.path(point)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            logger.warning("corrupted cache entry %s (%s); recomputing", path, exc)
            self._discard(path)
            return None
        if not isinstance(entry, dict) or "value" not in entry or "key" not in entry:
            logger.warning("malformed cache entry %s; recomputing", path)
            self._discard(path)
            return None
        if entry["key"] != self.key(point):
            # A hash collision in the filename space, or a tampered file:
            # either way it is not this point's result.
            logger.warning("cache entry %s does not match its key; recomputing", path)
            self._discard(path)
            return None
        return entry

    def put(self, point: SweepPoint, value: Any, duration: float, attempts: int) -> str:
        """Store ``value`` for ``point``; returns the entry path.

        ``value`` must be JSON-serialisable (sweep point functions return
        plain dicts/lists of scalars by contract).  The write is atomic.
        """
        path = self.path(point)
        entry = {
            "key": self.key(point),
            "spec_id": point.spec_id,
            "params": dict(point.params),
            "fingerprint": self.fingerprint,
            "seed": point.seed,
            "value": value,
            "duration": duration,
            "attempts": attempts,
        }
        payload = json.dumps(entry, sort_keys=True, indent=1, allow_nan=False)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            self._discard(tmp)
            raise
        return path

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass
