"""Discrete-event network simulator.

This package stands in for the paper's hardware testbed (two workstations
joined by five dedicated, shaped 10 GbE links).  It provides:

* :mod:`repro.netsim.engine` -- a deterministic discrete-event engine with
  a monotonic simulated clock;
* :mod:`repro.netsim.link` -- unidirectional links with serialisation at a
  configured byte rate (the htb analogue), Bernoulli share loss and fixed
  propagation delay (the netem analogue), and a bounded tail-drop queue;
* :mod:`repro.netsim.host` -- an optional CPU model that serialises
  per-share processing, reproducing the end-system bottleneck behind the
  paper's Figures 6-7;
* :mod:`repro.netsim.ports` -- the channel endpoints the protocol talks
  to, exposing an epoll-like *writable* predicate;
* :mod:`repro.netsim.readiness` -- the write-readiness selector backing
  ReMICSS's dynamic share schedule;
* :mod:`repro.netsim.rng` -- named, reproducible random streams;
* :mod:`repro.netsim.trace` -- counters and summary statistics;
* :mod:`repro.netsim.faults` -- declarative, deterministic fault injection
  (outages, flaps, burst loss, parameter overrides, partitions) driven by
  the event engine.

Everything is deterministic given a root seed: event ties break on a
monotonic sequence number and all randomness flows through named
``numpy.random.Generator`` streams.
"""

from repro.netsim.engine import Engine, Event
from repro.netsim.faults import (
    CANONICAL_SCENARIOS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    GilbertElliott,
    canonical_plan,
)
from repro.netsim.host import CpuModel
from repro.netsim.link import DuplexChannel, Link, LinkStats, LossModel
from repro.netsim.packet import Datagram
from repro.netsim.ports import ChannelPort
from repro.netsim.readiness import WriteSelector
from repro.netsim.rng import RngRegistry
from repro.netsim.topology import EdgeTapAdversary, PathPort, TopologyNetwork
from repro.netsim.trace import DelayStats, RateMeter

__all__ = [
    "TopologyNetwork",
    "PathPort",
    "EdgeTapAdversary",
    "Engine",
    "Event",
    "Datagram",
    "Link",
    "LinkStats",
    "LossModel",
    "DuplexChannel",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "GilbertElliott",
    "CANONICAL_SCENARIOS",
    "canonical_plan",
    "CpuModel",
    "ChannelPort",
    "WriteSelector",
    "RngRegistry",
    "RateMeter",
    "DelayStats",
]
