"""Multi-hop simulated networks: channels as routed paths over shared links.

:class:`~repro.protocol.remicss.PointToPointNetwork` wires each model
channel to its own dedicated duplex link -- the paper's testbed, where the
disjointness assumption holds by construction.  This module builds the
*general* case: a network graph whose edges are simulated links, and
channels that are store-and-forward paths across them.  Paths may share
edges, in which case they compete for the shared link's queue and capacity
and a single wire tap observes all of them -- the exact situation
Sec. III-B warns about and :mod:`repro.core.overlap` analyses.

Components:

* :class:`TopologyNetwork` -- builds one directed :class:`~repro.netsim.link.Link`
  per used edge direction and routes datagrams hop by hop along each path;
* :class:`PathPort` -- the endpoint abstraction; duck-compatible with
  :class:`~repro.netsim.ports.ChannelPort` so the unmodified protocol
  sender/receiver stack runs over routed paths;
* :class:`EdgeTapAdversary` -- taps *edges* (one Bernoulli draw per edge
  per symbol, so shares of the same symbol crossing a shared edge are
  observed together), providing the empirical ground truth for
  :func:`repro.core.overlap.joint_subset_risk`.

Edge attributes consumed: ``rate`` (symbols/unit, required), ``loss``,
``delay``, ``risk`` (optional, default 0).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.netsim.engine import Engine
from repro.netsim.link import Link
from repro.netsim.packet import Datagram
from repro.netsim.rng import RngRegistry

#: A directed edge (ordered node pair).
DirectedEdge = Tuple[Hashable, Hashable]


class PathPort:
    """A sendable/receivable endpoint over a routed multi-hop path.

    Implements the same surface as :class:`~repro.netsim.ports.ChannelPort`
    (``index``, ``writable``, ``headroom``, ``send``, ``on_receive`` and a
    ``link`` whose ``watch_writable`` works), where readiness refers to the
    *first hop* -- which is what a sender's epoll on its local interface
    would see in a real deployment.
    """

    def __init__(self, index: int, first_link: Link, network: "TopologyNetwork"):
        self.index = index
        self.link = first_link
        self._network = network
        self._on_receive: Optional[Callable[[Datagram], None]] = None

    @property
    def name(self) -> str:
        return f"path{self.index}"

    def writable(self) -> bool:
        return self.link.writable()

    @property
    def headroom(self) -> int:
        return self.link.queue_limit - self.link.queue_depth

    def send(self, datagram: Datagram) -> bool:
        datagram.meta["_path"] = self.index
        datagram.meta["_hop"] = 0
        return self.link.send(datagram)

    def on_receive(self, callback: Callable[[Datagram], None]) -> None:
        self._on_receive = callback

    def _deliver(self, datagram: Datagram) -> None:
        if self._on_receive is not None:
            self._on_receive(datagram)


class TopologyNetwork:
    """A simulated network over a graph, with channels as routed paths.

    Args:
        graph: undirected graph; edges carry rate/loss/delay (and risk for
            adversaries).  Rates are in symbols per unit time.
        paths: one node path per channel, all sharing the same two
            endpoints (first and last node of every path).
        symbol_size: protocol symbol payload size in bytes.
        rng_registry: random streams for per-link loss/jitter draws.
        queue_limit: per-link queue capacity in packets.

    Attributes:
        forward_ports: one :class:`PathPort` per path, endpoint A -> B.
        reverse_ports: the same paths reversed, endpoint B -> A.
    """

    def __init__(
        self,
        graph: nx.Graph,
        paths: Sequence[Sequence[Hashable]],
        symbol_size: int,
        rng_registry: RngRegistry,
        queue_limit: int = 16,
    ):
        if not paths:
            raise ValueError("need at least one path")
        sources = {tuple(path)[0] for path in paths}
        sinks = {tuple(path)[-1] for path in paths}
        if len(sources) != 1 or len(sinks) != 1:
            raise ValueError("all paths must share the same two endpoints")
        self.engine = Engine()
        self.graph = graph
        self.paths = [list(path) for path in paths]
        self.symbol_size = symbol_size
        self._links: Dict[DirectedEdge, Link] = {}
        self._registry = rng_registry
        self._queue_limit = queue_limit
        # Per (path index, direction): the directed link chain.
        self._forward_chains = [self._build_chain(path) for path in self.paths]
        self._reverse_chains = [
            self._build_chain(list(reversed(path))) for path in self.paths
        ]
        self.forward_ports = [
            PathPort(i, chain[0], self) for i, chain in enumerate(self._forward_chains)
        ]
        self.reverse_ports = [
            PathPort(i, chain[0], self) for i, chain in enumerate(self._reverse_chains)
        ]
        self.forwarding_drops = 0

    # -- construction ------------------------------------------------------------

    def _link_for(self, u: Hashable, v: Hashable) -> Link:
        key = (u, v)
        if key not in self._links:
            if not self.graph.has_edge(u, v):
                raise ValueError(f"path uses nonexistent edge {u!r}-{v!r}")
            data = self.graph.edges[u, v]
            if "rate" not in data:
                raise KeyError(f"edge {u!r}-{v!r} is missing the 'rate' attribute")
            link = Link(
                self.engine,
                byte_rate=float(data["rate"]) * self.symbol_size,
                loss=float(data.get("loss", 0.0)),
                delay=float(data.get("delay", 0.0)),
                rng=self._registry.stream(f"edge.{u}.{v}.loss"),
                queue_limit=self._queue_limit,
                name=f"{u}->{v}",
            )
            link.set_receiver(lambda dg, k=key: self._on_link_delivery(k, dg))
            self._links[key] = link
        return self._links[key]

    def _build_chain(self, path: Sequence[Hashable]) -> List[Link]:
        if len(path) < 2:
            raise ValueError("a path needs at least two nodes")
        return [self._link_for(u, v) for u, v in zip(path, path[1:])]

    # -- forwarding --------------------------------------------------------------

    def _chain(self, path_index: int, reverse: bool) -> List[Link]:
        chains = self._reverse_chains if reverse else self._forward_chains
        return chains[path_index]

    def _on_link_delivery(self, key: DirectedEdge, datagram: Datagram) -> None:
        path_index = datagram.meta.get("_path")
        hop = datagram.meta.get("_hop", 0)
        if path_index is None:  # pragma: no cover - foreign traffic
            return
        # The direction is recoverable from which chain holds this link at
        # this hop; forward and reverse chains never share directed links
        # at the same hop for the same path unless the path is symmetric,
        # in which case either resolution is equivalent.
        for reverse in (False, True):
            chain = self._chain(path_index, reverse)
            if hop < len(chain) and self._links.get(key) is chain[hop]:
                if hop + 1 == len(chain):
                    ports = self.reverse_ports if reverse else self.forward_ports
                    # Delivery at the far endpoint: forward traffic lands at
                    # the B side, whose receive hook is registered on the
                    # *forward* port object.
                    ports[path_index]._deliver(datagram)
                else:
                    datagram.meta["_hop"] = hop + 1
                    if not chain[hop + 1].send(datagram):
                        self.forwarding_drops += 1
                return

    # -- convenience ---------------------------------------------------------------

    @property
    def links(self) -> Dict[DirectedEdge, Link]:
        """All instantiated directed links, keyed by (u, v)."""
        return dict(self._links)

    def node_pair(self, config, rng_registry, **kwargs):
        """Build a ReMICSS node pair over this topology.

        Same contract as
        :meth:`repro.protocol.remicss.PointToPointNetwork.node_pair`.
        """
        from repro.protocol.remicss import RemicssNode

        node_a = RemicssNode(
            self.engine,
            ports_out=self.forward_ports,
            ports_in=self.reverse_ports,
            config=config,
            rng_registry=rng_registry,
            name="nodeA",
            **kwargs,
        )
        node_b = RemicssNode(
            self.engine,
            ports_out=self.reverse_ports,
            ports_in=self.forward_ports,
            config=config,
            rng_registry=rng_registry,
            name="nodeB",
            **kwargs,
        )
        return node_a, node_b


class EdgeTapAdversary:
    """An adversary tapping graph *edges*, one draw per edge per symbol.

    Matches the threat model of :mod:`repro.core.overlap`: for each symbol,
    each edge is independently tapped with its ``risk`` attribute, and a
    tapped edge reveals *every* share of that symbol crossing it (in either
    direction).  Correlation across overlapping paths therefore emerges
    naturally, unlike the per-channel model.
    """

    def __init__(self, network: TopologyNetwork, rng):
        self.network = network
        self.rng = rng
        self.shares_observed = 0
        self._tap_cache: Dict[Tuple[Hashable, Hashable, int], bool] = {}
        self._observed: Dict[int, set] = {}
        self._thresholds: Dict[int, int] = {}
        self.compromised: "set[int]" = set()
        for key, link in network.links.items():
            link.watch_transmit(lambda dg, k=key: self._observe(k, dg))

    def _edge_tapped(self, key: DirectedEdge, seq: int) -> bool:
        u, v = key
        canonical = (u, v) if repr(u) <= repr(v) else (v, u)
        cache_key = (canonical[0], canonical[1], seq)
        if cache_key not in self._tap_cache:
            risk = float(self.network.graph.edges[canonical].get("risk", 0.0))
            self._tap_cache[cache_key] = bool(self.rng.random() < risk)
        return self._tap_cache[cache_key]

    def _observe(self, key: DirectedEdge, datagram: Datagram) -> None:
        seq = datagram.meta.get("seq")
        k = datagram.meta.get("k")
        index = datagram.meta.get("index")
        if seq is None or k is None:
            return
        if not self._edge_tapped(key, seq):
            return
        observed = self._observed.setdefault(seq, set())
        if index in observed:
            return  # the same share seen on a second tapped hop
        observed.add(index)
        self.shares_observed += 1
        self._thresholds[seq] = k
        if len(observed) >= k:
            self.compromised.add(seq)

    def compromise_rate(self, symbols_sent: int) -> float:
        """Fraction of sent symbols whose threshold was met."""
        if symbols_sent <= 0:
            raise ValueError("symbols_sent must be positive")
        return len(self.compromised) / symbols_sent
