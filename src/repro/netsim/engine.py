"""Deterministic discrete-event engine.

A minimal but complete event loop: callbacks are scheduled at absolute or
relative simulated times, executed in time order, with ties broken by
scheduling order (a monotonically increasing sequence number), which makes
every simulation run exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback; hold onto it to :meth:`cancel` it later."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (safe after it already ran)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Engine:
    """The simulation clock and event queue.

    The clock only moves forward, driven by :meth:`run_until` / :meth:`run`.
    Callbacks may schedule further events freely, including at the current
    time (they run after all earlier-scheduled same-time events).
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[Event] = []
        self._processed = 0
        self._dispatch_hook: Optional[Callable[[Event, int], None]] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for engine benchmarks)."""
        return self._processed

    def set_dispatch_hook(self, hook: Optional[Callable[[Event, int], None]]) -> None:
        """Install (or with None remove) a per-dispatch observer.

        ``hook(event, queue_depth)`` is called immediately before each
        event's callback runs, with the number of events still queued.
        The observability layer uses this for per-handler dispatch counts
        and queue-depth gauges; an uninstrumented engine pays only one
        ``None`` check per event.  The hook must not mutate the queue.
        """
        self._dispatch_hook = hook

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Raises:
            ValueError: if ``time`` is in the simulated past.
        """
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} before now={self._now}")
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` units of time.

        Raises:
            ValueError: if ``delay`` is negative.
        """
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def run_until(self, end_time: float) -> None:
        """Run all events with ``time <= end_time``, then set now to it.

        Raises:
            ValueError: if ``end_time`` is in the simulated past.
        """
        if end_time < self._now:
            raise ValueError(f"cannot run backwards to {end_time} from {self._now}")
        while self._queue and self._queue[0].time <= end_time:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            if self._dispatch_hook is not None:
                self._dispatch_hook(event, len(self._queue))
            event.callback(*event.args)
        self._now = end_time

    def run(self) -> None:
        """Run until the event queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            if self._dispatch_hook is not None:
                self._dispatch_hook(event, len(self._queue))
            event.callback(*event.args)

    def pending(self) -> int:
        """Number of not-yet-run, not-cancelled events (approximate upper
        bound: cancelled events still in the heap are excluded)."""
        return sum(1 for e in self._queue if not e.cancelled)
