"""Measurement utilities: rate meters and delay statistics.

The experiments report the same quantities iperf and the paper's echo tool
do: achieved bitrate over a measurement window, the percentage of datagrams
lost, and mean one-way delay.  These helpers accumulate them with Welford
running moments so no per-packet history needs to be retained.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional


class RateMeter:
    """Counts delivered symbols/bytes over an explicit measurement window.

    Warm-up traffic before :meth:`start` is ignored, mirroring how the
    experiments let queues fill before measuring.
    """

    def __init__(self) -> None:
        self._started_at: Optional[float] = None
        self._ended_at: Optional[float] = None
        self.count = 0
        self.bytes = 0

    def start(self, now: float) -> None:
        """Open the measurement window at simulated time ``now``."""
        self._started_at = now
        self.count = 0
        self.bytes = 0

    def record(self, now: float, size: int = 0) -> None:
        """Record one delivered symbol of ``size`` bytes."""
        if self._started_at is None or now < self._started_at:
            return
        if self._ended_at is not None and now > self._ended_at:
            return
        self.count += 1
        self.bytes += size

    def stop(self, now: float) -> None:
        """Close the measurement window."""
        self._ended_at = now

    @property
    def window(self) -> float:
        if self._started_at is None or self._ended_at is None:
            raise RuntimeError("rate meter window not started/stopped")
        return self._ended_at - self._started_at

    def rate(self) -> float:
        """Delivered symbols per unit time over the window.

        A zero-length window has no meaningful rate; 0.0 is returned
        instead of raising ``ZeroDivisionError`` (nothing was delivered
        in no time).  An unopened/unclosed window still raises
        ``RuntimeError`` via :attr:`window`.
        """
        window = self.window
        return self.count / window if window > 0 else 0.0

    def byte_rate(self) -> float:
        """Delivered bytes per unit time over the window (0.0 when the
        window has zero length, mirroring :meth:`rate`)."""
        window = self.window
        return self.bytes / window if window > 0 else 0.0


@dataclass
class DelayStats:
    """Streaming mean/variance/extremes of observed delays (Welford)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    minimum: float = math.inf
    maximum: float = -math.inf

    def record(self, value: float) -> None:
        """Add one delay observation."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def variance(self) -> float:
        """Sample variance (zero with fewer than two observations)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "DelayStats") -> "DelayStats":
        """Combine two independent stats objects (parallel-axis theorem)."""
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        merged = DelayStats()
        merged.count = self.count + other.count
        delta = other.mean - self.mean
        merged.mean = self.mean + delta * other.count / merged.count
        merged._m2 = self._m2 + other._m2 + delta**2 * self.count * other.count / merged.count
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged
