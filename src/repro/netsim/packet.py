"""Datagrams carried by the simulated links.

A datagram may carry a real byte payload (protocol correctness paths --
shares that actually get reconstructed) or only a *size* (pure rate
benchmarks that don't need the bytes).  Links account in bytes either way.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_packet_ids = itertools.count()


@dataclass
class Datagram:
    """One simulated datagram.

    Attributes:
        size: total size in bytes as seen by the link (headers included).
        payload: optional real bytes (``len(payload) <= size``; the
            difference models header overhead already folded into size).
        sent_at: simulated time the datagram entered the first link; set by
            the sending port, used for delay accounting.
        meta: free-form per-packet annotations (symbol seq, share index...).
        uid: unique id for tracing.
    """

    size: int
    payload: Optional[bytes] = None
    sent_at: float = -1.0
    meta: Dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"datagram size must be positive, got {self.size}")
        if self.payload is not None and len(self.payload) > self.size:
            raise ValueError(
                f"payload of {len(self.payload)} bytes exceeds datagram size {self.size}"
            )
