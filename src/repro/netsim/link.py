"""Unidirectional links: rate shaping, loss and delay emulation.

Each link mimics one direction of one testbed channel:

* **serialisation** at a configured byte rate -- the Hierarchical Token
  Bucket rate limit of the paper's setup (a dedicated, work-conserving
  shaped wire is equivalent to a fixed-rate serialiser with a queue);
* a **bounded FIFO queue** with tail drop -- the qdisc buffer; its
  occupancy also drives the *writable* readiness signal used by the
  dynamic share schedule;
* **Bernoulli loss** applied after serialisation -- netem's iid loss (the
  adversary may still have observed a lost share, which is why observation
  is accounted where the share is *sent*, not where it arrives);
* **fixed propagation delay** added before delivery -- netem's delay.

Links also carry an **up/down state machine** and **safe runtime setters**
(:meth:`Link.set_rate`, :meth:`Link.set_loss`, ...) so the fault-injection
layer (:mod:`repro.netsim.faults`) can model outages, flaps and mid-run
parameter changes.  A downed link drops its queue and everything in flight,
reports non-writable (the dynamic scheduler routes around it), and notifies
writable watchers exactly once when it comes back up.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from typing import Callable, Deque, Optional

import numpy as np

from repro.netsim.engine import Engine
from repro.netsim.packet import Datagram

#: Default queue capacity, in packets (mirrors a typical small txqueuelen;
#: keeping it modest makes readiness feedback responsive, which is what the
#: dynamic share schedule relies on).
DEFAULT_QUEUE_LIMIT = 16


@dataclass
class LinkStats:
    """Counters kept by each link."""

    offered: int = 0  # send() calls
    queue_drops: int = 0  # rejected by a full queue
    serialized: int = 0  # finished serialisation onto the wire
    loss_drops: int = 0  # dropped by the loss process (iid or burst model)
    delivered: int = 0  # handed to the receiver callback
    corruptions: int = 0  # payloads tampered with in transit
    bytes_offered: int = 0
    bytes_delivered: int = 0
    down_drops: int = 0  # dropped before the wire: sends while down, queue flush, aborted serialisation
    down_losses: int = 0  # dropped off the wire: in flight when the link went down
    downs: int = 0  # up -> down transitions
    ups: int = 0  # down -> up transitions

    def as_dict(self) -> dict:
        """Counters as a plain dict (for reports and traces)."""
        return {
            "offered": self.offered,
            "queue_drops": self.queue_drops,
            "serialized": self.serialized,
            "loss_drops": self.loss_drops,
            "delivered": self.delivered,
            "corruptions": self.corruptions,
            "bytes_offered": self.bytes_offered,
            "bytes_delivered": self.bytes_delivered,
            "down_drops": self.down_drops,
            "down_losses": self.down_losses,
            "downs": self.downs,
            "ups": self.ups,
        }


class LossModel:
    """Interface of pluggable per-packet loss processes (duck-typed).

    :meth:`sample` is consulted once per serialised packet *instead of* the
    link's iid Bernoulli draw; the link passes its own random stream so
    determinism still flows from the experiment's root seed.  See
    :class:`repro.netsim.faults.GilbertElliott` for the canonical burst
    model.
    """

    def sample(self, rng: np.random.Generator) -> bool:
        """Return True if the packet should be dropped."""
        raise NotImplementedError


class Link:
    """A unidirectional shaped, lossy, delaying link.

    Args:
        engine: the simulation engine.
        byte_rate: serialisation rate in bytes per unit time (> 0).
        loss: iid probability that a serialised packet is dropped.
        delay: propagation delay added to every surviving packet.
        rng: random stream for the loss and jitter draws.
        queue_limit: queue capacity in packets; a send() arriving with the
            queue full is tail-dropped.
        jitter: netem-style delay variation: each packet's propagation
            delay is drawn uniformly from [delay - jitter, delay + jitter]
            (clamped at zero).  Jitter can reorder packets, exactly as
            netem does; the protocol's reassembly buffer absorbs this.
        corruption: probability that a delivered packet's payload is
            tampered with in transit (one byte flipped) -- the Byzantine
            channel of the PSMT threat model.  Applies only to packets
            carrying real payloads.
        name: label used in traces.
    """

    def __init__(
        self,
        engine: Engine,
        byte_rate: float,
        loss: float,
        delay: float,
        rng: np.random.Generator,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        jitter: float = 0.0,
        corruption: float = 0.0,
        name: str = "",
    ):
        if byte_rate <= 0:
            raise ValueError(f"byte_rate must be positive, got {byte_rate}")
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {loss}")
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        if jitter < 0:
            raise ValueError(f"jitter must be nonnegative, got {jitter}")
        if not 0.0 <= corruption <= 1.0:
            raise ValueError(f"corruption must be a probability, got {corruption}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be at least 1, got {queue_limit}")
        self.engine = engine
        self.byte_rate = byte_rate
        self.loss = loss
        self.delay = delay
        self.jitter = jitter
        self.corruption = corruption
        self.rng = rng
        self.queue_limit = queue_limit
        self.name = name
        self.stats = LinkStats()
        self.up = True
        self.loss_model: Optional["LossModel"] = None
        self._queue: Deque[Datagram] = deque()
        self._busy = False
        #: Bumped on every down transition; packets tagged with an older
        #: epoch were on the wire when it was cut and never arrive.
        self._epoch = 0
        self._receiver: Optional[Callable[[Datagram], None]] = None
        self._writable_watchers: "list[Callable[[], None]]" = []
        self._transmit_watchers: "list[Callable[[Datagram], None]]" = []
        #: On-path adversary hook consulted on every delivery, *after* the
        #: benign corruption model and right before the receiver callback.
        #: It may pass the datagram through unchanged, substitute a
        #: mutated copy, or return None to swallow it (e.g. to hold it for
        #: delayed, reordered re-injection via :meth:`inject`).  Installed
        #: by :class:`repro.adversary.active.engine.AttackInjector`.
        self.attack_tap: Optional[Callable[[Datagram], Optional[Datagram]]] = None

    def set_receiver(self, callback: Callable[[Datagram], None]) -> None:
        """Register the delivery callback (the far end's receive path)."""
        self._receiver = callback

    def watch_writable(self, callback: Callable[[], None]) -> None:
        """Register a callback fired when the queue stops being full.

        This is the level-triggered-to-edge-triggered bridge the sender's
        epoll-like wait loop needs: it only fires on the full -> not-full
        transition, i.e. exactly when a blocked sender may make progress.
        """
        self._writable_watchers.append(callback)

    def watch_transmit(self, callback: Callable[[Datagram], None]) -> None:
        """Register a wire tap, fired for every packet put on the wire.

        Taps fire at serialisation time, *before* the loss draw: the
        paper's threat model observes shares "as they are being sent", so
        an adversary may capture a share that the receiver never gets.
        """
        self._transmit_watchers.append(callback)

    # -- sending --------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Packets queued, *excluding* the one currently serialising."""
        return len(self._queue)

    def writable(self) -> bool:
        """Whether a send() right now would be accepted (epoll's EPOLLOUT).

        A downed link is never writable, which is exactly how the dynamic
        share schedule routes around an outage.
        """
        return self.up and len(self._queue) < self.queue_limit

    def send(self, datagram: Datagram) -> bool:
        """Offer a datagram to the link.

        Returns:
            True if queued (or immediately serialising); False if the link
            was down or the queue was full and the datagram was dropped.
        """
        self.stats.offered += 1
        self.stats.bytes_offered += datagram.size
        if not self.up:
            self.stats.down_drops += 1
            return False
        if not self.writable():
            self.stats.queue_drops += 1
            return False
        if datagram.sent_at < 0:
            datagram.sent_at = self.engine.now
        self._queue.append(datagram)
        if not self._busy:
            # Kicked from idle: no external full -> writable transition can
            # have happened, so watchers are not notified.
            self._start_next(notify=False)
        return True

    # -- fault control: up/down and runtime parameter mutation -----------------

    def link_down(self) -> None:
        """Take the link down: flush the queue and cut everything in flight.

        Idempotent.  Queued packets and the one mid-serialisation are
        counted as ``down_drops``; packets already on the wire are counted
        as ``down_losses`` when their (now doomed) delivery time arrives.
        """
        if not self.up:
            return
        self.up = False
        self.stats.downs += 1
        self._epoch += 1
        self.stats.down_drops += len(self._queue)
        self._queue.clear()

    def link_up(self) -> None:
        """Bring the link back up and wake any blocked senders.

        Idempotent.  Notifies writable watchers exactly once per down -> up
        transition (the queue is empty after an outage, so the link is
        always writable at this point).
        """
        if self.up:
            return
        self.up = True
        self.stats.ups += 1
        for watcher in self._writable_watchers:
            watcher()

    def set_rate(self, byte_rate: float) -> None:
        """Change the serialisation rate; applies from the next packet."""
        if byte_rate <= 0:
            raise ValueError(f"byte_rate must be positive, got {byte_rate}")
        self.byte_rate = byte_rate

    def set_loss(self, loss: float) -> None:
        """Change the iid loss probability (ignored while a loss model is set)."""
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {loss}")
        self.loss = loss

    def set_delay(self, delay: float) -> None:
        """Change the propagation delay; applies to packets not yet on the wire."""
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        self.delay = delay

    def set_jitter(self, jitter: float) -> None:
        """Change the delay jitter half-width."""
        if jitter < 0:
            raise ValueError(f"jitter must be nonnegative, got {jitter}")
        self.jitter = jitter

    def set_corruption(self, corruption: float) -> None:
        """Change the per-delivery tamper probability."""
        if not 0.0 <= corruption <= 1.0:
            raise ValueError(f"corruption must be a probability, got {corruption}")
        self.corruption = corruption

    def set_loss_model(self, model: Optional[LossModel]) -> None:
        """Install (or with None remove) a pluggable loss process.

        While installed it replaces the iid Bernoulli draw entirely; the
        configured ``loss`` attribute is untouched and resumes when the
        model is removed.
        """
        self.loss_model = model

    # -- internal pipeline -----------------------------------------------------

    def _start_next(self, notify: bool = True) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        was_full = len(self._queue) >= self.queue_limit
        datagram = self._queue.popleft()
        serialisation_time = datagram.size / self.byte_rate
        self.engine.schedule(
            serialisation_time, self._finish_serialisation, datagram, self._epoch
        )
        if notify and was_full:
            for watcher in self._writable_watchers:
                watcher()

    def _finish_serialisation(self, datagram: Datagram, epoch: int) -> None:
        if epoch != self._epoch or not self.up:
            # The link went down while this packet was serialising: it never
            # made it onto the wire (no tap fires, no adversary observation).
            self.stats.down_drops += 1
            self._start_next()
            return
        self.stats.serialized += 1
        for tap in self._transmit_watchers:
            tap(datagram)
        if self.loss_model is not None:
            lost = self.loss_model.sample(self.rng)
        else:
            lost = self.loss > 0.0 and self.rng.random() < self.loss
        if lost:
            self.stats.loss_drops += 1
        else:
            delay = self.delay
            if self.jitter > 0.0:
                delay = max(0.0, delay + self.rng.uniform(-self.jitter, self.jitter))
            self.engine.schedule(delay, self._deliver, datagram, epoch)
        self._start_next()

    def _deliver(self, datagram: Datagram, epoch: int) -> None:
        if epoch != self._epoch:
            # The wire was cut while this packet was propagating.
            self.stats.down_losses += 1
            return
        self.stats.delivered += 1
        self.stats.bytes_delivered += datagram.size
        if (
            self.corruption > 0.0
            and datagram.payload is not None
            and len(datagram.payload) > 0
            and self.rng.random() < self.corruption
        ):
            datagram = self._tamper(datagram)
            self.stats.corruptions += 1
        if self.attack_tap is not None:
            tapped = self.attack_tap(datagram)
            if tapped is None:
                return
            datagram = tapped
        if self._receiver is not None:
            self._receiver(datagram)

    def inject(self, datagram: Datagram) -> bool:
        """Hand a datagram straight to the receiver, bypassing the pipeline.

        The active adversary's write primitive: forged, replayed and
        released-after-hold packets enter here -- no queue, no loss draw,
        no attack tap (the adversary does not attack its own traffic).
        Fails (returns False) when the link is down or unwired: even an
        on-path adversary cannot deliver over a cut wire.
        """
        if not self.up or self._receiver is None:
            return False
        self._receiver(datagram)
        return True

    def _tamper(self, datagram: Datagram) -> Datagram:
        """Flip one payload byte (never a no-op: XOR with a nonzero value)."""
        payload = bytearray(datagram.payload)
        position = int(self.rng.integers(0, len(payload)))
        payload[position] ^= int(self.rng.integers(1, 256))
        return Datagram(
            size=datagram.size,
            payload=bytes(payload),
            sent_at=datagram.sent_at,
            meta=datagram.meta,
        )


class DuplexChannel:
    """A bidirectional channel: two independent links with shared shaping.

    The paper's testbed applies rate, loss and delay *in each direction*;
    the echo (delay) experiment depends on both directions being shaped.
    """

    def __init__(
        self,
        engine: Engine,
        byte_rate: float,
        loss: float,
        delay: float,
        forward_rng: np.random.Generator,
        reverse_rng: np.random.Generator,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        jitter: float = 0.0,
        corruption: float = 0.0,
        name: str = "",
    ):
        self.name = name
        self.forward = Link(
            engine, byte_rate, loss, delay, forward_rng, queue_limit,
            jitter=jitter, corruption=corruption, name=f"{name}:fwd",
        )
        self.reverse = Link(
            engine, byte_rate, loss, delay, reverse_rng, queue_limit,
            jitter=jitter, corruption=corruption, name=f"{name}:rev",
        )

    @property
    def links(self) -> "tuple[Link, Link]":
        """Both directions, forward first (fault injection iterates these)."""
        return (self.forward, self.reverse)

    @property
    def up(self) -> bool:
        """True when both directions are up."""
        return self.forward.up and self.reverse.up
