"""Declarative, deterministic fault injection for the simulated testbed.

The paper's evaluation (Sec. V-VI) shapes every channel once and leaves it
alone for the whole run; real channels flap, burst, slow down and heal.
This module injects such behaviour as data, not code:

* a :class:`FaultEvent` is one timed mutation of one (or every) channel --
  an outage (``link_down``/``link_up``), a parameter override
  (``set_loss``/``set_delay``/``set_jitter``/``set_rate``), a burst-loss
  regime (``burst_start``/``burst_stop`` with a two-state
  :class:`GilbertElliott` process), or a whole-set ``partition``/``heal``;
* a :class:`FaultPlan` is an ordered timeline of events, built fluently or
  parsed from a JSON spec (the CLI's ``--faults``);
* a :class:`FaultInjector` schedules the plan on the event
  :class:`~repro.netsim.engine.Engine` and applies each mutation through
  :class:`~repro.netsim.link.Link`'s safe runtime setters, recording every
  applied event in :attr:`FaultInjector.log` so reports can attribute
  degradation to injected faults.

Determinism: event timing comes solely from the engine (ties break on
scheduling order) and every random draw -- including the Gilbert-Elliott
state walks -- flows through the affected link's own named rng stream, so
two runs with the same root seed produce byte-identical traces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.netsim.engine import Engine
from repro.netsim.link import DuplexChannel, Link, LossModel

#: Every recognised fault action.
ACTIONS = (
    "link_down",
    "link_up",
    "set_loss",
    "set_delay",
    "set_jitter",
    "set_rate",
    "burst_start",
    "burst_stop",
    "partition",
    "heal",
)

#: Which direction(s) of a duplex channel an event touches.
DIRECTIONS = ("fwd", "rev", "both")

#: Required / allowed parameter keys per action.
_PARAM_KEYS: Dict[str, Tuple[str, ...]] = {
    "link_down": (),
    "link_up": (),
    "set_loss": ("loss",),
    "set_delay": ("delay",),
    "set_jitter": ("jitter",),
    "set_rate": ("byte_rate", "scale"),
    "burst_start": ("p_bad", "p_good", "loss_good", "loss_bad"),
    "burst_stop": (),
    "partition": (),
    "heal": (),
}


class GilbertElliott(LossModel):
    """Two-state (good/bad) Markov burst-loss process, per packet.

    The classic Gilbert-Elliott channel: each serialised packet is lost
    with probability ``loss_good`` in the good state and ``loss_bad`` in
    the bad state; after the loss draw the state flips good -> bad with
    probability ``p_bad`` and bad -> good with probability ``p_good``.
    Expected bad-state occupancy is ``p_bad / (p_bad + p_good)`` and mean
    burst length is ``1 / p_good`` packets.

    The process owns no randomness of its own: :meth:`sample` draws from
    the rng the link passes in, which keeps runs seed-deterministic.
    """

    def __init__(
        self,
        p_bad: float,
        p_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ):
        for label, p in (("p_bad", p_bad), ("p_good", p_good)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be a probability, got {p}")
        if not 0.0 <= loss_good < 1.0:
            raise ValueError(f"loss_good must be in [0, 1), got {loss_good}")
        if not 0.0 <= loss_bad <= 1.0:
            raise ValueError(f"loss_bad must be in [0, 1], got {loss_bad}")
        self.p_bad = p_bad
        self.p_good = p_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False

    def sample(self, rng: np.random.Generator) -> bool:
        loss = self.loss_bad if self.bad else self.loss_good
        lost = loss > 0.0 and rng.random() < loss
        flip = self.p_good if self.bad else self.p_bad
        if flip > 0.0 and rng.random() < flip:
            self.bad = not self.bad
        return lost


@dataclass
class FaultEvent:
    """One timed fault: an action applied to one channel (or all of them).

    Attributes:
        time: absolute simulated time the fault fires.
        action: one of :data:`ACTIONS`.
        channel: model channel index, or ``None`` for every channel
            (``partition``/``heal`` default to every channel).
        direction: "fwd", "rev" or "both" duplex directions.
        params: action parameters (see :data:`_PARAM_KEYS`); e.g.
            ``{"loss": 0.2}`` for ``set_loss`` or ``{"scale": 0.1}`` for a
            relative ``set_rate``.
    """

    time: float
    action: str
    channel: Optional[int] = None
    direction: str = "both"
    params: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be nonnegative, got {self.time}")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; expected one of {ACTIONS}")
        if self.direction not in DIRECTIONS:
            raise ValueError(f"unknown direction {self.direction!r}; expected one of {DIRECTIONS}")
        if self.channel is not None and self.channel < 0:
            raise ValueError(f"channel index must be nonnegative, got {self.channel}")
        allowed = _PARAM_KEYS[self.action]
        unknown = set(self.params) - set(allowed)
        if unknown:
            raise ValueError(
                f"{self.action} does not take parameters {sorted(unknown)}; allowed: {list(allowed)}"
            )
        if self.action == "set_loss":
            if "loss" not in self.params:
                raise ValueError("set_loss needs a 'loss' parameter")
            if not 0.0 <= self.params["loss"] < 1.0:
                raise ValueError(f"loss must be in [0, 1), got {self.params['loss']}")
        if self.action == "set_delay":
            if "delay" not in self.params:
                raise ValueError("set_delay needs a 'delay' parameter")
            if self.params["delay"] < 0:
                raise ValueError(f"delay must be nonnegative, got {self.params['delay']}")
        if self.action == "set_jitter":
            if "jitter" not in self.params:
                raise ValueError("set_jitter needs a 'jitter' parameter")
            if self.params["jitter"] < 0:
                raise ValueError(f"jitter must be nonnegative, got {self.params['jitter']}")
        if self.action == "set_rate":
            if not (("byte_rate" in self.params) ^ ("scale" in self.params)):
                raise ValueError("set_rate needs exactly one of 'byte_rate' or 'scale'")
            value = self.params.get("byte_rate", self.params.get("scale"))
            if value <= 0:
                raise ValueError(f"set_rate value must be positive, got {value}")
        if self.action == "burst_start":
            for key in ("p_bad", "p_good"):
                if key not in self.params:
                    raise ValueError(f"burst_start needs a {key!r} parameter")
            # Constructing the process validates every probability eagerly.
            GilbertElliott(
                self.params["p_bad"],
                self.params["p_good"],
                self.params.get("loss_good", 0.0),
                self.params.get("loss_bad", 1.0),
            )

    def to_spec(self) -> dict:
        """The JSON-friendly dict form (inverse of :meth:`FaultPlan.from_spec`)."""
        spec: dict = {"time": self.time, "action": self.action}
        if self.channel is not None:
            spec["channel"] = self.channel
        if self.direction != "both":
            spec["direction"] = self.direction
        spec.update(self.params)
        return spec


class FaultPlan:
    """A seeded-run fault timeline: an ordered collection of fault events.

    Build fluently (every builder returns ``self``)::

        plan = (FaultPlan()
                .link_down(5.0, channel=0)
                .link_up(8.0, channel=0)
                .burst(10.0, p_bad=0.05, p_good=0.25, channel=2)
                .end_burst(20.0, channel=2)
                .partition(22.0)
                .heal(24.0))

    or parse the equivalent JSON spec with :meth:`from_json` /
    :meth:`from_spec`.  The plan itself is pure data; nothing happens until
    a :class:`FaultInjector` arms it on an engine.
    """

    def __init__(self, events: Optional[Sequence[FaultEvent]] = None):
        self.events: List[FaultEvent] = list(events or [])

    # -- construction ----------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        """Append one event (kept in insertion order; sorted when armed)."""
        self.events.append(event)
        return self

    def link_down(self, time: float, channel: Optional[int] = None, direction: str = "both") -> "FaultPlan":
        """Take a channel (or all channels) down at ``time``."""
        return self.add(FaultEvent(time, "link_down", channel, direction))

    def link_up(self, time: float, channel: Optional[int] = None, direction: str = "both") -> "FaultPlan":
        """Bring a channel (or all channels) back up at ``time``."""
        return self.add(FaultEvent(time, "link_up", channel, direction))

    def set_loss(self, time: float, loss: float, channel: Optional[int] = None, direction: str = "both") -> "FaultPlan":
        """Override a channel's iid loss probability at ``time``."""
        return self.add(FaultEvent(time, "set_loss", channel, direction, {"loss": loss}))

    def set_delay(self, time: float, delay: float, channel: Optional[int] = None, direction: str = "both") -> "FaultPlan":
        """Override a channel's propagation delay at ``time``."""
        return self.add(FaultEvent(time, "set_delay", channel, direction, {"delay": delay}))

    def set_jitter(self, time: float, jitter: float, channel: Optional[int] = None, direction: str = "both") -> "FaultPlan":
        """Override a channel's delay jitter at ``time``."""
        return self.add(FaultEvent(time, "set_jitter", channel, direction, {"jitter": jitter}))

    def set_rate(
        self,
        time: float,
        byte_rate: Optional[float] = None,
        scale: Optional[float] = None,
        channel: Optional[int] = None,
        direction: str = "both",
    ) -> "FaultPlan":
        """Override a channel's serialisation rate, absolutely or by a factor."""
        params: Dict[str, float] = {}
        if byte_rate is not None:
            params["byte_rate"] = byte_rate
        if scale is not None:
            params["scale"] = scale
        return self.add(FaultEvent(time, "set_rate", channel, direction, params))

    def burst(
        self,
        time: float,
        p_bad: float,
        p_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        channel: Optional[int] = None,
        direction: str = "both",
    ) -> "FaultPlan":
        """Enter a Gilbert-Elliott burst-loss regime at ``time``."""
        return self.add(
            FaultEvent(
                time, "burst_start", channel, direction,
                {"p_bad": p_bad, "p_good": p_good, "loss_good": loss_good, "loss_bad": loss_bad},
            )
        )

    def end_burst(self, time: float, channel: Optional[int] = None, direction: str = "both") -> "FaultPlan":
        """Leave the burst-loss regime (iid loss resumes) at ``time``."""
        return self.add(FaultEvent(time, "burst_stop", channel, direction))

    def partition(self, time: float, channel: Optional[int] = None) -> "FaultPlan":
        """Down every channel (or one) in both directions at ``time``."""
        return self.add(FaultEvent(time, "partition", channel))

    def heal(self, time: float, channel: Optional[int] = None) -> "FaultPlan":
        """Restore every channel (or one) in both directions at ``time``."""
        return self.add(FaultEvent(time, "heal", channel))

    def flap(
        self,
        channel: Optional[int],
        period: float,
        down_for: float,
        start: float,
        stop: float,
        direction: str = "both",
    ) -> "FaultPlan":
        """Flap a channel: down at ``start``, up ``down_for`` later, every ``period``.

        Generates ``link_down``/``link_up`` pairs until ``stop``; always
        ends with a ``link_up`` so the channel heals.
        """
        if period <= 0 or down_for <= 0 or down_for >= period:
            raise ValueError(f"need 0 < down_for < period, got period={period}, down_for={down_for}")
        t = start
        while t < stop:
            self.link_down(t, channel, direction)
            self.link_up(min(t + down_for, stop), channel, direction)
            t += period
        return self

    # -- spec (de)serialisation -------------------------------------------------

    @classmethod
    def from_spec(cls, spec: Sequence[dict]) -> "FaultPlan":
        """Build a plan from a list of dicts (``time``/``action``/``channel``/
        ``direction`` keys; every other key becomes an action parameter)."""
        events = []
        for entry in spec:
            entry = dict(entry)
            time = entry.pop("time")
            action = entry.pop("action")
            channel = entry.pop("channel", None)
            direction = entry.pop("direction", "both")
            events.append(FaultEvent(time, action, channel, direction, entry))
        return cls(events)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse the JSON form of :meth:`to_spec`."""
        return cls.from_spec(json.loads(text))

    def to_spec(self) -> List[dict]:
        """The JSON-friendly list-of-dicts form."""
        return [event.to_spec() for event in self.events]

    def to_json(self) -> str:
        return json.dumps(self.to_spec(), indent=2)

    # -- introspection ----------------------------------------------------------

    def sorted_events(self) -> List[FaultEvent]:
        """Events in firing order (stable: ties keep insertion order)."""
        return sorted(self.events, key=lambda e: e.time)

    def end_time(self) -> float:
        """Time of the last event (0.0 for an empty plan)."""
        return max((e.time for e in self.events), default=0.0)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)


class FaultInjector:
    """Applies a :class:`FaultPlan` to a set of duplex channels.

    Args:
        engine: the simulation engine the mutations are scheduled on.
        channels: the duplex channels, in model channel-index order.
        plan: the fault timeline to apply.

    Call :meth:`arm` once, before running the engine past the plan's first
    event.  Every applied event is appended to :attr:`log` as an
    ``(applied_at, event)`` pair, giving reports a causal trace from
    injected fault to observed degradation.
    """

    def __init__(self, engine: Engine, channels: Sequence[DuplexChannel], plan: FaultPlan):
        self.engine = engine
        self.duplex = list(channels)
        self.plan = plan
        self.log: List[Tuple[float, FaultEvent]] = []
        #: Structured tracer attached by :mod:`repro.obs.instrument`; when
        #: set, every applied event also emits a ``fault_applied`` trace.
        self.tracer = None
        self._armed = False
        for event in plan:
            if event.channel is not None and event.channel >= len(self.duplex):
                raise ValueError(
                    f"fault event targets channel {event.channel} but only "
                    f"{len(self.duplex)} channels exist"
                )

    def arm(self) -> "FaultInjector":
        """Schedule every plan event on the engine (once)."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        for event in self.plan.sorted_events():
            self.engine.schedule_at(max(event.time, self.engine.now), self._apply, event)
        return self

    # -- application ------------------------------------------------------------

    def _links(self, event: FaultEvent) -> List[Link]:
        """The links an event touches, in (channel, fwd-before-rev) order."""
        if event.channel is None:
            targets = list(range(len(self.duplex)))
        else:
            targets = [event.channel]
        direction = "both" if event.action in ("partition", "heal") else event.direction
        links: List[Link] = []
        for index in targets:
            duplex = self.duplex[index]
            if direction in ("fwd", "both"):
                links.append(duplex.forward)
            if direction in ("rev", "both"):
                links.append(duplex.reverse)
        return links

    def _apply(self, event: FaultEvent) -> None:
        self.log.append((self.engine.now, event))
        if self.tracer is not None:
            self.tracer.event(
                "fault_applied",
                action=event.action,
                channel=event.channel,
                direction=event.direction,
            )
        params = event.params
        for link in self._links(event):
            if event.action in ("link_down", "partition"):
                link.link_down()
            elif event.action in ("link_up", "heal"):
                link.link_up()
            elif event.action == "set_loss":
                link.set_loss(params["loss"])
            elif event.action == "set_delay":
                link.set_delay(params["delay"])
            elif event.action == "set_jitter":
                link.set_jitter(params["jitter"])
            elif event.action == "set_rate":
                if "byte_rate" in params:
                    link.set_rate(params["byte_rate"])
                else:
                    link.set_rate(link.byte_rate * params["scale"])
            elif event.action == "burst_start":
                link.set_loss_model(
                    GilbertElliott(
                        params["p_bad"],
                        params["p_good"],
                        params.get("loss_good", 0.0),
                        params.get("loss_bad", 1.0),
                    )
                )
            elif event.action == "burst_stop":
                link.set_loss_model(None)

    # -- reporting --------------------------------------------------------------

    def summary(self) -> dict:
        """Applied-event counts per action, plus first/last firing times."""
        counts: Dict[str, int] = {}
        for _, event in self.log:
            counts[event.action] = counts.get(event.action, 0) + 1
        return {
            "applied": len(self.log),
            "by_action": counts,
            "first_at": self.log[0][0] if self.log else None,
            "last_at": self.log[-1][0] if self.log else None,
        }


# -- canonical scenarios ---------------------------------------------------------
#
# The five named scenarios every robustness experiment (and bench_faults)
# measures against.  Times are in simulator unit times; callers pick start
# and stop so the faults land inside their measurement window.


def scenario_flap(
    start: float, stop: float, channel: int = 0, period: float = 4.0, down_for: float = 2.0
) -> FaultPlan:
    """One channel flaps: down ``down_for`` out of every ``period``."""
    return FaultPlan().flap(channel, period, down_for, start, stop)


def scenario_burst_loss(
    start: float,
    stop: float,
    channel: int = 0,
    p_bad: float = 0.05,
    p_good: float = 0.25,
    loss_bad: float = 0.9,
) -> FaultPlan:
    """One channel enters a Gilbert-Elliott burst-loss regime, then recovers."""
    return FaultPlan().burst(start, p_bad, p_good, 0.0, loss_bad, channel).end_burst(stop, channel)


def scenario_delay_spike(
    start: float,
    stop: float,
    channel: int = 0,
    delay: float = 5.0,
    baseline: float = 0.0,
) -> FaultPlan:
    """One channel's propagation delay spikes to ``delay``, then returns to ``baseline``."""
    return FaultPlan().set_delay(start, delay, channel).set_delay(stop, baseline, channel)


def scenario_rate_cut(
    start: float, stop: float, channel: int = 0, scale: float = 0.1
) -> FaultPlan:
    """One channel's rate is cut to ``scale`` of its value, then restored."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return FaultPlan().set_rate(start, scale=scale, channel=channel).set_rate(
        stop, scale=1.0 / scale, channel=channel
    )


def scenario_partition_heal(start: float, stop: float, channel: Optional[int] = None) -> FaultPlan:
    """Every channel (or one) goes down at ``start`` and heals at ``stop``."""
    return FaultPlan().partition(start, channel).heal(stop, channel)


#: Name -> factory for the canonical scenarios; each factory takes
#: ``(start, stop, **overrides)`` and returns a :class:`FaultPlan`.
CANONICAL_SCENARIOS: Dict[str, Callable[..., FaultPlan]] = {
    "flap": scenario_flap,
    "burst": scenario_burst_loss,
    "delay_spike": scenario_delay_spike,
    "rate_cut": scenario_rate_cut,
    "partition_heal": scenario_partition_heal,
}


def canonical_plan(name: str, start: float, stop: float, **overrides) -> FaultPlan:
    """Build one of the canonical scenarios by name."""
    try:
        factory = CANONICAL_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; expected one of {sorted(CANONICAL_SCENARIOS)}"
        ) from None
    return factory(start, stop, **overrides)
