"""Write-readiness selection: the simulator's stand-in for epoll.

ReMICSS avoids computing an explicit share schedule by choosing, for each
symbol, "the first m channels which are ready for writing" (Sec. V).  The
selector implements that choice over simulated ports.  Two orderings are
provided:

* ``headroom`` (default) -- ready ports sorted by free queue space, most
  first.  This is what a busy epoll loop effectively sees: the channels
  that drain fastest re-arm first and so come back ready first, steering
  load toward faster channels in proportion to their rates.
* ``fixed`` -- ready ports in fixed fd order, the naive epoll iteration.
  Kept for ablations: it reproduces the pathological interactions the
  paper observes (e.g. the κ=3, µ=3.8 loss spike in Fig. 5).

Ports whose link is down (see :mod:`repro.netsim.faults`) report
non-writable and are therefore excluded from selection; when a link comes
back up its writable watcher fires and blocked senders resume, which is
how ReMICSS survives flaps and partitions without any retransmission
machinery.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence

from repro.netsim.ports import ChannelPort


class WriteSelector:
    """Selects ready-to-write ports for the dynamic share schedule.

    Args:
        ports: all channel ports, in channel-index order.
        ordering: "headroom" or "fixed" (see module docstring).
    """

    ORDERINGS = ("headroom", "fixed")

    def __init__(self, ports: Sequence[ChannelPort], ordering: str = "headroom"):
        if ordering not in self.ORDERINGS:
            raise ValueError(f"unknown ordering {ordering!r}; expected one of {self.ORDERINGS}")
        self.ports = list(ports)
        self.ordering = ordering
        #: Channel indices excluded from selection regardless of their
        #: writability -- the resilience layer's quarantine mask.  A
        #: quarantined link may look writable (its queue was flushed when
        #: it went down, or its loss is what got it quarantined), so
        #: readiness alone cannot express the exclusion.
        self.excluded: FrozenSet[int] = frozenset()

    def set_excluded(self, indices: Iterable[int]) -> None:
        """Replace the excluded-channel mask."""
        self.excluded = frozenset(indices)

    def ready(self) -> List[ChannelPort]:
        """All currently writable, non-excluded ports, in the configured order."""
        writable = [
            port for port in self.ports
            if port.index not in self.excluded and port.writable()
        ]
        if self.ordering == "headroom":
            writable.sort(key=lambda port: (-port.headroom, port.index))
        return writable

    def select(self, count: int) -> List[ChannelPort]:
        """The first ``count`` ready ports, or an empty list if fewer are ready.

        Matching the protocol's semantics: a symbol needing m channels
        waits (is not partially sent) until m distinct channels are ready.
        """
        ready = self.ready()
        if len(ready) < count:
            return []
        return ready[:count]
