"""Named, reproducible random streams.

Every stochastic component of the simulator (per-link loss draws, the
sharing scheme's pad material, schedule sampling, workload jitter) pulls
from its own named stream derived from a single experiment seed.  Streams
are independent of each other and of the order in which other components
consume randomness, so adding instrumentation never perturbs results.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


def _stable_hash(name: str) -> int:
    """A platform-stable 32-bit hash of a stream name (crc32, not hash())."""
    return zlib.crc32(name.encode("utf-8"))


class RngRegistry:
    """A factory of independent named ``numpy.random.Generator`` streams.

    Streams are memoised: asking for the same name twice returns the same
    generator object (so its state advances coherently).
    """

    def __init__(self, root_seed: int):
        if root_seed < 0:
            raise ValueError("root seed must be nonnegative")
        self.root_seed = root_seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            seed_seq = np.random.SeedSequence(
                entropy=self.root_seed, spawn_key=(_stable_hash(name),)
            )
            self._streams[name] = np.random.default_rng(seed_seq)
        return self._streams[name]

    def fork(self, suffix: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per repetition of a sweep)."""
        return RngRegistry(
            int(
                np.random.SeedSequence(
                    entropy=self.root_seed, spawn_key=(_stable_hash(suffix),)
                ).generate_state(1)[0]
            )
        )
