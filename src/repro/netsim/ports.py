"""Channel ports: the endpoints the protocol binds to.

A :class:`ChannelPort` wraps one direction of one channel.  The sending
side offers datagrams and exposes the link's *writable* readiness (the
epoll signal ReMICSS's dynamic scheduler keys on); the receiving side
dispatches delivered datagrams to a registered callback.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.link import Link
from repro.netsim.packet import Datagram


class ChannelPort:
    """One sendable/receivable channel endpoint over a :class:`Link`.

    Args:
        index: the model-level channel index (position in the ChannelSet),
            carried so protocol and model vectors line up.
        link: the underlying unidirectional link.
    """

    def __init__(self, index: int, link: Link):
        self.index = index
        self.link = link
        self._on_receive: Optional[Callable[[Datagram], None]] = None
        link.set_receiver(self._dispatch)

    @property
    def name(self) -> str:
        return self.link.name or f"port{self.index}"

    @property
    def up(self) -> bool:
        """Whether the underlying link is up (fault injection can down it)."""
        return self.link.up

    def writable(self) -> bool:
        """Whether a send would currently be accepted (not tail-dropped).

        A downed link reports non-writable, so the dynamic scheduler's
        readiness selection routes around outages automatically.
        """
        return self.link.writable()

    @property
    def headroom(self) -> int:
        """Free queue slots; used to order candidates in the selector."""
        return self.link.queue_limit - self.link.queue_depth

    def send(self, datagram: Datagram) -> bool:
        """Offer a datagram; returns False if the link queue rejected it."""
        return self.link.send(datagram)

    def on_receive(self, callback: Callable[[Datagram], None]) -> None:
        """Register the receive callback for this port."""
        self._on_receive = callback

    def _dispatch(self, datagram: Datagram) -> None:
        if self._on_receive is not None:
            self._on_receive(datagram)
