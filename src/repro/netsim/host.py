"""End-system CPU model.

The paper's high-bandwidth experiments (Figures 6-7) push the testbed until
"the bottleneck becomes something other than the capacity of the channels"
-- the end systems themselves.  This module models that bottleneck: a host
CPU is a serial resource through which per-share work items (splitting,
sending, receiving, reconstructing) are queued, each with a configurable
cost in CPU time.

With ``capacity=None`` the CPU is infinitely fast and adds no delay, which
is the regime of Figures 3-5 (the testbed CPUs are far from saturated at
100 Mbps-class rates).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.netsim.engine import Engine


class CpuModel:
    """A serial work queue with a fixed processing capacity.

    Args:
        engine: the simulation engine.
        capacity: work units the CPU retires per unit time; ``None`` means
            infinitely fast (work runs immediately, synchronously).
        queue_limit: bound on queued work items; submissions beyond it are
            rejected (modelling socket-buffer backpressure at a saturated
            sender).  ``None`` means unbounded.

    Work is submitted as ``submit(cost, fn)``; ``fn`` runs when the CPU has
    spent ``cost / capacity`` time units on it, in submission order.
    """

    def __init__(
        self,
        engine: Engine,
        capacity: Optional[float] = None,
        queue_limit: Optional[int] = None,
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        if queue_limit is not None and queue_limit < 1:
            raise ValueError(f"queue_limit must be positive or None, got {queue_limit}")
        self.engine = engine
        self.capacity = capacity
        self.queue_limit = queue_limit
        self._queue: Deque[Tuple[float, Callable[[], None]]] = deque()
        self._busy = False
        self.completed = 0
        self.rejected = 0
        self.busy_time = 0.0

    @property
    def backlog(self) -> int:
        """Queued (not yet started) work items."""
        return len(self._queue)

    def saturated(self) -> bool:
        """Whether the CPU currently has work queued behind the running item."""
        return self._busy and bool(self._queue)

    def submit(self, cost: float, fn: Callable[[], None]) -> bool:
        """Queue a work item costing ``cost`` units; returns False if rejected."""
        if cost < 0:
            raise ValueError(f"cost must be nonnegative, got {cost}")
        if self.capacity is None:
            # Infinitely fast CPU: run synchronously, no queueing.
            fn()
            self.completed += 1
            return True
        if self.queue_limit is not None and len(self._queue) >= self.queue_limit:
            self.rejected += 1
            return False
        self._queue.append((cost, fn))
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        cost, fn = self._queue.popleft()
        duration = cost / self.capacity
        self.busy_time += duration
        self.engine.schedule(duration, self._finish, fn)

    def _finish(self, fn: Callable[[], None]) -> None:
        fn()
        self.completed += 1
        self._start_next()
