"""Redacted descriptions of secret and share buffers.

The taint analysis (docs/TAINT.md) forbids raw secret bytes in logs,
traces, exceptions and ``repr`` output; this module is the sanctioned
way to *talk about* a buffer without showing it.  :func:`redact_bytes`
names a buffer by length and truncated SHA-256 -- enough to correlate
two sightings of the same payload in diagnostics, nothing more -- and
is registered as a sanitizer in the taint policy, so its output is
declassified by construction.

Kept dependency-free (stdlib only) so every layer -- ``sharing``,
``protocol``, ``obs`` -- can use it without import cycles.
"""

from __future__ import annotations

import hashlib
from typing import Optional

__all__ = ["redact_bytes", "describe_bytes"]

#: Hex digits of SHA-256 retained in redacted descriptions; 12 nibbles
#: (48 bits) is plenty to correlate buffers within one run's diagnostics
#: while staying visually distinct from a real hex dump.
_DIGEST_NIBBLES = 12


def redact_bytes(data: Optional[bytes]) -> str:
    """A safe display form: ``<n bytes redacted sha256:abc123...>``.

    ``None`` renders as ``<none>`` so callers can redact optional
    payloads unconditionally.
    """
    if data is None:
        return "<none>"
    digest = hashlib.sha256(bytes(data)).hexdigest()[:_DIGEST_NIBBLES]
    return f"<{len(data)} bytes redacted sha256:{digest}>"


def describe_bytes(data: Optional[bytes]) -> str:
    """Alias of :func:`redact_bytes` reading better in error messages."""
    return redact_bytes(data)
