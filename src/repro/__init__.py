"""Reproduction of "Modeling Privacy and Tradeoffs in Multichannel Secret
Sharing Protocols" (Pohly & McDaniel, DSN 2016).

The library has three layers:

* **Model** (:mod:`repro.core`): channels as (risk, loss, delay, rate)
  quadruples, share schedules p(k, M), the subset/schedule property
  formulas, the rate theorems, and the linear programs that compute
  property-optimal schedules -- the paper's analytical contribution.
* **Substrates**: finite fields (:mod:`repro.gf`), threshold secret sharing
  (:mod:`repro.sharing`), a from-scratch LP solver (:mod:`repro.lp`), and a
  deterministic discrete-event network simulator (:mod:`repro.netsim`)
  standing in for the paper's five-link hardware testbed.
* **System** (:mod:`repro.protocol`, :mod:`repro.adversary`,
  :mod:`repro.workloads`, :mod:`repro.experiments`): the ReMICSS reference
  protocol and MICSS baseline, Monte-Carlo adversaries, iperf-style
  workloads, and one driver per figure of the paper's evaluation.

Quickstart::

    from repro.core import ChannelSet, Objective, optimal_schedule, optimal_rate

    channels = ChannelSet.from_vectors(
        risks=[0.2, 0.3, 0.1], losses=[0.01, 0.02, 0.005],
        delays=[2.0, 5.0, 1.0], rates=[100.0, 50.0, 25.0])
    schedule = optimal_schedule(channels, Objective.PRIVACY,
                                kappa=2.0, mu=2.5, at_max_rate=True)
    print(schedule.privacy_risk(), optimal_rate(channels, 2.5))
"""

__version__ = "1.0.0"
