"""LP backend that delegates to ``scipy.optimize.linprog`` (HiGHS).

Used both as a cross-check for the from-scratch simplex solver and as the
default backend for large parameter sweeps, where HiGHS is faster.
"""

from __future__ import annotations

from scipy.optimize import linprog

from repro.lp.interface import (
    InfeasibleError,
    LinearProgram,
    LPSolution,
    UnboundedError,
)


def solve_scipy(problem: LinearProgram) -> LPSolution:
    """Solve a standard-form LP via HiGHS.

    Raises:
        InfeasibleError: no feasible point exists.
        UnboundedError: the objective is unbounded below.
        RuntimeError: any other solver failure.
    """
    result = linprog(
        c=problem.c,
        A_eq=problem.a_eq,
        b_eq=problem.b_eq,
        A_ub=problem.a_ub,
        b_ub=problem.b_ub,
        bounds=[(0, None)] * problem.num_vars,
        method="highs",
    )
    if result.status == 2:
        raise InfeasibleError(f"no feasible schedule exists: {result.message}")
    if result.status == 3:
        raise UnboundedError(f"objective is unbounded below: {result.message}")
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"linprog failed: {result.message}")
    return LPSolution(
        x=result.x,
        objective=float(result.fun),
        backend="scipy",
        iterations=int(getattr(result, "nit", 0)),
    )
