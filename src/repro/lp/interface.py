"""Problem description and backend dispatch for linear programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class InfeasibleError(Exception):
    """The linear program has no feasible point."""


class UnboundedError(Exception):
    """The linear program's objective is unbounded below."""


@dataclass(frozen=True)
class LinearProgram:
    """An LP: minimise ``c @ x`` s.t. ``A_eq x = b_eq``, ``A_ub x <= b_ub``,
    ``x >= 0``.

    The paper's programs (Sec. IV-B and IV-D) are purely equality-
    constrained; the inequality rows exist for the requirement-driven
    planner (bound L(p) or D(p) while optimising another property).  The
    simplex backend converts inequalities to equalities with slack
    variables internally; scipy handles them natively.

    Attributes:
        c: objective coefficients, shape (n,).
        a_eq: equality constraint matrix, shape (m, n).
        b_eq: equality right-hand side, shape (m,).
        a_ub: optional inequality matrix, shape (p, n).
        b_ub: optional inequality right-hand side, shape (p,).
        names: optional variable labels used in error messages and reports.
    """

    c: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    a_ub: Optional[np.ndarray] = None
    b_ub: Optional[np.ndarray] = None
    names: "tuple[str, ...]" = field(default=())

    def __post_init__(self) -> None:
        c = np.asarray(self.c, dtype=float)
        a = np.atleast_2d(np.asarray(self.a_eq, dtype=float))
        b = np.asarray(self.b_eq, dtype=float)
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "a_eq", a)
        object.__setattr__(self, "b_eq", b)
        if a.shape != (len(b), len(c)):
            raise ValueError(
                f"inconsistent LP shapes: c has {len(c)} vars, A is {a.shape}, b has {len(b)} rows"
            )
        if (self.a_ub is None) != (self.b_ub is None):
            raise ValueError("a_ub and b_ub must be given together")
        if self.a_ub is not None:
            a_ub = np.atleast_2d(np.asarray(self.a_ub, dtype=float))
            b_ub = np.asarray(self.b_ub, dtype=float)
            object.__setattr__(self, "a_ub", a_ub)
            object.__setattr__(self, "b_ub", b_ub)
            if a_ub.shape != (len(b_ub), len(c)):
                raise ValueError(
                    f"inconsistent inequality shapes: A_ub is {a_ub.shape}, "
                    f"b_ub has {len(b_ub)} rows, c has {len(c)} vars"
                )
        if self.names and len(self.names) != len(c):
            raise ValueError("names must match the number of variables")

    @property
    def num_vars(self) -> int:
        return len(self.c)

    @property
    def num_constraints(self) -> int:
        extra = 0 if self.b_ub is None else len(self.b_ub)
        return len(self.b_eq) + extra

    def to_standard_form(self) -> "LinearProgram":
        """Fold inequalities into equalities with slack variables.

        Returns ``self`` when there are no inequality rows.  The solution
        vector of the standard-form program has the slack values appended;
        callers should truncate to :attr:`num_vars` of the original.
        """
        if self.a_ub is None:
            return self
        num_slack = len(self.b_ub)
        c = np.concatenate([self.c, np.zeros(num_slack)])
        top = np.hstack([self.a_eq, np.zeros((len(self.b_eq), num_slack))])
        bottom = np.hstack([self.a_ub, np.eye(num_slack)])
        return LinearProgram(
            c=c,
            a_eq=np.vstack([top, bottom]),
            b_eq=np.concatenate([self.b_eq, self.b_ub]),
        )


@dataclass(frozen=True)
class LPSolution:
    """An optimal solution to a :class:`LinearProgram`.

    Attributes:
        x: optimal variable values, shape (n,).
        objective: optimal objective value ``c @ x``.
        backend: which solver produced the result ("simplex" or "scipy").
        iterations: solver iteration count (0 when not reported).
    """

    x: np.ndarray
    objective: float
    backend: str
    iterations: int = 0


def solve(problem: LinearProgram, backend: str = "auto") -> LPSolution:
    """Solve a linear program with the requested backend.

    Args:
        problem: the standard-form LP.
        backend: "simplex" (this package's own solver), "scipy" (HiGHS), or
            "auto" (scipy when available, otherwise simplex).

    Raises:
        InfeasibleError: no feasible point exists.
        UnboundedError: the objective is unbounded below.
        ValueError: unknown backend name.
    """
    if backend == "auto":
        try:
            from repro.lp import scipy_backend  # noqa: F401  (probe import)

            backend = "scipy"
        except ImportError:  # pragma: no cover - scipy is a hard dependency
            backend = "simplex"
    if backend == "simplex":
        from repro.lp.simplex import solve_simplex

        return solve_simplex(problem)
    if backend == "scipy":
        from repro.lp.scipy_backend import solve_scipy

        return solve_scipy(problem)
    raise ValueError(f"unknown LP backend {backend!r}")
