"""Two-phase dense simplex with Bland's anti-cycling rule.

This is a deliberately straightforward tableau implementation: the paper's
share-schedule programs are small (for n = 5 channels there are 80 schedule
variables and at most 9 constraints), so clarity and numerical robustness
matter more than sparse-matrix performance.  The solver is cross-checked
against scipy's HiGHS backend in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.lp.interface import (
    InfeasibleError,
    LinearProgram,
    LPSolution,
    UnboundedError,
)

#: Feasibility/optimality tolerance.  The schedule coefficients are exact
#: probabilities and small rationals, so a loose-ish tolerance is safe.
TOLERANCE = 1e-9

#: Iteration cap; Bland's rule guarantees termination but a cap converts a
#: latent bug into a loud error rather than a hang.
MAX_ITERATIONS = 100_000


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Pivot the tableau so that variable ``col`` enters the basis at ``row``."""
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > 0:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _run_simplex(tableau: np.ndarray, basis: np.ndarray, num_real: int) -> int:
    """Optimise the tableau in place; returns the iteration count.

    The last row is the (negated-objective) cost row; the last column is the
    right-hand side.  Bland's rule: entering variable is the lowest-index
    column with a negative reduced cost; leaving row is the lowest-index
    (by basis variable) among the minimum-ratio rows.

    Raises:
        UnboundedError: if an entering column has no positive entries.
    """
    num_rows = tableau.shape[0] - 1
    iterations = 0
    while True:
        cost_row = tableau[-1, :-1]
        entering_candidates = np.nonzero(cost_row < -TOLERANCE)[0]
        if len(entering_candidates) == 0:
            return iterations
        col = int(entering_candidates[0])  # Bland: smallest index
        ratios = np.full(num_rows, np.inf)
        column = tableau[:num_rows, col]
        positive = column > TOLERANCE
        ratios[positive] = tableau[:num_rows, -1][positive] / column[positive]
        best = np.min(ratios)
        if not np.isfinite(best):
            raise UnboundedError("objective is unbounded below")
        # Bland tie-break: among minimum-ratio rows, leave the basis variable
        # with the smallest index.
        tied_rows = np.nonzero(ratios <= best + TOLERANCE)[0]
        row = int(min(tied_rows, key=lambda r: basis[r]))
        _pivot(tableau, basis, row, col)
        iterations += 1
        if iterations > MAX_ITERATIONS:  # pragma: no cover - safety valve
            raise RuntimeError("simplex iteration cap exceeded")
    del num_real  # reserved for future column filtering


def solve_simplex(problem: LinearProgram) -> LPSolution:
    """Solve a standard-form LP with the two-phase simplex method.

    Raises:
        InfeasibleError: no feasible point exists.
        UnboundedError: the objective is unbounded below.
    """
    original_vars = problem.num_vars
    problem = problem.to_standard_form()
    a = problem.a_eq.copy()
    b = problem.b_eq.copy()
    c = problem.c.copy()
    num_cons, num_vars = a.shape

    # Normalise to b >= 0 so artificial variables start feasible.
    negative = b < 0
    a[negative] *= -1
    b[negative] *= -1

    # --- Phase 1: minimise the sum of artificial variables. ---
    # Tableau columns: [real vars | artificials | rhs].
    tableau = np.zeros((num_cons + 1, num_vars + num_cons + 1))
    tableau[:num_cons, :num_vars] = a
    tableau[:num_cons, num_vars : num_vars + num_cons] = np.eye(num_cons)
    tableau[:num_cons, -1] = b
    # Phase-1 cost row: sum of artificials, expressed in terms of non-basics.
    tableau[-1, :num_vars] = -a.sum(axis=0)
    tableau[-1, -1] = -b.sum()
    basis = np.arange(num_vars, num_vars + num_cons)

    iterations = _run_simplex(tableau, basis, num_vars)
    phase1_obj = -tableau[-1, -1]
    if phase1_obj > 1e-7:
        raise InfeasibleError(
            f"no feasible schedule exists (phase-1 objective {phase1_obj:.3e})"
        )

    # Drive any artificial variables that linger in the basis at level zero
    # out of it (or drop their redundant rows).
    for row in range(num_cons):
        if basis[row] >= num_vars:
            pivot_col = next(
                (j for j in range(num_vars) if abs(tableau[row, j]) > TOLERANCE),
                None,
            )
            if pivot_col is not None:
                _pivot(tableau, basis, row, pivot_col)
            # else: the row is redundant (all-zero over real vars); leaving
            # the zero-level artificial basic is harmless for phase 2.

    # --- Phase 2: original objective over real variables only. ---
    tableau2 = np.zeros((num_cons + 1, num_vars + 1))
    tableau2[:num_cons, :num_vars] = tableau[:num_cons, :num_vars]
    tableau2[:num_cons, -1] = tableau[:num_cons, -1]
    # Express the objective in terms of the current basis.
    cost = c.astype(float).copy()
    rhs = 0.0
    for row in range(num_cons):
        var = basis[row]
        if var < num_vars and abs(cost[var]) > 0:
            coeff = cost[var]
            cost -= coeff * tableau2[row, :num_vars]
            rhs -= coeff * tableau2[row, -1]
    tableau2[-1, :num_vars] = cost
    tableau2[-1, -1] = rhs
    # Columns for basic artificial variables (redundant rows) do not exist in
    # tableau2; mark such rows by a sentinel basis index beyond num_vars, and
    # they will simply never be chosen as pivot rows with positive entries in
    # real columns (their real-variable rows are all zero).
    iterations += _run_simplex(tableau2, basis, num_vars)

    x = np.zeros(num_vars)
    for row in range(num_cons):
        if basis[row] < num_vars:
            x[basis[row]] = tableau2[row, -1]
    # Clamp tiny negative noise.
    x[np.abs(x) < TOLERANCE] = np.abs(x[np.abs(x) < TOLERANCE])
    objective = float(problem.c @ x)
    # Truncate slack variables added by to_standard_form().
    x = x[:original_vars]
    return LPSolution(
        x=x,
        objective=objective,
        backend="simplex",
        iterations=iterations,
    )
