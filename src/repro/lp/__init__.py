"""Linear programming substrate.

The paper's optimal share schedules (Sec. IV-B and IV-D) are computed by
linear programs over the schedule probabilities ``p(k, M)``.  This package
provides:

* :class:`~repro.lp.interface.LinearProgram` -- a standard-form problem
  description (minimise ``c @ x`` subject to ``A_eq @ x = b_eq``,
  ``x >= 0``), which is exactly the shape of every program in the paper;
* :mod:`repro.lp.simplex` -- a from-scratch two-phase dense simplex solver
  with Bland's anti-cycling rule (no external dependencies);
* :mod:`repro.lp.scipy_backend` -- a thin wrapper over
  ``scipy.optimize.linprog`` (HiGHS), used as a cross-check and as a faster
  backend for large sweeps.

The two backends are cross-validated against each other in the test suite.
"""

from repro.lp.interface import (
    InfeasibleError,
    LinearProgram,
    LPSolution,
    UnboundedError,
    solve,
)

__all__ = [
    "LinearProgram",
    "LPSolution",
    "InfeasibleError",
    "UnboundedError",
    "solve",
]
